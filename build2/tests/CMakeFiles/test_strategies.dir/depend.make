# Empty dependencies file for test_strategies.
# This may be replaced when dependencies are built.
