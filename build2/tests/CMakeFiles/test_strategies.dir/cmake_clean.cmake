file(REMOVE_RECURSE
  "CMakeFiles/test_strategies.dir/test_strategies.cpp.o"
  "CMakeFiles/test_strategies.dir/test_strategies.cpp.o.d"
  "test_strategies"
  "test_strategies.pdb"
  "test_strategies[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
