# Empty compiler generated dependencies file for test_failures.
# This may be replaced when dependencies are built.
