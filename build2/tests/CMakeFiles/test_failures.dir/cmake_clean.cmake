file(REMOVE_RECURSE
  "CMakeFiles/test_failures.dir/test_failures.cpp.o"
  "CMakeFiles/test_failures.dir/test_failures.cpp.o.d"
  "test_failures"
  "test_failures.pdb"
  "test_failures[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
