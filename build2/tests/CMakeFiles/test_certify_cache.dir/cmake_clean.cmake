file(REMOVE_RECURSE
  "CMakeFiles/test_certify_cache.dir/test_certify_cache.cpp.o"
  "CMakeFiles/test_certify_cache.dir/test_certify_cache.cpp.o.d"
  "test_certify_cache"
  "test_certify_cache.pdb"
  "test_certify_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_certify_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
