# Empty compiler generated dependencies file for test_certify_cache.
# This may be replaced when dependencies are built.
