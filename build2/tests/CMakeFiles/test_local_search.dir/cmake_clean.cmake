file(REMOVE_RECURSE
  "CMakeFiles/test_local_search.dir/test_local_search.cpp.o"
  "CMakeFiles/test_local_search.dir/test_local_search.cpp.o.d"
  "test_local_search"
  "test_local_search.pdb"
  "test_local_search[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_local_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
