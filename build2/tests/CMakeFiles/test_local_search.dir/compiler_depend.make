# Empty compiler generated dependencies file for test_local_search.
# This may be replaced when dependencies are built.
