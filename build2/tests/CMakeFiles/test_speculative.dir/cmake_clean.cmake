file(REMOVE_RECURSE
  "CMakeFiles/test_speculative.dir/test_speculative.cpp.o"
  "CMakeFiles/test_speculative.dir/test_speculative.cpp.o.d"
  "test_speculative"
  "test_speculative.pdb"
  "test_speculative[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_speculative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
