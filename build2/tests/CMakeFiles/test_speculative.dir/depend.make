# Empty dependencies file for test_speculative.
# This may be replaced when dependencies are built.
