file(REMOVE_RECURSE
  "CMakeFiles/test_placement.dir/test_placement.cpp.o"
  "CMakeFiles/test_placement.dir/test_placement.cpp.o.d"
  "test_placement"
  "test_placement.pdb"
  "test_placement[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
