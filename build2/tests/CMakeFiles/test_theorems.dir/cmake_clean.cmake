file(REMOVE_RECURSE
  "CMakeFiles/test_theorems.dir/test_theorems.cpp.o"
  "CMakeFiles/test_theorems.dir/test_theorems.cpp.o.d"
  "test_theorems"
  "test_theorems.pdb"
  "test_theorems[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_theorems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
