# Empty dependencies file for test_theorems.
# This may be replaced when dependencies are built.
