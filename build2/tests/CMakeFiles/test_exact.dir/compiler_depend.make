# Empty compiler generated dependencies file for test_exact.
# This may be replaced when dependencies are built.
