file(REMOVE_RECURSE
  "CMakeFiles/test_exact.dir/test_exact.cpp.o"
  "CMakeFiles/test_exact.dir/test_exact.cpp.o.d"
  "test_exact"
  "test_exact.pdb"
  "test_exact[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
