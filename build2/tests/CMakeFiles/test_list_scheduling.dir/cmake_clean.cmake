file(REMOVE_RECURSE
  "CMakeFiles/test_list_scheduling.dir/test_list_scheduling.cpp.o"
  "CMakeFiles/test_list_scheduling.dir/test_list_scheduling.cpp.o.d"
  "test_list_scheduling"
  "test_list_scheduling.pdb"
  "test_list_scheduling[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_list_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
