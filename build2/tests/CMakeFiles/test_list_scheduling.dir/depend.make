# Empty dependencies file for test_list_scheduling.
# This may be replaced when dependencies are built.
