file(REMOVE_RECURSE
  "CMakeFiles/test_schedule_stats.dir/test_schedule_stats.cpp.o"
  "CMakeFiles/test_schedule_stats.dir/test_schedule_stats.cpp.o.d"
  "test_schedule_stats"
  "test_schedule_stats.pdb"
  "test_schedule_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_schedule_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
