# Empty compiler generated dependencies file for test_svg.
# This may be replaced when dependencies are built.
