file(REMOVE_RECURSE
  "CMakeFiles/test_svg.dir/test_svg.cpp.o"
  "CMakeFiles/test_svg.dir/test_svg.cpp.o.d"
  "test_svg"
  "test_svg.pdb"
  "test_svg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_svg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
