file(REMOVE_RECURSE
  "CMakeFiles/test_golden_extensions.dir/test_golden_extensions.cpp.o"
  "CMakeFiles/test_golden_extensions.dir/test_golden_extensions.cpp.o.d"
  "test_golden_extensions"
  "test_golden_extensions.pdb"
  "test_golden_extensions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_golden_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
