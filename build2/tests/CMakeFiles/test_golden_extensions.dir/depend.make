# Empty dependencies file for test_golden_extensions.
# This may be replaced when dependencies are built.
