# Empty compiler generated dependencies file for test_selective.
# This may be replaced when dependencies are built.
