file(REMOVE_RECURSE
  "CMakeFiles/test_selective.dir/test_selective.cpp.o"
  "CMakeFiles/test_selective.dir/test_selective.cpp.o.d"
  "test_selective"
  "test_selective.pdb"
  "test_selective[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_selective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
