file(REMOVE_RECURSE
  "CMakeFiles/test_edge_cases.dir/test_edge_cases.cpp.o"
  "CMakeFiles/test_edge_cases.dir/test_edge_cases.cpp.o.d"
  "test_edge_cases"
  "test_edge_cases.pdb"
  "test_edge_cases[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_edge_cases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
