# Empty compiler generated dependencies file for test_edge_cases.
# This may be replaced when dependencies are built.
