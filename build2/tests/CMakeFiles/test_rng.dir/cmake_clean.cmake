file(REMOVE_RECURSE
  "CMakeFiles/test_rng.dir/test_rng.cpp.o"
  "CMakeFiles/test_rng.dir/test_rng.cpp.o.d"
  "test_rng"
  "test_rng.pdb"
  "test_rng[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
