file(REMOVE_RECURSE
  "CMakeFiles/test_golden.dir/test_golden.cpp.o"
  "CMakeFiles/test_golden.dir/test_golden.cpp.o.d"
  "test_golden"
  "test_golden.pdb"
  "test_golden[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_golden.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
