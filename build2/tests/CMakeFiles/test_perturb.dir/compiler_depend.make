# Empty compiler generated dependencies file for test_perturb.
# This may be replaced when dependencies are built.
