file(REMOVE_RECURSE
  "CMakeFiles/test_perturb.dir/test_perturb.cpp.o"
  "CMakeFiles/test_perturb.dir/test_perturb.cpp.o.d"
  "test_perturb"
  "test_perturb.pdb"
  "test_perturb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perturb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
