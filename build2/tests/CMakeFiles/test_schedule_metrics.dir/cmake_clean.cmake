file(REMOVE_RECURSE
  "CMakeFiles/test_schedule_metrics.dir/test_schedule_metrics.cpp.o"
  "CMakeFiles/test_schedule_metrics.dir/test_schedule_metrics.cpp.o.d"
  "test_schedule_metrics"
  "test_schedule_metrics.pdb"
  "test_schedule_metrics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_schedule_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
