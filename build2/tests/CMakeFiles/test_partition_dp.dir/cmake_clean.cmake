file(REMOVE_RECURSE
  "CMakeFiles/test_partition_dp.dir/test_partition_dp.cpp.o"
  "CMakeFiles/test_partition_dp.dir/test_partition_dp.cpp.o.d"
  "test_partition_dp"
  "test_partition_dp.pdb"
  "test_partition_dp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_partition_dp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
