# Empty dependencies file for test_partition_dp.
# This may be replaced when dependencies are built.
