# Empty dependencies file for test_transfer.
# This may be replaced when dependencies are built.
