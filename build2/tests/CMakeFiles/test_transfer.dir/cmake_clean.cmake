file(REMOVE_RECURSE
  "CMakeFiles/test_transfer.dir/test_transfer.cpp.o"
  "CMakeFiles/test_transfer.dir/test_transfer.cpp.o.d"
  "test_transfer"
  "test_transfer.pdb"
  "test_transfer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
