file(REMOVE_RECURSE
  "CMakeFiles/test_instance.dir/test_instance.cpp.o"
  "CMakeFiles/test_instance.dir/test_instance.cpp.o.d"
  "test_instance"
  "test_instance.pdb"
  "test_instance[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_instance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
