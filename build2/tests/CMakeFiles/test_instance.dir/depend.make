# Empty dependencies file for test_instance.
# This may be replaced when dependencies are built.
