file(REMOVE_RECURSE
  "CMakeFiles/test_theorems_workloads.dir/test_theorems_workloads.cpp.o"
  "CMakeFiles/test_theorems_workloads.dir/test_theorems_workloads.cpp.o.d"
  "test_theorems_workloads"
  "test_theorems_workloads.pdb"
  "test_theorems_workloads[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_theorems_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
