# Empty dependencies file for test_theorems_workloads.
# This may be replaced when dependencies are built.
