# Empty compiler generated dependencies file for test_hetero.
# This may be replaced when dependencies are built.
