file(REMOVE_RECURSE
  "CMakeFiles/test_hetero.dir/test_hetero.cpp.o"
  "CMakeFiles/test_hetero.dir/test_hetero.cpp.o.d"
  "test_hetero"
  "test_hetero.pdb"
  "test_hetero[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hetero.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
