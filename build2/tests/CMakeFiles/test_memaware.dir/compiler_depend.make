# Empty compiler generated dependencies file for test_memaware.
# This may be replaced when dependencies are built.
