file(REMOVE_RECURSE
  "CMakeFiles/test_memaware.dir/test_memaware.cpp.o"
  "CMakeFiles/test_memaware.dir/test_memaware.cpp.o.d"
  "test_memaware"
  "test_memaware.pdb"
  "test_memaware[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memaware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
