# Empty compiler generated dependencies file for test_alpha_fit.
# This may be replaced when dependencies are built.
