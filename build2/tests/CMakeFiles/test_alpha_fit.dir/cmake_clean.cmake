file(REMOVE_RECURSE
  "CMakeFiles/test_alpha_fit.dir/test_alpha_fit.cpp.o"
  "CMakeFiles/test_alpha_fit.dir/test_alpha_fit.cpp.o.d"
  "test_alpha_fit"
  "test_alpha_fit.pdb"
  "test_alpha_fit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alpha_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
