# Empty dependencies file for test_ptas.
# This may be replaced when dependencies are built.
