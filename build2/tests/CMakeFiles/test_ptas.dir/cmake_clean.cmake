file(REMOVE_RECURSE
  "CMakeFiles/test_ptas.dir/test_ptas.cpp.o"
  "CMakeFiles/test_ptas.dir/test_ptas.cpp.o.d"
  "test_ptas"
  "test_ptas.pdb"
  "test_ptas[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ptas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
