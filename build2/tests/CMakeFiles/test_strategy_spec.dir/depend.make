# Empty dependencies file for test_strategy_spec.
# This may be replaced when dependencies are built.
