file(REMOVE_RECURSE
  "CMakeFiles/test_strategy_spec.dir/test_strategy_spec.cpp.o"
  "CMakeFiles/test_strategy_spec.dir/test_strategy_spec.cpp.o.d"
  "test_strategy_spec"
  "test_strategy_spec.pdb"
  "test_strategy_spec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_strategy_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
