# Empty compiler generated dependencies file for test_heterogeneous_band.
# This may be replaced when dependencies are built.
