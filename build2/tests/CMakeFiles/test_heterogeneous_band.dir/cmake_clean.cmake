file(REMOVE_RECURSE
  "CMakeFiles/test_heterogeneous_band.dir/test_heterogeneous_band.cpp.o"
  "CMakeFiles/test_heterogeneous_band.dir/test_heterogeneous_band.cpp.o.d"
  "test_heterogeneous_band"
  "test_heterogeneous_band.pdb"
  "test_heterogeneous_band[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_heterogeneous_band.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
