file(REMOVE_RECURSE
  "CMakeFiles/test_exp.dir/test_exp.cpp.o"
  "CMakeFiles/test_exp.dir/test_exp.cpp.o.d"
  "test_exp"
  "test_exp.pdb"
  "test_exp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
