# Empty compiler generated dependencies file for test_exp.
# This may be replaced when dependencies are built.
