file(REMOVE_RECURSE
  "CMakeFiles/test_overlap.dir/test_overlap.cpp.o"
  "CMakeFiles/test_overlap.dir/test_overlap.cpp.o.d"
  "test_overlap"
  "test_overlap.pdb"
  "test_overlap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
