# Empty compiler generated dependencies file for test_overlap.
# This may be replaced when dependencies are built.
