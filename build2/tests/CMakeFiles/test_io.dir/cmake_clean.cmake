file(REMOVE_RECURSE
  "CMakeFiles/test_io.dir/test_io.cpp.o"
  "CMakeFiles/test_io.dir/test_io.cpp.o.d"
  "test_io"
  "test_io.pdb"
  "test_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
