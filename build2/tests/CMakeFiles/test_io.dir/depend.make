# Empty dependencies file for test_io.
# This may be replaced when dependencies are built.
