# Empty compiler generated dependencies file for test_profiles.
# This may be replaced when dependencies are built.
