file(REMOVE_RECURSE
  "CMakeFiles/test_profiles.dir/test_profiles.cpp.o"
  "CMakeFiles/test_profiles.dir/test_profiles.cpp.o.d"
  "test_profiles"
  "test_profiles.pdb"
  "test_profiles[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
