file(REMOVE_RECURSE
  "CMakeFiles/test_dispatch_differential.dir/test_dispatch_differential.cpp.o"
  "CMakeFiles/test_dispatch_differential.dir/test_dispatch_differential.cpp.o.d"
  "test_dispatch_differential"
  "test_dispatch_differential.pdb"
  "test_dispatch_differential[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dispatch_differential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
