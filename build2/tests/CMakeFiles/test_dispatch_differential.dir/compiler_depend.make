# Empty compiler generated dependencies file for test_dispatch_differential.
# This may be replaced when dependencies are built.
