# Empty compiler generated dependencies file for test_pareto.
# This may be replaced when dependencies are built.
