file(REMOVE_RECURSE
  "CMakeFiles/test_pareto.dir/test_pareto.cpp.o"
  "CMakeFiles/test_pareto.dir/test_pareto.cpp.o.d"
  "test_pareto"
  "test_pareto.pdb"
  "test_pareto[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
