# Empty compiler generated dependencies file for test_exhaustive_adversary.
# This may be replaced when dependencies are built.
