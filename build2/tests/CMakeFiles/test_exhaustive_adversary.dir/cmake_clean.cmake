file(REMOVE_RECURSE
  "CMakeFiles/test_exhaustive_adversary.dir/test_exhaustive_adversary.cpp.o"
  "CMakeFiles/test_exhaustive_adversary.dir/test_exhaustive_adversary.cpp.o.d"
  "test_exhaustive_adversary"
  "test_exhaustive_adversary.pdb"
  "test_exhaustive_adversary[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exhaustive_adversary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
