# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build2/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_smoke_quickstart "/root/repo/build2/examples/quickstart")
set_tests_properties(example_smoke_quickstart PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;11;rdp_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_smoke_out_of_core_spmv "/root/repo/build2/examples/out_of_core_spmv")
set_tests_properties(example_smoke_out_of_core_spmv PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;12;rdp_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_smoke_cluster_replication "/root/repo/build2/examples/cluster_replication")
set_tests_properties(example_smoke_cluster_replication PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;13;rdp_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_smoke_memory_budget "/root/repo/build2/examples/memory_budget")
set_tests_properties(example_smoke_memory_budget PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;14;rdp_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_smoke_adversary_game "/root/repo/build2/examples/adversary_game")
set_tests_properties(example_smoke_adversary_game PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;15;rdp_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_smoke_calibrate_and_schedule "/root/repo/build2/examples/calibrate_and_schedule")
set_tests_properties(example_smoke_calibrate_and_schedule PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;16;rdp_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_smoke_trace_replay "/root/repo/build2/examples/trace_replay")
set_tests_properties(example_smoke_trace_replay PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;17;rdp_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_smoke_straggler_mitigation "/root/repo/build2/examples/straggler_mitigation")
set_tests_properties(example_smoke_straggler_mitigation PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;18;rdp_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_smoke_profile_tour "/root/repo/build2/examples/profile_tour")
set_tests_properties(example_smoke_profile_tour PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;19;rdp_add_example;/root/repo/examples/CMakeLists.txt;0;")
