file(REMOVE_RECURSE
  "CMakeFiles/out_of_core_spmv.dir/out_of_core_spmv.cpp.o"
  "CMakeFiles/out_of_core_spmv.dir/out_of_core_spmv.cpp.o.d"
  "out_of_core_spmv"
  "out_of_core_spmv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/out_of_core_spmv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
