file(REMOVE_RECURSE
  "CMakeFiles/cluster_replication.dir/cluster_replication.cpp.o"
  "CMakeFiles/cluster_replication.dir/cluster_replication.cpp.o.d"
  "cluster_replication"
  "cluster_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
