# Empty dependencies file for cluster_replication.
# This may be replaced when dependencies are built.
