# Empty dependencies file for memory_budget.
# This may be replaced when dependencies are built.
