file(REMOVE_RECURSE
  "CMakeFiles/memory_budget.dir/memory_budget.cpp.o"
  "CMakeFiles/memory_budget.dir/memory_budget.cpp.o.d"
  "memory_budget"
  "memory_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
