# Empty dependencies file for calibrate_and_schedule.
# This may be replaced when dependencies are built.
