file(REMOVE_RECURSE
  "CMakeFiles/calibrate_and_schedule.dir/calibrate_and_schedule.cpp.o"
  "CMakeFiles/calibrate_and_schedule.dir/calibrate_and_schedule.cpp.o.d"
  "calibrate_and_schedule"
  "calibrate_and_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibrate_and_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
