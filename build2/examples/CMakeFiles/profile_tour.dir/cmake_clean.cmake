file(REMOVE_RECURSE
  "CMakeFiles/profile_tour.dir/profile_tour.cpp.o"
  "CMakeFiles/profile_tour.dir/profile_tour.cpp.o.d"
  "profile_tour"
  "profile_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
