# Empty dependencies file for profile_tour.
# This may be replaced when dependencies are built.
