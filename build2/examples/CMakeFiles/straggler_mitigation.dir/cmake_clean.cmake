file(REMOVE_RECURSE
  "CMakeFiles/straggler_mitigation.dir/straggler_mitigation.cpp.o"
  "CMakeFiles/straggler_mitigation.dir/straggler_mitigation.cpp.o.d"
  "straggler_mitigation"
  "straggler_mitigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/straggler_mitigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
