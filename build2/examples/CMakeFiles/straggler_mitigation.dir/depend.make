# Empty dependencies file for straggler_mitigation.
# This may be replaced when dependencies are built.
