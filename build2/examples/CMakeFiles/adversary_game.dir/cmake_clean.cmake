file(REMOVE_RECURSE
  "CMakeFiles/adversary_game.dir/adversary_game.cpp.o"
  "CMakeFiles/adversary_game.dir/adversary_game.cpp.o.d"
  "adversary_game"
  "adversary_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adversary_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
