# Empty dependencies file for adversary_game.
# This may be replaced when dependencies are built.
