file(REMOVE_RECURSE
  "librdp.a"
)
