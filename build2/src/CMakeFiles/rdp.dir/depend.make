# Empty dependencies file for rdp.
# This may be replaced when dependencies are built.
