
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algo/dispatch_policies.cpp" "src/CMakeFiles/rdp.dir/algo/dispatch_policies.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/algo/dispatch_policies.cpp.o.d"
  "/root/repo/src/algo/list_scheduling.cpp" "src/CMakeFiles/rdp.dir/algo/list_scheduling.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/algo/list_scheduling.cpp.o.d"
  "/root/repo/src/algo/local_search.cpp" "src/CMakeFiles/rdp.dir/algo/local_search.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/algo/local_search.cpp.o.d"
  "/root/repo/src/algo/lpt.cpp" "src/CMakeFiles/rdp.dir/algo/lpt.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/algo/lpt.cpp.o.d"
  "/root/repo/src/algo/overlap.cpp" "src/CMakeFiles/rdp.dir/algo/overlap.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/algo/overlap.cpp.o.d"
  "/root/repo/src/algo/placement_policies.cpp" "src/CMakeFiles/rdp.dir/algo/placement_policies.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/algo/placement_policies.cpp.o.d"
  "/root/repo/src/algo/selective.cpp" "src/CMakeFiles/rdp.dir/algo/selective.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/algo/selective.cpp.o.d"
  "/root/repo/src/algo/strategy.cpp" "src/CMakeFiles/rdp.dir/algo/strategy.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/algo/strategy.cpp.o.d"
  "/root/repo/src/bounds/memaware_bounds.cpp" "src/CMakeFiles/rdp.dir/bounds/memaware_bounds.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/bounds/memaware_bounds.cpp.o.d"
  "/root/repo/src/bounds/replication_bounds.cpp" "src/CMakeFiles/rdp.dir/bounds/replication_bounds.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/bounds/replication_bounds.cpp.o.d"
  "/root/repo/src/cli/args.cpp" "src/CMakeFiles/rdp.dir/cli/args.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/cli/args.cpp.o.d"
  "/root/repo/src/core/instance.cpp" "src/CMakeFiles/rdp.dir/core/instance.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/core/instance.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/CMakeFiles/rdp.dir/core/metrics.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/core/metrics.cpp.o.d"
  "/root/repo/src/core/placement.cpp" "src/CMakeFiles/rdp.dir/core/placement.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/core/placement.cpp.o.d"
  "/root/repo/src/core/realization.cpp" "src/CMakeFiles/rdp.dir/core/realization.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/core/realization.cpp.o.d"
  "/root/repo/src/core/schedule.cpp" "src/CMakeFiles/rdp.dir/core/schedule.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/core/schedule.cpp.o.d"
  "/root/repo/src/core/validate.cpp" "src/CMakeFiles/rdp.dir/core/validate.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/core/validate.cpp.o.d"
  "/root/repo/src/exact/branch_and_bound.cpp" "src/CMakeFiles/rdp.dir/exact/branch_and_bound.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/exact/branch_and_bound.cpp.o.d"
  "/root/repo/src/exact/brute_force.cpp" "src/CMakeFiles/rdp.dir/exact/brute_force.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/exact/brute_force.cpp.o.d"
  "/root/repo/src/exact/certify.cpp" "src/CMakeFiles/rdp.dir/exact/certify.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/exact/certify.cpp.o.d"
  "/root/repo/src/exact/dual_approx.cpp" "src/CMakeFiles/rdp.dir/exact/dual_approx.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/exact/dual_approx.cpp.o.d"
  "/root/repo/src/exact/lower_bounds.cpp" "src/CMakeFiles/rdp.dir/exact/lower_bounds.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/exact/lower_bounds.cpp.o.d"
  "/root/repo/src/exact/optimal.cpp" "src/CMakeFiles/rdp.dir/exact/optimal.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/exact/optimal.cpp.o.d"
  "/root/repo/src/exact/partition_dp.cpp" "src/CMakeFiles/rdp.dir/exact/partition_dp.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/exact/partition_dp.cpp.o.d"
  "/root/repo/src/exact/ptas.cpp" "src/CMakeFiles/rdp.dir/exact/ptas.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/exact/ptas.cpp.o.d"
  "/root/repo/src/exp/memaware_experiment.cpp" "src/CMakeFiles/rdp.dir/exp/memaware_experiment.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/exp/memaware_experiment.cpp.o.d"
  "/root/repo/src/exp/ratio_experiment.cpp" "src/CMakeFiles/rdp.dir/exp/ratio_experiment.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/exp/ratio_experiment.cpp.o.d"
  "/root/repo/src/exp/report.cpp" "src/CMakeFiles/rdp.dir/exp/report.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/exp/report.cpp.o.d"
  "/root/repo/src/exp/scenario.cpp" "src/CMakeFiles/rdp.dir/exp/scenario.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/exp/scenario.cpp.o.d"
  "/root/repo/src/exp/sweep.cpp" "src/CMakeFiles/rdp.dir/exp/sweep.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/exp/sweep.cpp.o.d"
  "/root/repo/src/hetero/uniform_machines.cpp" "src/CMakeFiles/rdp.dir/hetero/uniform_machines.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/hetero/uniform_machines.cpp.o.d"
  "/root/repo/src/io/csv.cpp" "src/CMakeFiles/rdp.dir/io/csv.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/io/csv.cpp.o.d"
  "/root/repo/src/io/instance_io.cpp" "src/CMakeFiles/rdp.dir/io/instance_io.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/io/instance_io.cpp.o.d"
  "/root/repo/src/io/json.cpp" "src/CMakeFiles/rdp.dir/io/json.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/io/json.cpp.o.d"
  "/root/repo/src/io/svg.cpp" "src/CMakeFiles/rdp.dir/io/svg.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/io/svg.cpp.o.d"
  "/root/repo/src/io/table.cpp" "src/CMakeFiles/rdp.dir/io/table.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/io/table.cpp.o.d"
  "/root/repo/src/memaware/abo.cpp" "src/CMakeFiles/rdp.dir/memaware/abo.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/memaware/abo.cpp.o.d"
  "/root/repo/src/memaware/pareto.cpp" "src/CMakeFiles/rdp.dir/memaware/pareto.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/memaware/pareto.cpp.o.d"
  "/root/repo/src/memaware/pi_schedules.cpp" "src/CMakeFiles/rdp.dir/memaware/pi_schedules.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/memaware/pi_schedules.cpp.o.d"
  "/root/repo/src/memaware/sabo.cpp" "src/CMakeFiles/rdp.dir/memaware/sabo.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/memaware/sabo.cpp.o.d"
  "/root/repo/src/memaware/sbo.cpp" "src/CMakeFiles/rdp.dir/memaware/sbo.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/memaware/sbo.cpp.o.d"
  "/root/repo/src/obs/hooks.cpp" "src/CMakeFiles/rdp.dir/obs/hooks.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/obs/hooks.cpp.o.d"
  "/root/repo/src/obs/metrics.cpp" "src/CMakeFiles/rdp.dir/obs/metrics.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/obs/metrics.cpp.o.d"
  "/root/repo/src/obs/trace.cpp" "src/CMakeFiles/rdp.dir/obs/trace.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/obs/trace.cpp.o.d"
  "/root/repo/src/parallel/parallel_for.cpp" "src/CMakeFiles/rdp.dir/parallel/parallel_for.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/parallel/parallel_for.cpp.o.d"
  "/root/repo/src/parallel/thread_pool.cpp" "src/CMakeFiles/rdp.dir/parallel/thread_pool.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/parallel/thread_pool.cpp.o.d"
  "/root/repo/src/perturb/adversary.cpp" "src/CMakeFiles/rdp.dir/perturb/adversary.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/perturb/adversary.cpp.o.d"
  "/root/repo/src/perturb/alpha_fit.cpp" "src/CMakeFiles/rdp.dir/perturb/alpha_fit.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/perturb/alpha_fit.cpp.o.d"
  "/root/repo/src/perturb/heterogeneous.cpp" "src/CMakeFiles/rdp.dir/perturb/heterogeneous.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/perturb/heterogeneous.cpp.o.d"
  "/root/repo/src/perturb/stochastic.cpp" "src/CMakeFiles/rdp.dir/perturb/stochastic.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/perturb/stochastic.cpp.o.d"
  "/root/repo/src/rng/distributions.cpp" "src/CMakeFiles/rdp.dir/rng/distributions.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/rng/distributions.cpp.o.d"
  "/root/repo/src/rng/rng.cpp" "src/CMakeFiles/rdp.dir/rng/rng.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/rng/rng.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/rdp.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/failures.cpp" "src/CMakeFiles/rdp.dir/sim/failures.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/sim/failures.cpp.o.d"
  "/root/repo/src/sim/machine_pool.cpp" "src/CMakeFiles/rdp.dir/sim/machine_pool.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/sim/machine_pool.cpp.o.d"
  "/root/repo/src/sim/online_dispatcher.cpp" "src/CMakeFiles/rdp.dir/sim/online_dispatcher.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/sim/online_dispatcher.cpp.o.d"
  "/root/repo/src/sim/speculative.cpp" "src/CMakeFiles/rdp.dir/sim/speculative.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/sim/speculative.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/rdp.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/sim/trace.cpp.o.d"
  "/root/repo/src/sim/transfer_dispatcher.cpp" "src/CMakeFiles/rdp.dir/sim/transfer_dispatcher.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/sim/transfer_dispatcher.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "src/CMakeFiles/rdp.dir/stats/descriptive.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/stats/descriptive.cpp.o.d"
  "/root/repo/src/stats/schedule_stats.cpp" "src/CMakeFiles/rdp.dir/stats/schedule_stats.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/stats/schedule_stats.cpp.o.d"
  "/root/repo/src/stats/welford.cpp" "src/CMakeFiles/rdp.dir/stats/welford.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/stats/welford.cpp.o.d"
  "/root/repo/src/workload/generators.cpp" "src/CMakeFiles/rdp.dir/workload/generators.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/workload/generators.cpp.o.d"
  "/root/repo/src/workload/matrix_block.cpp" "src/CMakeFiles/rdp.dir/workload/matrix_block.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/workload/matrix_block.cpp.o.d"
  "/root/repo/src/workload/profiles.cpp" "src/CMakeFiles/rdp.dir/workload/profiles.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/workload/profiles.cpp.o.d"
  "/root/repo/src/workload/trace.cpp" "src/CMakeFiles/rdp.dir/workload/trace.cpp.o" "gcc" "src/CMakeFiles/rdp.dir/workload/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
