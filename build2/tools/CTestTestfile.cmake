# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build2/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_smoke_generate "/root/repo/build2/tools/rdp_cli" "generate" "--kind=uniform" "--n=20" "--m=4" "--alpha=1.5" "--seed=3" "--out=/root/repo/build2/tools/cli_inst.csv")
set_tests_properties(cli_smoke_generate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_smoke_realize "/root/repo/build2/tools/rdp_cli" "realize" "--instance=/root/repo/build2/tools/cli_inst.csv" "--noise=two-point" "--seed=5" "--out=/root/repo/build2/tools/cli_trace.csv")
set_tests_properties(cli_smoke_realize PROPERTIES  DEPENDS "cli_smoke_generate" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_smoke_run "/root/repo/build2/tools/rdp_cli" "run" "--instance=/root/repo/build2/tools/cli_inst.csv" "--strategy=ls-group:2" "--trace=/root/repo/build2/tools/cli_trace.csv" "--json=/root/repo/build2/tools/cli_run.json")
set_tests_properties(cli_smoke_run PROPERTIES  DEPENDS "cli_smoke_generate;cli_smoke_realize" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_smoke_evaluate "/root/repo/build2/tools/rdp_cli" "evaluate" "--instance=/root/repo/build2/tools/cli_inst.csv" "--scenarios=4" "--seed=2")
set_tests_properties(cli_smoke_evaluate PROPERTIES  DEPENDS "cli_smoke_generate" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_smoke_bounds "/root/repo/build2/tools/rdp_cli" "bounds" "--m=8" "--alpha=2.0")
set_tests_properties(cli_smoke_bounds PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;24;add_test;/root/repo/tools/CMakeLists.txt;0;")
