# Empty dependencies file for rdp_cli.
# This may be replaced when dependencies are built.
