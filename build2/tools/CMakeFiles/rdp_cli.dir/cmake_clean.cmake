file(REMOVE_RECURSE
  "CMakeFiles/rdp_cli.dir/rdp_cli.cpp.o"
  "CMakeFiles/rdp_cli.dir/rdp_cli.cpp.o.d"
  "rdp_cli"
  "rdp_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
