# Empty compiler generated dependencies file for fig4_sabo_schedule.
# This may be replaced when dependencies are built.
