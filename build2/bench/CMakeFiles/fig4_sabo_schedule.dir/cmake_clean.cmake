file(REMOVE_RECURSE
  "CMakeFiles/fig4_sabo_schedule.dir/fig4_sabo_schedule.cpp.o"
  "CMakeFiles/fig4_sabo_schedule.dir/fig4_sabo_schedule.cpp.o.d"
  "fig4_sabo_schedule"
  "fig4_sabo_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_sabo_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
