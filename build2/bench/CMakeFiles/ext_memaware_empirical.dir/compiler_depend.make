# Empty compiler generated dependencies file for ext_memaware_empirical.
# This may be replaced when dependencies are built.
