file(REMOVE_RECURSE
  "CMakeFiles/ext_memaware_empirical.dir/ext_memaware_empirical.cpp.o"
  "CMakeFiles/ext_memaware_empirical.dir/ext_memaware_empirical.cpp.o.d"
  "ext_memaware_empirical"
  "ext_memaware_empirical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_memaware_empirical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
