file(REMOVE_RECURSE
  "CMakeFiles/table1_summary.dir/table1_summary.cpp.o"
  "CMakeFiles/table1_summary.dir/table1_summary.cpp.o.d"
  "table1_summary"
  "table1_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
