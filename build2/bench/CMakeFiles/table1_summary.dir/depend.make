# Empty dependencies file for table1_summary.
# This may be replaced when dependencies are built.
