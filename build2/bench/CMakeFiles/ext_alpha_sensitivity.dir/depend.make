# Empty dependencies file for ext_alpha_sensitivity.
# This may be replaced when dependencies are built.
