file(REMOVE_RECURSE
  "CMakeFiles/ext_alpha_sensitivity.dir/ext_alpha_sensitivity.cpp.o"
  "CMakeFiles/ext_alpha_sensitivity.dir/ext_alpha_sensitivity.cpp.o.d"
  "ext_alpha_sensitivity"
  "ext_alpha_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_alpha_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
