file(REMOVE_RECURSE
  "CMakeFiles/ext_fault_tolerance.dir/ext_fault_tolerance.cpp.o"
  "CMakeFiles/ext_fault_tolerance.dir/ext_fault_tolerance.cpp.o.d"
  "ext_fault_tolerance"
  "ext_fault_tolerance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_fault_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
