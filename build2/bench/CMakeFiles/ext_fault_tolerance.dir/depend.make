# Empty dependencies file for ext_fault_tolerance.
# This may be replaced when dependencies are built.
