file(REMOVE_RECURSE
  "CMakeFiles/ext_lb_search.dir/ext_lb_search.cpp.o"
  "CMakeFiles/ext_lb_search.dir/ext_lb_search.cpp.o.d"
  "ext_lb_search"
  "ext_lb_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_lb_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
