# Empty dependencies file for ext_lb_search.
# This may be replaced when dependencies are built.
