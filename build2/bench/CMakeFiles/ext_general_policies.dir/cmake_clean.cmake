file(REMOVE_RECURSE
  "CMakeFiles/ext_general_policies.dir/ext_general_policies.cpp.o"
  "CMakeFiles/ext_general_policies.dir/ext_general_policies.cpp.o.d"
  "ext_general_policies"
  "ext_general_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_general_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
