# Empty dependencies file for ext_general_policies.
# This may be replaced when dependencies are built.
