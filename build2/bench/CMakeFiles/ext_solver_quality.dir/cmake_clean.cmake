file(REMOVE_RECURSE
  "CMakeFiles/ext_solver_quality.dir/ext_solver_quality.cpp.o"
  "CMakeFiles/ext_solver_quality.dir/ext_solver_quality.cpp.o.d"
  "ext_solver_quality"
  "ext_solver_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_solver_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
