# Empty compiler generated dependencies file for ext_solver_quality.
# This may be replaced when dependencies are built.
