file(REMOVE_RECURSE
  "CMakeFiles/fig3_ratio_replication.dir/fig3_ratio_replication.cpp.o"
  "CMakeFiles/fig3_ratio_replication.dir/fig3_ratio_replication.cpp.o.d"
  "fig3_ratio_replication"
  "fig3_ratio_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_ratio_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
