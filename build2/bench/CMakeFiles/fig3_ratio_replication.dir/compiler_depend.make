# Empty compiler generated dependencies file for fig3_ratio_replication.
# This may be replaced when dependencies are built.
