# Empty dependencies file for fig5_abo_schedule.
# This may be replaced when dependencies are built.
