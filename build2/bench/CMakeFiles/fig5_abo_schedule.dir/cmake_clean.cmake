file(REMOVE_RECURSE
  "CMakeFiles/fig5_abo_schedule.dir/fig5_abo_schedule.cpp.o"
  "CMakeFiles/fig5_abo_schedule.dir/fig5_abo_schedule.cpp.o.d"
  "fig5_abo_schedule"
  "fig5_abo_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_abo_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
