file(REMOVE_RECURSE
  "CMakeFiles/ext_selective_replication.dir/ext_selective_replication.cpp.o"
  "CMakeFiles/ext_selective_replication.dir/ext_selective_replication.cpp.o.d"
  "ext_selective_replication"
  "ext_selective_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_selective_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
