# Empty dependencies file for ext_selective_replication.
# This may be replaced when dependencies are built.
