# Empty dependencies file for fig6_memory_makespan.
# This may be replaced when dependencies are built.
