file(REMOVE_RECURSE
  "CMakeFiles/fig6_memory_makespan.dir/fig6_memory_makespan.cpp.o"
  "CMakeFiles/fig6_memory_makespan.dir/fig6_memory_makespan.cpp.o.d"
  "fig6_memory_makespan"
  "fig6_memory_makespan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_memory_makespan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
