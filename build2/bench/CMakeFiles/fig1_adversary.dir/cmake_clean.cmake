file(REMOVE_RECURSE
  "CMakeFiles/fig1_adversary.dir/fig1_adversary.cpp.o"
  "CMakeFiles/fig1_adversary.dir/fig1_adversary.cpp.o.d"
  "fig1_adversary"
  "fig1_adversary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_adversary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
