# Empty compiler generated dependencies file for fig1_adversary.
# This may be replaced when dependencies are built.
