# Empty compiler generated dependencies file for ext_pareto_front.
# This may be replaced when dependencies are built.
