file(REMOVE_RECURSE
  "CMakeFiles/ext_pareto_front.dir/ext_pareto_front.cpp.o"
  "CMakeFiles/ext_pareto_front.dir/ext_pareto_front.cpp.o.d"
  "ext_pareto_front"
  "ext_pareto_front.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_pareto_front.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
