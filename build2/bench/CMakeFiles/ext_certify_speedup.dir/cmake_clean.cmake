file(REMOVE_RECURSE
  "CMakeFiles/ext_certify_speedup.dir/ext_certify_speedup.cpp.o"
  "CMakeFiles/ext_certify_speedup.dir/ext_certify_speedup.cpp.o.d"
  "ext_certify_speedup"
  "ext_certify_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_certify_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
