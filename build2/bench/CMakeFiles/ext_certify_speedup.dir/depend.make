# Empty dependencies file for ext_certify_speedup.
# This may be replaced when dependencies are built.
