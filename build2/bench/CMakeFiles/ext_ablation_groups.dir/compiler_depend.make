# Empty compiler generated dependencies file for ext_ablation_groups.
# This may be replaced when dependencies are built.
