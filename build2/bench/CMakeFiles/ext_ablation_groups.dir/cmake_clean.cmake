file(REMOVE_RECURSE
  "CMakeFiles/ext_ablation_groups.dir/ext_ablation_groups.cpp.o"
  "CMakeFiles/ext_ablation_groups.dir/ext_ablation_groups.cpp.o.d"
  "ext_ablation_groups"
  "ext_ablation_groups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_ablation_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
