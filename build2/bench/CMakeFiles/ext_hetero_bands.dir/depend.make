# Empty dependencies file for ext_hetero_bands.
# This may be replaced when dependencies are built.
