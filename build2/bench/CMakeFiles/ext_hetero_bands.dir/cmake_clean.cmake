file(REMOVE_RECURSE
  "CMakeFiles/ext_hetero_bands.dir/ext_hetero_bands.cpp.o"
  "CMakeFiles/ext_hetero_bands.dir/ext_hetero_bands.cpp.o.d"
  "ext_hetero_bands"
  "ext_hetero_bands.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_hetero_bands.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
