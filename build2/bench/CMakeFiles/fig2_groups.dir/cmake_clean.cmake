file(REMOVE_RECURSE
  "CMakeFiles/fig2_groups.dir/fig2_groups.cpp.o"
  "CMakeFiles/fig2_groups.dir/fig2_groups.cpp.o.d"
  "fig2_groups"
  "fig2_groups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
