# Empty dependencies file for fig2_groups.
# This may be replaced when dependencies are built.
