file(REMOVE_RECURSE
  "CMakeFiles/perf_algorithms.dir/perf_algorithms.cpp.o"
  "CMakeFiles/perf_algorithms.dir/perf_algorithms.cpp.o.d"
  "perf_algorithms"
  "perf_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
