# Empty compiler generated dependencies file for perf_algorithms.
# This may be replaced when dependencies are built.
