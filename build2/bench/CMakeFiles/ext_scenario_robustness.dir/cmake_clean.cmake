file(REMOVE_RECURSE
  "CMakeFiles/ext_scenario_robustness.dir/ext_scenario_robustness.cpp.o"
  "CMakeFiles/ext_scenario_robustness.dir/ext_scenario_robustness.cpp.o.d"
  "ext_scenario_robustness"
  "ext_scenario_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_scenario_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
