# Empty compiler generated dependencies file for ext_scenario_robustness.
# This may be replaced when dependencies are built.
