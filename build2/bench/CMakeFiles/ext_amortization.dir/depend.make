# Empty dependencies file for ext_amortization.
# This may be replaced when dependencies are built.
