file(REMOVE_RECURSE
  "CMakeFiles/ext_amortization.dir/ext_amortization.cpp.o"
  "CMakeFiles/ext_amortization.dir/ext_amortization.cpp.o.d"
  "ext_amortization"
  "ext_amortization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_amortization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
