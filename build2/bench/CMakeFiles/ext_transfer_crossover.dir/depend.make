# Empty dependencies file for ext_transfer_crossover.
# This may be replaced when dependencies are built.
