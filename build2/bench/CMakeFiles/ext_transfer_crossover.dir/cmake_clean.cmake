file(REMOVE_RECURSE
  "CMakeFiles/ext_transfer_crossover.dir/ext_transfer_crossover.cpp.o"
  "CMakeFiles/ext_transfer_crossover.dir/ext_transfer_crossover.cpp.o.d"
  "ext_transfer_crossover"
  "ext_transfer_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_transfer_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
