file(REMOVE_RECURSE
  "CMakeFiles/ext_speculative.dir/ext_speculative.cpp.o"
  "CMakeFiles/ext_speculative.dir/ext_speculative.cpp.o.d"
  "ext_speculative"
  "ext_speculative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_speculative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
