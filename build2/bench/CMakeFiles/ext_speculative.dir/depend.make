# Empty dependencies file for ext_speculative.
# This may be replaced when dependencies are built.
