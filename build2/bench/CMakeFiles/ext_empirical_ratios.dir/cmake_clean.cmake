file(REMOVE_RECURSE
  "CMakeFiles/ext_empirical_ratios.dir/ext_empirical_ratios.cpp.o"
  "CMakeFiles/ext_empirical_ratios.dir/ext_empirical_ratios.cpp.o.d"
  "ext_empirical_ratios"
  "ext_empirical_ratios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_empirical_ratios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
