# Empty compiler generated dependencies file for ext_empirical_ratios.
# This may be replaced when dependencies are built.
