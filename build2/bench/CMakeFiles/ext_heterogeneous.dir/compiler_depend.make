# Empty compiler generated dependencies file for ext_heterogeneous.
# This may be replaced when dependencies are built.
