file(REMOVE_RECURSE
  "CMakeFiles/ext_heterogeneous.dir/ext_heterogeneous.cpp.o"
  "CMakeFiles/ext_heterogeneous.dir/ext_heterogeneous.cpp.o.d"
  "ext_heterogeneous"
  "ext_heterogeneous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_heterogeneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
