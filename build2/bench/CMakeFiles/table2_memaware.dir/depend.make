# Empty dependencies file for table2_memaware.
# This may be replaced when dependencies are built.
