file(REMOVE_RECURSE
  "CMakeFiles/table2_memaware.dir/table2_memaware.cpp.o"
  "CMakeFiles/table2_memaware.dir/table2_memaware.cpp.o.d"
  "table2_memaware"
  "table2_memaware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_memaware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
