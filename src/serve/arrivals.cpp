#include "serve/arrivals.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "rng/rng.hpp"

namespace rdp {

namespace {

/// Exponential interarrival with mean 1/rate; the 1e-300 floor keeps
/// log() finite (the same guard the distributions library uses).
double sample_exponential(Xoshiro256& rng, double rate) {
  double u = 1.0 - rng.next_double();  // (0, 1]
  if (u < 1e-300) u = 1e-300;
  return -std::log(u) / rate;
}

void validate(const ArrivalParams& p) {
  if (!(p.rate > 0.0) || !std::isfinite(p.rate)) {
    throw std::invalid_argument("arrivals: rate must be positive and finite");
  }
  if (p.model == ArrivalModel::kBurst) {
    if (!(p.burst_boost > 1.0) || !std::isfinite(p.burst_boost)) {
      throw std::invalid_argument("arrivals: burst boost must exceed 1");
    }
    if (!(p.burst_on > 0.0) || !(p.burst_off > 0.0)) {
      throw std::invalid_argument("arrivals: burst phase means must be positive");
    }
    // The off-phase rate that makes the time-weighted average of the two
    // phase rates equal `rate` exactly. boost <= (on + off) / on keeps it
    // non-negative: the on phase alone must not exceed the mean budget.
    const double off_rate = (p.rate * (p.burst_on + p.burst_off) -
                             p.rate * p.burst_boost * p.burst_on) /
                            p.burst_off;
    if (!(off_rate >= 0.0)) {
      throw std::invalid_argument(
          "arrivals: burst boost too large for the on/off phase mix "
          "(need boost <= (on + off) / on)");
    }
  }
}

double burst_off_rate(const ArrivalParams& p) {
  return (p.rate * (p.burst_on + p.burst_off) -
          p.rate * p.burst_boost * p.burst_on) /
         p.burst_off;
}

/// MMPP-2 sampler: competing exponentials between "next arrival in this
/// phase" and "phase switch". Phase 0 = on (hot), phase 1 = off (cold).
class BurstProcess {
 public:
  BurstProcess(const ArrivalParams& p, Xoshiro256& rng)
      : rng_(rng),
        phase_rate_{p.rate * p.burst_boost, burst_off_rate(p)},
        phase_mean_{p.burst_on, p.burst_off} {}

  double next_interarrival() {
    double gap = 0.0;
    while (true) {
      const double rate = phase_rate_[phase_];
      const double to_switch = sample_exponential(rng_, 1.0 / phase_mean_[phase_]);
      if (rate > 0.0) {
        const double to_arrival = sample_exponential(rng_, rate);
        if (to_arrival <= to_switch) return gap + to_arrival;
      }
      // Phase ends before the next arrival (or this phase never fires).
      gap += to_switch;
      phase_ ^= 1;
    }
  }

 private:
  Xoshiro256& rng_;
  double phase_rate_[2];
  double phase_mean_[2];
  int phase_ = 0;
};

}  // namespace

ArrivalModel arrival_model_from_name(const std::string& name) {
  if (name == "poisson") return ArrivalModel::kPoisson;
  if (name == "burst") return ArrivalModel::kBurst;
  if (name == "trace") return ArrivalModel::kTrace;
  throw std::invalid_argument("unknown arrival model '" + name +
                              "' (expected poisson, burst, or trace)");
}

const char* arrival_model_name(ArrivalModel model) {
  switch (model) {
    case ArrivalModel::kPoisson: return "poisson";
    case ArrivalModel::kBurst: return "burst";
    case ArrivalModel::kTrace: return "trace";
  }
  return "?";
}

std::vector<Time> generate_arrivals(const ArrivalParams& params,
                                    std::size_t count) {
  validate(params);
  if (params.model == ArrivalModel::kTrace) {
    throw std::invalid_argument(
        "generate_arrivals: trace arrivals come from arrivals_from_trace");
  }
  std::vector<Time> out;
  out.reserve(count);
  Xoshiro256 rng(params.seed);
  Time now = 0.0;
  if (params.model == ArrivalModel::kPoisson) {
    for (std::size_t k = 0; k < count; ++k) {
      now += sample_exponential(rng, params.rate);
      out.push_back(now);
    }
  } else {
    BurstProcess process(params, rng);
    for (std::size_t k = 0; k < count; ++k) {
      now += process.next_interarrival();
      out.push_back(now);
    }
  }
  return out;
}

std::vector<Time> generate_arrivals_until(const ArrivalParams& params,
                                          Time duration) {
  validate(params);
  if (params.model == ArrivalModel::kTrace) {
    throw std::invalid_argument(
        "generate_arrivals_until: trace arrivals come from arrivals_from_trace");
  }
  if (!(duration >= 0.0) || !std::isfinite(duration)) {
    throw std::invalid_argument(
        "generate_arrivals_until: duration must be finite and non-negative");
  }
  std::vector<Time> out;
  Xoshiro256 rng(params.seed);
  Time now = 0.0;
  if (params.model == ArrivalModel::kPoisson) {
    while (true) {
      now += sample_exponential(rng, params.rate);
      if (now > duration) break;
      out.push_back(now);
    }
  } else {
    BurstProcess process(params, rng);
    while (true) {
      now += process.next_interarrival();
      if (now > duration) break;
      out.push_back(now);
    }
  }
  return out;
}

std::vector<Time> arrivals_from_trace(const Trace& trace) {
  if (!trace.has_arrivals()) {
    throw std::invalid_argument(
        "arrivals_from_trace: trace has no arrival column "
        "(3-column estimate,actual,size format)");
  }
  std::vector<Time> out;
  out.reserve(trace.size());
  for (const TraceRecord& r : trace.records) {
    if (!(r.arrival >= 0.0) || !std::isfinite(r.arrival)) {
      throw std::invalid_argument(
          "arrivals_from_trace: arrivals must be finite and non-negative");
    }
    out.push_back(r.arrival);
  }
  return out;
}

}  // namespace rdp
