#include "serve/slo.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "core/schedule.hpp"
#include "obs/hooks.hpp"
#include "obs/window.hpp"

namespace rdp {

namespace {

double parse_slo_number(const std::string& key, const std::string& text) {
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &consumed);
  } catch (const std::exception&) {
    throw std::invalid_argument("--slo: bad value for '" + key + "': " + text);
  }
  if (consumed != text.size() || !std::isfinite(value)) {
    throw std::invalid_argument("--slo: bad value for '" + key + "': " + text);
  }
  return value;
}

}  // namespace

bool SloSpec::any() const noexcept {
  return p50 != kNoSloTarget || p90 != kNoSloTarget || p99 != kNoSloTarget ||
         backlog != kNoSloTarget;
}

SloSpec parse_slo_spec(const std::string& text) {
  SloSpec spec;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = std::min(text.find(',', pos), text.size());
    const std::string item = text.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) {
      if (comma == text.size()) break;
      throw std::invalid_argument("--slo: empty clause in '" + text + "'");
    }
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("--slo: expected key=value, got '" + item + "'");
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "p50") {
      spec.p50 = parse_slo_number(key, value);
    } else if (key == "p90") {
      spec.p90 = parse_slo_number(key, value);
    } else if (key == "p99") {
      spec.p99 = parse_slo_number(key, value);
    } else if (key == "backlog") {
      spec.backlog = parse_slo_number(key, value);
    } else if (key == "window") {
      spec.window_seconds = parse_slo_number(key, value);
      if (spec.window_seconds <= 0.0) {
        throw std::invalid_argument("--slo: window must be positive");
      }
    } else if (key == "sustain") {
      const double v = parse_slo_number(key, value);
      if (v < 1.0 || v != std::floor(v)) {
        throw std::invalid_argument("--slo: sustain must be a positive integer");
      }
      spec.sustain = static_cast<std::size_t>(v);
    } else {
      throw std::invalid_argument("--slo: unknown key '" + key + "'");
    }
    if (comma == text.size()) break;
  }
  if (!spec.any()) {
    throw std::invalid_argument(
        "--slo: no target set (use p50=/p90=/p99=/backlog=)");
  }
  return spec;
}

SloReport evaluate_slo(const Schedule& schedule, std::span<const Time> arrivals,
                       const SloSpec& spec) {
  const std::size_t n = schedule.num_tasks();
  if (arrivals.size() != n) {
    throw std::invalid_argument("evaluate_slo: arrivals/schedule size mismatch");
  }
  SloReport report;
  if (n == 0) return report;
  for (TaskId j = 0; j < n; ++j) {
    if (schedule.assignment.machine_of[j] == kNoMachine) {
      throw std::invalid_argument("evaluate_slo: schedule has unassigned tasks");
    }
  }

  const double horizon = schedule.makespan();
  const double width = spec.window_seconds;
  const std::size_t sustain = std::max<std::size_t>(spec.sustain, 1);
  const auto num_windows =
      static_cast<std::size_t>(std::floor(horizon / width)) + 1;

  // Tasks sorted by finish feed the response series, by start the
  // queue-wait series; a merged +1/-1 sweep over (arrival, start) events
  // tracks the admitted-but-unstarted backlog. All three cursors advance
  // together, one interval at a time.
  std::vector<TaskId> by_finish(n), by_start(n);
  std::iota(by_finish.begin(), by_finish.end(), TaskId{0});
  std::iota(by_start.begin(), by_start.end(), TaskId{0});
  std::sort(by_finish.begin(), by_finish.end(), [&](TaskId a, TaskId b) {
    return schedule.finish[a] != schedule.finish[b]
               ? schedule.finish[a] < schedule.finish[b]
               : a < b;
  });
  std::sort(by_start.begin(), by_start.end(), [&](TaskId a, TaskId b) {
    return schedule.start[a] != schedule.start[b]
               ? schedule.start[a] < schedule.start[b]
               : a < b;
  });
  std::vector<Time> arrive_sorted(arrivals.begin(), arrivals.end());
  std::sort(arrive_sorted.begin(), arrive_sorted.end());

  // The rolling response window is sustain-1 intervals deep (min 1): a
  // single bad interval then pollutes at most sustain-1 consecutive
  // window quantiles, which stays below the sustained-violation streak,
  // so paging requires slow responses in at least two distinct
  // intervals. A depth of `sustain` would make any one-interval tail
  // breach trip the verdict by construction.
  const std::size_t depth = std::max<std::size_t>(sustain - 1, 1);
  obs::WindowedHistogram response_window(width, depth);
  obs::Histogram interval_wait;

  std::size_t fin_cur = 0, start_cur = 0, arr_cur = 0;
  std::int64_t backlog_now = 0;
  std::size_t consecutive = 0;
  report.windows.reserve(num_windows);
  for (std::size_t w = 0; w < num_windows; ++w) {
    SloWindow win;
    win.t0 = static_cast<double>(w) * width;
    win.t1 = win.t0 + width;
    // Half-open [t0, t1); the final window absorbs events at exactly the
    // horizon (finish times equal to makespan land in it by the +1 in
    // num_windows).
    interval_wait.reset();
    double watermark = static_cast<double>(backlog_now);
    while (fin_cur < n && schedule.finish[by_finish[fin_cur]] < win.t1) {
      const TaskId j = by_finish[fin_cur++];
      response_window.observe(schedule.finish[j],
                              schedule.finish[j] - arrivals[j]);
    }
    // Backlog sweep: arrivals enqueue, starts dequeue; equal timestamps
    // process the arrival first so an arrive-and-start-instantly task
    // still registers as having been queued.
    while (arr_cur < n || start_cur < n) {
      const double ta =
          arr_cur < n ? arrive_sorted[arr_cur] : kNoSloTarget;
      const double ts = start_cur < n
                            ? schedule.start[by_start[start_cur]]
                            : kNoSloTarget;
      if (ta >= win.t1 && ts >= win.t1) break;
      if (ta <= ts) {
        ++arr_cur;
        ++backlog_now;
        watermark = std::max(watermark, static_cast<double>(backlog_now));
      } else {
        const TaskId j = by_start[start_cur++];
        interval_wait.observe(schedule.start[j] - arrivals[j]);
        --backlog_now;
      }
    }
    // Query at the interval midpoint: t0/width can round a hair below w
    // and land the lookup in the previous interval.
    win.response = response_window.window_summary(win.t0 + 0.5 * width);
    win.queue_wait = interval_wait.summary();
    win.backlog_watermark = watermark;
    const bool quantile_bad =
        win.response.count > 0 &&
        ((spec.p50 != kNoSloTarget && win.response.p50 > spec.p50) ||
         (spec.p90 != kNoSloTarget && win.response.p90 > spec.p90) ||
         (spec.p99 != kNoSloTarget && win.response.p99 > spec.p99));
    const bool backlog_bad =
        spec.backlog != kNoSloTarget && win.backlog_watermark > spec.backlog;
    win.violated = quantile_bad || backlog_bad;
    if (win.violated) {
      ++report.violating_windows;
      ++consecutive;
      report.max_consecutive_violations =
          std::max(report.max_consecutive_violations, consecutive);
    } else {
      consecutive = 0;
    }
    report.windows.push_back(win);
  }
  report.burn_rate = report.windows.empty()
                         ? 0.0
                         : static_cast<double>(report.violating_windows) /
                               static_cast<double>(report.windows.size());
  report.sustained_violation = report.max_consecutive_violations >= sustain;

  // Surface the final window for the live sampler: `serve.window.*`
  // gauges show up in the JSONL time series alongside adapt.alpha_hat.
  if (obs::MetricsRegistry* mx = obs::metrics(); mx && !report.windows.empty()) {
    const SloWindow& last = report.windows.back();
    mx->gauge("serve.window.response_p50").set(last.response.p50);
    mx->gauge("serve.window.response_p90").set(last.response.p90);
    mx->gauge("serve.window.response_p99").set(last.response.p99);
    mx->gauge("serve.window.queue_wait_p99").set(last.queue_wait.p99);
    mx->gauge("serve.window.backlog_watermark").set(last.backlog_watermark);
    mx->gauge("serve.window.burn_rate").set(report.burn_rate);
  }
  return report;
}

}  // namespace rdp
