// Arrival processes for the streaming dispatch service: deterministic
// generators that turn an (model, rate, seed) description into a vector
// of task release times. Three models:
//
//   kPoisson -- homogeneous Poisson process at `rate` tasks/sec
//     (i.i.d. exponential interarrivals).
//
//   kBurst -- a two-phase Markov-modulated Poisson process (MMPP-2): an
//     "on" phase firing at `rate * burst_boost` and an "off" phase whose
//     rate is derived so the long-run mean rate is exactly `rate`. Phase
//     holding times are exponential with means `burst_on` / `burst_off`.
//     This is the classic bursty-traffic model: same average load as the
//     Poisson stream, much heavier short-term queueing.
//
//   kTrace -- release times replayed from a workload trace's `arrival`
//     column (see workload/trace.hpp); nothing is sampled.
//
// All sampling goes through rng/ (Xoshiro256 seeded by SplitMix64), so a
// given (params, count) pair yields the same arrival vector on every
// platform. Generators return times sorted ascending starting at >= 0.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"
#include "workload/trace.hpp"

namespace rdp {

enum class ArrivalModel : std::uint8_t {
  kPoisson,  ///< homogeneous Poisson at `rate`
  kBurst,    ///< MMPP-2: on/off phases, long-run mean rate = `rate`
  kTrace,    ///< replay the trace's arrival column
};

/// Parses "poisson" / "burst" / "trace" (throws std::invalid_argument on
/// anything else).
[[nodiscard]] ArrivalModel arrival_model_from_name(const std::string& name);
[[nodiscard]] const char* arrival_model_name(ArrivalModel model);

struct ArrivalParams {
  ArrivalModel model = ArrivalModel::kPoisson;
  double rate = 1.0;        ///< long-run mean arrivals per second (> 0)
  double burst_boost = 4.0; ///< on-phase rate multiplier (> 1)
  double burst_on = 1.0;    ///< mean seconds per on phase (> 0)
  double burst_off = 4.0;   ///< mean seconds per off phase (> 0)
  std::uint64_t seed = 1;
};

/// Exactly `count` arrival times of the process described by `params`.
/// Sorted ascending, first arrival strictly after t = 0.
[[nodiscard]] std::vector<Time> generate_arrivals(const ArrivalParams& params,
                                                  std::size_t count);

/// Every arrival of the process in (0, duration]. Sorted ascending.
[[nodiscard]] std::vector<Time> generate_arrivals_until(
    const ArrivalParams& params, Time duration);

/// Release times from a trace's arrival column. Throws if the trace
/// carries no arrivals (3-column format). Returned in record order --
/// callers that need time order sort (serve_stream admits by time).
[[nodiscard]] std::vector<Time> arrivals_from_trace(const Trace& trace);

}  // namespace rdp
