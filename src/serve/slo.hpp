// Windowed SLO evaluation for the streaming service: slices a completed
// serve run into fixed intervals, summarizes each through the sliding-
// window telemetry primitives (obs/window.hpp), and judges every window
// against operator-supplied targets -- response-time quantile ceilings
// and a backlog-watermark ceiling. The verdict mirrors burn-rate
// alerting: a run *violates its SLO* when `sustain` consecutive windows
// are each out of bounds, so a one-interval burst that drains is noted
// but does not page, while a queue that stays underwater does.
//
// `rdp_cli serve --slo p99=X,backlog=Y` feeds this and exits non-zero on
// a sustained violation (see docs/SERVING.md, "operating with SLOs").
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "obs/metrics.hpp"

namespace rdp {

struct Schedule;

/// "Target not requested" sentinel for SloSpec fields.
inline constexpr double kNoSloTarget = std::numeric_limits<double>::infinity();

/// Operator targets. Quantile targets are ceilings on the *windowed*
/// response time (finish - arrival); an infinite target means "not
/// requested". `backlog` caps the per-window watermark of admitted-but-
/// unstarted tasks. Window geometry: each evaluation window spans
/// `window_seconds` of simulated time, and `sustain` consecutive
/// violating windows constitute a sustained violation.
struct SloSpec {
  double p50 = kNoSloTarget;
  double p90 = kNoSloTarget;
  double p99 = kNoSloTarget;
  double backlog = kNoSloTarget;
  double window_seconds = 1.0;
  std::size_t sustain = 3;

  /// True when at least one target was actually set.
  [[nodiscard]] bool any() const noexcept;
};

/// Parses the `--slo` argument: comma-separated `key=value` pairs among
/// p50/p90/p99/backlog (targets; simulated seconds / tasks) and
/// window/sustain (geometry). Examples: "p99=4.5,backlog=200",
/// "p90=2,window=0.5,sustain=5". Throws std::invalid_argument on
/// unknown keys, non-numeric values, or non-positive geometry.
[[nodiscard]] SloSpec parse_slo_spec(const std::string& text);

/// One evaluation window [t0, t1): response/queue-wait summaries over
/// the tasks that *finished* (resp. started) in the window, the backlog
/// watermark reached inside it, and the per-target verdict.
struct SloWindow {
  double t0 = 0.0;
  double t1 = 0.0;
  obs::Histogram::Summary response;    ///< sliding window ending here
  obs::Histogram::Summary queue_wait;  ///< this interval only
  double backlog_watermark = 0.0;
  bool violated = false;
};

struct SloReport {
  std::vector<SloWindow> windows;
  std::size_t violating_windows = 0;
  std::size_t max_consecutive_violations = 0;
  /// Fraction of windows out of bounds -- the error-budget burn rate.
  double burn_rate = 0.0;
  /// max_consecutive_violations >= spec.sustain: the page-worthy verdict.
  bool sustained_violation = false;
};

/// Evaluates `spec` over a completed streaming run. The response series
/// is judged through a sliding window of `spec.sustain - 1` intervals
/// (min 1): deep enough that a straggler interval cannot hide inside an
/// otherwise-quiet window, shallow enough that a single bad interval
/// smears across fewer windows than the sustained-violation streak --
/// paging therefore requires slowness in at least two distinct
/// intervals. The backlog watermark is judged per single interval. Also publishes the final
/// window's summary as `serve.window.*` gauges when a metrics registry
/// is installed, which is how the sampler JSONL picks up the SLO time
/// series. Throws std::invalid_argument when schedule/arrival sizes
/// disagree or the schedule has unassigned tasks.
[[nodiscard]] SloReport evaluate_slo(const Schedule& schedule,
                                     std::span<const Time> arrivals,
                                     const SloSpec& spec);

}  // namespace rdp
