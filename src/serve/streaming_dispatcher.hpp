// The streaming dispatcher: the paper's phase-2 semi-clairvoyant loop
// lifted from one-shot (all n tasks known at t = 0, dispatch until
// drained) to a long-lived service where tasks are released over time.
//
// A task becomes eligible at its arrival time; whenever a machine is
// idle it takes the highest-priority *admitted* task whose replica set
// contains it, or parks until an arrival makes one eligible. Decisions
// still never look at actual durations -- arrivals only add a second
// source of "now" alongside machine frees.
//
// The implementation keeps dispatch_online's layout and adds the minimum
// on top: replica-set queues stay priority-sorted CSR slices, admission
// flips a bit in a hierarchical bitmap over each queue's rank slots
// (find-first-set replaces the offline head pointer), arrivals come from
// a sorted cursor rather than the event queue, and a small (ready, id)
// binary heap holds busy machines. Once the stream is exhausted the
// surviving bits are compacted into dense per-queue lists and the drain
// tail runs on plain head pointers at dispatch_online speed; a cohort
// arriving in one instant skips the bitmaps entirely. All per-run state comes from the
// SimWorkspace arena -- a serve loop that reuses one workspace performs
// zero steady-state allocation. Equal-time ordering matches the offline
// loop: every arrival at time t is admitted before any machine freed at
// t dispatches, and machines freed at the same instant grab work in
// machine-id order.
//
// Equivalence contract (fuzz-checked, see check/fuzz.cpp and
// docs/SERVING.md): with every arrival at t = 0 ("drain mode") the
// schedule and trace are bit-identical to dispatch_online -- same
// floating-point arithmetic, same tie-breaks, same trace order.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/placement.hpp"
#include "core/schedule.hpp"
#include "core/types.hpp"
#include "obs/metrics.hpp"
#include "sim/trace.hpp"

namespace rdp {

class Instance;
struct Realization;
class SimWorkspace;

/// Result of a streaming run: the timed schedule, the chronological
/// dispatch trace, and the high-water mark of admitted-but-unstarted
/// tasks (the backlog a real queue would have held).
struct StreamingDispatchResult {
  Schedule schedule;
  DispatchTrace trace;
  std::size_t peak_backlog = 0;
};

/// Runs the streaming dispatch loop until every task has been served.
///
/// \param arrivals  per-task release times (finite, >= 0); task j cannot
///                  start before arrivals[j]. Equal-time arrivals are
///                  admitted in task-id order.
/// \param priority / initial_ready / speeds  as in dispatch_online.
[[nodiscard]] StreamingDispatchResult serve_stream(
    const Instance& instance, const Placement& placement,
    const Realization& actual, const std::vector<TaskId>& priority,
    std::span<const Time> arrivals, std::vector<Time> initial_ready = {},
    std::vector<double> speeds = {});

/// Workspace form: per-run state is carved out of `ws`, results reuse
/// `out`'s capacity (zero steady-state allocation across runs).
void serve_stream(const Instance& instance, const Placement& placement,
                  const Realization& actual, const std::vector<TaskId>& priority,
                  std::span<const Time> arrivals,
                  std::span<const Time> initial_ready,
                  std::span<const double> speeds, SimWorkspace& ws,
                  StreamingDispatchResult& out);

/// Response-time decomposition of a streaming schedule: for each task,
///   queue wait = start - arrival   (admission to first byte of work)
///   service    = finish - start    (time on the machine)
///   response   = finish - arrival  (what the caller experienced; sojourn)
/// Built from the schedule after the fact through obs::Histogram (HDR
/// quantiles, <= 0.8% error), so the dispatch loop itself carries no
/// instrumentation. Summaries rather than the histograms themselves:
/// a Histogram owns a mutex and cannot be returned by value.
struct ServeStats {
  obs::Histogram::Summary response;
  obs::Histogram::Summary queue_wait;
  obs::Histogram::Summary service;
  Time first_arrival = 0;
  Time last_finish = 0;
};

[[nodiscard]] ServeStats compute_serve_stats(const Schedule& schedule,
                                             std::span<const Time> arrivals);

}  // namespace rdp
