#include "serve/streaming_dispatcher.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "core/instance.hpp"
#include "core/realization.hpp"
#include "obs/hooks.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "sim/ready_heap.hpp"
#include "sim/workspace.hpp"

namespace rdp {

namespace {

/// 64^6 slots -- more than any addressable task count.
constexpr std::uint32_t kMaxLevels = 6;

/// Hierarchical bitmaps over each queue's rank slots (slot s = position
/// in the queue's priority-sorted CSR slice). Admission sets bit s;
/// "highest-priority admitted task" is the cached minimum slot, repaired
/// on pop by a find-first-set walk over ceil(log64) summary levels
/// instead of a comparison heap's log2 sift. Level 0 has one bit per
/// slot; bit w of level l+1 is the OR of word w of level l, so the top
/// level of every queue is a single word.
struct QueueBitmaps {
  std::uint64_t* words = nullptr;        ///< all queues' levels, zeroed
  const std::uint32_t* level_off = nullptr;  ///< [q * kMaxLevels + l] word offset
  const std::uint8_t* num_levels = nullptr;  ///< per queue
  std::uint32_t* min_slot = nullptr;  ///< lowest set slot; ~0u = queue empty

  void set(std::uint32_t q, std::uint32_t slot) noexcept {
    if (slot < min_slot[q]) min_slot[q] = slot;  // ~0u sentinel when empty
    const std::uint32_t* off = level_off + q * kMaxLevels;
    const std::uint32_t levels = num_levels[q];
    std::uint32_t idx = slot;
    for (std::uint32_t l = 0;;) {
      std::uint64_t& w = words[off[l] + (idx >> 6)];
      const std::uint64_t prev = w;
      w = prev | (std::uint64_t{1} << (idx & 63));
      // A previously nonempty word means its ancestor bit -- and by
      // induction every higher one -- is already set, so dense backlogs
      // make admission a single read-modify-write with no upward probe.
      if (prev != 0 || ++l == levels) break;
      idx >>= 6;
    }
  }

  /// Clears the minimum slot and repairs the cache with its successor.
  /// Queue must be non-empty; returns the popped slot. The popped slot is
  /// the minimum, so within every touched word no bit below it is set --
  /// the successor is the word's new lowest bit, found without masking.
  /// Common case (a sibling in the same level-0 word, which dense
  /// backlogs hit almost always): one read-modify-write and one ctz.
  std::uint32_t pop_min(std::uint32_t q) noexcept {
    const std::uint32_t slot = min_slot[q];
    const std::uint32_t* off = level_off + q * kMaxLevels;
    const std::uint32_t levels = num_levels[q];
    std::uint32_t idx = slot;
    std::uint32_t l = 0;
    while (true) {
      std::uint64_t& w = words[off[l] + (idx >> 6)];
      w &= ~(std::uint64_t{1} << (idx & 63));
      if (w != 0) {
        std::uint32_t next =
            (idx & ~63u) + static_cast<std::uint32_t>(std::countr_zero(w));
        for (std::uint32_t l2 = l; l2-- > 0;) {
          next = (next << 6) + static_cast<std::uint32_t>(
                                   std::countr_zero(words[off[l2] + next]));
        }
        min_slot[q] = next;
        return slot;
      }
      if (++l == levels) {
        min_slot[q] = UINT32_MAX;
        return slot;
      }
      idx >>= 6;
    }
  }
};

}  // namespace

void serve_stream(const Instance& instance, const Placement& placement,
                  const Realization& actual, const std::vector<TaskId>& priority,
                  std::span<const Time> arrivals,
                  std::span<const Time> initial_ready,
                  std::span<const double> speeds, SimWorkspace& ws,
                  StreamingDispatchResult& out) {
  const std::size_t n = instance.num_tasks();
  const MachineId m = instance.num_machines();
  if (placement.num_tasks() != n) {
    throw std::invalid_argument("serve_stream: placement size mismatch");
  }
  if (placement.num_machines() != m) {
    throw std::invalid_argument(
        "serve_stream: placement built for a different machine count");
  }
  if (actual.size() != n) {
    throw std::invalid_argument("serve_stream: realization size mismatch");
  }
  if (priority.size() != n) {
    throw std::invalid_argument("serve_stream: priority must cover every task");
  }
  if (arrivals.size() != n) {
    throw std::invalid_argument("serve_stream: arrivals must cover every task");
  }
  // Validation fused with the sortedness probe: generated arrival
  // streams are already non-decreasing, in which case ascending id IS
  // the (time, id) admission order and the sort below is skipped.
  bool arrivals_sorted = true;
  for (std::size_t j = 0; j < arrivals.size(); ++j) {
    const Time t = arrivals[j];
    if (!(t >= 0.0) || !std::isfinite(t)) {
      throw std::invalid_argument(
          "serve_stream: arrival times must be finite and non-negative");
    }
    arrivals_sorted &= (j == 0 || arrivals[j - 1] <= t);
  }
  Time min_initial = 0;
  if (!initial_ready.empty()) {
    if (initial_ready.size() != m) {
      throw std::invalid_argument("serve_stream: initial_ready size mismatch");
    }
    min_initial = initial_ready[0];
    for (Time t : initial_ready) {
      if (!(t >= 0.0) || !std::isfinite(t)) {
        throw std::invalid_argument(
            "serve_stream: initial_ready times must be finite and non-negative");
      }
      min_initial = std::min(min_initial, t);
    }
  }
  if (!speeds.empty()) {
    if (speeds.size() != m) {
      throw std::invalid_argument("serve_stream: speeds size mismatch");
    }
    for (double s : speeds) {
      if (!(s > 0.0)) {
        throw std::invalid_argument("serve_stream: speeds must be positive");
      }
    }
  }

  // Equal-time cohort (drain mode), decided before the build passes:
  // every task is released at one instant no later than the first
  // machine's ready time, so the stream is exhausted before anything
  // dispatches. The cohort run never reads queue_slot_of, the bitmaps,
  // or tail_pos (its tail is the identity over CSR positions), so their
  // fill work is skipped wholesale below.
  const bool cohort_fast = n > 0 && m > 0 && arrivals_sorted &&
                           arrivals[0] == arrivals[n - 1] &&
                           arrivals[0] <= min_initial;

  ws.begin_run(n, m);
  MonotonicArena& arena = ws.arena;

  // The replica-set queue / machine CSR layout is dispatch_online's; see
  // the commentary there. The one addition: each queue's slice gets a
  // hierarchical bitmap over its slots, because here a slot only becomes
  // eligible at its task's arrival -- the offline head pointer turns into
  // find-first-set over the admitted bits.
  const std::uint32_t num_queues = placement.num_distinct_sets();
  const std::span<std::uint32_t> queue_begin =
      arena.allocate_span<std::uint32_t>(num_queues + 1);
  queue_begin[0] = 0;
  for (std::uint32_t q = 0; q < num_queues; ++q) {
    queue_begin[q + 1] = queue_begin[q] + placement.set_population(q);
  }
  // Bitmap geometry: per queue, level word counts shrink by 64x until a
  // single word covers the whole slice.
  const std::span<std::uint32_t> level_off =
      arena.allocate_span<std::uint32_t>(num_queues * kMaxLevels);
  const std::span<std::uint8_t> num_levels =
      arena.allocate_span<std::uint8_t>(num_queues);
  std::uint32_t total_words = 0;
  for (std::uint32_t q = 0; q < num_queues; ++q) {
    std::uint32_t count =
        std::max<std::uint32_t>(1, (placement.set_population(q) + 63) / 64);
    std::uint32_t level = 0;
    while (true) {
      level_off[q * kMaxLevels + level] = total_words;
      total_words += count;
      ++level;
      if (count == 1) break;
      count = (count + 63) / 64;
    }
    num_levels[q] = static_cast<std::uint8_t>(level);
  }
  const std::span<std::uint64_t> words =
      arena.make_span<std::uint64_t>(total_words, 0);
  const std::span<std::uint32_t> queue_min =
      arena.make_span<std::uint32_t>(num_queues, UINT32_MAX);
  QueueBitmaps bitmaps{words.data(), level_off.data(), num_levels.data(),
                       queue_min.data()};
  // Frozen-tail storage (see the dispatch loop): once the stream is
  // exhausted the admitted set never changes again and every future pop
  // takes the set bits in ascending order, so each queue's surviving
  // slots are compacted into this dense CSR-position list and the rest
  // of the run drains through head pointers at dispatch_online speed.
  const std::span<std::uint32_t> tail_pos =
      cohort_fast ? std::span<std::uint32_t>{}
                  : arena.allocate_span<std::uint32_t>(n);
  const std::span<std::uint32_t> tail_head =
      arena.allocate_span<std::uint32_t>(num_queues);
  const std::span<std::uint32_t> tail_end =
      arena.allocate_span<std::uint32_t>(num_queues);
  bool tail_mode = false;
  // Cohort runs keep tail_pos as the identity instead of materializing it.
  const bool tail_identity = cohort_fast;

  const std::span<std::uint32_t> machine_degree =
      arena.make_span<std::uint32_t>(m, 0);
  std::uint32_t max_degree = 0;
  for (std::uint32_t q = 0; q < num_queues; ++q) {
    for (MachineId i : placement.distinct_set(q)) {
      max_degree = std::max(max_degree, ++machine_degree[i]);
    }
  }
  const std::span<std::uint32_t> machine_begin =
      arena.allocate_span<std::uint32_t>(m + 1);
  machine_begin[0] = 0;
  for (MachineId i = 0; i < m; ++i) {
    machine_begin[i + 1] = machine_begin[i] + machine_degree[i];
  }
  const std::span<std::uint32_t> machine_fill =
      arena.allocate_span<std::uint32_t>(m);
  for (MachineId i = 0; i < m; ++i) machine_fill[i] = machine_begin[i];
  const std::span<std::uint32_t> machine_queues =
      arena.allocate_span<std::uint32_t>(machine_begin[m]);
  for (std::uint32_t q = 0; q < num_queues; ++q) {
    for (MachineId i : placement.distinct_set(q)) {
      machine_queues[machine_fill[i]++] = q;
    }
  }
  const bool single_queue_machines = max_degree <= 1;
  const std::span<std::uint32_t> machine_queue_of =
      arena.allocate_span<std::uint32_t>(m);
  for (MachineId i = 0; i < m; ++i) {
    machine_queue_of[i] = machine_begin[i] < machine_begin[i + 1]
                              ? machine_queues[machine_begin[i]]
                              : UINT32_MAX;
  }

  // Single pass over the priority order, as in dispatch_online:
  // permutation validation fused with the queue fill. slot_of[j] is the
  // queue-local slot an arrival of j flips in the bitmap; queue_ranks /
  // queue_durations are position-indexed companions to queue_tasks.
  const std::size_t bit_words = (n + 63) / 64;
  const std::span<std::uint64_t> seen =
      arena.make_span<std::uint64_t>(bit_words, 0);
  const std::span<TaskId> queue_tasks = arena.allocate_span<TaskId>(n);
  // Packed (queue << 32 | slot) per task: the admission hot path reads
  // one word instead of chasing set_id and a slot map separately.
  const std::span<std::uint64_t> queue_slot_of =
      cohort_fast ? std::span<std::uint64_t>{}
                  : arena.allocate_span<std::uint64_t>(n);
  const std::span<std::uint32_t> queue_ranks =
      single_queue_machines ? std::span<std::uint32_t>{}
                            : arena.allocate_span<std::uint32_t>(n);
  const std::span<Time> queue_durations = arena.allocate_span<Time>(n);
  const std::span<std::uint32_t> queue_fill =
      arena.allocate_span<std::uint32_t>(num_queues);
  for (std::uint32_t q = 0; q < num_queues; ++q) queue_fill[q] = queue_begin[q];
  for (std::uint32_t r = 0; r < n; ++r) {
    const TaskId j = priority[r];
    if (j >= n || ((seen[j / 64] >> (j % 64)) & 1u) != 0) {
      throw std::invalid_argument("serve_stream: priority is not a permutation");
    }
    seen[j / 64] |= std::uint64_t{1} << (j % 64);
    const std::uint32_t q = placement.set_id(j);
    const std::uint32_t pos = queue_fill[q]++;
    queue_tasks[pos] = j;
    if (!cohort_fast) {
      queue_slot_of[j] = (std::uint64_t{q} << 32) | (pos - queue_begin[q]);
    }
    if (!single_queue_machines) queue_ranks[pos] = r;
    queue_durations[pos] = actual[j];
  }

  // Admission order: (arrival time, task id).
  std::span<TaskId> order;
  if (!arrivals_sorted) {
    order = arena.allocate_span<TaskId>(n);
    for (TaskId j = 0; j < n; ++j) order[j] = j;
    std::sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
      if (arrivals[a] != arrivals[b]) return arrivals[a] < arrivals[b];
      return a < b;
    });
  }

  /// 1 while the machine is out of the pool, idle with no admitted work
  /// but more arrivals possible on its queues; an admission to one of
  /// those queues re-inserts it ready at the arrival time.
  const std::span<std::uint8_t> parked = arena.make_span<std::uint8_t>(m, 0);
  std::uint32_t parked_count = 0;

  obs::MetricsRegistry* const mx = obs::metrics();
  obs::Tracer* const tr = obs::tracer();
  obs::ScopedSpan span(tr, "serve_stream", "serve");

  out.schedule.assignment.machine_of.resize(n);
  out.schedule.start.resize(n);
  out.schedule.finish.resize(n);
  out.trace.events.resize(n);
  DispatchEvent* const trace_out = out.trace.events.data();
  std::size_t emitted = 0;
  out.peak_backlog = 0;

  ReadyHeap pool;
  pool.init(arena, m, initial_ready);

  // Two sources of "now": the next arrival (cursor into the admission
  // order) and the next machine to come free (pool top). Ties go to the
  // arrival -- every task arriving at time t is admitted before any
  // machine freed at t dispatches, so a batch of simultaneous arrivals
  // (drain mode: all of them) is fully visible to every machine, which is
  // what makes the bit-parity with dispatch_online hold. Machines freed
  // or woken at the same instant leave the pool in id order, matching the
  // offline ReadyHeap tie-break.
  //
  // The loop runs in batches: admit every arrival due by the time the
  // next machine frees, then dispatch every machine freeing before the
  // next arrival. In drain mode the first batch admits everything and
  // the dispatch phase becomes one uninterrupted run -- the same tight
  // loop shape as dispatch_online.
  const Time kNever = std::numeric_limits<Time>::infinity();
  std::size_t cursor = 0;
  TaskId next_task = 0;
  Time next_when = kNever;
  if (n > 0) {
    next_task = order.empty() ? TaskId{0} : order[0];
    next_when = arrivals[next_task];
  }
  std::size_t backlog = 0;
  std::size_t peak_backlog = 0;
  std::size_t remaining = n;

  // Equal-time cohort fast path: the stream is exhausted before anything
  // dispatches, so enter tail mode immediately with every queue's full
  // slice (the identity over CSR positions -- nothing to materialize).
  if (cohort_fast) {
    for (std::uint32_t q = 0; q < num_queues; ++q) {
      tail_head[q] = queue_begin[q];
      tail_end[q] = queue_begin[q + 1];
    }
    tail_mode = true;
    cursor = n;
    next_when = kNever;
    backlog = n;
    peak_backlog = n;
  }

  while (remaining > 0) {
    // --- admission phase -------------------------------------------------
    // Backlog accounting is batched: within one admission burst backlog
    // only rises (dispatches happen in the other phase), so the peak
    // check runs once per burst instead of once per task.
    Time next_free = pool.empty() ? kNever : pool.top_ready();
    if (cursor < n && next_when <= next_free) {
      const std::size_t burst_start = cursor;
      do {
        const TaskId j = next_task;
        const std::uint64_t qs = queue_slot_of[j];
        const auto q = static_cast<std::uint32_t>(qs >> 32);
        bitmaps.set(q, static_cast<std::uint32_t>(qs));
        if (parked_count > 0) {
          for (MachineId i : placement.distinct_set(q)) {
            if (parked[i]) {
              parked[i] = 0;
              --parked_count;
              pool.push(next_when, i);
            }
          }
          // A woken machine may now free before later arrivals in this
          // batch; re-read the horizon so it dispatches in between.
          next_free = pool.empty() ? kNever : pool.top_ready();
        }
        if (++cursor >= n) {
          next_when = kNever;
          break;
        }
        next_task = order.empty() ? static_cast<TaskId>(cursor) : order[cursor];
        next_when = arrivals[next_task];
      } while (next_when <= next_free);
      backlog += cursor - burst_start;
      peak_backlog = std::max(peak_backlog, backlog);
    }
    if (!tail_mode && cursor >= n) {
      // Stream exhausted: freeze the admitted set. Every pop from here
      // on takes each queue's set bits in ascending slot order, so one
      // O(n/64) word walk compacts the survivors into tail_pos and the
      // bitmaps retire -- the (usually long) drain tail runs on head
      // pointers instead of a read-modify-write per dispatch.
      for (std::uint32_t q = 0; q < num_queues; ++q) {
        const std::uint64_t* w = words.data() + level_off[q * kMaxLevels];
        const std::uint32_t base = queue_begin[q];
        const std::uint32_t nw = (queue_begin[q + 1] - base + 63) / 64;
        std::uint32_t write = base;
        tail_head[q] = base;
        for (std::uint32_t k = 0; k < nw; ++k) {
          std::uint64_t bits = w[k];
          const std::uint32_t word_base = base + k * 64;
          while (bits != 0) {
            tail_pos[write++] =
                word_base + static_cast<std::uint32_t>(std::countr_zero(bits));
            bits &= bits - 1;
          }
        }
        tail_end[q] = write;
      }
      tail_mode = true;
    }
    if (pool.empty()) {
      // Unreachable for a valid placement: machines only stop (neither
      // busy nor parked) once their queues are drained AND fully arrived.
      throw std::logic_error("serve_stream: deadlock (all machines stopped)");
    }

    // --- dispatch phase --------------------------------------------------
    if (tail_mode) {
      // Frozen-tail variant: the stream is exhausted (next_when is
      // infinite, so no time guard), fronts are head pointers into
      // tail_pos, and machines out of work retire for good.
      while (remaining > 0 && !pool.empty()) {
        const MachineId i = pool.top();
        std::uint32_t best_queue = UINT32_MAX;
        if (single_queue_machines) {
          const std::uint32_t q = machine_queue_of[i];
          if (q != UINT32_MAX && tail_head[q] != tail_end[q]) best_queue = q;
        } else {
          std::uint32_t best_rank = UINT32_MAX;
          for (std::uint32_t k = machine_begin[i]; k < machine_begin[i + 1];
               ++k) {
            const std::uint32_t q = machine_queues[k];
            const std::uint32_t h = tail_head[q];
            if (h == tail_end[q]) continue;
            const std::uint32_t r = queue_ranks[tail_identity ? h : tail_pos[h]];
            if (r < best_rank) {
              best_rank = r;
              best_queue = q;
            }
          }
        }
        if (best_queue == UINT32_MAX) {
          pool.retire_top();
          continue;
        }
        const std::uint32_t hp = tail_head[best_queue]++;
        const std::uint32_t pos = tail_identity ? hp : tail_pos[hp];
        const TaskId j = queue_tasks[pos];
        const Time duration = speeds.empty()
                                  ? queue_durations[pos]
                                  : queue_durations[pos] / speeds[i];
        const auto [start, finish] = pool.occupy_top(duration);
        (void)finish;
        trace_out[emitted++] = DispatchEvent{start, j, i, duration};
        --backlog;
        --remaining;
      }
      continue;
    }
    while (remaining > 0 && !pool.empty() && pool.top_ready() < next_when) {
      const MachineId i = pool.top();

      // The queue whose admitted front this machine runs next. The
      // cached minimum slot makes each candidate's front an O(1) read
      // (~0u doubles as the emptiness sentinel).
      std::uint32_t best_queue = UINT32_MAX;
      if (single_queue_machines) {
        const std::uint32_t q = machine_queue_of[i];
        if (q != UINT32_MAX && bitmaps.min_slot[q] != UINT32_MAX) {
          best_queue = q;
        }
      } else {
        std::uint32_t best_rank = UINT32_MAX;
        for (std::uint32_t k = machine_begin[i]; k < machine_begin[i + 1];
             ++k) {
          const std::uint32_t q = machine_queues[k];
          const std::uint32_t slot = bitmaps.min_slot[q];
          if (slot == UINT32_MAX) continue;
          const std::uint32_t r = queue_ranks[queue_begin[q] + slot];
          if (r < best_rank) {
            best_rank = r;
            best_queue = q;
          }
        }
      }
      if (best_queue == UINT32_MAX) {
        // Nothing admitted but arrivals are still flowing: park. Any
        // future admission to one of this machine's queues wakes it, so
        // a machine parked on queues that never refill simply sleeps
        // until the run ends.
        pool.retire_top();
        parked[i] = 1;
        ++parked_count;
        continue;
      }

      const std::uint32_t pos =
          queue_begin[best_queue] + bitmaps.pop_min(best_queue);
      const TaskId j = queue_tasks[pos];
      const Time duration = speeds.empty() ? queue_durations[pos]
                                           : queue_durations[pos] / speeds[i];
      const auto [start, finish] = pool.occupy_top(duration);
      (void)finish;
      trace_out[emitted++] = DispatchEvent{start, j, i, duration};
      --backlog;
      --remaining;
    }
  }
  out.peak_backlog = peak_backlog;

  // Same three-pass scatter as dispatch_online: finish = start + duration
  // reproduces ReadyHeap::occupy_top's arithmetic bit-for-bit.
  for (const DispatchEvent& e : out.trace.events) {
    out.schedule.assignment.machine_of[e.task] = e.machine;
  }
  for (const DispatchEvent& e : out.trace.events) {
    out.schedule.start[e.task] = e.when;
  }
  for (const DispatchEvent& e : out.trace.events) {
    out.schedule.finish[e.task] = e.when + e.actual;
  }

  if (mx) {
    mx->counter("serve.stream.calls").add(1);
    mx->counter("serve.stream.tasks").add(n);
    mx->gauge("serve.stream.peak_backlog")
        .set_max(static_cast<double>(out.peak_backlog));
  }

  // Flight recorder: one bulk reserve for the whole run (3 events per
  // task -- all arrivals, then all starts, then all finishes, each in
  // task order), filled from data already in hand; the dispatch loop
  // above never touches the recorder. Column-major passes (memcpy /
  // iota / fill per column) keep the fill at memory-copy speed, which
  // is what holds ext_obs_overhead under its 5% budget. kArrive doubles
  // as admission since this service admits at arrival.
  if (obs::TimelineRecorder* const tl = obs::timeline(); tl != nullptr) {
    const auto nn = static_cast<std::size_t>(n);
    const auto block = tl->reserve(3 * nn);
    // Capacity may clamp the block; truncate segment by segment.
    const std::size_t na = std::min(nn, block.count);
    const std::size_t ns = std::min(nn, block.count - na);
    const std::size_t nf = std::min(nn, block.count - na - ns);
    std::copy_n(arrivals.data(), na, block.when);
    std::copy_n(out.schedule.start.data(), ns, block.when + na);
    std::copy_n(out.schedule.finish.data(), nf, block.when + na + ns);
    std::iota(block.task, block.task + na, TaskId{0});
    std::iota(block.task + na, block.task + na + ns, TaskId{0});
    std::iota(block.task + na + ns, block.task + na + ns + nf, TaskId{0});
    const MachineId* const machine_of =
        out.schedule.assignment.machine_of.data();
    std::fill_n(block.machine, na, obs::kTimelineNone);
    std::copy_n(machine_of, ns, block.machine + na);
    std::copy_n(machine_of, nf, block.machine + na + ns);
    std::memset(block.kind,
                static_cast<int>(obs::TimelineEventKind::kArrive), na);
    std::memset(block.kind + na,
                static_cast<int>(obs::TimelineEventKind::kStart), ns);
    std::memset(block.kind + na + ns,
                static_cast<int>(obs::TimelineEventKind::kFinish), nf);
  }
}

StreamingDispatchResult serve_stream(const Instance& instance,
                                     const Placement& placement,
                                     const Realization& actual,
                                     const std::vector<TaskId>& priority,
                                     std::span<const Time> arrivals,
                                     std::vector<Time> initial_ready,
                                     std::vector<double> speeds) {
  StreamingDispatchResult result;
  serve_stream(instance, placement, actual, priority, arrivals,
               std::span<const Time>(initial_ready),
               std::span<const double>(speeds), thread_workspace(), result);
  return result;
}

ServeStats compute_serve_stats(const Schedule& schedule,
                               std::span<const Time> arrivals) {
  const std::size_t n = schedule.num_tasks();
  if (arrivals.size() != n) {
    throw std::invalid_argument("compute_serve_stats: arrivals size mismatch");
  }
  obs::Histogram response;
  obs::Histogram queue_wait;
  obs::Histogram service;
  ServeStats stats;
  bool any = false;
  for (TaskId j = 0; j < n; ++j) {
    if (schedule.assignment.machine_of[j] == kNoMachine) continue;
    response.observe(schedule.finish[j] - arrivals[j]);
    queue_wait.observe(schedule.start[j] - arrivals[j]);
    service.observe(schedule.finish[j] - schedule.start[j]);
    if (!any) {
      stats.first_arrival = arrivals[j];
      stats.last_finish = schedule.finish[j];
      any = true;
    } else {
      stats.first_arrival = std::min(stats.first_arrival, arrivals[j]);
      stats.last_finish = std::max(stats.last_finish, schedule.finish[j]);
    }
  }
  stats.response = response.summary();
  stats.queue_wait = queue_wait.summary();
  stats.service = service.summary();
  return stats;
}

}  // namespace rdp
