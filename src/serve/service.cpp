#include "serve/service.hpp"

#include <chrono>

#include "core/instance.hpp"
#include "core/realization.hpp"
#include "sim/workspace.hpp"

namespace rdp {

Instance cycle_instance(const Instance& base, std::size_t count) {
  const std::size_t n = base.num_tasks();
  if (n == 0) {
    throw std::invalid_argument("cycle_instance: base instance is empty");
  }
  std::vector<Task> tasks;
  tasks.reserve(count);
  for (std::size_t j = 0; j < count; ++j) {
    const TaskId b = static_cast<TaskId>(j % n);
    tasks.push_back(Task{base.estimate(b), base.size(b)});
  }
  return Instance(std::move(tasks), base.num_machines(), base.alpha());
}

ServeReport run_serve(const Instance& instance, const Placement& placement,
                      const Realization& actual,
                      const std::vector<TaskId>& priority,
                      std::span<const Time> arrivals,
                      std::span<const double> speeds) {
  using Clock = std::chrono::steady_clock;
  StreamingDispatchResult result;
  const auto begin = Clock::now();
  serve_stream(instance, placement, actual, priority, arrivals, {}, speeds,
               thread_workspace(), result);
  const double seconds = std::chrono::duration<double>(Clock::now() - begin).count();

  ServeReport report;
  report.tasks = instance.num_tasks();
  report.machines = instance.num_machines();
  report.peak_backlog = result.peak_backlog;
  report.wall_seconds = seconds;
  report.dispatched_per_sec =
      seconds > 0 ? static_cast<double>(report.tasks) / seconds : 0.0;
  report.stats = compute_serve_stats(result.schedule, arrivals);
  report.horizon = report.stats.last_finish;
  report.schedule = std::move(result.schedule);
  return report;
}

}  // namespace rdp
