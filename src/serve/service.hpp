// Driver glue for the streaming service: runs one serve_stream pass
// under a wall clock and folds the outcome into a flat report the CLI
// and benches can print or serialize. Strategy selection, workload
// generation, and arrival sampling stay with the caller (they are
// already owned by algo/, workload/, and serve/arrivals) -- this layer
// only measures and summarizes.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/placement.hpp"
#include "core/types.hpp"
#include "serve/streaming_dispatcher.hpp"

namespace rdp {

class Instance;
struct Realization;

struct ServeReport {
  std::size_t tasks = 0;
  MachineId machines = 0;
  std::size_t peak_backlog = 0;
  double wall_seconds = 0;       ///< host time spent inside serve_stream
  double dispatched_per_sec = 0; ///< tasks / wall_seconds
  Time horizon = 0;              ///< simulated time: last finish
  ServeStats stats;              ///< response / queue-wait / service
  Schedule schedule;             ///< the timed schedule itself (moved out of
                                 ///< the dispatch result; SLO evaluation and
                                 ///< timeline consumers need per-task times)
};

/// Tiles a base instance's task mix out to `count` tasks (task j is a
/// copy of base task j mod n), keeping machines and alpha -- how a small
/// recorded workload becomes the template for an arbitrarily long
/// arrival stream. Throws if `base` is empty.
[[nodiscard]] Instance cycle_instance(const Instance& base, std::size_t count);

/// One streaming run, wall-clocked. Reuses the calling thread's
/// workspace; repeated calls allocate nothing in steady state.
[[nodiscard]] ServeReport run_serve(const Instance& instance,
                                    const Placement& placement,
                                    const Realization& actual,
                                    const std::vector<TaskId>& priority,
                                    std::span<const Time> arrivals,
                                    std::span<const double> speeds = {});

}  // namespace rdp
