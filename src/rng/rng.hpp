// Deterministic, platform-independent pseudo-random generation.
//
// We deliberately avoid std::mt19937 + std:: distributions for experiment
// reproducibility: the standard leaves distribution algorithms unspecified,
// so the same seed can produce different workloads on different standard
// libraries. SplitMix64 seeds a xoshiro256** state; both are public-domain
// algorithms (Blackman & Vigna) reimplemented here.
#pragma once

#include <array>
#include <cstdint>

namespace rdp {

/// SplitMix64: tiny 64-bit generator, used for seeding and cheap streams.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the library's workhorse generator. Satisfies the
/// UniformRandomBitGenerator concept so it can also feed std facilities.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds all 256 bits of state from one 64-bit seed via SplitMix64.
  explicit Xoshiro256(std::uint64_t seed) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept { return next(); }
  result_type next() noexcept;

  /// Uniform double in [0, 1) with 53 bits of mantissa entropy.
  double next_double() noexcept;

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Equivalent to 2^128 calls to next(); used to derive independent
  /// parallel streams from one seed.
  void jump() noexcept;

  /// A generator 'index' jumps ahead of this one; convenient for giving
  /// each worker thread / trial its own independent stream.
  [[nodiscard]] Xoshiro256 split(std::uint64_t index) const noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace rdp
