// Hand-rolled sampling routines with fully specified algorithms, so that a
// given (seed, parameters) pair yields the same workload on every platform.
#pragma once

#include <cstddef>
#include <vector>

#include "rng/rng.hpp"

namespace rdp {

/// Uniform real in [lo, hi). Requires lo <= hi.
double sample_uniform(Xoshiro256& rng, double lo, double hi);

/// Log-uniform real in [lo, hi): uniform in log-space. Requires 0 < lo <= hi.
double sample_log_uniform(Xoshiro256& rng, double lo, double hi);

/// Standard normal via Box-Muller (the deterministic, no-rejection variant).
double sample_normal(Xoshiro256& rng, double mean = 0.0, double stddev = 1.0);

/// Lognormal: exp(N(mu, sigma)).
double sample_lognormal(Xoshiro256& rng, double mu, double sigma);

/// Pareto with scale x_m > 0 and shape a > 0 (heavy-tailed task times).
double sample_pareto(Xoshiro256& rng, double x_m, double shape);

/// Symmetric-ish Beta(a, b) via Johnk's algorithm for small parameters and
/// the gamma-ratio method otherwise. Returns a value in (0, 1).
double sample_beta(Xoshiro256& rng, double a, double b);

/// Gamma(shape, scale=1) via Marsaglia-Tsang.
double sample_gamma(Xoshiro256& rng, double shape);

/// Integer in [0, n) following a Zipf law with exponent s >= 0
/// (s = 0 is uniform). Uses the exact inverse-CDF over precomputed weights;
/// intended for modest n (workload generation, not inner loops).
std::size_t sample_zipf(Xoshiro256& rng, std::size_t n, double s);

/// Fisher-Yates shuffle with the library RNG (deterministic given seed).
template <typename T>
void shuffle(Xoshiro256& rng, std::vector<T>& values) {
  for (std::size_t i = values.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.next_below(i));
    using std::swap;
    swap(values[i - 1], values[j]);
  }
}

}  // namespace rdp
