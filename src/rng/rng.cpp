#include "rng/rng.hpp"

namespace rdp {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

Xoshiro256::result_type Xoshiro256::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256::next_double() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t Xoshiro256::next_below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Unbiased modulo with rejection of the tail 2^64 mod bound values.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t x = next();
    if (x >= threshold) return x % bound;
  }
}

void Xoshiro256::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
                                            0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (std::uint64_t{1} << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      next();
    }
  }
  s_ = {s0, s1, s2, s3};
}

Xoshiro256 Xoshiro256::split(std::uint64_t index) const noexcept {
  Xoshiro256 out = *this;
  for (std::uint64_t i = 0; i <= index; ++i) out.jump();
  return out;
}

}  // namespace rdp
