#include "rng/distributions.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace rdp {

double sample_uniform(Xoshiro256& rng, double lo, double hi) {
  if (lo > hi) throw std::invalid_argument("sample_uniform: lo > hi");
  return lo + (hi - lo) * rng.next_double();
}

double sample_log_uniform(Xoshiro256& rng, double lo, double hi) {
  if (!(lo > 0.0) || lo > hi) {
    throw std::invalid_argument("sample_log_uniform: need 0 < lo <= hi");
  }
  return std::exp(sample_uniform(rng, std::log(lo), std::log(hi)));
}

double sample_normal(Xoshiro256& rng, double mean, double stddev) {
  // Box-Muller; guard u1 away from 0 so log() stays finite.
  double u1 = rng.next_double();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = rng.next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * std::numbers::pi * u2);
}

double sample_lognormal(Xoshiro256& rng, double mu, double sigma) {
  return std::exp(sample_normal(rng, mu, sigma));
}

double sample_pareto(Xoshiro256& rng, double x_m, double shape) {
  if (!(x_m > 0.0) || !(shape > 0.0)) {
    throw std::invalid_argument("sample_pareto: need x_m > 0 and shape > 0");
  }
  double u = rng.next_double();
  if (u < 1e-300) u = 1e-300;
  return x_m / std::pow(u, 1.0 / shape);
}

double sample_gamma(Xoshiro256& rng, double shape) {
  if (!(shape > 0.0)) throw std::invalid_argument("sample_gamma: shape must be > 0");
  if (shape < 1.0) {
    // Boost to shape+1 and scale back (Marsaglia-Tsang small-shape trick).
    const double u = rng.next_double();
    return sample_gamma(rng, shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = sample_normal(rng);
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    const double u = rng.next_double();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

double sample_beta(Xoshiro256& rng, double a, double b) {
  if (!(a > 0.0) || !(b > 0.0)) {
    throw std::invalid_argument("sample_beta: parameters must be > 0");
  }
  const double x = sample_gamma(rng, a);
  const double y = sample_gamma(rng, b);
  const double sum = x + y;
  return sum > 0.0 ? x / sum : 0.5;
}

std::size_t sample_zipf(Xoshiro256& rng, std::size_t n, double s) {
  if (n == 0) throw std::invalid_argument("sample_zipf: n must be > 0");
  if (s < 0.0) throw std::invalid_argument("sample_zipf: exponent must be >= 0");
  double total = 0.0;
  for (std::size_t r = 1; r <= n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r), s);
  }
  double target = rng.next_double() * total;
  for (std::size_t r = 1; r <= n; ++r) {
    target -= 1.0 / std::pow(static_cast<double>(r), s);
    if (target <= 0.0) return r - 1;
  }
  return n - 1;
}

}  // namespace rdp
