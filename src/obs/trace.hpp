// Structured run tracing: named, timestamped spans and instant events
// recorded per thread, exported as JSONL (one event per line) or as the
// Chrome trace_event format loadable in chrome://tracing and Perfetto.
// Complements sim/trace.hpp (which records *simulated-time* dispatch
// decisions); this records *wall-clock* behaviour of the library itself.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace rdp::obs {

/// One trace event. Timestamps are microseconds of wall-clock time since
/// the tracer's construction (steady clock).
struct TraceEvent {
  std::string name;
  std::string category;
  char phase = 'X';        ///< 'X' = complete span, 'i' = instant
  std::uint64_t ts_us = 0;   ///< start (spans) or occurrence (instants)
  std::uint64_t dur_us = 0;  ///< duration, 'X' only
  std::uint32_t tid = 0;     ///< dense per-process thread id
  std::string args_json;     ///< pre-rendered JSON object ("{...}") or empty
};

/// Thread-safe event collector. All record calls may be issued
/// concurrently; export functions take a consistent snapshot.
///
/// The buffer is bounded: once `capacity` events are held, further
/// records are counted (dropped()) instead of stored, so a week-long
/// instrumented sweep cannot OOM the host. Drops also increment the
/// `trace.events_dropped` counter of the installed MetricsRegistry (if
/// any), and every export records the drop count in its header.
class Tracer {
 public:
  /// ~80 bytes/event before strings, so the default bounds the buffer to
  /// the order of 100 MB.
  static constexpr std::size_t kDefaultCapacity = 1u << 20;

  Tracer();
  explicit Tracer(std::size_t capacity);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Microseconds since this tracer was constructed (steady clock).
  [[nodiscard]] std::uint64_t now_us() const noexcept;

  /// Records a completed span [start_us, start_us + dur_us).
  void span(std::string name, std::string category, std::uint64_t start_us,
            std::uint64_t dur_us, std::string args_json = {});

  /// Records an instantaneous event at the current time.
  void instant(std::string name, std::string category, std::string args_json = {});

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Events discarded because the buffer was full. clear() resets it.
  [[nodiscard]] std::uint64_t dropped() const;
  [[nodiscard]] std::vector<TraceEvent> events() const;  ///< snapshot copy
  void clear();

  /// Chrome trace_event JSON ({"traceEvents":[...]}); open the file in
  /// chrome://tracing or https://ui.perfetto.dev.
  void write_chrome_trace(std::ostream& out) const;

  /// One JSON object per line (jq/grep friendly).
  void write_jsonl(std::ostream& out) const;

  /// File variants; a path ending in ".jsonl" selects JSONL, anything
  /// else the Chrome trace_event format. Throw std::runtime_error on I/O
  /// failure.
  void save(const std::string& path) const;

 private:
  void record(TraceEvent e);

  std::uint64_t epoch_ns_;  // steady_clock at construction
  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
};

/// Dense id of the calling thread (0, 1, 2, ... in first-use order);
/// stable for the lifetime of the process, used as "tid" in exports.
[[nodiscard]] std::uint32_t current_thread_id() noexcept;

/// RAII span: records [construction, destruction) into the tracer. A null
/// tracer makes it a no-op with no clock reads.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, const char* name, const char* category) noexcept
      : tracer_(tracer), name_(name), category_(category),
        start_us_(tracer ? tracer->now_us() : 0) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (tracer_ == nullptr) return;
    tracer_->span(name_, category_, start_us_, tracer_->now_us() - start_us_);
  }

 private:
  Tracer* tracer_;
  const char* name_;
  const char* category_;
  std::uint64_t start_us_;
};

}  // namespace rdp::obs
