#include "obs/sampler.hpp"

#include <stdexcept>
#include <utility>

#include "io/json.hpp"
#include "obs/hooks.hpp"
#include "obs/metrics.hpp"

namespace rdp::obs {

RunSampler::RunSampler(MetricsRegistry* registry, RunSamplerOptions options)
    : options_(std::move(options)),
      registry_(registry),
      start_(std::chrono::steady_clock::now()),
      out_(options_.path),
      prev_sampler_(
          detail::g_sampler.exchange(this, std::memory_order_acq_rel)) {
  if (!out_) {
    detail::g_sampler.store(prev_sampler_, std::memory_order_release);
    throw std::runtime_error("RunSampler: cannot open " + options_.path);
  }
  if (options_.period.count() <= 0) options_.period = std::chrono::milliseconds(1);
  thread_ = std::thread([this] { loop(); });
}

RunSampler::~RunSampler() {
  stop();
  detail::g_sampler.store(prev_sampler_, std::memory_order_release);
}

void RunSampler::stop() {
  {
    std::unique_lock lock(mutex_);
    if (stopped_) return;
    stop_requested_ = true;
    stopped_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  write_sample();  // the thread is joined: no concurrent writer remains
  out_.flush();
}

void RunSampler::loop() {
  std::unique_lock lock(mutex_);
  for (;;) {
    if (cv_.wait_for(lock, options_.period, [this] { return stop_requested_; })) {
      return;  // final sample is taken by stop() after the join
    }
    lock.unlock();
    write_sample();
    lock.lock();
  }
}

void RunSampler::write_sample() {
  MetricsRegistry* const registry = registry_ ? registry_ : metrics();
  const double t = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start_)
                       .count();
  JsonObject root;
  root["t"] = t;
  if (registry != nullptr) {
    const MetricsSnapshot snap = registry->snapshot();
    const JsonValue snapshot = metrics_snapshot_json(snap);
    for (const auto& [key, value] : snapshot.as_object()) root[key] = value;
    // Per-sample counter increases. A counter absent from the previous
    // sample (first sample, or first time a site touched it) reports its
    // absolute value, so sums over deltas always reproduce the cumulative
    // counter.
    JsonObject deltas;
    for (const auto& [name, value] : snap.counters) {
      const auto it = prev_counters_.find(name);
      const std::uint64_t prev = it == prev_counters_.end() ? 0 : it->second;
      deltas[name] = static_cast<double>(value - prev);
    }
    prev_counters_ = snap.counters;
    root["deltas"] = std::move(deltas);
  } else {
    root["counters"] = JsonObject{};
    root["deltas"] = JsonObject{};
    root["gauges"] = JsonObject{};
    root["histograms"] = JsonObject{};
  }
  out_ << JsonValue(std::move(root)).dump(-1) << "\n";
  samples_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace rdp::obs
