// Run time-series sampling: a background thread that snapshots the
// metrics registry at a fixed cadence and appends one JSON object per
// line ({"t": seconds, "counters": {...}, "deltas": {...},
// "gauges": {...}, "histograms": {...}}), so a long sweep's queue depth,
// cache hit rate, or tail latency can be inspected *over the run*, not
// just at the end. "counters" stays cumulative (byte-compatible with
// pre-delta consumers); "deltas" is each counter's increase since the
// previous sample, so a rate plot needs no client-side differencing. The
// first sample's delta equals its absolute value.
//
// RAII-scoped like ObservabilityScope: constructing a RunSampler
// registers it process-wide (obs::sampler(), used by the repro pipeline
// to record sampling provenance in manifest.json); destruction stops the
// thread, takes a final sample, and restores the previous sampler.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <thread>

namespace rdp::obs {

class MetricsRegistry;

struct RunSamplerOptions {
  std::string path;                         ///< JSONL output file
  std::chrono::milliseconds period{1000};   ///< cadence between samples
};

class RunSampler {
 public:
  /// Opens `options.path` and starts the sampling thread. `registry` may
  /// be null, in which case each tick samples whatever registry is
  /// currently installed (obs::metrics()) -- the right choice when the
  /// sampler wraps an ObservabilityScope. Throws std::runtime_error when
  /// the file cannot be opened.
  RunSampler(MetricsRegistry* registry, RunSamplerOptions options);

  RunSampler(const RunSampler&) = delete;
  RunSampler& operator=(const RunSampler&) = delete;

  ~RunSampler();

  /// Stops the background thread, writes one final sample (so even runs
  /// shorter than a period produce a line), and flushes. Idempotent.
  void stop();

  [[nodiscard]] std::size_t samples() const noexcept {
    return samples_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::string& path() const noexcept { return options_.path; }
  [[nodiscard]] std::uint64_t period_ms() const noexcept {
    return static_cast<std::uint64_t>(options_.period.count());
  }

 private:
  void loop();
  void write_sample();

  RunSamplerOptions options_;
  MetricsRegistry* registry_;
  // Counter values at the previous sample, for the "deltas" field. Only
  // touched by write_sample(), which runs on the loop thread and -- after
  // the join -- once from stop(), never concurrently.
  std::map<std::string, std::uint64_t> prev_counters_;
  std::chrono::steady_clock::time_point start_;
  std::ofstream out_;
  std::atomic<std::size_t> samples_{0};
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool stopped_ = false;
  std::thread thread_;
  RunSampler* prev_sampler_;
};

}  // namespace rdp::obs
