// Process-wide but explicitly-scoped metrics: counters, gauges, and
// streaming histograms (Welford moments plus log-linear quantile
// buckets, no sample storage). A MetricsRegistry is an explicit object --
// nothing is recorded unless one is installed via obs::ObservabilityScope
// (see obs/hooks.hpp), and the instrumentation sites compile down to a
// null-pointer check when no registry is attached.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "stats/welford.hpp"

namespace rdp {
class JsonValue;
}

namespace rdp::obs {

/// Monotonically increasing event count. Thread-safe, lock-free.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written value (queue depth, cells/sec, ...). Thread-safe.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }

  /// Monotone maximum: keeps the largest value ever offered (CAS loop),
  /// so concurrent writers cannot lose the peak the way set() can.
  void set_max(double v) noexcept {
    double current = value_.load(std::memory_order_relaxed);
    while (v > current &&
           !value_.compare_exchange_weak(current, v, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Streaming distribution summary: Welford moments (count/mean/stddev/
/// min/max), an exactly-compensated running sum (Neumaier), and an
/// HDR-style log-linear bucket array for quantiles. Buckets subdivide
/// each power-of-two range into kSubBuckets linear slots, so a bucket's
/// midpoint is within 1/(2*kSubBuckets) < 1% of every value it absorbs
/// -- that is the documented relative-error bound on p50/p90/p99.
///
/// Thread-safe: the moment accumulators take a short mutex; the bucket
/// counters are lock-free relaxed atomics.
class Histogram {
 public:
  /// Linear subdivisions per power of two. 64 gives a worst-case
  /// quantile relative error of 1/128 ~= 0.8%.
  static constexpr int kSubBuckets = 64;
  /// frexp exponents covered exactly: [kMinExp, kMaxExp). Values below
  /// 2^(kMinExp-1) (~4.5e-13) or at/above 2^(kMaxExp-1) (~8.4e6) clamp
  /// to underflow/overflow buckets whose representative is the observed
  /// min/max.
  static constexpr int kMinExp = -40;
  static constexpr int kMaxExp = 24;

  Histogram();

  void observe(double x) noexcept;

  struct Summary {
    std::uint64_t count = 0;
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;
    double sum = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
  };

  [[nodiscard]] Summary summary() const noexcept;

  /// Bucket-estimated quantile for q in [0, 1] (nearest-rank). Within
  /// 1/(2*kSubBuckets) relative error of the exact order statistic for
  /// positive in-range samples; clamped to the observed [min, max].
  [[nodiscard]] double quantile(double q) const noexcept;

  /// Folds `other` into this histogram: bucket-wise count addition,
  /// Welford moment merge (Chan et al.), and Neumaier sums combined so
  /// the merged sum() stays exactly compensated. The result summarizes
  /// the union of both sample streams -- the rollup primitive behind
  /// WindowedHistogram (obs/window.hpp) and sweep aggregation. Both
  /// histograms' locks are taken (this first), so never merge two
  /// histograms into each other concurrently.
  void merge(const Histogram& other) noexcept;

  /// Discards every recorded sample (counts, moments, sums). The bucket
  /// array is retained, so a reset histogram is reusable without
  /// allocation -- window rings recycle interval slots through this.
  void reset() noexcept;

 private:
  static constexpr std::size_t kNonPositive = 0;  ///< x <= 0
  static constexpr std::size_t kUnderflow = 1;    ///< 0 < x, exp < kMinExp
  static constexpr std::size_t kFirstRegular = 2;
  static constexpr std::size_t kNumRegular =
      static_cast<std::size_t>(kMaxExp - kMinExp) *
      static_cast<std::size_t>(kSubBuckets);
  static constexpr std::size_t kOverflow = kFirstRegular + kNumRegular;
  static constexpr std::size_t kNumBuckets = kOverflow + 1;

  [[nodiscard]] static std::size_t bucket_index(double x) noexcept;
  [[nodiscard]] static double bucket_midpoint(std::size_t index) noexcept;

  mutable std::mutex mutex_;
  Welford welford_;
  double sum_ = 0.0;              // Neumaier-compensated running sum
  double sum_compensation_ = 0.0;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
};

/// A point-in-time copy of every metric in a registry, detached from the
/// registry's locks (safe to serialize, attach to reports, compare).
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram::Summary> histograms;

  [[nodiscard]] bool empty() const noexcept {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// Counter value by name, or `fallback` when the counter was never
  /// touched (sites only materialize metrics they actually hit).
  [[nodiscard]] std::uint64_t counter_or(const std::string& name,
                                         std::uint64_t fallback = 0) const {
    const auto it = counters.find(name);
    return it == counters.end() ? fallback : it->second;
  }

  /// Serializes as a JSON object {"counters":{...},"gauges":{...},
  /// "histograms":{...}}.
  [[nodiscard]] std::string to_json(int indent = 2) const;
};

/// The snapshot as a JsonValue (io/json.hpp), for embedding in larger
/// documents (e.g. ExperimentReport).
[[nodiscard]] JsonValue metrics_snapshot_json(const MetricsSnapshot& snapshot);

/// One histogram summary as the canonical JSON object
/// {count,mean,stddev,min,max,sum,p50,p90,p99} -- the single schema the
/// metrics snapshot, `rdp_cli serve --json`, and the SLO engine all emit
/// and consume.
[[nodiscard]] JsonValue histogram_summary_json(const Histogram::Summary& s);

/// Named metric registry. Lookup is mutex-protected; the returned
/// references are stable for the registry's lifetime (node-based storage),
/// so hot paths look a metric up once and then touch only atomics.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Writes snapshot().to_json() to `path` (throws std::runtime_error on
  /// I/O failure).
  void save_json(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// RAII wall-clock timer: observes the elapsed seconds into a histogram
/// on destruction. A null histogram makes it a no-op (and skips the clock
/// reads entirely).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* hist) noexcept
      : hist_(hist),
        start_(hist ? std::chrono::steady_clock::now()
                    : std::chrono::steady_clock::time_point{}) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (hist_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    hist_->observe(std::chrono::duration<double>(elapsed).count());
  }

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace rdp::obs
