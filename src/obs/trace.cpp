#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <fstream>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "io/json.hpp"

namespace rdp::obs {

namespace {

std::uint64_t steady_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void append_event_json(std::string& out, const TraceEvent& e) {
  out += "{\"name\":";
  out += json_escape(e.name);
  out += ",\"cat\":";
  out += json_escape(e.category.empty() ? "rdp" : e.category);
  out += ",\"ph\":\"";
  out += e.phase;
  out += "\",\"ts\":";
  out += std::to_string(e.ts_us);
  if (e.phase == 'X') {
    out += ",\"dur\":";
    out += std::to_string(e.dur_us);
  }
  out += ",\"pid\":1,\"tid\":";
  out += std::to_string(e.tid);
  if (!e.args_json.empty()) {
    out += ",\"args\":";
    out += e.args_json;
  }
  out += "}";
}

}  // namespace

std::uint32_t current_thread_id() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

Tracer::Tracer() : epoch_ns_(steady_ns()) {}

std::uint64_t Tracer::now_us() const noexcept {
  return (steady_ns() - epoch_ns_) / 1000;
}

void Tracer::span(std::string name, std::string category, std::uint64_t start_us,
                  std::uint64_t dur_us, std::string args_json) {
  TraceEvent e;
  e.name = std::move(name);
  e.category = std::move(category);
  e.phase = 'X';
  e.ts_us = start_us;
  e.dur_us = dur_us;
  e.tid = current_thread_id();
  e.args_json = std::move(args_json);
  std::lock_guard lock(mutex_);
  events_.push_back(std::move(e));
}

void Tracer::instant(std::string name, std::string category, std::string args_json) {
  TraceEvent e;
  e.name = std::move(name);
  e.category = std::move(category);
  e.phase = 'i';
  e.ts_us = now_us();
  e.tid = current_thread_id();
  e.args_json = std::move(args_json);
  std::lock_guard lock(mutex_);
  events_.push_back(std::move(e));
}

std::size_t Tracer::size() const {
  std::lock_guard lock(mutex_);
  return events_.size();
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard lock(mutex_);
  return events_;
}

void Tracer::clear() {
  std::lock_guard lock(mutex_);
  events_.clear();
}

void Tracer::write_chrome_trace(std::ostream& out) const {
  const std::vector<TraceEvent> snapshot = events();
  std::string buf = "{\"traceEvents\":[";
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    if (i > 0) buf += ",\n";
    append_event_json(buf, snapshot[i]);
  }
  buf += "],\"displayTimeUnit\":\"ms\"}\n";
  out << buf;
}

void Tracer::write_jsonl(std::ostream& out) const {
  const std::vector<TraceEvent> snapshot = events();
  std::string buf;
  for (const TraceEvent& e : snapshot) {
    append_event_json(buf, e);
    buf += "\n";
  }
  out << buf;
}

void Tracer::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("Tracer::save: cannot open " + path);
  const bool jsonl =
      path.size() >= 6 && path.compare(path.size() - 6, 6, ".jsonl") == 0;
  if (jsonl) {
    write_jsonl(out);
  } else {
    write_chrome_trace(out);
  }
  if (!out) throw std::runtime_error("Tracer::save: write failed for " + path);
}

}  // namespace rdp::obs
