#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <fstream>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "io/json.hpp"
#include "obs/hooks.hpp"
#include "obs/metrics.hpp"

namespace rdp::obs {

namespace {

std::uint64_t steady_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void append_event_json(std::string& out, const TraceEvent& e) {
  out += "{\"name\":";
  out += json_escape(e.name);
  out += ",\"cat\":";
  out += json_escape(e.category.empty() ? "rdp" : e.category);
  out += ",\"ph\":\"";
  out += e.phase;
  out += "\",\"ts\":";
  out += std::to_string(e.ts_us);
  if (e.phase == 'X') {
    out += ",\"dur\":";
    out += std::to_string(e.dur_us);
  }
  out += ",\"pid\":1,\"tid\":";
  out += std::to_string(e.tid);
  if (!e.args_json.empty()) {
    out += ",\"args\":";
    out += e.args_json;
  }
  out += "}";
}

}  // namespace

std::uint32_t current_thread_id() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

Tracer::Tracer() : Tracer(kDefaultCapacity) {}

Tracer::Tracer(std::size_t capacity)
    : epoch_ns_(steady_ns()), capacity_(capacity == 0 ? 1 : capacity) {}

void Tracer::record(TraceEvent e) {
  bool full = false;
  {
    std::lock_guard lock(mutex_);
    if (events_.size() >= capacity_) {
      ++dropped_;
      full = true;
    } else {
      events_.push_back(std::move(e));
    }
  }
  if (full) {
    if (MetricsRegistry* mx = metrics()) {
      mx->counter("trace.events_dropped").add(1);
    }
  }
}

std::uint64_t Tracer::now_us() const noexcept {
  return (steady_ns() - epoch_ns_) / 1000;
}

void Tracer::span(std::string name, std::string category, std::uint64_t start_us,
                  std::uint64_t dur_us, std::string args_json) {
  TraceEvent e;
  e.name = std::move(name);
  e.category = std::move(category);
  e.phase = 'X';
  e.ts_us = start_us;
  e.dur_us = dur_us;
  e.tid = current_thread_id();
  e.args_json = std::move(args_json);
  record(std::move(e));
}

void Tracer::instant(std::string name, std::string category, std::string args_json) {
  TraceEvent e;
  e.name = std::move(name);
  e.category = std::move(category);
  e.phase = 'i';
  e.ts_us = now_us();
  e.tid = current_thread_id();
  e.args_json = std::move(args_json);
  record(std::move(e));
}

std::size_t Tracer::size() const {
  std::lock_guard lock(mutex_);
  return events_.size();
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard lock(mutex_);
  return dropped_;
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard lock(mutex_);
  return events_;
}

void Tracer::clear() {
  std::lock_guard lock(mutex_);
  events_.clear();
  dropped_ = 0;
}

void Tracer::write_chrome_trace(std::ostream& out) const {
  const std::vector<TraceEvent> snapshot = events();
  const std::uint64_t drops = dropped();
  std::string buf = "{\"traceEvents\":[";
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    if (i > 0) buf += ",\n";
    append_event_json(buf, snapshot[i]);
  }
  // Extra top-level keys are legal in the trace_event format; viewers
  // ignore them, tooling can check for truncation.
  buf += "],\"displayTimeUnit\":\"ms\",\"rdp\":{\"events_dropped\":";
  buf += std::to_string(drops);
  buf += ",\"capacity\":";
  buf += std::to_string(capacity_);
  buf += "}}\n";
  out << buf;
}

void Tracer::write_jsonl(std::ostream& out) const {
  const std::vector<TraceEvent> snapshot = events();
  const std::uint64_t drops = dropped();
  std::string buf;
  if (drops > 0) {
    // Header line, only when the buffer actually truncated (keeps the
    // common no-drop output one-event-per-line, nothing else).
    buf += "{\"rdp_trace_header\":{\"events_dropped\":" + std::to_string(drops) +
           ",\"capacity\":" + std::to_string(capacity_) + "}}\n";
  }
  for (const TraceEvent& e : snapshot) {
    append_event_json(buf, e);
    buf += "\n";
  }
  out << buf;
}

void Tracer::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("Tracer::save: cannot open " + path);
  const bool jsonl =
      path.size() >= 6 && path.compare(path.size() - 6, 6, ".jsonl") == 0;
  if (jsonl) {
    write_jsonl(out);
  } else {
    write_chrome_trace(out);
  }
  if (!out) throw std::runtime_error("Tracer::save: write failed for " + path);
}

}  // namespace rdp::obs
