#include "obs/hooks.hpp"

namespace rdp::obs::detail {

std::atomic<MetricsRegistry*> g_metrics{nullptr};
std::atomic<Tracer*> g_tracer{nullptr};
std::atomic<RunSampler*> g_sampler{nullptr};
std::atomic<TimelineRecorder*> g_timeline{nullptr};

}  // namespace rdp::obs::detail
