#include "obs/metrics.hpp"

#include <fstream>
#include <stdexcept>

#include "io/json.hpp"

namespace rdp::obs {

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lock(mutex_);
  return histograms_[name];
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard lock(mutex_);
  for (const auto& [name, c] : counters_) snap.counters[name] = c.value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g.value();
  for (const auto& [name, h] : histograms_) snap.histograms[name] = h.summary();
  return snap;
}

JsonValue metrics_snapshot_json(const MetricsSnapshot& snapshot) {
  JsonObject root;
  JsonObject counters_obj;
  for (const auto& [name, v] : snapshot.counters) counters_obj[name] = v;
  root["counters"] = counters_obj;
  JsonObject gauges_obj;
  for (const auto& [name, v] : snapshot.gauges) gauges_obj[name] = v;
  root["gauges"] = gauges_obj;
  JsonObject hists_obj;
  for (const auto& [name, s] : snapshot.histograms) {
    JsonObject h;
    h["count"] = s.count;
    h["mean"] = s.mean;
    h["stddev"] = s.stddev;
    h["min"] = s.min;
    h["max"] = s.max;
    h["sum"] = s.sum;
    hists_obj[name] = h;
  }
  root["histograms"] = hists_obj;
  return JsonValue(root);
}

std::string MetricsSnapshot::to_json(int indent) const {
  return metrics_snapshot_json(*this).dump(indent);
}

void MetricsRegistry::save_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("MetricsRegistry::save_json: cannot open " + path);
  out << snapshot().to_json() << "\n";
  if (!out) {
    throw std::runtime_error("MetricsRegistry::save_json: write failed for " + path);
  }
}

}  // namespace rdp::obs
