#include "obs/metrics.hpp"

#include <cmath>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "io/json.hpp"

namespace rdp::obs {

Histogram::Histogram()
    : buckets_(new std::atomic<std::uint64_t>[kNumBuckets]()) {}

std::size_t Histogram::bucket_index(double x) noexcept {
  if (!(x > 0.0)) return kNonPositive;  // also catches NaN
  if (!std::isfinite(x)) return kOverflow;
  int exp = 0;
  const double frac = std::frexp(x, &exp);  // x = frac * 2^exp, frac in [0.5, 1)
  if (exp < kMinExp) return kUnderflow;
  if (exp >= kMaxExp) return kOverflow;
  int sub = static_cast<int>((frac - 0.5) * (2 * kSubBuckets));
  if (sub < 0) sub = 0;
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;
  return kFirstRegular +
         static_cast<std::size_t>(exp - kMinExp) *
             static_cast<std::size_t>(kSubBuckets) +
         static_cast<std::size_t>(sub);
}

double Histogram::bucket_midpoint(std::size_t index) noexcept {
  const std::size_t r = index - kFirstRegular;
  const int exp = kMinExp + static_cast<int>(r / kSubBuckets);
  const auto sub = static_cast<double>(r % kSubBuckets);
  return std::ldexp(0.5 + (sub + 0.5) / (2.0 * kSubBuckets), exp);
}

void Histogram::observe(double x) noexcept {
  buckets_[bucket_index(x)].fetch_add(1, std::memory_order_relaxed);
  std::lock_guard lock(mutex_);
  welford_.add(x);
  // Neumaier-compensated sum: exact to ~1 ulp of the true sum regardless
  // of count (mean * count drifts once counts get large).
  const double t = sum_ + x;
  if (std::abs(sum_) >= std::abs(x)) {
    sum_compensation_ += (sum_ - t) + x;
  } else {
    sum_compensation_ += (x - t) + sum_;
  }
  sum_ = t;
}

namespace {

/// Nearest-rank quantile over a bucket-count snapshot. `targets` must be
/// ascending; writes one estimate per target.
void quantiles_from_buckets(
    const std::vector<std::uint64_t>& counts, double min, double max,
    const double* targets, double* out, std::size_t num_targets,
    double (*midpoint)(std::size_t), std::size_t first_regular,
    std::size_t overflow) {
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) {
    for (std::size_t i = 0; i < num_targets; ++i) out[i] = 0.0;
    return;
  }
  std::uint64_t cumulative = 0;
  std::size_t bucket = 0;
  for (std::size_t i = 0; i < num_targets; ++i) {
    auto rank = static_cast<std::uint64_t>(
        std::ceil(targets[i] * static_cast<double>(total)));
    if (rank < 1) rank = 1;
    if (rank > total) rank = total;
    while (bucket < counts.size() && cumulative + counts[bucket] < rank) {
      cumulative += counts[bucket];
      ++bucket;
    }
    double estimate;
    if (bucket < first_regular) {
      estimate = min;  // non-positive / underflow: no log-linear midpoint
    } else if (bucket >= overflow) {
      estimate = max;
    } else {
      estimate = midpoint(bucket);
    }
    if (estimate < min) estimate = min;
    if (estimate > max) estimate = max;
    out[i] = estimate;
  }
}

}  // namespace

Histogram::Summary Histogram::summary() const noexcept {
  Summary s;
  std::vector<std::uint64_t> counts(kNumBuckets);
  {
    std::lock_guard lock(mutex_);
    s.count = welford_.count();
    s.mean = welford_.mean();
    s.stddev = welford_.stddev();
    s.min = welford_.count() ? welford_.min() : 0.0;
    s.max = welford_.count() ? welford_.max() : 0.0;
    s.sum = sum_ + sum_compensation_;
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
      counts[i] = buckets_[i].load(std::memory_order_relaxed);
    }
  }
  const double targets[] = {0.50, 0.90, 0.99};
  double estimates[3] = {0.0, 0.0, 0.0};
  quantiles_from_buckets(counts, s.min, s.max, targets, estimates, 3,
                         &Histogram::bucket_midpoint, kFirstRegular, kOverflow);
  s.p50 = estimates[0];
  s.p90 = estimates[1];
  s.p99 = estimates[2];
  return s;
}

void Histogram::merge(const Histogram& other) noexcept {
  if (this == &other) return;
  // Snapshot the source under its lock, then fold under ours. Taking the
  // two locks in sequence (never nested) cannot deadlock even if two
  // threads merge in opposite directions concurrently -- though doing so
  // would interleave partial states, hence the header's contract.
  std::vector<std::uint64_t> counts(kNumBuckets);
  Welford moments;
  double sum = 0.0;
  double compensation = 0.0;
  {
    std::lock_guard lock(other.mutex_);
    moments = other.welford_;
    sum = other.sum_;
    compensation = other.sum_compensation_;
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
      counts[i] = other.buckets_[i].load(std::memory_order_relaxed);
    }
  }
  std::lock_guard lock(mutex_);
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    if (counts[i] != 0) {
      buckets_[i].fetch_add(counts[i], std::memory_order_relaxed);
    }
  }
  welford_.merge(moments);
  // Two compensated sums combine into one by running Neumaier over the
  // other side's (sum, compensation) pair as if they were two samples:
  // the result keeps the error of both streams' totals to ~1 ulp.
  for (const double x : {sum, compensation}) {
    const double t = sum_ + x;
    if (std::abs(sum_) >= std::abs(x)) {
      sum_compensation_ += (sum_ - t) + x;
    } else {
      sum_compensation_ += (x - t) + sum_;
    }
    sum_ = t;
  }
}

void Histogram::reset() noexcept {
  std::lock_guard lock(mutex_);
  welford_ = Welford{};
  sum_ = 0.0;
  sum_compensation_ = 0.0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

double Histogram::quantile(double q) const noexcept {
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  std::vector<std::uint64_t> counts(kNumBuckets);
  double min = 0.0;
  double max = 0.0;
  {
    std::lock_guard lock(mutex_);
    min = welford_.count() ? welford_.min() : 0.0;
    max = welford_.count() ? welford_.max() : 0.0;
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
      counts[i] = buckets_[i].load(std::memory_order_relaxed);
    }
  }
  double estimate = 0.0;
  quantiles_from_buckets(counts, min, max, &q, &estimate, 1,
                         &Histogram::bucket_midpoint, kFirstRegular, kOverflow);
  return estimate;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lock(mutex_);
  return histograms_[name];
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard lock(mutex_);
  for (const auto& [name, c] : counters_) snap.counters[name] = c.value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g.value();
  for (const auto& [name, h] : histograms_) snap.histograms[name] = h.summary();
  return snap;
}

JsonValue histogram_summary_json(const Histogram::Summary& s) {
  JsonObject h;
  h["count"] = s.count;
  h["mean"] = s.mean;
  h["stddev"] = s.stddev;
  h["min"] = s.min;
  h["max"] = s.max;
  h["sum"] = s.sum;
  h["p50"] = s.p50;
  h["p90"] = s.p90;
  h["p99"] = s.p99;
  return JsonValue(std::move(h));
}

JsonValue metrics_snapshot_json(const MetricsSnapshot& snapshot) {
  JsonObject root;
  JsonObject counters_obj;
  for (const auto& [name, v] : snapshot.counters) counters_obj[name] = v;
  root["counters"] = counters_obj;
  JsonObject gauges_obj;
  for (const auto& [name, v] : snapshot.gauges) gauges_obj[name] = v;
  root["gauges"] = gauges_obj;
  JsonObject hists_obj;
  for (const auto& [name, s] : snapshot.histograms) {
    hists_obj[name] = histogram_summary_json(s);
  }
  root["histograms"] = hists_obj;
  return JsonValue(root);
}

std::string MetricsSnapshot::to_json(int indent) const {
  return metrics_snapshot_json(*this).dump(indent);
}

void MetricsRegistry::save_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("MetricsRegistry::save_json: cannot open " + path);
  out << snapshot().to_json() << "\n";
  if (!out) {
    throw std::runtime_error("MetricsRegistry::save_json: write failed for " + path);
  }
}

}  // namespace rdp::obs
