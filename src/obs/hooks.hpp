// The observability seam: instrumented code asks obs::metrics() /
// obs::tracer() for the currently-installed sinks and does nothing when
// they are null. Installation is explicit and RAII-scoped
// (ObservabilityScope); the default state is "no sinks", in which every
// hook is an inlined atomic load + predicted-not-taken branch, so
// instrumentation is effectively free for code that never opts in --
// see bench/perf_algorithms.cpp for the disabled-vs-enabled measurement.
#pragma once

#include <atomic>

namespace rdp::obs {

class MetricsRegistry;
class Tracer;
class RunSampler;
class TimelineRecorder;

namespace detail {
// Process-wide current sinks. Writes only happen via ObservabilityScope;
// readers (hot paths) load once per call and cache the pointer locally.
extern std::atomic<MetricsRegistry*> g_metrics;
extern std::atomic<Tracer*> g_tracer;
// The active run sampler (installed by RunSampler's constructor). Not a
// hot-path sink: only provenance consumers (repro manifest) read it.
extern std::atomic<RunSampler*> g_sampler;
// The task-lifecycle flight recorder (obs/timeline.hpp), installed via
// TimelineScope. Dispatchers load it once per run.
extern std::atomic<TimelineRecorder*> g_timeline;
}  // namespace detail

/// Currently-installed metrics registry, or nullptr when observability is
/// off (the default).
[[nodiscard]] inline MetricsRegistry* metrics() noexcept {
  return detail::g_metrics.load(std::memory_order_acquire);
}

/// Currently-installed tracer, or nullptr.
[[nodiscard]] inline Tracer* tracer() noexcept {
  return detail::g_tracer.load(std::memory_order_acquire);
}

/// Currently-running time-series sampler (obs/sampler.hpp), or nullptr.
[[nodiscard]] inline RunSampler* sampler() noexcept {
  return detail::g_sampler.load(std::memory_order_acquire);
}

/// Currently-installed flight recorder (obs/timeline.hpp), or nullptr.
[[nodiscard]] inline TimelineRecorder* timeline() noexcept {
  return detail::g_timeline.load(std::memory_order_acquire);
}

[[nodiscard]] inline bool enabled() noexcept {
  return metrics() != nullptr || tracer() != nullptr;
}

/// Installs sinks for the duration of a scope and restores the previous
/// ones on destruction (scopes nest). Either pointer may be null.
///
/// The installed sinks are visible to every thread -- a scope is
/// process-wide, not thread-local -- so experiments that fan work onto a
/// ThreadPool record into one registry/tracer. Install before spawning
/// the work; the sinks themselves are thread-safe.
class ObservabilityScope {
 public:
  ObservabilityScope(MetricsRegistry* metrics_registry, Tracer* tracer) noexcept
      : prev_metrics_(detail::g_metrics.exchange(metrics_registry,
                                                 std::memory_order_acq_rel)),
        prev_tracer_(
            detail::g_tracer.exchange(tracer, std::memory_order_acq_rel)) {}

  ObservabilityScope(const ObservabilityScope&) = delete;
  ObservabilityScope& operator=(const ObservabilityScope&) = delete;

  ~ObservabilityScope() {
    detail::g_metrics.store(prev_metrics_, std::memory_order_release);
    detail::g_tracer.store(prev_tracer_, std::memory_order_release);
  }

 private:
  MetricsRegistry* prev_metrics_;
  Tracer* prev_tracer_;
};

/// Installs a flight recorder for the duration of a scope, restoring the
/// previous one on destruction. Kept separate from ObservabilityScope --
/// timeline recording is opt-in per run (it buffers megabytes, not
/// counters), and a null recorder scope deliberately masks an outer one
/// (serve_adaptive uses this to re-emit its sub-runs under global ids).
class TimelineScope {
 public:
  explicit TimelineScope(TimelineRecorder* recorder) noexcept
      : prev_(detail::g_timeline.exchange(recorder, std::memory_order_acq_rel)) {}

  TimelineScope(const TimelineScope&) = delete;
  TimelineScope& operator=(const TimelineScope&) = delete;

  ~TimelineScope() {
    detail::g_timeline.store(prev_, std::memory_order_release);
  }

 private:
  TimelineRecorder* prev_;
};

}  // namespace rdp::obs
