#include "obs/timeline.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "io/json.hpp"
#include "obs/hooks.hpp"
#include "obs/metrics.hpp"

namespace rdp::obs {

namespace {

constexpr const char* kKindNames[] = {"arrive", "admit",   "eligible", "start",
                                      "finish", "refetch", "failure"};
constexpr std::size_t kNumKinds = sizeof(kKindNames) / sizeof(kKindNames[0]);

}  // namespace

const char* to_string(TimelineEventKind kind) noexcept {
  const auto i = static_cast<std::size_t>(kind);
  return i < kNumKinds ? kKindNames[i] : "unknown";
}

TimelineEventKind timeline_kind_from_name(const std::string& name) {
  for (std::size_t i = 0; i < kNumKinds; ++i) {
    if (name == kKindNames[i]) return static_cast<TimelineEventKind>(i);
  }
  throw std::invalid_argument("timeline: unknown event kind '" + name + "'");
}

TimelineRecorder::TimelineRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      when_(new double[capacity_]),
      task_(new std::uint32_t[capacity_]),
      machine_(new std::uint32_t[capacity_]),
      kind_(new std::uint8_t[capacity_]) {}

TimelineRecorder::Block TimelineRecorder::reserve(std::size_t count) noexcept {
  Block block;
  if (count == 0) return block;
  const std::uint64_t begin =
      next_.fetch_add(count, std::memory_order_relaxed);
  if (begin >= capacity_) {
    // Fully past the end: every slot is a drop (already counted by the
    // fetch_add -- dropped() derives from the excess).
    if (MetricsRegistry* mx = metrics()) {
      mx->counter("timeline.events_dropped").add(count);
    }
    return block;
  }
  const std::size_t granted =
      std::min<std::uint64_t>(count, capacity_ - begin);
  if (granted < count) {
    if (MetricsRegistry* mx = metrics()) {
      mx->counter("timeline.events_dropped").add(count - granted);
    }
  }
  block.when = when_.get() + begin;
  block.task = task_.get() + begin;
  block.machine = machine_.get() + begin;
  block.kind = kind_.get() + begin;
  block.count = granted;
  return block;
}

void TimelineRecorder::record(double when, TimelineEventKind kind,
                              std::uint32_t task,
                              std::uint32_t machine) noexcept {
  const Block block = reserve(1);
  if (block.count == 0) return;
  block.when[0] = when;
  block.task[0] = task;
  block.machine[0] = machine;
  block.kind[0] = static_cast<std::uint8_t>(kind);
}

std::size_t TimelineRecorder::size() const noexcept {
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(next_.load(std::memory_order_relaxed), capacity_));
}

std::uint64_t TimelineRecorder::dropped() const noexcept {
  const std::uint64_t claimed = next_.load(std::memory_order_relaxed);
  return claimed > capacity_ ? claimed - capacity_ : 0;
}

void TimelineRecorder::clear() noexcept {
  next_.store(0, std::memory_order_relaxed);
}

TimelineEvent TimelineRecorder::event(std::size_t i) const noexcept {
  TimelineEvent e;
  e.when = when_[i];
  e.task = task_[i];
  e.machine = machine_[i];
  e.kind = static_cast<TimelineEventKind>(kind_[i]);
  return e;
}

void TimelineRecorder::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("TimelineRecorder::save: cannot open " + path);
  const std::size_t count = size();
  std::string buf;
  buf += "{\"rdp_timeline_header\":{\"events\":" + std::to_string(count) +
         ",\"dropped\":" + std::to_string(dropped()) +
         ",\"capacity\":" + std::to_string(capacity_) + "}}\n";
  for (std::size_t i = 0; i < count; ++i) {
    // Hand-rendered rows (one allocation-free append per event) keep the
    // export linear even for multi-million event logs; the `t` value goes
    // through the round-trip-exact JSON number formatter.
    buf += "{\"t\":";
    buf += JsonValue(when_[i]).dump(-1);
    buf += ",\"kind\":\"";
    buf += to_string(static_cast<TimelineEventKind>(kind_[i]));
    buf += "\"";
    if (task_[i] != kTimelineNone) {
      buf += ",\"task\":" + std::to_string(task_[i]);
    }
    if (machine_[i] != kTimelineNone) {
      buf += ",\"machine\":" + std::to_string(machine_[i]);
    }
    buf += "}\n";
    if (buf.size() >= (1u << 20)) {
      out << buf;
      buf.clear();
    }
  }
  out << buf;
  if (!out) {
    throw std::runtime_error("TimelineRecorder::save: write failed for " + path);
  }
}

std::vector<TimelineEvent> load_timeline(const std::string& path,
                                         TimelineMeta* meta) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_timeline: cannot open " + path);
  std::vector<TimelineEvent> events;
  std::string line;
  bool saw_header = false;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    JsonValue doc;
    try {
      doc = parse_json(line);
    } catch (const std::exception& e) {
      throw std::runtime_error("load_timeline: " + path + ":" +
                               std::to_string(line_no) + ": " + e.what());
    }
    if (const JsonValue* header = doc.find("rdp_timeline_header")) {
      saw_header = true;
      if (meta != nullptr) {
        meta->events = static_cast<std::uint64_t>(header->get_number("events"));
        meta->dropped = static_cast<std::uint64_t>(header->get_number("dropped"));
        meta->capacity =
            static_cast<std::uint64_t>(header->get_number("capacity"));
      }
      continue;
    }
    TimelineEvent e;
    e.when = doc.get_number("t");
    e.kind = timeline_kind_from_name(doc.get_string("kind", ""));
    e.task = static_cast<std::uint32_t>(
        doc.get_number("task", static_cast<double>(kTimelineNone)));
    e.machine = static_cast<std::uint32_t>(
        doc.get_number("machine", static_cast<double>(kTimelineNone)));
    events.push_back(e);
  }
  if (!saw_header) {
    throw std::runtime_error("load_timeline: " + path +
                             ": missing rdp_timeline_header line");
  }
  return events;
}

}  // namespace rdp::obs
