// Sliding-window distribution summaries: a ring of per-interval HDR
// histograms (obs/metrics.hpp) over a caller-supplied time axis --
// simulated seconds for the SLO engine, wall seconds for live sampling.
// Each sample lands in the histogram of its interval floor(t/interval);
// advancing time expires the oldest intervals in place (Histogram::
// reset(), no allocation), and a window rollup is a Histogram::merge of
// the live slots. This is what gives response-time telemetry a time
// axis: per-interval p50/p90/p99 that *forget* an old regime within
// ring-length intervals of a load change, instead of one cumulative
// histogram that averages the burst away.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "obs/metrics.hpp"

namespace rdp::obs {

class WindowedHistogram {
 public:
  /// `interval_seconds` > 0 is the bucketing grain; `num_intervals` >= 1
  /// is the ring length (the window spans num_intervals * interval
  /// seconds). Throws std::invalid_argument on bad geometry.
  WindowedHistogram(double interval_seconds, std::size_t num_intervals);

  WindowedHistogram(const WindowedHistogram&) = delete;
  WindowedHistogram& operator=(const WindowedHistogram&) = delete;

  /// Records `value` at time `t` (t >= 0). Times may arrive out of
  /// order within the window; samples older than the window's trailing
  /// edge are dropped and counted (late_dropped()). Advancing t rotates
  /// the ring, clearing every interval that fell out of the window.
  void observe(double t, double value) noexcept;

  /// Summary of the single interval containing `t`, empty if it is
  /// outside the window.
  [[nodiscard]] Histogram::Summary interval_summary(double t) const noexcept;

  /// Rollup of every live interval up to and including the one holding
  /// `t` (advances the window to t first): the sliding-window summary.
  [[nodiscard]] Histogram::Summary window_summary(double t) noexcept;

  [[nodiscard]] double interval_seconds() const noexcept { return interval_; }
  [[nodiscard]] std::size_t num_intervals() const noexcept { return ring_.size(); }
  /// Samples rejected for arriving behind the trailing edge.
  [[nodiscard]] std::uint64_t late_dropped() const noexcept;

 private:
  /// Rotates so the interval index `idx` is the newest slot. Caller
  /// holds mutex_.
  void advance_to(std::int64_t idx) noexcept;

  const double interval_;
  mutable std::mutex mutex_;
  std::vector<Histogram> ring_;
  Histogram scratch_;          ///< merge target for window_summary
  std::int64_t newest_ = -1;   ///< highest interval index seen; -1 = none
  std::uint64_t late_dropped_ = 0;
};

/// Per-interval maxima over the same rotating-ring scheme -- the backlog
/// watermark series (a Histogram would blur the peak; operators alarm on
/// the watermark itself).
class WindowedMax {
 public:
  WindowedMax(double interval_seconds, std::size_t num_intervals);

  /// Offers `value` as a candidate maximum for the interval holding `t`.
  void observe(double t, double value) noexcept;

  /// Maximum recorded in the interval holding `t`, or `fallback` when
  /// that interval is outside the window or never saw a sample.
  [[nodiscard]] double interval_max(double t, double fallback = 0.0) const noexcept;

  /// Maximum over every live interval (advances the window to t first).
  [[nodiscard]] double window_max(double t, double fallback = 0.0) noexcept;

  [[nodiscard]] double interval_seconds() const noexcept { return interval_; }
  [[nodiscard]] std::size_t num_intervals() const noexcept { return values_.size(); }

 private:
  void advance_to(std::int64_t idx) noexcept;

  const double interval_;
  mutable std::mutex mutex_;
  std::vector<double> values_;
  std::vector<std::uint8_t> seen_;
  std::int64_t newest_ = -1;
};

}  // namespace rdp::obs
