#include "obs/window.hpp"

#include <cmath>
#include <stdexcept>

namespace rdp::obs {

namespace {

/// Interval index of time t. Negative t floors to interval 0 -- serve
/// clocks start at 0 and tiny negative jitter should not drop samples.
std::int64_t interval_index(double t, double interval) noexcept {
  if (!(t > 0.0)) return 0;
  return static_cast<std::int64_t>(t / interval);
}

}  // namespace

WindowedHistogram::WindowedHistogram(double interval_seconds,
                                     std::size_t num_intervals)
    : interval_(interval_seconds), ring_(num_intervals) {
  if (!(interval_seconds > 0.0) || !std::isfinite(interval_seconds)) {
    throw std::invalid_argument(
        "WindowedHistogram: interval_seconds must be positive and finite");
  }
  if (num_intervals == 0) {
    throw std::invalid_argument(
        "WindowedHistogram: num_intervals must be >= 1");
  }
}

void WindowedHistogram::advance_to(std::int64_t idx) noexcept {
  if (idx <= newest_) return;
  // Every interval in (newest_, idx] gets a fresh slot; slots that are
  // being re-entered after a full lap (or more) must forget their old
  // regime. Cap the walk at ring-size resets -- a jump further than one
  // lap clears the same slots anyway.
  const auto n = static_cast<std::int64_t>(ring_.size());
  const std::int64_t first = std::max(newest_ + 1, idx - n + 1);
  for (std::int64_t i = first; i <= idx; ++i) {
    ring_[static_cast<std::size_t>(i % n)].reset();
  }
  newest_ = idx;
}

void WindowedHistogram::observe(double t, double value) noexcept {
  const std::int64_t idx = interval_index(t, interval_);
  std::lock_guard<std::mutex> lock(mutex_);
  advance_to(idx);
  const auto n = static_cast<std::int64_t>(ring_.size());
  if (idx <= newest_ - n) {
    ++late_dropped_;
    return;
  }
  ring_[static_cast<std::size_t>(idx % n)].observe(value);
}

Histogram::Summary WindowedHistogram::interval_summary(double t) const noexcept {
  const std::int64_t idx = interval_index(t, interval_);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto n = static_cast<std::int64_t>(ring_.size());
  if (newest_ < 0 || idx > newest_ || idx <= newest_ - n) return {};
  return ring_[static_cast<std::size_t>(idx % n)].summary();
}

Histogram::Summary WindowedHistogram::window_summary(double t) noexcept {
  const std::int64_t idx = interval_index(t, interval_);
  std::lock_guard<std::mutex> lock(mutex_);
  advance_to(idx);
  scratch_.reset();
  const auto n = static_cast<std::int64_t>(ring_.size());
  const std::int64_t first = std::max<std::int64_t>(0, idx - n + 1);
  for (std::int64_t i = first; i <= idx; ++i) {
    scratch_.merge(ring_[static_cast<std::size_t>(i % n)]);
  }
  return scratch_.summary();
}

std::uint64_t WindowedHistogram::late_dropped() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return late_dropped_;
}

WindowedMax::WindowedMax(double interval_seconds, std::size_t num_intervals)
    : interval_(interval_seconds),
      values_(num_intervals, 0.0),
      seen_(num_intervals, 0) {
  if (!(interval_seconds > 0.0) || !std::isfinite(interval_seconds)) {
    throw std::invalid_argument(
        "WindowedMax: interval_seconds must be positive and finite");
  }
  if (num_intervals == 0) {
    throw std::invalid_argument("WindowedMax: num_intervals must be >= 1");
  }
}

void WindowedMax::advance_to(std::int64_t idx) noexcept {
  if (idx <= newest_) return;
  const auto n = static_cast<std::int64_t>(values_.size());
  const std::int64_t first = std::max(newest_ + 1, idx - n + 1);
  for (std::int64_t i = first; i <= idx; ++i) {
    const auto slot = static_cast<std::size_t>(i % n);
    values_[slot] = 0.0;
    seen_[slot] = 0;
  }
  newest_ = idx;
}

void WindowedMax::observe(double t, double value) noexcept {
  const std::int64_t idx = interval_index(t, interval_);
  std::lock_guard<std::mutex> lock(mutex_);
  advance_to(idx);
  const auto n = static_cast<std::int64_t>(values_.size());
  if (idx <= newest_ - n) return;
  const auto slot = static_cast<std::size_t>(idx % n);
  if (!seen_[slot] || value > values_[slot]) values_[slot] = value;
  seen_[slot] = 1;
}

double WindowedMax::interval_max(double t, double fallback) const noexcept {
  const std::int64_t idx = interval_index(t, interval_);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto n = static_cast<std::int64_t>(values_.size());
  if (newest_ < 0 || idx > newest_ || idx <= newest_ - n) return fallback;
  const auto slot = static_cast<std::size_t>(idx % n);
  return seen_[slot] ? values_[slot] : fallback;
}

double WindowedMax::window_max(double t, double fallback) noexcept {
  const std::int64_t idx = interval_index(t, interval_);
  std::lock_guard<std::mutex> lock(mutex_);
  advance_to(idx);
  const auto n = static_cast<std::int64_t>(values_.size());
  double best = fallback;
  bool any = false;
  const std::int64_t first = std::max<std::int64_t>(0, idx - n + 1);
  for (std::int64_t i = first; i <= idx; ++i) {
    const auto slot = static_cast<std::size_t>(i % n);
    if (!seen_[slot]) continue;
    if (!any || values_[slot] > best) best = values_[slot];
    any = true;
  }
  return best;
}

}  // namespace rdp::obs
