// Task-lifecycle flight recorder: a bounded, pre-allocated SoA event log
// over *simulated* time (arrive -> admit -> eligible -> start -> finish,
// plus refetch/failure), the per-task counterpart to obs/trace.hpp's
// wall-clock spans. The dispatchers in serve/ and sim/ append into it
// when one is installed (obs::timeline(), TimelineScope); the default
// state is off, in which every emission site is a null-pointer check.
//
// The recording discipline matches sim/workspace.hpp: all storage is
// allocated once at construction, and the hot paths claim slots with a
// single relaxed fetch_add -- the serve/sim dispatch loops reserve one
// contiguous block per run after their schedule is built, so recording
// costs a few bulk array fills rather than per-decision bookkeeping (see
// bench/ext_obs_overhead.cpp for the <=5% throughput budget). Once
// capacity is reached further events are counted, never stored, so a
// week-long instrumented serve cannot OOM the host; drops also bump the
// `timeline.events_dropped` counter of the installed MetricsRegistry.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace rdp::obs {

/// Lifecycle stages, in the order a healthy task passes through them.
/// kAdmit/kEligible are distinct from kArrive only for dispatchers with
/// an admission boundary (the streaming service admits at arrival, so it
/// emits kArrive alone); kRefetch/kFailure come from sim/failures.
enum class TimelineEventKind : std::uint8_t {
  kArrive = 0,
  kAdmit,
  kEligible,
  kStart,
  kFinish,
  kRefetch,
  kFailure,
};

[[nodiscard]] const char* to_string(TimelineEventKind kind) noexcept;
/// Inverse of to_string; throws std::invalid_argument on unknown names.
[[nodiscard]] TimelineEventKind timeline_kind_from_name(const std::string& name);

/// Sentinel for "no task" / "no machine" in an event's id fields (a
/// machine failure has no task; an arrival has no machine yet).
inline constexpr std::uint32_t kTimelineNone = UINT32_MAX;

/// One materialized event (AoS form, used by loaders and analysis; the
/// recorder itself stores columns).
struct TimelineEvent {
  double when = 0.0;  ///< simulated time
  std::uint32_t task = kTimelineNone;
  std::uint32_t machine = kTimelineNone;
  TimelineEventKind kind = TimelineEventKind::kArrive;
};

/// Header/trailer metadata of a saved timeline file.
struct TimelineMeta {
  std::uint64_t events = 0;
  std::uint64_t dropped = 0;
  std::uint64_t capacity = 0;
};

class TimelineRecorder {
 public:
  /// 4M events * 17 bytes/event of column storage ~= 68 MB.
  static constexpr std::size_t kDefaultCapacity = 1u << 22;

  explicit TimelineRecorder(std::size_t capacity = kDefaultCapacity);
  TimelineRecorder(const TimelineRecorder&) = delete;
  TimelineRecorder& operator=(const TimelineRecorder&) = delete;

  /// A claimed contiguous slice of the column arrays. The claimant owns
  /// indices [0, count) of each pointer exclusively -- fill them with
  /// plain stores, no synchronization needed. `count` may be smaller
  /// than requested (capacity clamp); the shortfall is already counted
  /// as dropped.
  struct Block {
    double* when = nullptr;
    std::uint32_t* task = nullptr;
    std::uint32_t* machine = nullptr;
    std::uint8_t* kind = nullptr;
    std::size_t count = 0;
  };

  /// Claims up to `count` slots in one fetch_add -- the bulk path the
  /// dispatchers use (one reserve per run, then tight array fills).
  [[nodiscard]] Block reserve(std::size_t count) noexcept;

  /// Single-event form for low-rate sources (failures, refetches).
  void record(double when, TimelineEventKind kind,
              std::uint32_t task = kTimelineNone,
              std::uint32_t machine = kTimelineNone) noexcept;

  /// Events actually stored (<= capacity).
  [[nodiscard]] std::size_t size() const noexcept;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Events discarded because the buffer was full. Deterministic for a
  /// deterministic event stream: reserve() truncates exactly at capacity.
  [[nodiscard]] std::uint64_t dropped() const noexcept;

  /// Forgets every event (drop counter included); storage is retained.
  void clear() noexcept;

  /// Row `i` of the column store as an AoS event (i < size()).
  [[nodiscard]] TimelineEvent event(std::size_t i) const noexcept;

  /// JSONL export: first line is a header object
  /// {"rdp_timeline_header":{"events":N,"dropped":D,"capacity":C}}, then
  /// one {"t":..,"kind":"..","task":..,"machine":..} object per event in
  /// record order (task/machine omitted when they are the none
  /// sentinel). Throws std::runtime_error on I/O failure.
  void save(const std::string& path) const;

 private:
  std::size_t capacity_;
  // next_ counts every claim attempt; slots at/past capacity_ were
  // dropped, so size = min(next_, capacity) and dropped = excess. One
  // atomic serves both bulk and single-event claims.
  std::atomic<std::uint64_t> next_{0};
  std::unique_ptr<double[]> when_;
  std::unique_ptr<std::uint32_t[]> task_;
  std::unique_ptr<std::uint32_t[]> machine_;
  std::unique_ptr<std::uint8_t[]> kind_;
};

/// Parses a file written by TimelineRecorder::save. Events come back in
/// file order; `meta`, when non-null, receives the header. Throws
/// std::runtime_error on I/O or schema errors.
[[nodiscard]] std::vector<TimelineEvent> load_timeline(const std::string& path,
                                                       TimelineMeta* meta = nullptr);

}  // namespace rdp::obs
