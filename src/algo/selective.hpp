// Selective replication -- the paper's closing future-work item: "A more
// realistic model would introduce a cost of replicating a task... This
// would allow to replicate only some critical tasks and limit memory
// usage."
//
// Two policies operationalize that idea:
//  * CriticalTasksPlacement: replicate the largest-estimate tasks (the
//    ones that dominate the adversary's leverage) on every machine; pin
//    the rest with LPT. Parameterized by the fraction of tasks treated
//    as critical.
//  * MemoryBudgetPlacement: pin everything with LPT, then spend a global
//    replica budget (in units of task size) on extra replicas, largest
//    estimates first, widening each chosen task's replica set to all
//    machines while the budget lasts.
#pragma once

#include <cstddef>

#include "algo/placement_policies.hpp"
#include "algo/strategy.hpp"
#include "core/types.hpp"

namespace rdp {

/// Replicates the `critical_fraction` largest-estimate tasks everywhere;
/// the rest are pinned to single machines by LPT over the estimates.
class CriticalTasksPlacement final : public PlacementPolicy {
 public:
  /// \param critical_fraction fraction of tasks (by count, rounded up
  ///        when positive) replicated everywhere; must be in [0, 1].
  explicit CriticalTasksPlacement(double critical_fraction);

  [[nodiscard]] Placement place(const Instance& instance) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double critical_fraction() const noexcept { return fraction_; }

 private:
  double fraction_;
};

/// Pins every task by LPT, then widens tasks to full replication in
/// non-increasing estimate order while the *extra* memory spent (size *
/// (m-1) per widened task) fits in `extra_memory_budget`.
class MemoryBudgetPlacement final : public PlacementPolicy {
 public:
  /// \param extra_memory_budget total size units available for replicas
  ///        beyond the one mandatory copy per task; must be >= 0.
  explicit MemoryBudgetPlacement(double extra_memory_budget);

  [[nodiscard]] Placement place(const Instance& instance) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double budget() const noexcept { return budget_; }

 private:
  double budget_;
};

/// Convenience strategies: selective placements + online LPT dispatch
/// (critical tasks can move at run time; pinned tasks cannot).
[[nodiscard]] TwoPhaseStrategy make_critical_tasks(double critical_fraction);
[[nodiscard]] TwoPhaseStrategy make_memory_budget(double extra_memory_budget);

}  // namespace rdp
