// General (non-partition) replication policies -- the paper's future-work
// observation that "more general replication policies can certainly lead
// to better guarantees". Partition groups isolate load imbalance inside a
// group; overlapping windows let neighbouring groups share slack.
//
//  * SlidingWindowPlacement(r): task j's replica set is a window of r
//    consecutive machines {a, a+1, ..., a+r-1 (mod m)}; anchors are
//    chosen greedily so the estimated load spread over window members is
//    balanced. r may be any value in [1, m] -- no divisibility needed.
//  * RandomSubsetPlacement(r, seed): r machines drawn uniformly per task;
//    the random baseline for degree-r policies.
#pragma once

#include <cstdint>

#include "algo/placement_policies.hpp"
#include "algo/strategy.hpp"
#include "core/types.hpp"

namespace rdp {

class SlidingWindowPlacement final : public PlacementPolicy {
 public:
  /// \param window replication degree r in [1, m] (checked at place()).
  explicit SlidingWindowPlacement(MachineId window);

  [[nodiscard]] Placement place(const Instance& instance) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] MachineId window() const noexcept { return window_; }

 private:
  MachineId window_;
};

class RandomSubsetPlacement final : public PlacementPolicy {
 public:
  RandomSubsetPlacement(MachineId degree, std::uint64_t seed);

  [[nodiscard]] Placement place(const Instance& instance) const override;
  [[nodiscard]] std::string name() const override;

 private:
  MachineId degree_;
  std::uint64_t seed_;
};

/// Sliding-window strategy with online LS dispatch (the natural analogue
/// of LS-Group for overlapping sets).
[[nodiscard]] TwoPhaseStrategy make_sliding_window(MachineId window);

/// Random-subset strategy with online LS dispatch.
[[nodiscard]] TwoPhaseStrategy make_random_subset(MachineId degree,
                                                  std::uint64_t seed);

}  // namespace rdp
