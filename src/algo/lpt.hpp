// Longest Processing Time first (Graham 1969): List Scheduling over tasks
// sorted by non-increasing weight. Offline approximation ratio
// 4/3 - 1/(3m) on P||Cmax.
#pragma once

#include <span>
#include <vector>

#include "algo/list_scheduling.hpp"
#include "core/types.hpp"

namespace rdp {

/// Task ids sorted by non-increasing weight; ties break toward the smaller
/// id so the order (and thus every LPT-based result) is deterministic.
[[nodiscard]] std::vector<TaskId> lpt_order(std::span<const Time> weights);

/// LPT schedule of `weights` on `num_machines` machines.
[[nodiscard]] GreedyScheduleResult lpt_schedule(std::span<const Time> weights,
                                                MachineId num_machines);

/// Graham's offline LPT approximation guarantee, 4/3 - 1/(3m).
[[nodiscard]] double lpt_guarantee(MachineId num_machines);

/// Graham's List Scheduling guarantee, 2 - 1/m.
[[nodiscard]] double list_scheduling_guarantee(MachineId num_machines);

}  // namespace rdp
