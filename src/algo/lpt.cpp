#include "algo/lpt.hpp"

#include <algorithm>

namespace rdp {

std::vector<TaskId> lpt_order(std::span<const Time> weights) {
  std::vector<TaskId> order(weights.size());
  for (TaskId j = 0; j < weights.size(); ++j) order[j] = j;
  std::stable_sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
    return weights[a] > weights[b];
  });
  return order;
}

GreedyScheduleResult lpt_schedule(std::span<const Time> weights,
                                  MachineId num_machines) {
  const std::vector<TaskId> order = lpt_order(weights);
  return list_schedule(weights, num_machines, order);
}

double lpt_guarantee(MachineId num_machines) {
  const double m = static_cast<double>(num_machines);
  return 4.0 / 3.0 - 1.0 / (3.0 * m);
}

double list_scheduling_guarantee(MachineId num_machines) {
  const double m = static_cast<double>(num_machines);
  return 2.0 - 1.0 / m;
}

}  // namespace rdp
