// Phase-1 policies: decide the replica sets M_j from the estimates alone.
// The three policies of the paper (LPT-NoChoice, replicate-everywhere,
// LS-Group) plus baseline policies used by the experiment harness.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/placement.hpp"
#include "core/types.hpp"

namespace rdp {

class Instance;

/// Interface for phase-1 data placement.
class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  /// Computes M_j for every task of `instance` using only estimates.
  [[nodiscard]] virtual Placement place(const Instance& instance) const = 0;

  /// Stable identifier, e.g. "lpt-no-choice".
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Strategy 1 placement: LPT over the estimates, each task pinned to a
/// single machine (|M_j| = 1).
class LptNoChoicePlacement final : public PlacementPolicy {
 public:
  [[nodiscard]] Placement place(const Instance& instance) const override;
  [[nodiscard]] std::string name() const override { return "lpt-no-choice"; }
};

/// Strategy 2 placement: every task replicated on every machine
/// (|M_j| = m); all decisions deferred to phase 2.
class ReplicateEverywherePlacement final : public PlacementPolicy {
 public:
  [[nodiscard]] Placement place(const Instance& instance) const override;
  [[nodiscard]] std::string name() const override { return "replicate-everywhere"; }
};

/// Strategy 3 placement: machines partitioned into k equal groups; tasks
/// distributed to groups by List Scheduling over the estimates
/// (|M_j| = m/k). Requires k to divide m.
class LsGroupPlacement final : public PlacementPolicy {
 public:
  explicit LsGroupPlacement(MachineId num_groups);
  [[nodiscard]] Placement place(const Instance& instance) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] MachineId num_groups() const noexcept { return k_; }

 private:
  MachineId k_;
};

/// Extension the paper speculates about ("a LPT-based algorithm may have
/// better guarantee"): groups filled by LPT instead of LS.
class LptGroupPlacement final : public PlacementPolicy {
 public:
  explicit LptGroupPlacement(MachineId num_groups);
  [[nodiscard]] Placement place(const Instance& instance) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] MachineId num_groups() const noexcept { return k_; }

 private:
  MachineId k_;
};

/// Extension ablation: phase 1 packs with MULTIFIT (13/11) instead of
/// LPT (4/3 - 1/(3m)); still |M_j| = 1. Probes how much a sharper
/// offline packer improves the no-replication strategy in practice --
/// a question the paper leaves open (its Theorem 2 analysis is tied to
/// LPT's structure).
class MultifitNoChoicePlacement final : public PlacementPolicy {
 public:
  [[nodiscard]] Placement place(const Instance& instance) const override;
  [[nodiscard]] std::string name() const override { return "multifit-no-choice"; }
};

/// Baseline: each task pinned to a uniformly random machine (seeded).
class RandomSingletonPlacement final : public PlacementPolicy {
 public:
  explicit RandomSingletonPlacement(std::uint64_t seed) : seed_(seed) {}
  [[nodiscard]] Placement place(const Instance& instance) const override;
  [[nodiscard]] std::string name() const override { return "random-singleton"; }

 private:
  std::uint64_t seed_;
};

/// Baseline: task j pinned to machine j mod m (estimate-oblivious).
class RoundRobinPlacement final : public PlacementPolicy {
 public:
  [[nodiscard]] Placement place(const Instance& instance) const override;
  [[nodiscard]] std::string name() const override { return "round-robin"; }
};

}  // namespace rdp
