#include "algo/dispatch_policies.hpp"

#include <algorithm>
#include <stdexcept>

#include "algo/lpt.hpp"
#include "core/instance.hpp"
#include "core/realization.hpp"

namespace rdp {

std::string to_string(PriorityRule rule) {
  switch (rule) {
    case PriorityRule::kInputOrder: return "ls";
    case PriorityRule::kLongestEstimateFirst: return "lpt";
    case PriorityRule::kShortestEstimateFirst: return "spt";
  }
  throw std::invalid_argument("to_string: unknown PriorityRule");
}

std::vector<TaskId> make_priority(const Instance& instance, PriorityRule rule) {
  const std::size_t n = instance.num_tasks();
  std::vector<TaskId> order(n);
  for (TaskId j = 0; j < n; ++j) order[j] = j;
  switch (rule) {
    case PriorityRule::kInputOrder:
      return order;
    case PriorityRule::kLongestEstimateFirst: {
      const auto estimates = instance.estimates();
      std::stable_sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
        return estimates[a] > estimates[b];
      });
      return order;
    }
    case PriorityRule::kShortestEstimateFirst: {
      const auto estimates = instance.estimates();
      std::stable_sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
        return estimates[a] < estimates[b];
      });
      return order;
    }
  }
  throw std::invalid_argument("make_priority: unknown PriorityRule");
}

DispatchResult dispatch_with_rule(const Instance& instance, const Placement& placement,
                                  const Realization& actual, PriorityRule rule,
                                  std::vector<Time> initial_ready) {
  return dispatch_online(instance, placement, actual, make_priority(instance, rule),
                         std::move(initial_ready));
}

}  // namespace rdp
