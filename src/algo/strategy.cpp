#include "algo/strategy.hpp"

#include <stdexcept>
#include <utility>

#include "adapt/adaptive_strategy.hpp"
#include "algo/overlap.hpp"
#include "algo/selective.hpp"

#include "core/instance.hpp"
#include "core/metrics.hpp"
#include "core/realization.hpp"
#include "core/validate.hpp"

namespace rdp {

TwoPhaseStrategy::TwoPhaseStrategy(std::shared_ptr<const PlacementPolicy> placement,
                                   PriorityRule rule, std::string name)
    : placement_(std::move(placement)), rule_(rule), name_(std::move(name)) {
  if (!placement_) {
    throw std::invalid_argument("TwoPhaseStrategy: null placement policy");
  }
}

Placement TwoPhaseStrategy::place(const Instance& instance) const {
  Placement placement = placement_->place(instance);
  throw_if_invalid(check_placement(instance, placement));
  return placement;
}

StrategyResult TwoPhaseStrategy::run(const Instance& instance,
                                     const Realization& actual) const {
  StrategyResult result;
  result.placement = place(instance);
  DispatchResult dispatched = dispatch_with_rule(instance, result.placement, actual,
                                                 rule_);
  result.schedule = std::move(dispatched.schedule);
  result.trace = std::move(dispatched.trace);
  result.makespan = result.schedule.makespan();
  result.max_memory = max_memory(result.placement, instance);
  result.max_replication = result.placement.max_replication_degree();
  return result;
}

TwoPhaseStrategy make_lpt_no_choice() {
  return TwoPhaseStrategy(std::make_shared<LptNoChoicePlacement>(),
                          PriorityRule::kInputOrder, "LPT-NoChoice");
}

TwoPhaseStrategy make_lpt_no_restriction() {
  return TwoPhaseStrategy(std::make_shared<ReplicateEverywherePlacement>(),
                          PriorityRule::kLongestEstimateFirst, "LPT-NoRestriction");
}

TwoPhaseStrategy make_ls_group(MachineId k) {
  return TwoPhaseStrategy(std::make_shared<LsGroupPlacement>(k),
                          PriorityRule::kInputOrder,
                          "LS-Group(k=" + std::to_string(k) + ")");
}

TwoPhaseStrategy make_lpt_group(MachineId k) {
  return TwoPhaseStrategy(std::make_shared<LptGroupPlacement>(k),
                          PriorityRule::kLongestEstimateFirst,
                          "LPT-Group(k=" + std::to_string(k) + ")");
}

TwoPhaseStrategy make_multifit_no_choice() {
  return TwoPhaseStrategy(std::make_shared<MultifitNoChoicePlacement>(),
                          PriorityRule::kInputOrder, "MULTIFIT-NoChoice");
}

TwoPhaseStrategy make_random_no_choice(std::uint64_t seed) {
  return TwoPhaseStrategy(std::make_shared<RandomSingletonPlacement>(seed),
                          PriorityRule::kInputOrder, "Random-NoChoice");
}

TwoPhaseStrategy make_round_robin_no_choice() {
  return TwoPhaseStrategy(std::make_shared<RoundRobinPlacement>(),
                          PriorityRule::kInputOrder, "RoundRobin-NoChoice");
}

TwoPhaseStrategy make_ls_no_restriction() {
  return TwoPhaseStrategy(std::make_shared<ReplicateEverywherePlacement>(),
                          PriorityRule::kInputOrder, "LS-NoRestriction");
}

namespace {

// Splits "name:arg1:arg2" into pieces.
std::vector<std::string> split_spec(const std::string& spec) {
  std::vector<std::string> parts;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    const std::size_t colon = spec.find(':', begin);
    if (colon == std::string::npos) {
      parts.push_back(spec.substr(begin));
      break;
    }
    parts.push_back(spec.substr(begin, colon - begin));
    begin = colon + 1;
  }
  return parts;
}

double parse_spec_number(const std::vector<std::string>& parts, std::size_t index,
                         const std::string& spec) {
  if (index >= parts.size() || parts[index].empty()) {
    throw std::invalid_argument("strategy_from_spec: '" + spec +
                                "' is missing a parameter");
  }
  try {
    std::size_t consumed = 0;
    const double value = std::stod(parts[index], &consumed);
    if (consumed != parts[index].size()) throw std::invalid_argument("junk");
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("strategy_from_spec: bad parameter in '" + spec +
                                "'");
  }
}

}  // namespace

TwoPhaseStrategy strategy_from_spec(const std::string& spec) {
  const std::vector<std::string> parts = split_spec(spec);
  const std::string& name = parts.front();
  if (name == "lpt-no-choice") return make_lpt_no_choice();
  if (name == "multifit-no-choice") return make_multifit_no_choice();
  if (name == "lpt-no-restriction") return make_lpt_no_restriction();
  if (name == "ls-no-restriction") return make_ls_no_restriction();
  if (name == "round-robin") return make_round_robin_no_choice();
  if (name == "random") {
    const std::uint64_t seed =
        parts.size() > 1 ? static_cast<std::uint64_t>(
                               parse_spec_number(parts, 1, spec))
                         : 1;
    return make_random_no_choice(seed);
  }
  if (name == "ls-group") {
    return make_ls_group(static_cast<MachineId>(parse_spec_number(parts, 1, spec)));
  }
  if (name == "lpt-group") {
    return make_lpt_group(static_cast<MachineId>(parse_spec_number(parts, 1, spec)));
  }
  if (name == "sliding-window") {
    return make_sliding_window(
        static_cast<MachineId>(parse_spec_number(parts, 1, spec)));
  }
  if (name == "random-subset") {
    const auto degree = static_cast<MachineId>(parse_spec_number(parts, 1, spec));
    const std::uint64_t seed =
        parts.size() > 2 ? static_cast<std::uint64_t>(
                               parse_spec_number(parts, 2, spec))
                         : 7;
    return make_random_subset(degree, seed);
  }
  if (name == "critical-tasks") {
    return make_critical_tasks(parse_spec_number(parts, 1, spec));
  }
  if (name == "memory-budget") {
    return make_memory_budget(parse_spec_number(parts, 1, spec));
  }
  if (name == "adaptive-group") {
    AdaptiveGroupOptions options;
    if (parts.size() > 1) {
      const double classes = parse_spec_number(parts, 1, spec);
      if (classes < 1 || classes != static_cast<std::size_t>(classes)) {
        throw std::invalid_argument("strategy_from_spec: bad class count in '" +
                                    spec + "'");
      }
      options.estimator.num_classes = static_cast<std::size_t>(classes);
    }
    return make_adaptive_group(options);
  }
  throw std::invalid_argument("strategy_from_spec: unknown strategy '" + spec +
                              "'");
}

std::vector<std::string> known_strategy_specs() {
  return {"lpt-no-choice",     "multifit-no-choice", "lpt-no-restriction",
          "ls-no-restriction",
          "ls-group:K",        "lpt-group:K",        "sliding-window:R",
          "random-subset:R[:SEED]", "critical-tasks:F", "memory-budget:B",
          "adaptive-group[:CLASSES]",
          "round-robin",       "random[:SEED]"};
}

std::vector<TwoPhaseStrategy> paper_strategy_family(MachineId m) {
  std::vector<TwoPhaseStrategy> out;
  out.push_back(make_lpt_no_choice());
  for (MachineId k = m; k >= 1; --k) {
    if (m % k == 0 && k != 1) {
      out.push_back(make_ls_group(k));
    }
  }
  out.push_back(make_lpt_no_restriction());
  return out;
}

}  // namespace rdp
