#include "algo/local_search.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "algo/lpt.hpp"

namespace rdp {

namespace {

constexpr double kEps = 1e-12;

MachineId argmax_load(const std::vector<Time>& loads) {
  return static_cast<MachineId>(
      std::max_element(loads.begin(), loads.end()) - loads.begin());
}

}  // namespace

LocalSearchResult improve_assignment(std::span<const Time> p, MachineId m,
                                     const Assignment& start,
                                     std::size_t max_steps) {
  if (m == 0) throw std::invalid_argument("improve_assignment: m must be >= 1");
  if (start.num_tasks() != p.size() || !start.complete()) {
    throw std::invalid_argument("improve_assignment: start must be complete");
  }

  LocalSearchResult result;
  result.assignment = start;
  std::vector<Time> loads(m, 0);
  std::vector<std::vector<TaskId>> tasks_on(m);
  for (TaskId j = 0; j < p.size(); ++j) {
    const MachineId i = start[j];
    if (i >= m) throw std::out_of_range("improve_assignment: machine out of range");
    loads[i] += p[j];
    tasks_on[i].push_back(j);
  }

  auto relocate = [&](TaskId j, MachineId from, MachineId to) {
    auto& source = tasks_on[from];
    source.erase(std::find(source.begin(), source.end(), j));
    tasks_on[to].push_back(j);
    loads[from] -= p[j];
    loads[to] += p[j];
    result.assignment.machine_of[j] = to;
  };

  for (std::size_t step = 0; step < max_steps; ++step) {
    const MachineId critical = argmax_load(loads);
    const Time cmax = loads[critical];
    bool improved = false;

    // Moves: push a task off the critical machine wherever the pair's
    // new maximum is strictly smaller.
    for (TaskId j : tasks_on[critical]) {
      for (MachineId to = 0; to < m && !improved; ++to) {
        if (to == critical) continue;
        const Time new_pair_max =
            std::max(loads[critical] - p[j], loads[to] + p[j]);
        if (new_pair_max < cmax - kEps) {
          relocate(j, critical, to);
          ++result.moves;
          improved = true;
        }
      }
      if (improved) break;
    }
    if (improved) continue;

    // Swaps: exchange a critical task with a smaller task elsewhere.
    for (std::size_t a = 0; a < tasks_on[critical].size() && !improved; ++a) {
      const TaskId j = tasks_on[critical][a];
      for (MachineId other = 0; other < m && !improved; ++other) {
        if (other == critical) continue;
        for (std::size_t b = 0; b < tasks_on[other].size(); ++b) {
          const TaskId k = tasks_on[other][b];
          const Time delta = p[j] - p[k];
          if (delta <= kEps) continue;  // must unload the critical machine
          const Time new_pair_max =
              std::max(loads[critical] - delta, loads[other] + delta);
          if (new_pair_max < cmax - kEps) {
            relocate(j, critical, other);
            relocate(k, other, critical);
            ++result.swaps;
            improved = true;
            break;
          }
        }
      }
    }
    if (!improved) {
      result.converged = true;
      break;
    }
  }

  result.makespan = *std::max_element(loads.begin(), loads.end());
  return result;
}

LocalSearchResult lpt_plus_local_search(std::span<const Time> p, MachineId m,
                                        std::size_t max_steps) {
  const GreedyScheduleResult lpt = lpt_schedule(p, m);
  return improve_assignment(p, m, lpt.assignment, max_steps);
}

}  // namespace rdp
