#include "algo/selective.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "algo/lpt.hpp"
#include "core/instance.hpp"

namespace rdp {

namespace {

std::vector<MachineId> all_machines(MachineId m) {
  std::vector<MachineId> all(m);
  for (MachineId i = 0; i < m; ++i) all[i] = i;
  return all;
}

}  // namespace

CriticalTasksPlacement::CriticalTasksPlacement(double critical_fraction)
    : fraction_(critical_fraction) {
  if (fraction_ < 0.0 || fraction_ > 1.0) {
    throw std::invalid_argument(
        "CriticalTasksPlacement: fraction must be in [0, 1]");
  }
}

Placement CriticalTasksPlacement::place(const Instance& instance) const {
  const std::size_t n = instance.num_tasks();
  const MachineId m = instance.num_machines();
  const auto estimates = instance.estimates();
  const std::vector<TaskId> by_size = lpt_order(estimates);

  std::size_t num_critical = 0;
  if (fraction_ > 0.0 && n > 0) {
    num_critical = static_cast<std::size_t>(
        std::ceil(fraction_ * static_cast<double>(n)));
    num_critical = std::min(num_critical, n);
  }

  std::vector<bool> critical(n, false);
  for (std::size_t r = 0; r < num_critical; ++r) critical[by_size[r]] = true;

  // Pin the non-critical tasks with LPT *on the full task set* so the
  // pinned loads anticipate that critical tasks will flow online: we
  // schedule everything with LPT but only keep the assignment for the
  // pinned tasks.
  const GreedyScheduleResult lpt = lpt_schedule(estimates, m);

  std::vector<std::vector<MachineId>> sets(n);
  const std::vector<MachineId> everywhere = all_machines(m);
  for (TaskId j = 0; j < n; ++j) {
    if (critical[j]) {
      sets[j] = everywhere;
    } else {
      sets[j] = {lpt.assignment[j]};
    }
  }
  return Placement(std::move(sets), m);
}

std::string CriticalTasksPlacement::name() const {
  return "critical-tasks(f=" + std::to_string(fraction_) + ")";
}

MemoryBudgetPlacement::MemoryBudgetPlacement(double extra_memory_budget)
    : budget_(extra_memory_budget) {
  if (budget_ < 0.0) {
    throw std::invalid_argument("MemoryBudgetPlacement: budget must be >= 0");
  }
}

Placement MemoryBudgetPlacement::place(const Instance& instance) const {
  const std::size_t n = instance.num_tasks();
  const MachineId m = instance.num_machines();
  const auto estimates = instance.estimates();
  const GreedyScheduleResult lpt = lpt_schedule(estimates, m);

  std::vector<std::vector<MachineId>> sets(n);
  for (TaskId j = 0; j < n; ++j) sets[j] = {lpt.assignment[j]};

  // Spend the extra-replica budget on the longest tasks first: they are
  // the ones whose misprediction costs the most.
  double remaining = budget_;
  const std::vector<MachineId> everywhere = all_machines(m);
  for (TaskId j : lpt_order(estimates)) {
    const double widen_cost = instance.size(j) * static_cast<double>(m - 1);
    if (widen_cost <= 0.0) {
      sets[j] = everywhere;  // free to replicate
      continue;
    }
    if (widen_cost <= remaining) {
      sets[j] = everywhere;
      remaining -= widen_cost;
    }
  }
  return Placement(std::move(sets), m);
}

std::string MemoryBudgetPlacement::name() const {
  return "memory-budget(b=" + std::to_string(budget_) + ")";
}

TwoPhaseStrategy make_critical_tasks(double critical_fraction) {
  return TwoPhaseStrategy(
      std::make_shared<CriticalTasksPlacement>(critical_fraction),
      PriorityRule::kLongestEstimateFirst,
      "CriticalTasks(f=" + std::to_string(critical_fraction) + ")");
}

TwoPhaseStrategy make_memory_budget(double extra_memory_budget) {
  return TwoPhaseStrategy(
      std::make_shared<MemoryBudgetPlacement>(extra_memory_budget),
      PriorityRule::kLongestEstimateFirst,
      "MemoryBudget(b=" + std::to_string(extra_memory_budget) + ")");
}

}  // namespace rdp
