// Two-phase strategies: a phase-1 placement policy paired with a phase-2
// priority rule. The factories at the bottom construct exactly the
// algorithms named in the paper.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "algo/dispatch_policies.hpp"
#include "algo/placement_policies.hpp"
#include "core/placement.hpp"
#include "core/schedule.hpp"
#include "core/types.hpp"
#include "sim/online_dispatcher.hpp"

namespace rdp {

class Instance;
struct Realization;

/// Everything a strategy run produces, ready for metric extraction.
struct StrategyResult {
  Placement placement;     ///< phase-1 output
  Schedule schedule;       ///< phase-2 output (timed)
  DispatchTrace trace;     ///< phase-2 decision log
  Time makespan = 0;       ///< C_max under the realization
  double max_memory = 0;   ///< Mem_max of the placement (replica sizes)
  std::size_t max_replication = 0;  ///< max_j |M_j|
};

/// A named (placement policy, priority rule) pair.
class TwoPhaseStrategy {
 public:
  TwoPhaseStrategy(std::shared_ptr<const PlacementPolicy> placement,
                   PriorityRule rule, std::string name);

  /// Runs phase 1 only.
  [[nodiscard]] Placement place(const Instance& instance) const;

  /// Runs both phases against a realization of the actual times.
  [[nodiscard]] StrategyResult run(const Instance& instance,
                                   const Realization& actual) const;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] PriorityRule rule() const noexcept { return rule_; }
  [[nodiscard]] const PlacementPolicy& placement_policy() const noexcept {
    return *placement_;
  }

 private:
  std::shared_ptr<const PlacementPolicy> placement_;
  PriorityRule rule_;
  std::string name_;
};

/// Strategy 1 of the paper: LPT placement on a single machine per task;
/// phase 2 has no decisions (Theorem 2 guarantee).
[[nodiscard]] TwoPhaseStrategy make_lpt_no_choice();

/// Strategy 2 of the paper: replicate everywhere, online LPT dispatch
/// (Theorem 3 guarantee).
[[nodiscard]] TwoPhaseStrategy make_lpt_no_restriction();

/// Strategy 3 of the paper: LS to k groups, online LS within groups
/// (Theorem 4 guarantee). k must divide m at run time.
[[nodiscard]] TwoPhaseStrategy make_ls_group(MachineId k);

/// Extension: LPT in both phases over k groups.
[[nodiscard]] TwoPhaseStrategy make_lpt_group(MachineId k);

/// Ablation: MULTIFIT phase-1 packing, no replication.
[[nodiscard]] TwoPhaseStrategy make_multifit_no_choice();

/// Baselines for experiments.
[[nodiscard]] TwoPhaseStrategy make_random_no_choice(std::uint64_t seed);
[[nodiscard]] TwoPhaseStrategy make_round_robin_no_choice();

/// Graham's plain online List Scheduling with full replication -- the
/// classical 2 - 1/m competitive baseline the paper compares against.
[[nodiscard]] TwoPhaseStrategy make_ls_no_restriction();

/// The strategies of the paper's Table 1, for sweep harnesses:
/// LPT-NoChoice, LS-Group for each divisor k of m, LPT-NoRestriction.
[[nodiscard]] std::vector<TwoPhaseStrategy> paper_strategy_family(MachineId m);

/// Resolves a strategy from a textual spec (CLI / config files):
///   "lpt-no-choice" | "lpt-no-restriction" | "ls-no-restriction" |
///   "ls-group:K" | "lpt-group:K" | "sliding-window:R" |
///   "random-subset:R[:SEED]" | "critical-tasks:F" | "memory-budget:B" |
///   "adaptive-group[:CLASSES]" | "round-robin" | "random[:SEED]"
/// Throws std::invalid_argument on an unknown name or malformed
/// parameter.
[[nodiscard]] TwoPhaseStrategy strategy_from_spec(const std::string& spec);

/// All specs strategy_from_spec understands (for usage messages).
[[nodiscard]] std::vector<std::string> known_strategy_specs();

}  // namespace rdp
