// Phase-2 policies: the priority rule fed to the online dispatcher.
#pragma once

#include <string>
#include <vector>

#include "core/types.hpp"
#include "sim/online_dispatcher.hpp"

namespace rdp {

class Instance;
class Placement;
struct Realization;

/// Order in which the semi-clairvoyant dispatcher offers tasks to idle
/// machines. Only estimates may inform the order (actual times are
/// unknown until completion).
enum class PriorityRule {
  kInputOrder,            ///< Graham's List Scheduling
  kLongestEstimateFirst,  ///< online LPT over estimates
  kShortestEstimateFirst, ///< SPT baseline (extension)
};

/// Printable name of a rule ("ls", "lpt", "spt").
[[nodiscard]] std::string to_string(PriorityRule rule);

/// Builds the task permutation realizing `rule` on `instance`.
[[nodiscard]] std::vector<TaskId> make_priority(const Instance& instance,
                                                PriorityRule rule);

/// Convenience wrapper: build the priority for `rule` and run phase 2.
[[nodiscard]] DispatchResult dispatch_with_rule(const Instance& instance,
                                                const Placement& placement,
                                                const Realization& actual,
                                                PriorityRule rule,
                                                std::vector<Time> initial_ready = {});

}  // namespace rdp
