// Local-search improvement for P||Cmax assignments: first-improvement
// move/swap descent from any starting assignment. Used to tighten upper
// bounds beyond LPT/MULTIFIT (the incumbent fed to branch-and-bound) and
// as an any-time "polish" pass for large instances where exact search is
// out of reach.
#pragma once

#include <cstdint>
#include <span>

#include "core/schedule.hpp"
#include "core/types.hpp"

namespace rdp {

struct LocalSearchResult {
  Assignment assignment;
  Time makespan = 0;
  std::size_t moves = 0;   ///< single-task relocations applied
  std::size_t swaps = 0;   ///< pairwise exchanges applied
  bool converged = false;  ///< true when no improving move/swap remains
};

/// Descends from `start` (must be complete). A *move* relocates one task
/// off a critical machine; a *swap* exchanges tasks between a critical
/// machine and another. Each accepted step strictly reduces the makespan
/// (lexicographically: makespan, then the critical machine's load), so
/// termination is guaranteed; `max_steps` additionally caps the work.
[[nodiscard]] LocalSearchResult improve_assignment(std::span<const Time> p,
                                                   MachineId m,
                                                   const Assignment& start,
                                                   std::size_t max_steps = 100'000);

/// Convenience: LPT start + descent.
[[nodiscard]] LocalSearchResult lpt_plus_local_search(std::span<const Time> p,
                                                      MachineId m,
                                                      std::size_t max_steps = 100'000);

}  // namespace rdp
