// Graham's List Scheduling kernel (offline form): take tasks one at a time
// in a given order and put each on the currently least-loaded machine.
// This is the building block of every phase-1 policy in the library.
#pragma once

#include <span>
#include <vector>

#include "core/schedule.hpp"
#include "core/types.hpp"

namespace rdp {

/// Result of an offline greedy schedule over a weight vector.
struct GreedyScheduleResult {
  Assignment assignment;    ///< task -> machine
  std::vector<Time> loads;  ///< final per-machine load
  Time makespan = 0;        ///< max load
};

/// List Scheduling in input order (task 0 first). Ties between equally
/// loaded machines break toward the smallest machine id, which makes the
/// kernel fully deterministic.
[[nodiscard]] GreedyScheduleResult list_schedule(std::span<const Time> weights,
                                                 MachineId num_machines);

/// List Scheduling in an explicit order (a permutation of task ids).
/// `order` may be a prefix (only those tasks get assigned; the rest stay
/// kNoMachine and contribute no load).
[[nodiscard]] GreedyScheduleResult list_schedule(std::span<const Time> weights,
                                                 MachineId num_machines,
                                                 std::span<const TaskId> order);

/// List Scheduling that starts from pre-existing machine loads (used by
/// ABO phase 2, where replicated tasks are dispatched after the pinned
/// memory-intensive tasks).
[[nodiscard]] GreedyScheduleResult list_schedule_onto(std::span<const Time> weights,
                                                      std::span<const TaskId> order,
                                                      std::vector<Time> initial_loads);

}  // namespace rdp
