#include "algo/list_scheduling.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <utility>

namespace rdp {

namespace {

struct MachineSlot {
  Time load;
  MachineId id;
  // Min-heap on (load, id): std::priority_queue is a max-heap, so invert.
  bool operator<(const MachineSlot& other) const noexcept {
    if (load != other.load) return load > other.load;
    return id > other.id;
  }
};

GreedyScheduleResult greedy_over(std::span<const Time> weights,
                                 std::span<const TaskId> order,
                                 std::vector<Time> initial_loads) {
  const auto m = static_cast<MachineId>(initial_loads.size());
  if (m == 0) throw std::invalid_argument("list_schedule: need at least one machine");

  GreedyScheduleResult result;
  result.assignment = Assignment(weights.size());
  result.loads = std::move(initial_loads);

  std::priority_queue<MachineSlot> heap;
  for (MachineId i = 0; i < m; ++i) heap.push({result.loads[i], i});

  for (TaskId j : order) {
    if (j >= weights.size()) {
      throw std::out_of_range("list_schedule: task id out of range");
    }
    if (result.assignment[j] != kNoMachine) {
      throw std::invalid_argument("list_schedule: duplicate task in order");
    }
    MachineSlot slot = heap.top();
    heap.pop();
    result.assignment.machine_of[j] = slot.id;
    slot.load += weights[j];
    result.loads[slot.id] = slot.load;
    heap.push(slot);
  }
  result.makespan =
      result.loads.empty() ? 0 : *std::max_element(result.loads.begin(), result.loads.end());
  return result;
}

}  // namespace

GreedyScheduleResult list_schedule(std::span<const Time> weights,
                                   MachineId num_machines) {
  std::vector<TaskId> order(weights.size());
  for (TaskId j = 0; j < weights.size(); ++j) order[j] = j;
  return greedy_over(weights, order, std::vector<Time>(num_machines, 0));
}

GreedyScheduleResult list_schedule(std::span<const Time> weights, MachineId num_machines,
                                   std::span<const TaskId> order) {
  return greedy_over(weights, order, std::vector<Time>(num_machines, 0));
}

GreedyScheduleResult list_schedule_onto(std::span<const Time> weights,
                                        std::span<const TaskId> order,
                                        std::vector<Time> initial_loads) {
  return greedy_over(weights, order, std::move(initial_loads));
}

}  // namespace rdp
