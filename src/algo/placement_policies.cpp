#include "algo/placement_policies.hpp"

#include <stdexcept>
#include <vector>

#include "algo/list_scheduling.hpp"
#include "algo/lpt.hpp"
#include "core/instance.hpp"
#include "exact/dual_approx.hpp"
#include "rng/rng.hpp"

namespace rdp {

namespace {

void require_divides(MachineId k, MachineId m) {
  if (k == 0 || m % k != 0) {
    throw std::invalid_argument("group placement: k must divide m (k=" +
                                std::to_string(k) + ", m=" + std::to_string(m) + ")");
  }
}

}  // namespace

Placement LptNoChoicePlacement::place(const Instance& instance) const {
  const auto estimates = instance.estimates();
  const GreedyScheduleResult lpt = lpt_schedule(estimates, instance.num_machines());
  return Placement::singleton(lpt.assignment.machine_of, instance.num_machines());
}

Placement ReplicateEverywherePlacement::place(const Instance& instance) const {
  return Placement::everywhere(instance.num_tasks(), instance.num_machines());
}

LsGroupPlacement::LsGroupPlacement(MachineId num_groups) : k_(num_groups) {
  if (k_ == 0) throw std::invalid_argument("LsGroupPlacement: k must be >= 1");
}

Placement LsGroupPlacement::place(const Instance& instance) const {
  require_divides(k_, instance.num_machines());
  const auto estimates = instance.estimates();
  // List Scheduling over k "virtual machines" = the groups, input order.
  const GreedyScheduleResult groups = list_schedule(estimates, k_);
  return Placement::in_groups(groups.assignment.machine_of, k_,
                              instance.num_machines());
}

std::string LsGroupPlacement::name() const {
  return "ls-group(k=" + std::to_string(k_) + ")";
}

LptGroupPlacement::LptGroupPlacement(MachineId num_groups) : k_(num_groups) {
  if (k_ == 0) throw std::invalid_argument("LptGroupPlacement: k must be >= 1");
}

Placement LptGroupPlacement::place(const Instance& instance) const {
  require_divides(k_, instance.num_machines());
  const auto estimates = instance.estimates();
  const GreedyScheduleResult groups = lpt_schedule(estimates, k_);
  return Placement::in_groups(groups.assignment.machine_of, k_,
                              instance.num_machines());
}

std::string LptGroupPlacement::name() const {
  return "lpt-group(k=" + std::to_string(k_) + ")";
}

Placement MultifitNoChoicePlacement::place(const Instance& instance) const {
  const auto estimates = instance.estimates();
  const MultifitResult mf = multifit_cmax(estimates, instance.num_machines());
  return Placement::singleton(mf.assignment.machine_of, instance.num_machines());
}

Placement RandomSingletonPlacement::place(const Instance& instance) const {
  Xoshiro256 rng(seed_);
  std::vector<MachineId> machine_of(instance.num_tasks());
  for (auto& i : machine_of) {
    i = static_cast<MachineId>(rng.next_below(instance.num_machines()));
  }
  return Placement::singleton(machine_of, instance.num_machines());
}

Placement RoundRobinPlacement::place(const Instance& instance) const {
  std::vector<MachineId> machine_of(instance.num_tasks());
  for (TaskId j = 0; j < machine_of.size(); ++j) {
    machine_of[j] = static_cast<MachineId>(j % instance.num_machines());
  }
  return Placement::singleton(machine_of, instance.num_machines());
}

}  // namespace rdp
