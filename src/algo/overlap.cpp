#include "algo/overlap.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

#include "core/instance.hpp"
#include "rng/rng.hpp"

namespace rdp {

SlidingWindowPlacement::SlidingWindowPlacement(MachineId window) : window_(window) {
  if (window_ == 0) {
    throw std::invalid_argument("SlidingWindowPlacement: window must be >= 1");
  }
}

Placement SlidingWindowPlacement::place(const Instance& instance) const {
  const MachineId m = instance.num_machines();
  if (window_ > m) {
    throw std::invalid_argument("SlidingWindowPlacement: window exceeds m");
  }
  const std::size_t n = instance.num_tasks();
  const double r = static_cast<double>(window_);

  // Greedy anchor choice: each machine carries an accumulated fractional
  // load (estimate/r for every window covering it); a task anchors at the
  // start position whose window currently has the smallest total load.
  std::vector<double> load(m, 0.0);
  std::vector<std::vector<MachineId>> sets(n);
  for (TaskId j = 0; j < n; ++j) {
    MachineId best_anchor = 0;
    double best_load = std::numeric_limits<double>::infinity();
    for (MachineId a = 0; a < m; ++a) {
      double window_load = 0;
      for (MachineId o = 0; o < window_; ++o) {
        window_load += load[(a + o) % m];
      }
      if (window_load < best_load) {
        best_load = window_load;
        best_anchor = a;
      }
    }
    std::vector<MachineId> set(window_);
    for (MachineId o = 0; o < window_; ++o) {
      const MachineId machine = (best_anchor + o) % m;
      set[o] = machine;
      load[machine] += instance.estimate(j) / r;
    }
    sets[j] = std::move(set);
  }
  return Placement(std::move(sets), m);
}

std::string SlidingWindowPlacement::name() const {
  return "sliding-window(r=" + std::to_string(window_) + ")";
}

RandomSubsetPlacement::RandomSubsetPlacement(MachineId degree, std::uint64_t seed)
    : degree_(degree), seed_(seed) {
  if (degree_ == 0) {
    throw std::invalid_argument("RandomSubsetPlacement: degree must be >= 1");
  }
}

Placement RandomSubsetPlacement::place(const Instance& instance) const {
  const MachineId m = instance.num_machines();
  if (degree_ > m) {
    throw std::invalid_argument("RandomSubsetPlacement: degree exceeds m");
  }
  Xoshiro256 rng(seed_);
  std::vector<std::vector<MachineId>> sets(instance.num_tasks());
  std::vector<MachineId> pool(m);
  for (MachineId i = 0; i < m; ++i) pool[i] = i;
  for (auto& set : sets) {
    // Partial Fisher-Yates: first `degree_` entries become the subset.
    for (MachineId d = 0; d < degree_; ++d) {
      const auto pick =
          d + static_cast<MachineId>(rng.next_below(m - d));
      std::swap(pool[d], pool[pick]);
    }
    set.assign(pool.begin(), pool.begin() + degree_);
  }
  return Placement(std::move(sets), m);
}

std::string RandomSubsetPlacement::name() const {
  return "random-subset(r=" + std::to_string(degree_) + ")";
}

TwoPhaseStrategy make_sliding_window(MachineId window) {
  return TwoPhaseStrategy(std::make_shared<SlidingWindowPlacement>(window),
                          PriorityRule::kInputOrder,
                          "SlidingWindow(r=" + std::to_string(window) + ")");
}

TwoPhaseStrategy make_random_subset(MachineId degree, std::uint64_t seed) {
  return TwoPhaseStrategy(std::make_shared<RandomSubsetPlacement>(degree, seed),
                          PriorityRule::kInputOrder,
                          "RandomSubset(r=" + std::to_string(degree) + ")");
}

}  // namespace rdp
