// Noise-aware benchmark comparison: diffs a fresh BenchRecord against a
// committed baseline and decides, per metric, whether the change is a
// regression, an improvement, or noise.
//
// The threshold for each metric is the widest of three slacks --
//   rel_tolerance * |baseline|     (relative, per noise class)
//   mad_multiplier * baseline.mad  (the baseline's own measured jitter)
//   metric.abs_slack               (absolute floor for near-zero baselines)
// -- and only a change *in the worse direction* beyond the threshold
// regresses. Metrics with direction "none" are reported but never gate.
// Schema-level problems (params drift, metrics that vanished) are
// regressions too: a gate that silently stops measuring is worse than a
// slow gate.
#pragma once

#include <string>
#include <vector>

#include "perf/bench_record.hpp"

namespace rdp::perf {

struct CompareOptions {
  double timing_rel_tolerance = 0.20;  ///< "timing" metrics: 20% relative
  double exact_rel_tolerance = 1e-9;   ///< "exact" metrics: bit-for-bit-ish
  double mad_multiplier = 4.0;         ///< slack per unit of baseline MAD
  /// Treat a params-hash mismatch as a warning instead of a regression
  /// (for comparing across intentional parameter changes).
  bool ignore_params = false;
};

struct MetricVerdict {
  std::string name;
  double baseline = 0;
  double current = 0;
  double delta = 0;        ///< current - baseline
  double threshold = 0;    ///< slack granted before calling it a change
  std::string direction;   ///< "lower" | "higher" | "none"
  std::string noise;       ///< "timing" | "exact" (from the baseline metric)
  /// "ok" | "improved" | "regressed" | "info" | "missing" | "new"
  std::string status;

  [[nodiscard]] bool regressed() const { return status == "regressed" || status == "missing"; }
};

struct CompareResult {
  std::string bench;            ///< benchmark name
  std::string baseline_source;  ///< where the baseline came from
  std::string current_source;
  bool params_match = true;
  bool host_match = true;       ///< informational: cross-host diffs are noisy
  std::vector<MetricVerdict> metrics;
  std::vector<std::string> notes;  ///< human-readable warnings

  /// True when any gated metric regressed/vanished, or params drifted
  /// (unless ignore_params).
  [[nodiscard]] bool regressed() const;

  /// True when an "exact"-noise-class metric (counters, iteration counts,
  /// bit-mismatch totals -- deterministic by contract) regressed or
  /// vanished, or params drifted. These stay enforced even when timing
  /// regressions are downgraded to warnings on shared runners
  /// (`perf gate --warn-only --enforce-exact`).
  [[nodiscard]] bool exact_regressed() const;

  /// Fixed-width human diff table plus notes.
  [[nodiscard]] std::string render_table() const;

  /// Machine verdict: {bench, regressed, params_match, metrics: [...]}.
  [[nodiscard]] JsonValue to_json() const;
};

/// Compares `current` against `baseline` metric-by-metric.
[[nodiscard]] CompareResult compare_records(const BenchRecord& baseline,
                                            const BenchRecord& current,
                                            const CompareOptions& options = {});

}  // namespace rdp::perf
