#include "perf/compare.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "io/json.hpp"
#include "io/table.hpp"

namespace rdp::perf {

namespace {

double threshold_for(const BenchMetric& baseline, const CompareOptions& options) {
  const double rel = baseline.noise == "exact" ? options.exact_rel_tolerance
                                               : options.timing_rel_tolerance;
  return std::max({rel * std::fabs(baseline.value),
                   options.mad_multiplier * baseline.mad, baseline.abs_slack});
}

}  // namespace

bool CompareResult::regressed() const {
  if (!params_match) return true;
  return std::any_of(metrics.begin(), metrics.end(),
                     [](const MetricVerdict& v) { return v.regressed(); });
}

bool CompareResult::exact_regressed() const {
  if (!params_match) return true;
  return std::any_of(metrics.begin(), metrics.end(), [](const MetricVerdict& v) {
    return v.noise == "exact" && v.regressed();
  });
}

std::string CompareResult::render_table() const {
  std::ostringstream out;
  out << "perf compare: " << bench << "  (baseline " << baseline_source
      << " vs current " << current_source << ")\n";
  TextTable table({"metric", "dir", "baseline", "current", "delta",
                   "threshold", "status"});
  for (const MetricVerdict& v : metrics) {
    table.add_row({v.name, v.direction, fmt(v.baseline), fmt(v.current),
                   fmt(v.delta), fmt(v.threshold), v.status});
  }
  out << table.render();
  for (const std::string& note : notes) out << "note: " << note << "\n";
  out << (regressed() ? "verdict: REGRESSED\n" : "verdict: OK\n");
  return out.str();
}

JsonValue CompareResult::to_json() const {
  JsonArray metric_array;
  for (const MetricVerdict& v : metrics) {
    JsonObject obj;
    obj["name"] = v.name;
    obj["baseline"] = v.baseline;
    obj["current"] = v.current;
    obj["delta"] = v.delta;
    obj["threshold"] = v.threshold;
    obj["direction"] = v.direction;
    obj["noise"] = v.noise;
    obj["status"] = v.status;
    metric_array.emplace_back(std::move(obj));
  }
  JsonArray note_array;
  for (const std::string& note : notes) note_array.emplace_back(note);
  JsonObject root;
  root["bench"] = bench;
  root["baseline_source"] = baseline_source;
  root["current_source"] = current_source;
  root["params_match"] = params_match;
  root["host_match"] = host_match;
  root["regressed"] = regressed();
  root["exact_regressed"] = exact_regressed();
  root["metrics"] = std::move(metric_array);
  root["notes"] = std::move(note_array);
  return JsonValue(std::move(root));
}

CompareResult compare_records(const BenchRecord& baseline,
                              const BenchRecord& current,
                              const CompareOptions& options) {
  CompareResult result;
  result.bench = baseline.name;
  result.baseline_source = baseline.source;
  result.current_source = current.source;

  // Differing names alone are only a note (`perf record --name=...`
  // renames records); params_hash is what identifies the workload, and a
  // genuinely different benchmark fails anyway through missing metrics.
  if (baseline.name != current.name) {
    result.notes.push_back("record names differ: baseline '" + baseline.name +
                           "' vs current '" + current.name + "'");
  }
  if (!baseline.params_hash.empty() && !current.params_hash.empty() &&
      baseline.params_hash != current.params_hash) {
    result.params_match = false;
    result.notes.push_back(
        "params hash mismatch (" + baseline.params_hash + " vs " +
        current.params_hash + "): the runs measured different workloads" +
        (options.ignore_params ? " [ignored by --ignore-params]" : ""));
  }
  if (options.ignore_params) result.params_match = true;
  if (!baseline.host.empty() && !current.host.empty() &&
      baseline.host != current.host) {
    result.host_match = false;
    result.notes.push_back("host fingerprint differs (" + baseline.host +
                           " vs " + current.host +
                           "): absolute timings are not comparable across "
                           "machines, expect noise");
  }

  for (const auto& [name, base] : baseline.metrics) {
    MetricVerdict v;
    v.name = name;
    v.baseline = base.value;
    v.direction = base.direction;
    v.noise = base.noise;
    v.threshold = threshold_for(base, options);
    const BenchMetric* cur = current.find(name);
    if (cur == nullptr) {
      if (base.direction == "none") continue;  // informational, may come and go
      v.status = "missing";
      result.metrics.push_back(std::move(v));
      continue;
    }
    v.current = cur->value;
    v.delta = cur->value - base.value;
    if (base.direction == "none") {
      v.status = "info";
    } else if (std::fabs(v.delta) <= v.threshold) {
      v.status = "ok";
    } else {
      const bool worse = base.direction == "lower" ? v.delta > 0 : v.delta < 0;
      v.status = worse ? "regressed" : "improved";
    }
    result.metrics.push_back(std::move(v));
  }
  for (const auto& [name, cur] : current.metrics) {
    if (baseline.find(name) != nullptr) continue;
    MetricVerdict v;
    v.name = name;
    v.current = cur.value;
    v.direction = cur.direction;
    v.noise = cur.noise;
    v.status = "new";
    result.metrics.push_back(std::move(v));
  }
  return result;
}

}  // namespace rdp::perf
