// Normalized benchmark records for the perf regression gate.
//
// Every benchmark in this repo writes its own ad-hoc JSON shape
// (BENCH_certify.json nests timing/cache/checks, BENCH_check_overhead.json
// is flat, --metrics-out snapshots have counters/gauges/histograms). A
// BenchRecord flattens any of them into one schema -- metric name ->
// {value, direction, noise class, repeats} -- plus the provenance a
// comparison needs to be honest: which parameters produced the numbers
// (hashed), on which host, at which git revision. `rdp_cli perf record`
// normalizes raw bench output into committed baselines under
// bench/baselines/; `perf compare`/`perf gate` (perf/compare.hpp) diff a
// fresh run against them.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rdp {
class JsonValue;
}

namespace rdp::perf {

/// One normalized metric. `value` is the representative number used for
/// comparison: the *best* observation across repeats (min for
/// lower-is-better, max for higher-is-better), which is the standard
/// noise-rejection trick for timing benchmarks -- noise only ever makes
/// timings worse, so min-of-k converges on the true cost.
struct BenchMetric {
  std::string name;
  double value = 0;

  /// Which way is better: "lower" (seconds, mismatch counts), "higher"
  /// (hit rate, speedup), or "none" (informational -- recorded and
  /// reported but never gated on).
  std::string direction = "lower";

  /// Noise class: "timing" metrics get the wide relative tolerance and
  /// MAD-based slack; "exact" metrics (counts, rates, numerical error
  /// bounds) must match up to tiny numeric tolerances.
  std::string noise = "timing";

  /// Absolute slack always granted in comparisons, independent of the
  /// relative tolerance. Used for metrics whose baseline is legitimately
  /// near zero (per-dispatch overhead in nanoseconds) where a relative
  /// threshold degenerates.
  double abs_slack = 0;

  /// Every observation that went into `value` (>= 1 entry). Populated
  /// with more than one entry by min-of-k recording.
  std::vector<double> repeats;

  /// Median absolute deviation of `repeats` -- the comparison widens its
  /// threshold by a multiple of this, so noisy metrics self-report how
  /// much slack they need. 0 with a single repeat.
  double mad = 0;
};

/// A normalized benchmark run: the unit `perf compare` diffs.
struct BenchRecord {
  int schema_version = 1;
  std::string name;         ///< logical bench name, e.g. "certify_smoke"
  std::string source;       ///< filename of the raw output this normalizes
  std::string params_hash;  ///< 16-hex FNV-1a of the params JSON ("" = none)
  std::string params_json;  ///< compact dump of the params object, for humans
  std::string git_sha;      ///< HEAD at record time ("unknown" outside git)
  std::string host;         ///< host fingerprint, e.g. "Linux/x86_64/ncpu=8"
  std::map<std::string, BenchMetric> metrics;

  [[nodiscard]] const BenchMetric* find(const std::string& metric) const;

  [[nodiscard]] std::string to_json(int indent = 2) const;
  void save(const std::string& path) const;
};

/// Normalizes a parsed benchmark JSON document into a BenchRecord,
/// dispatching on document *structure*, not filename:
///   - "schema_version" + "metrics"        -> already-normalized record
///   - "timing" + "cache"                  -> ext_certify_speedup shape
///   - "multiplier" + "baseline_seconds"   -> ext_check_overhead shape
///   - "counters" + "histograms"           -> --metrics-out snapshot
/// Throws std::runtime_error naming `source` on any other shape.
[[nodiscard]] BenchRecord normalize_bench_json(const JsonValue& doc,
                                               const std::string& source);

/// Reads and normalizes one benchmark JSON file (any supported shape).
/// Throws std::runtime_error on missing file / parse error / unknown shape.
[[nodiscard]] BenchRecord load_bench_file(const std::string& path);

/// Merges k >= 1 records of the *same* benchmark (same name, same params
/// hash -- throws on mismatch) into one min-of-k record: each metric's
/// repeats are concatenated, `value` becomes the best repeat in the
/// metric's direction, and `mad` is recomputed over all repeats.
[[nodiscard]] BenchRecord merge_repeats(const std::vector<BenchRecord>& runs);

/// "sysname/machine/ncpu=N" via uname(2), or "unknown" where unavailable.
/// Comparisons across differing fingerprints still run but are flagged.
[[nodiscard]] std::string host_fingerprint();

/// FNV-1a over a string, formatted as 16 hex digits (the same convention
/// as the repro manifest's input hashes).
[[nodiscard]] std::string fnv1a_hex(const std::string& text);

}  // namespace rdp::perf
