#include "perf/bench_record.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/utsname.h>
#endif

#include "io/json.hpp"
#include "repro/manifest.hpp"

namespace rdp::perf {

namespace {

double median(std::vector<double> xs) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  const std::size_t n = xs.size();
  return n % 2 == 1 ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

double median_abs_deviation(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0;
  const double med = median(xs);
  std::vector<double> dev;
  dev.reserve(xs.size());
  for (double x : xs) dev.push_back(std::fabs(x - med));
  return median(std::move(dev));
}

/// Recomputes `value` (best repeat in direction) and `mad` from repeats.
void finalize_metric(BenchMetric& m) {
  if (m.repeats.empty()) m.repeats.push_back(m.value);
  if (m.direction == "higher") {
    m.value = *std::max_element(m.repeats.begin(), m.repeats.end());
  } else {
    m.value = *std::min_element(m.repeats.begin(), m.repeats.end());
  }
  m.mad = median_abs_deviation(m.repeats);
}

void add_metric(BenchRecord& record, std::string name, double value,
                std::string direction, std::string noise, double abs_slack = 0) {
  BenchMetric m;
  m.name = name;
  m.value = value;
  m.direction = std::move(direction);
  m.noise = std::move(noise);
  m.abs_slack = abs_slack;
  m.repeats.push_back(value);
  record.metrics.emplace(std::move(name), std::move(m));
}

/// ext_certify_speedup shape: {params, timing, cache, checks, series}.
BenchRecord normalize_certify(const JsonValue& doc, const std::string& source) {
  BenchRecord record;
  record.name = "certify";
  record.source = source;
  if (const JsonValue* params = doc.find("params")) {
    record.params_json = params->dump(-1);
    record.params_hash = fnv1a_hex(record.params_json);
  }
  const JsonValue* timing = doc.find("timing");
  for (const char* key : {"engine_seq_seconds", "engine_par_seconds",
                          "legacy_seconds"}) {
    add_metric(record, std::string("timing.") + key, timing->get_number(key),
               "lower", "timing");
  }
  for (const char* key : {"speedup_seq", "speedup_par"}) {
    add_metric(record, std::string("timing.") + key, timing->get_number(key),
               "higher", "timing");
  }
  if (const JsonValue* cache = doc.find("cache")) {
    add_metric(record, "cache.hit_rate", cache->get_number("hit_rate"),
               "higher", "exact");
  }
  if (const JsonValue* checks = doc.find("checks")) {
    add_metric(record, "checks.seq_par_bit_mismatches",
               checks->get_number("seq_par_bit_mismatches"), "lower", "exact");
    // Numerical agreement with the legacy path: a few ulps of 1.0 is the
    // expected magnitude, so grant absolute slack well above that but far
    // below anything indicating a real numerics change.
    add_metric(record, "checks.max_abs_diff_vs_legacy",
               checks->get_number("max_abs_diff_vs_legacy"), "lower", "exact",
               /*abs_slack=*/1e-12);
  }
  return record;
}

/// ext_check_overhead shape: flat object with multiplier/..._seconds keys.
BenchRecord normalize_check_overhead(const JsonValue& doc,
                                     const std::string& source) {
  BenchRecord record;
  record.name = "check_overhead";
  record.source = source;
  JsonObject params;
  params["cases"] = doc.get_number("cases");
  params["reps"] = doc.get_number("reps");
  record.params_json = JsonValue(std::move(params)).dump(-1);
  record.params_hash = fnv1a_hex(record.params_json);
  for (const char* key : {"baseline_seconds", "guarded_off_seconds",
                          "guarded_on_seconds"}) {
    add_metric(record, key, doc.get_number(key), "lower", "timing");
  }
  // Per-dispatch overheads are differences of noisy timings and can be a
  // handful of (even negative) nanoseconds: grant absolute slack so the
  // gate only fires on order-of-magnitude blowups, not scheduler jitter.
  add_metric(record, "off_overhead_ns_per_dispatch",
             doc.get_number("off_overhead_ns_per_dispatch"), "lower", "timing",
             /*abs_slack=*/50.0);
  add_metric(record, "on_overhead_ns_per_dispatch",
             doc.get_number("on_overhead_ns_per_dispatch"), "lower", "timing",
             /*abs_slack=*/500.0);
  add_metric(record, "multiplier", doc.get_number("multiplier"), "lower",
             "timing", /*abs_slack=*/0.05);
  return record;
}

/// ext_sim_throughput shape: flat object with dispatch/queue speedups and
/// bit-exactness counters.
BenchRecord normalize_sim_throughput(const JsonValue& doc,
                                     const std::string& source) {
  BenchRecord record;
  record.name = "sim_throughput";
  record.source = source;
  JsonObject params;
  for (const char* key :
       {"tasks", "machines", "groups", "reps", "hold_size", "hold_ops"}) {
    params[key] = doc.get_number(key);
  }
  record.params_json = JsonValue(std::move(params)).dump(-1);
  record.params_hash = fnv1a_hex(record.params_json);
  for (const char* key :
       {"reference_dispatch_seconds", "soa_dispatch_seconds",
        "group_reference_seconds", "group_soa_seconds",
        "singleton_reference_seconds", "singleton_soa_seconds",
        "queue_legacy_seconds", "queue_calendar_seconds"}) {
    add_metric(record, key, doc.get_number(key), "lower", "timing");
  }
  for (const char* key :
       {"reference_events_per_sec", "soa_events_per_sec", "dispatch_speedup",
        "group_dispatch_speedup", "singleton_dispatch_speedup",
        "queue_speedup"}) {
    add_metric(record, key, doc.get_number(key), "higher", "timing");
  }
  // The bench exits non-zero on any divergence, so these are always zero
  // in a recorded file; gating them "exact" means a future run that
  // somehow emits a nonzero value trips the gate even if someone relaxes
  // the binary's hard failure.
  add_metric(record, "parity_mismatches", doc.get_number("parity_mismatches"),
             "lower", "exact");
  add_metric(record, "parity_max_abs_diff",
             doc.get_number("parity_max_abs_diff"), "lower", "exact");
  return record;
}

/// ext_certify_scale shape: {params, scale: [...], multifit, soundness,
/// determinism}. Timings gate as "timing"; search-iteration counts,
/// bound/soundness violation counters, and bit-mismatch totals are
/// deterministic by contract and gate as "exact".
BenchRecord normalize_certify_scale(const JsonValue& doc,
                                    const std::string& source) {
  BenchRecord record;
  record.name = "certify_scale";
  record.source = source;
  if (const JsonValue* params = doc.find("params")) {
    record.params_json = params->dump(-1);
    record.params_hash = fnv1a_hex(record.params_json);
  }
  const JsonValue* scale = doc.find("scale");
  for (const JsonValue& row : scale->as_array()) {
    const auto n = static_cast<long long>(row.get_number("n"));
    const std::string suffix = "_n" + std::to_string(n);
    add_metric(record, "scale.engine_seconds" + suffix,
               row.get_number("engine_seconds"), "lower", "timing");
    add_metric(record, "scale.iterations" + suffix,
               row.get_number("iterations"), "lower", "exact");
    // The realized guarantee depends only on the deterministic bisection
    // bracket; a hair of absolute slack covers dump/parse rounding.
    add_metric(record, "scale.guarantee" + suffix, row.get_number("guarantee"),
               "lower", "exact", /*abs_slack=*/1e-9);
    add_metric(record, "scale.violations" + suffix, row.get_number("violation"),
               "lower", "exact");
  }
  if (const JsonValue* multifit = doc.find("multifit")) {
    add_metric(record, "multifit.seconds", multifit->get_number("seconds"),
               "lower", "timing");
    add_metric(record, "multifit.iterations",
               multifit->get_number("iterations"), "lower", "exact");
  }
  const JsonValue* soundness = doc.find("soundness");
  add_metric(record, "soundness.violations",
             soundness->get_number("violations"), "lower", "exact");
  add_metric(record, "soundness.exact_cases",
             soundness->get_number("exact_cases"), "none", "exact");
  if (const JsonValue* determinism = doc.find("determinism")) {
    add_metric(record, "determinism.bit_mismatches",
               determinism->get_number("bit_mismatches"), "lower", "exact");
  }
  return record;
}

bool seconds_like(const std::string& name) {
  return name.find("seconds") != std::string::npos ||
         name.find("_time") != std::string::npos;
}

/// --metrics-out snapshot shape: {counters, gauges, histograms}. Counters
/// and gauges are workload-dependent tallies -> informational. Histogram
/// mean/percentiles of *_seconds series are latencies -> gated
/// lower-is-better timing metrics.
BenchRecord normalize_snapshot(const JsonValue& doc, const std::string& source) {
  BenchRecord record;
  record.name = "metrics_snapshot";
  record.source = source;
  if (const JsonValue* counters = doc.find("counters")) {
    for (const auto& [key, value] : counters->as_object()) {
      add_metric(record, "counters." + key, value.as_number(), "none", "exact");
    }
  }
  if (const JsonValue* gauges = doc.find("gauges")) {
    for (const auto& [key, value] : gauges->as_object()) {
      add_metric(record, "gauges." + key, value.as_number(), "none", "timing");
    }
  }
  if (const JsonValue* histograms = doc.find("histograms")) {
    for (const auto& [key, value] : histograms->as_object()) {
      const std::string direction = seconds_like(key) ? "lower" : "none";
      for (const char* field : {"mean", "p50", "p90", "p99"}) {
        add_metric(record, "histograms." + key + "." + field,
                   value.get_number(field), direction, "timing");
      }
      add_metric(record, "histograms." + key + ".count",
                 value.get_number("count"), "none", "exact");
    }
  }
  return record;
}

/// Already-normalized BenchRecord JSON (round-trip of to_json()).
BenchRecord parse_record(const JsonValue& doc, const std::string& source) {
  BenchRecord record;
  record.schema_version = static_cast<int>(doc.get_number("schema_version", 0));
  if (record.schema_version != BenchRecord{}.schema_version) {
    throw std::runtime_error("perf: " + source + ": unsupported schema_version " +
                             std::to_string(record.schema_version));
  }
  record.name = doc.get_string("name");
  record.source = doc.get_string("source", source);
  record.params_hash = doc.get_string("params_hash");
  record.params_json = doc.get_string("params_json");
  record.git_sha = doc.get_string("git_sha");
  record.host = doc.get_string("host");
  const JsonValue* metrics = doc.find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    throw std::runtime_error("perf: " + source + ": record has no metrics object");
  }
  for (const auto& [key, value] : metrics->as_object()) {
    BenchMetric m;
    m.name = key;
    m.value = value.get_number("value");
    m.direction = value.get_string("direction", "lower");
    m.noise = value.get_string("noise", "timing");
    m.abs_slack = value.get_number("abs_slack");
    m.mad = value.get_number("mad");
    if (const JsonValue* repeats = value.find("repeats")) {
      for (const JsonValue& r : repeats->as_array()) {
        m.repeats.push_back(r.as_number());
      }
    }
    if (m.repeats.empty()) m.repeats.push_back(m.value);
    record.metrics.emplace(key, std::move(m));
  }
  return record;
}

}  // namespace

const BenchMetric* BenchRecord::find(const std::string& metric) const {
  const auto it = metrics.find(metric);
  return it == metrics.end() ? nullptr : &it->second;
}

std::string BenchRecord::to_json(int indent) const {
  JsonObject metric_objects;
  for (const auto& [key, m] : metrics) {
    JsonObject obj;
    obj["value"] = m.value;
    obj["direction"] = m.direction;
    obj["noise"] = m.noise;
    obj["abs_slack"] = m.abs_slack;
    obj["mad"] = m.mad;
    JsonArray repeats;
    for (double r : m.repeats) repeats.emplace_back(r);
    obj["repeats"] = std::move(repeats);
    metric_objects[key] = std::move(obj);
  }
  JsonObject root;
  root["schema_version"] = schema_version;
  root["name"] = name;
  root["source"] = source;
  root["params_hash"] = params_hash;
  root["params_json"] = params_json;
  root["git_sha"] = git_sha;
  root["host"] = host;
  root["metrics"] = std::move(metric_objects);
  return JsonValue(std::move(root)).dump(indent);
}

void BenchRecord::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("perf: cannot open " + path);
  out << to_json() << "\n";
  if (!out) throw std::runtime_error("perf: write failed for " + path);
}

/// ext_serve_throughput: streaming dispatcher vs the offline core on the
/// same workload. The ratio and raw rates are timing-class; the drain
/// parity counter is deterministic (the bench hard-fails on a nonzero
/// value, so it gates "exact" like sim_throughput's parity metrics).
BenchRecord normalize_serve_throughput(const JsonValue& doc,
                                       const std::string& source) {
  BenchRecord record;
  record.name = "serve_throughput";
  record.source = source;
  JsonObject params;
  for (const char* key : {"tasks", "machines", "groups", "reps", "rate"}) {
    params[key] = doc.get_number(key);
  }
  record.params_json = JsonValue(std::move(params)).dump(-1);
  record.params_hash = fnv1a_hex(record.params_json);
  for (const char* key :
       {"offline_seconds", "drain_seconds", "serve_seconds"}) {
    add_metric(record, key, doc.get_number(key), "lower", "timing");
  }
  for (const char* key :
       {"offline_events_per_sec", "drain_events_per_sec",
        "serve_events_per_sec", "serve_vs_offline_ratio",
        "drain_vs_offline_ratio"}) {
    add_metric(record, key, doc.get_number(key), "higher", "timing");
  }
  add_metric(record, "drain_parity_mismatches",
             doc.get_number("drain_parity_mismatches"), "lower", "exact");
  add_metric(record, "peak_backlog", doc.get_number("peak_backlog"), "none",
             "exact");
  for (const char* key : {"response_p50", "response_p90", "response_p99"}) {
    add_metric(record, key, doc.get_number(key), "none", "exact");
  }
  return record;
}

/// ext_adapt shape: {adaptive_sweep, adaptive_fuzz, *_seconds}. Both
/// sections are deterministic in the seed (dispatch + certification are
/// pure FP), so the ratios gate "exact" with dump/parse slack; the
/// bound-violation counter is the acceptance criterion and gates hard at
/// its recorded value (0). Wall-clock sections are timing-class.
BenchRecord normalize_adapt(const JsonValue& doc, const std::string& source) {
  BenchRecord record;
  record.name = "adapt";
  record.source = source;
  const JsonValue* sweep = doc.find("adaptive_sweep");
  const JsonValue* fuzz = doc.find("adaptive_fuzz");
  JsonObject params;
  for (const char* key : {"tasks", "machines", "seed", "budget"}) {
    params[key] = doc.get_number(key);
  }
  params["trials"] = sweep->get_number("trials");
  params["alpha_from"] = sweep->get_number("alpha_from");
  params["alpha_to"] = sweep->get_number("alpha_to");
  params["fuzz_seeds"] = fuzz->get_number("seeds");
  record.params_json = JsonValue(std::move(params)).dump(-1);
  record.params_hash = fnv1a_hex(record.params_json);

  add_metric(record, "sweep.adaptive_mean_ratio",
             sweep->get_number("adaptive_mean_ratio"), "lower", "exact",
             /*abs_slack=*/1e-9);
  add_metric(record, "sweep.best_lsgroup_mean_ratio",
             sweep->get_number("best_lsgroup_mean_ratio"), "lower", "exact",
             /*abs_slack=*/1e-9);
  add_metric(record, "sweep.adaptive_final_alpha_hat",
             sweep->get_number("adaptive_final_alpha_hat"), "none", "exact",
             /*abs_slack=*/1e-9);
  // The headline: 1 iff the adaptive mean ratio undercuts every fixed
  // LS-Group degree on the drifting sweep.
  add_metric(record, "sweep.adaptive_beats_lsgroup",
             sweep->get_number("adaptive_beats_lsgroup"), "higher", "exact");
  if (const JsonValue* fixed = sweep->find("fixed_mean_ratios")) {
    for (const auto& [key, value] : fixed->as_object()) {
      add_metric(record, "sweep.fixed." + key, value.as_number(), "none",
                 "exact", /*abs_slack=*/1e-9);
    }
  }
  add_metric(record, "fuzz.bound_violations",
             fuzz->get_number("bound_violations"), "lower", "exact");
  add_metric(record, "fuzz.max_bound_fraction",
             fuzz->get_number("max_bound_fraction"), "lower", "exact",
             /*abs_slack=*/1e-9);
  for (const char* key : {"sweep_seconds", "fuzz_seconds"}) {
    add_metric(record, key, doc.get_number(key), "lower", "timing");
  }
  return record;
}

/// ext_obs_overhead: serve_stream with the timeline recorder off vs on.
/// The ratio is the acceptance criterion (<= 5% overhead) and gates as
/// timing with a small absolute slack so run-to-run jitter around 1.0
/// does not flake; the event/drop accounting is deterministic (the bench
/// hard-fails on any mismatch) and gates "exact".
BenchRecord normalize_obs_overhead(const JsonValue& doc,
                                   const std::string& source) {
  BenchRecord record;
  record.name = "obs_overhead";
  record.source = source;
  JsonObject params;
  for (const char* key : {"tasks", "machines", "groups", "reps", "rate",
                          "capacity", "drop_capacity"}) {
    params[key] = doc.get_number(key);
  }
  record.params_json = JsonValue(std::move(params)).dump(-1);
  record.params_hash = fnv1a_hex(record.params_json);
  for (const char* key : {"off_seconds", "on_seconds"}) {
    add_metric(record, key, doc.get_number(key), "lower", "timing");
  }
  for (const char* key : {"off_events_per_sec", "on_events_per_sec"}) {
    add_metric(record, key, doc.get_number(key), "higher", "timing");
  }
  add_metric(record, "overhead_ratio", doc.get_number("overhead_ratio"),
             "lower", "timing", /*abs_slack=*/0.05);
  for (const char* key : {"events_recorded", "events_dropped",
                          "drop_recorded", "drop_dropped"}) {
    add_metric(record, key, doc.get_number(key), "none", "exact");
  }
  return record;
}

BenchRecord normalize_bench_json(const JsonValue& doc, const std::string& source) {
  if (!doc.is_object()) {
    throw std::runtime_error("perf: " + source + ": not a JSON object");
  }
  BenchRecord record;
  if (doc.find("schema_version") != nullptr && doc.find("metrics") != nullptr) {
    record = parse_record(doc, source);
  } else if (doc.find("timing") != nullptr && doc.find("cache") != nullptr) {
    record = normalize_certify(doc, source);
  } else if (doc.find("multiplier") != nullptr &&
             doc.find("baseline_seconds") != nullptr) {
    record = normalize_check_overhead(doc, source);
  } else if (doc.find("dispatch_speedup") != nullptr &&
             doc.find("queue_speedup") != nullptr) {
    record = normalize_sim_throughput(doc, source);
  } else if (doc.find("serve_vs_offline_ratio") != nullptr &&
             doc.find("drain_parity_mismatches") != nullptr) {
    record = normalize_serve_throughput(doc, source);
  } else if (doc.find("scale") != nullptr && doc.find("soundness") != nullptr) {
    record = normalize_certify_scale(doc, source);
  } else if (doc.find("adaptive_sweep") != nullptr &&
             doc.find("adaptive_fuzz") != nullptr) {
    record = normalize_adapt(doc, source);
  } else if (doc.find("overhead_ratio") != nullptr &&
             doc.find("events_recorded") != nullptr) {
    record = normalize_obs_overhead(doc, source);
  } else if (doc.find("counters") != nullptr &&
             doc.find("histograms") != nullptr) {
    record = normalize_snapshot(doc, source);
  } else {
    throw std::runtime_error(
        "perf: " + source +
        ": unrecognized benchmark JSON shape (expected a BenchRecord, "
        "ext_certify_speedup, ext_check_overhead, ext_sim_throughput, "
        "ext_serve_throughput, ext_certify_scale, ext_adapt, "
        "ext_obs_overhead, or metrics snapshot)");
  }
  for (auto& [key, m] : record.metrics) finalize_metric(m);
  return record;
}

BenchRecord load_bench_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("perf: cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  JsonValue doc;
  try {
    doc = parse_json(buffer.str());
  } catch (const std::exception& e) {
    throw std::runtime_error("perf: " + path + ": " + e.what());
  }
  // Strip the directory so `source` matches regardless of where the raw
  // file was when it was recorded.
  std::string source = path;
  const std::size_t slash = source.find_last_of("/\\");
  if (slash != std::string::npos) source = source.substr(slash + 1);
  return normalize_bench_json(doc, source);
}

BenchRecord merge_repeats(const std::vector<BenchRecord>& runs) {
  if (runs.empty()) throw std::runtime_error("perf: merge_repeats of nothing");
  BenchRecord merged = runs.front();
  for (std::size_t i = 1; i < runs.size(); ++i) {
    const BenchRecord& run = runs[i];
    if (run.name != merged.name) {
      throw std::runtime_error("perf: cannot merge '" + run.name + "' into '" +
                               merged.name + "' -- different benchmarks");
    }
    if (run.params_hash != merged.params_hash) {
      throw std::runtime_error("perf: repeats of '" + merged.name +
                               "' ran with different params (hash " +
                               run.params_hash + " vs " + merged.params_hash +
                               ")");
    }
    for (const auto& [key, m] : run.metrics) {
      auto it = merged.metrics.find(key);
      if (it == merged.metrics.end()) {
        merged.metrics.emplace(key, m);
      } else {
        it->second.repeats.insert(it->second.repeats.end(), m.repeats.begin(),
                                  m.repeats.end());
      }
    }
  }
  for (auto& [key, m] : merged.metrics) finalize_metric(m);
  return merged;
}

std::string host_fingerprint() {
  std::string sysname = "unknown";
  std::string machine = "unknown";
#if defined(__unix__) || defined(__APPLE__)
  utsname info{};
  if (uname(&info) == 0) {
    sysname = info.sysname;
    machine = info.machine;
  }
#endif
  return sysname + "/" + machine +
         "/ncpu=" + std::to_string(std::thread::hardware_concurrency());
}

std::string fnv1a_hex(const std::string& text) {
  std::uint64_t hash = 14695981039346656037ull;
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return repro::hash_to_hex(hash);
}

}  // namespace rdp::perf
