// Cartesian parameter sweeps over (m, alpha, workload seed) cells, with
// optional thread-pool parallelism. Results land in a caller-indexed
// vector so parallel execution stays deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/types.hpp"

namespace rdp {

class ThreadPool;

/// One cell of a sweep grid.
struct SweepCell {
  MachineId m = 1;
  double alpha = 1.0;
  std::uint64_t seed = 0;
  std::size_t index = 0;  ///< flat index into the result vector
};

/// Builds the cartesian grid machines x alphas x seeds (in that nesting
/// order, seeds fastest).
[[nodiscard]] std::vector<SweepCell> make_grid(const std::vector<MachineId>& machines,
                                               const std::vector<double>& alphas,
                                               const std::vector<std::uint64_t>& seeds);

/// Runs `body` for every cell sequentially. If the body throws, the
/// exception propagates immediately and no later cell runs.
void run_sweep(const std::vector<SweepCell>& grid,
               const std::function<void(const SweepCell&)>& body);

/// Runs `body` for every cell on `pool`. The body must only write to
/// per-cell state (e.g. results[cell.index]). If a body throws, cells
/// that have not started are cancelled (under the pool's default
/// ErrorPolicy::kCancelPending) and their result slots are left in
/// whatever state the caller initialized them to; the first exception is
/// rethrown, matching run_sweep.
void run_sweep_parallel(ThreadPool& pool, const std::vector<SweepCell>& grid,
                        const std::function<void(const SweepCell&)>& body);

}  // namespace rdp
