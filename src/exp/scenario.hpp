// Scenario-based robustness evaluation -- the methodology most robust-
// scheduling work the paper cites uses (Daniels & Kouvelis, Davenport et
// al.): fix a *set* of realizations (scenarios) and judge a placement by
// its worst-case / average / regret behaviour across them, instead of a
// single adversary.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "algo/strategy.hpp"
#include "core/realization.hpp"
#include "core/types.hpp"
#include "perturb/stochastic.hpp"

namespace rdp {

class CertifyEngine;
class Instance;
class ThreadPool;

/// A named bundle of realizations of one instance.
struct ScenarioSet {
  std::vector<Realization> scenarios;

  [[nodiscard]] std::size_t size() const noexcept { return scenarios.size(); }
};

/// Scenario set from a noise model: `count` independent draws (seeds
/// seed, seed+1, ...), each respecting the instance's alpha band.
[[nodiscard]] ScenarioSet make_scenarios(const Instance& instance, NoiseModel noise,
                                         std::size_t count, std::uint64_t seed);

/// Mixed scenario set covering several noise models round-robin.
[[nodiscard]] ScenarioSet make_mixed_scenarios(const Instance& instance,
                                               std::size_t count, std::uint64_t seed);

/// Drifting-alpha scenario set: scenario s is drawn from a band whose
/// width interpolates geometrically from `alpha_from` (scenario 0) to
/// `alpha_to` (last scenario), log-uniform factors. The instance's
/// declared alpha is deliberately ignored -- this models an environment
/// whose uncertainty changes under a strategy calibrated once, the
/// regime the adaptive estimator (src/adapt/) is built for. Realized
/// factors may leave the declared band. Both endpoints must be >= 1.
[[nodiscard]] ScenarioSet make_drifting_scenarios(const Instance& instance,
                                                  std::size_t count,
                                                  std::uint64_t seed,
                                                  double alpha_from,
                                                  double alpha_to);

/// Misreported-alpha scenario set: every scenario is drawn at
/// `true_alpha` (mixed noise models round-robin) regardless of the
/// instance's declared alpha -- the declared band is simply wrong, and a
/// strategy trusting it picks its replication degree from a lie.
/// `true_alpha` must be >= 1.
[[nodiscard]] ScenarioSet make_misreported_scenarios(const Instance& instance,
                                                     std::size_t count,
                                                     std::uint64_t seed,
                                                     double true_alpha);

/// Per-strategy evaluation across a scenario set.
struct ScenarioEvaluation {
  std::string strategy_name;
  std::vector<Time> makespans;      ///< one per scenario
  std::vector<Time> optima;         ///< certified LB on OPT per scenario
  Time worst_makespan = 0;
  double mean_makespan = 0;
  double worst_regret = 0;          ///< max_s (Cmax_s - OPT_s)
  double worst_ratio = 0;           ///< max_s (Cmax_s / OPT_s)
  double cvar90_makespan = 0;       ///< mean of the worst 10% makespans
};

struct ScenarioConfig {
  std::uint64_t exact_node_budget = 200'000;
  /// Certification engine (cache + batch solver); nullptr uses the
  /// process-default engine.
  CertifyEngine* engine = nullptr;
  /// When non-null, per-scenario dispatch and certification run on this
  /// pool; aggregates are bit-identical to the sequential path.
  ThreadPool* pool = nullptr;
};

/// Places once (phase 1 is scenario-independent by construction), then
/// dispatches per scenario and aggregates. Dispatch and certification are
/// batched through the certify engine; aggregation walks scenarios in
/// order after the batch, so results match a sequential run bitwise.
[[nodiscard]] ScenarioEvaluation evaluate_scenarios(const TwoPhaseStrategy& strategy,
                                                    const Instance& instance,
                                                    const ScenarioSet& scenarios,
                                                    const ScenarioConfig& config = {});

/// Picks the strategy minimizing worst-case makespan across scenarios
/// (min-max robust selection), breaking ties by worst regret. Returns
/// the index into `strategies`.
[[nodiscard]] std::size_t select_min_max(const std::vector<TwoPhaseStrategy>& strategies,
                                         const Instance& instance,
                                         const ScenarioSet& scenarios,
                                         const ScenarioConfig& config = {});

}  // namespace rdp
