#include "exp/memaware_experiment.hpp"

#include <stdexcept>

#include "bounds/memaware_bounds.hpp"
#include "core/instance.hpp"
#include "core/metrics.hpp"
#include "core/realization.hpp"
#include "exact/certify.hpp"
#include "memaware/abo.hpp"
#include "memaware/sabo.hpp"
#include "obs/hooks.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rdp {

namespace {

void fill_denominators(MemAwareTrial& trial, const Instance& instance,
                       const Realization& actual, const MemAwareConfig& config) {
  CertifyEngine& engine =
      config.engine != nullptr ? *config.engine : default_certify_engine();
  CertifyOptions copts;
  copts.node_budget = config.exact_node_budget;
  // Both denominators in one batch: the size vector is fixed per
  // instance, so after the first trial its solve is always a cache hit.
  // The sizes must outlive certify_batch -- CertifyRequest holds a span.
  const std::vector<double> sizes = instance.sizes();
  const CertifyRequest requests[] = {
      {actual.actual, instance.num_machines()},
      {sizes, instance.num_machines()},
  };
  const std::vector<CertifiedCmax> optima = engine.certify_batch(requests, copts);

  trial.cmax_lower_bound = optima[0].lower;
  trial.cmax_exact = optima[0].exact;
  if (trial.cmax_lower_bound <= 0) {
    throw std::logic_error("memaware experiment: degenerate Cmax optimum");
  }
  trial.makespan_ratio = trial.makespan / trial.cmax_lower_bound;

  trial.mem_lower_bound = optima[1].lower;
  trial.mem_exact = optima[1].exact;
  trial.memory_ratio =
      trial.mem_lower_bound > 0 ? trial.memory / trial.mem_lower_bound : 0.0;
}

}  // namespace

MemAwareTrial measure_sabo(const Instance& instance, const Realization& actual,
                           double delta, const MemAwareConfig& config) {
  obs::MetricsRegistry* const mx = obs::metrics();
  if (mx) mx->counter("exp.memaware.sabo_trials").add(1);
  obs::ScopedSpan span(obs::tracer(), "measure_sabo", "exp");
  const SaboResult result = run_sabo(instance, delta);

  MemAwareTrial trial;
  trial.delta = delta;
  trial.makespan = sabo_makespan(result, instance, actual);
  trial.memory = result.max_memory;
  fill_denominators(trial, instance, actual, config);

  const BiObjectiveGuarantee g =
      sabo_guarantee(delta, instance.alpha(), result.pi.rho1, result.pi.rho2);
  trial.makespan_guarantee = g.makespan;
  trial.memory_guarantee = g.memory;
  return trial;
}

MemAwareTrial measure_abo(const Instance& instance, const Realization& actual,
                          double delta, const MemAwareConfig& config) {
  obs::MetricsRegistry* const mx = obs::metrics();
  if (mx) mx->counter("exp.memaware.abo_trials").add(1);
  obs::ScopedSpan span(obs::tracer(), "measure_abo", "exp");
  const AboResult result = run_abo(instance, actual, delta);

  MemAwareTrial trial;
  trial.delta = delta;
  trial.makespan = result.makespan;
  trial.memory = result.max_memory;
  fill_denominators(trial, instance, actual, config);

  const BiObjectiveGuarantee g = abo_guarantee(
      delta, instance.alpha(), instance.num_machines(), result.pi.rho1, result.pi.rho2);
  trial.makespan_guarantee = g.makespan;
  trial.memory_guarantee = g.memory;
  return trial;
}

}  // namespace rdp
