// Machine-readable experiment reports: benches accumulate named series
// of (x, y...) rows and emit them as CSV or JSON next to their
// human-readable tables, so the paper figures can be re-plotted without
// scraping stdout.
#pragma once

#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace rdp {

/// One named data series: a header plus numeric rows of equal width.
class Series {
 public:
  Series() = default;
  explicit Series(std::vector<std::string> columns);

  void add_row(std::vector<double> values);

  [[nodiscard]] const std::vector<std::string>& columns() const noexcept {
    return columns_;
  }
  [[nodiscard]] const std::vector<std::vector<double>>& rows() const noexcept {
    return rows_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<double>> rows_;
};

/// A report: experiment metadata + named series.
class ExperimentReport {
 public:
  ExperimentReport(std::string experiment_id, std::string description);

  /// Adds a free-form parameter recorded with the results.
  void set_param(const std::string& key, const std::string& value);
  void set_param(const std::string& key, double value);

  /// Creates (or fetches) a series by name; the column set must match on
  /// re-access.
  Series& series(const std::string& name, std::vector<std::string> columns);

  /// Attaches a metrics snapshot (from obs::MetricsRegistry::snapshot())
  /// recorded alongside the results. Optional: reports without one
  /// serialize exactly as before.
  void attach_metrics(obs::MetricsSnapshot snapshot);
  [[nodiscard]] const std::optional<obs::MetricsSnapshot>& metrics() const noexcept {
    return metrics_;
  }

  /// Serializes everything as a JSON object.
  [[nodiscard]] std::string to_json(int indent = 2) const;

  /// Writes one CSV block per series ("# series: <name>" headers).
  void write_csv(std::ostream& out) const;

  /// Renders params and every series as GitHub-flavored-markdown tables
  /// (one "### series" heading per series) -- the repro pipeline embeds
  /// this into the generated docs/RESULTS.md. Numeric cells use fixed
  /// `precision` digits.
  [[nodiscard]] std::string to_markdown(int precision = 4) const;

  /// Convenience file writers (throw std::runtime_error on I/O failure).
  void save_json(const std::string& path) const;
  void save_csv(const std::string& path) const;

  [[nodiscard]] const std::string& id() const noexcept { return id_; }

 private:
  std::string id_;
  std::string description_;
  std::map<std::string, std::string> params_;
  std::map<std::string, Series> series_;
  std::optional<obs::MetricsSnapshot> metrics_;
};

}  // namespace rdp
