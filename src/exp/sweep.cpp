#include "exp/sweep.hpp"

#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"

namespace rdp {

std::vector<SweepCell> make_grid(const std::vector<MachineId>& machines,
                                 const std::vector<double>& alphas,
                                 const std::vector<std::uint64_t>& seeds) {
  std::vector<SweepCell> grid;
  grid.reserve(machines.size() * alphas.size() * seeds.size());
  std::size_t index = 0;
  for (MachineId m : machines) {
    for (double alpha : alphas) {
      for (std::uint64_t seed : seeds) {
        grid.push_back(SweepCell{m, alpha, seed, index++});
      }
    }
  }
  return grid;
}

void run_sweep(const std::vector<SweepCell>& grid,
               const std::function<void(const SweepCell&)>& body) {
  for (const SweepCell& cell : grid) body(cell);
}

void run_sweep_parallel(ThreadPool& pool, const std::vector<SweepCell>& grid,
                        const std::function<void(const SweepCell&)>& body) {
  parallel_for_each_index(pool, grid.size(),
                          [&](std::size_t i) { body(grid[i]); });
}

}  // namespace rdp
