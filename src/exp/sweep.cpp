#include "exp/sweep.hpp"

#include <chrono>
#include <string>

#include "obs/hooks.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"

namespace rdp {

namespace {

std::string cell_args_json(const SweepCell& cell) {
  return "{\"index\":" + std::to_string(cell.index) +
         ",\"m\":" + std::to_string(cell.m) +
         ",\"seed\":" + std::to_string(cell.seed) + "}";
}

// Runs one cell with per-cell metrics/trace. `mx`/`tr` may be null.
void run_cell(const SweepCell& cell, const std::function<void(const SweepCell&)>& body,
              obs::MetricsRegistry* mx, obs::Tracer* tr) {
  const std::uint64_t start_us = tr ? tr->now_us() : 0;
  {
    obs::ScopedTimer timer(mx ? &mx->histogram("sweep.cell_seconds") : nullptr);
    body(cell);
  }
  if (mx) mx->counter("sweep.cells_done").add(1);
  if (tr) {
    tr->span("sweep.cell", "exp", start_us, tr->now_us() - start_us,
             cell_args_json(cell));
  }
}

// Derives cells/sec from the sweep's own wall time; only touched when a
// registry is installed, so disabled runs never read the clock.
class SweepRateScope {
 public:
  SweepRateScope(obs::MetricsRegistry* mx, std::size_t cells) : mx_(mx), cells_(cells) {
    if (mx_) start_ = std::chrono::steady_clock::now();
  }
  ~SweepRateScope() {
    if (!mx_) return;
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
            .count();
    mx_->histogram("sweep.run_seconds").observe(elapsed);
    if (elapsed > 0) {
      mx_->gauge("sweep.cells_per_sec").set(static_cast<double>(cells_) / elapsed);
    }
  }

 private:
  obs::MetricsRegistry* mx_;
  std::size_t cells_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

std::vector<SweepCell> make_grid(const std::vector<MachineId>& machines,
                                 const std::vector<double>& alphas,
                                 const std::vector<std::uint64_t>& seeds) {
  std::vector<SweepCell> grid;
  grid.reserve(machines.size() * alphas.size() * seeds.size());
  std::size_t index = 0;
  for (MachineId m : machines) {
    for (double alpha : alphas) {
      for (std::uint64_t seed : seeds) {
        grid.push_back(SweepCell{m, alpha, seed, index++});
      }
    }
  }
  return grid;
}

void run_sweep(const std::vector<SweepCell>& grid,
               const std::function<void(const SweepCell&)>& body) {
  obs::MetricsRegistry* const mx = obs::metrics();
  obs::Tracer* const tr = obs::tracer();
  if (mx == nullptr && tr == nullptr) {
    // The first body exception propagates immediately: no later cell runs.
    for (const SweepCell& cell : grid) body(cell);
    return;
  }
  obs::ScopedSpan span(tr, "run_sweep", "exp");
  SweepRateScope rate(mx, grid.size());
  for (const SweepCell& cell : grid) run_cell(cell, body, mx, tr);
}

void run_sweep_parallel(ThreadPool& pool, const std::vector<SweepCell>& grid,
                        const std::function<void(const SweepCell&)>& body) {
  obs::MetricsRegistry* const mx = obs::metrics();
  obs::Tracer* const tr = obs::tracer();
  if (mx == nullptr && tr == nullptr) {
    parallel_for_each_index(pool, grid.size(),
                            [&](std::size_t i) { body(grid[i]); });
    return;
  }
  obs::ScopedSpan span(tr, "run_sweep_parallel", "exp");
  SweepRateScope rate(mx, grid.size());
  parallel_for_each_index(pool, grid.size(),
                          [&](std::size_t i) { run_cell(grid[i], body, mx, tr); });
}

}  // namespace rdp
