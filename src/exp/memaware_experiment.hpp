// Bi-objective measurement for the memory-aware algorithms: makespan
// ratio against a certified Cmax optimum of the *actual* times, and
// memory ratio against a certified Mem_max optimum (which is itself a
// P||Cmax instance over the sizes).
#pragma once

#include <cstdint>

#include "core/types.hpp"

namespace rdp {

class CertifyEngine;
class Instance;
struct Realization;

struct MemAwareTrial {
  double delta = 0;

  Time makespan = 0;
  Time cmax_lower_bound = 0;     ///< certified LB on OPT makespan
  bool cmax_exact = false;
  double makespan_ratio = 0;     ///< makespan / cmax_lower_bound
  double makespan_guarantee = 0; ///< the theorem's bound

  double memory = 0;
  double mem_lower_bound = 0;    ///< certified LB on OPT memory
  bool mem_exact = false;
  double memory_ratio = 0;
  double memory_guarantee = 0;
};

struct MemAwareConfig {
  std::uint64_t exact_node_budget = 2'000'000;
  /// Certification engine; nullptr uses the process-default engine. The
  /// memory denominator (a P||Cmax instance over the fixed size vector)
  /// is identical every trial, so the cache turns it into a single solve.
  CertifyEngine* engine = nullptr;
};

/// SABO_Delta against one realization.
[[nodiscard]] MemAwareTrial measure_sabo(const Instance& instance,
                                         const Realization& actual, double delta,
                                         const MemAwareConfig& config = {});

/// ABO_Delta against one realization.
[[nodiscard]] MemAwareTrial measure_abo(const Instance& instance,
                                        const Realization& actual, double delta,
                                        const MemAwareConfig& config = {});

}  // namespace rdp
