// Competitive-ratio measurement: run a two-phase strategy against a
// realization, then divide its makespan by a *certified* lower bound on
// the offline optimum (exact when branch-and-bound proves it). Because
// the denominator never exceeds OPT, measured ratios over-estimate the
// true competitive ratio, keeping "measured <= theorem bound" checks
// sound.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "algo/strategy.hpp"
#include "core/types.hpp"
#include "perturb/stochastic.hpp"
#include "stats/welford.hpp"

namespace rdp {

class Instance;
struct Realization;

struct RatioExperimentConfig {
  /// Branch-and-bound node budget for the optimum (0 = analytic LB only).
  std::uint64_t exact_node_budget = 2'000'000;
};

struct RatioTrial {
  Time algorithm_makespan = 0;
  Time optimal_lower_bound = 0;  ///< certified LB on OPT (== OPT when exact)
  bool exact_optimum = false;
  double ratio = 0;              ///< algorithm_makespan / optimal_lower_bound
};

/// One strategy run against one realization.
[[nodiscard]] RatioTrial measure_ratio(const TwoPhaseStrategy& strategy,
                                       const Instance& instance,
                                       const Realization& actual,
                                       const RatioExperimentConfig& config = {});

/// The strategy against the placement-aware adversary (the worst case the
/// paper's proofs construct).
[[nodiscard]] RatioTrial measure_adversarial_ratio(
    const TwoPhaseStrategy& strategy, const Instance& instance,
    const RatioExperimentConfig& config = {});

struct RatioAggregate {
  std::string strategy_name;
  std::string noise_name;
  Welford ratios;
  RatioTrial worst;  ///< the trial with the largest ratio
};

/// `trials` independent stochastic realizations (seeds seed, seed+1, ...).
[[nodiscard]] RatioAggregate measure_ratio_batch(const TwoPhaseStrategy& strategy,
                                                 const Instance& instance,
                                                 NoiseModel noise, std::size_t trials,
                                                 std::uint64_t seed,
                                                 const RatioExperimentConfig& config = {});

}  // namespace rdp
