// Competitive-ratio measurement: run a two-phase strategy against a
// realization, then divide its makespan by a *certified* lower bound on
// the offline optimum (exact when branch-and-bound proves it). Because
// the denominator never exceeds OPT, measured ratios over-estimate the
// true competitive ratio, keeping "measured <= theorem bound" checks
// sound.
//
// Certification is the dominant cost, so every entry point routes through
// a CertifyEngine (exact/certify.hpp): denominators are canonicalized,
// memo-cached, and -- for batches -- solved in parallel on an optional
// ThreadPool. Batch aggregation happens after the parallel barrier in
// trial order, so results are bit-identical across thread counts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "algo/strategy.hpp"
#include "core/types.hpp"
#include "perturb/stochastic.hpp"
#include "stats/welford.hpp"

namespace rdp {

class CertifyEngine;
class Instance;
class ThreadPool;
struct Realization;

struct RatioExperimentConfig {
  /// Branch-and-bound node budget for the optimum (0 = analytic LB only).
  std::uint64_t exact_node_budget = 2'000'000;
  /// Certification engine (cache + batch solver); nullptr uses the
  /// process-default engine.
  CertifyEngine* engine = nullptr;
  /// When non-null, batch trial loops (dispatch + certification) run on
  /// this pool; results are bit-identical to the sequential path.
  ThreadPool* pool = nullptr;
};

struct RatioTrial {
  Time algorithm_makespan = 0;
  Time optimal_lower_bound = 0;  ///< certified LB on OPT (== OPT when exact)
  bool exact_optimum = false;
  double ratio = 0;              ///< algorithm_makespan / optimal_lower_bound
};

/// One strategy run against one realization.
[[nodiscard]] RatioTrial measure_ratio(const TwoPhaseStrategy& strategy,
                                       const Instance& instance,
                                       const Realization& actual,
                                       const RatioExperimentConfig& config = {});

/// The strategy against the placement-aware adversary (the worst case the
/// paper's proofs construct).
[[nodiscard]] RatioTrial measure_adversarial_ratio(
    const TwoPhaseStrategy& strategy, const Instance& instance,
    const RatioExperimentConfig& config = {});

/// `trials` independent stochastic realizations (seeds seed, seed+1, ...),
/// one RatioTrial per realization in trial order. Phase 1 runs once (it is
/// realization-independent); dispatch and certification are batched and,
/// with `config.pool`, parallel. Throws std::invalid_argument when
/// `trials == 0`.
[[nodiscard]] std::vector<RatioTrial> measure_ratio_trials(
    const TwoPhaseStrategy& strategy, const Instance& instance, NoiseModel noise,
    std::size_t trials, std::uint64_t seed,
    const RatioExperimentConfig& config = {});

struct RatioAggregate {
  std::string strategy_name;
  std::string noise_name;
  Welford ratios;
  RatioTrial worst;  ///< the trial with the largest ratio
};

/// Aggregate over measure_ratio_trials; the Welford stream is fed in
/// trial order after the (possibly parallel) batch completes, so the
/// aggregate is bit-identical to a sequential run. Throws
/// std::invalid_argument when `trials == 0`.
[[nodiscard]] RatioAggregate measure_ratio_batch(const TwoPhaseStrategy& strategy,
                                                 const Instance& instance,
                                                 NoiseModel noise, std::size_t trials,
                                                 std::uint64_t seed,
                                                 const RatioExperimentConfig& config = {});

}  // namespace rdp
