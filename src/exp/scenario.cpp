#include "exp/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <limits>
#include <stdexcept>

#include "algo/dispatch_policies.hpp"
#include "check/invariants.hpp"
#include "core/instance.hpp"
#include "exact/certify.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/online_dispatcher.hpp"
#include "sim/workspace.hpp"

namespace rdp {

ScenarioSet make_scenarios(const Instance& instance, NoiseModel noise,
                           std::size_t count, std::uint64_t seed) {
  ScenarioSet set;
  set.scenarios.reserve(count);
  for (std::size_t s = 0; s < count; ++s) {
    set.scenarios.push_back(realize(instance, noise, seed + s));
  }
  return set;
}

ScenarioSet make_mixed_scenarios(const Instance& instance, std::size_t count,
                                 std::uint64_t seed) {
  static const NoiseModel kMix[] = {NoiseModel::kUniform, NoiseModel::kTwoPoint,
                                    NoiseModel::kLogUniform, NoiseModel::kAlwaysHigh,
                                    NoiseModel::kBetaCentered};
  ScenarioSet set;
  set.scenarios.reserve(count);
  for (std::size_t s = 0; s < count; ++s) {
    set.scenarios.push_back(
        realize(instance, kMix[s % std::size(kMix)], seed + s));
  }
  return set;
}

namespace {

/// The instance re-declared at a different alpha (tasks and machines
/// unchanged) so realize() draws from the requested band.
Instance with_alpha(const Instance& instance, double alpha) {
  std::vector<Task> tasks(instance.tasks().begin(), instance.tasks().end());
  return Instance(std::move(tasks), instance.num_machines(), alpha);
}

}  // namespace

ScenarioSet make_drifting_scenarios(const Instance& instance, std::size_t count,
                                    std::uint64_t seed, double alpha_from,
                                    double alpha_to) {
  if (!(alpha_from >= 1.0) || !(alpha_to >= 1.0)) {
    throw std::invalid_argument(
        "make_drifting_scenarios: alpha endpoints must be >= 1");
  }
  ScenarioSet set;
  set.scenarios.reserve(count);
  const double log_from = std::log(alpha_from);
  const double log_to = std::log(alpha_to);
  for (std::size_t s = 0; s < count; ++s) {
    const double t =
        count > 1 ? static_cast<double>(s) / static_cast<double>(count - 1) : 0.0;
    const double alpha_s = std::exp(log_from + (log_to - log_from) * t);
    set.scenarios.push_back(
        realize(with_alpha(instance, alpha_s), NoiseModel::kLogUniform, seed + s));
  }
  return set;
}

ScenarioSet make_misreported_scenarios(const Instance& instance, std::size_t count,
                                       std::uint64_t seed, double true_alpha) {
  if (!(true_alpha >= 1.0)) {
    throw std::invalid_argument(
        "make_misreported_scenarios: true_alpha must be >= 1");
  }
  return make_mixed_scenarios(with_alpha(instance, true_alpha), count, seed);
}

ScenarioEvaluation evaluate_scenarios(const TwoPhaseStrategy& strategy,
                                      const Instance& instance,
                                      const ScenarioSet& scenarios,
                                      const ScenarioConfig& config) {
  if (scenarios.size() == 0) {
    throw std::invalid_argument("evaluate_scenarios: empty scenario set");
  }
  ScenarioEvaluation eval;
  eval.strategy_name = strategy.name();
  const Placement placement = strategy.place(instance);
  const std::size_t count = scenarios.size();
  // One priority sort for the whole set; the rule only reads estimates.
  const std::vector<TaskId> priority = make_priority(instance, strategy.rule());

  // Dispatch into index-addressed slots (parallel-safe), then certify the
  // whole set in one batch so identical realizations share a solve. Each
  // worker thread reuses its workspace + result pair, so steady-state
  // scenarios allocate nothing in the dispatcher.
  eval.makespans.resize(count);
  const auto run_scenario = [&](std::size_t s) {
    thread_local DispatchResult run;
    dispatch_online(instance, placement, scenarios.scenarios[s], priority, {},
                    {}, thread_workspace(), run);
    if (check::debug_checks_enabled()) {
      check::throw_on_violations(
          check::check_invariants(instance, placement, scenarios.scenarios[s],
                                  run.schedule),
          "evaluate_scenarios");
    }
    eval.makespans[s] = run.schedule.makespan();
  };
  if (config.pool != nullptr && count > 1) {
    parallel_for_each_index(*config.pool, count, run_scenario);
  } else {
    for (std::size_t s = 0; s < count; ++s) run_scenario(s);
  }

  std::vector<CertifyRequest> requests(count);
  for (std::size_t s = 0; s < count; ++s) {
    requests[s] =
        CertifyRequest{scenarios.scenarios[s].actual, instance.num_machines()};
  }
  CertifyOptions copts;
  copts.node_budget = config.exact_node_budget;
  copts.pool = config.pool;
  CertifyEngine& engine =
      config.engine != nullptr ? *config.engine : default_certify_engine();
  const std::vector<CertifiedCmax> optima = engine.certify_batch(requests, copts);

  // Aggregate in scenario order after the batch barrier, so the numbers
  // are bit-identical across thread counts.
  double total = 0;
  eval.optima.resize(count);
  for (std::size_t s = 0; s < count; ++s) {
    const Time cmax = eval.makespans[s];
    eval.optima[s] = optima[s].lower;
    total += cmax;
    eval.worst_makespan = std::max(eval.worst_makespan, cmax);
    if (optima[s].lower > 0) {
      eval.worst_regret = std::max(eval.worst_regret, cmax - optima[s].lower);
      eval.worst_ratio = std::max(eval.worst_ratio, cmax / optima[s].lower);
    }
  }
  eval.mean_makespan = total / static_cast<double>(scenarios.size());

  // CVaR at 90%: mean of the worst 10% of makespans (at least one).
  std::vector<Time> sorted = eval.makespans;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  const std::size_t tail =
      std::max<std::size_t>(1, sorted.size() / 10);
  double tail_sum = 0;
  for (std::size_t i = 0; i < tail; ++i) tail_sum += sorted[i];
  eval.cvar90_makespan = tail_sum / static_cast<double>(tail);
  return eval;
}

std::size_t select_min_max(const std::vector<TwoPhaseStrategy>& strategies,
                           const Instance& instance, const ScenarioSet& scenarios,
                           const ScenarioConfig& config) {
  if (strategies.empty()) {
    throw std::invalid_argument("select_min_max: no strategies");
  }
  // Lexicographic (worst makespan, worst regret): systematic noise (e.g.
  // every task slower by the same factor) often ties strategies on the
  // worst scenario; regret against the per-scenario optimum separates
  // them.
  std::size_t best = 0;
  Time best_worst = std::numeric_limits<Time>::infinity();
  double best_regret = std::numeric_limits<double>::infinity();
  constexpr double kTieTolerance = 1e-9;
  for (std::size_t s = 0; s < strategies.size(); ++s) {
    const ScenarioEvaluation eval =
        evaluate_scenarios(strategies[s], instance, scenarios, config);
    const bool strictly_better = eval.worst_makespan < best_worst - kTieTolerance;
    const bool tie_break = eval.worst_makespan <= best_worst + kTieTolerance &&
                           eval.worst_regret < best_regret - kTieTolerance;
    if (strictly_better || tie_break) {
      best_worst = std::min(best_worst, eval.worst_makespan);
      best_regret = eval.worst_regret;
      best = s;
    }
  }
  return best;
}

}  // namespace rdp
