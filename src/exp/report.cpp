#include "exp/report.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "io/csv.hpp"
#include "io/json.hpp"
#include "io/table.hpp"

namespace rdp {

Series::Series(std::vector<std::string> columns) : columns_(std::move(columns)) {
  if (columns_.empty()) {
    throw std::invalid_argument("Series: need at least one column");
  }
}

void Series::add_row(std::vector<double> values) {
  if (values.size() != columns_.size()) {
    throw std::invalid_argument("Series: row width mismatch");
  }
  rows_.push_back(std::move(values));
}

ExperimentReport::ExperimentReport(std::string experiment_id, std::string description)
    : id_(std::move(experiment_id)), description_(std::move(description)) {
  if (id_.empty()) {
    throw std::invalid_argument("ExperimentReport: id must be non-empty");
  }
}

void ExperimentReport::set_param(const std::string& key, const std::string& value) {
  params_[key] = value;
}

void ExperimentReport::set_param(const std::string& key, double value) {
  std::ostringstream os;
  os.precision(12);
  os << value;
  params_[key] = os.str();
}

void ExperimentReport::attach_metrics(obs::MetricsSnapshot snapshot) {
  metrics_ = std::move(snapshot);
}

Series& ExperimentReport::series(const std::string& name,
                                 std::vector<std::string> columns) {
  auto it = series_.find(name);
  if (it == series_.end()) {
    it = series_.emplace(name, Series(std::move(columns))).first;
  } else if (it->second.columns() != columns) {
    throw std::invalid_argument("ExperimentReport: series '" + name +
                                "' re-opened with different columns");
  }
  return it->second;
}

std::string ExperimentReport::to_json(int indent) const {
  JsonObject root;
  root["id"] = id_;
  root["description"] = description_;
  JsonObject params;
  for (const auto& [k, v] : params_) params[k] = v;
  root["params"] = params;

  JsonObject series_obj;
  for (const auto& [name, s] : series_) {
    JsonObject entry;
    JsonArray columns;
    for (const std::string& c : s.columns()) columns.push_back(c);
    entry["columns"] = columns;
    JsonArray rows;
    for (const auto& row : s.rows()) {
      JsonArray json_row;
      for (double v : row) json_row.push_back(v);
      rows.push_back(std::move(json_row));
    }
    entry["rows"] = rows;
    series_obj[name] = entry;
  }
  root["series"] = series_obj;
  if (metrics_) root["metrics"] = obs::metrics_snapshot_json(*metrics_);
  return JsonValue(root).dump(indent);
}

void ExperimentReport::write_csv(std::ostream& out) const {
  out << "# experiment: " << id_ << "\n";
  for (const auto& [k, v] : params_) out << "# " << k << " = " << v << "\n";
  CsvWriter csv(out);
  for (const auto& [name, s] : series_) {
    out << "# series: " << name << "\n";
    csv.row(s.columns());
    for (const auto& row : s.rows()) {
      std::vector<std::string> cells;
      cells.reserve(row.size());
      for (double v : row) {
        std::ostringstream os;
        os.precision(12);
        os << v;
        cells.push_back(os.str());
      }
      csv.row(cells);
    }
  }
  if (metrics_ && !metrics_->empty()) {
    out << "# metrics\n";
    for (const auto& [name, v] : metrics_->counters) {
      out << "# counter " << name << " = " << v << "\n";
    }
    for (const auto& [name, v] : metrics_->gauges) {
      out << "# gauge " << name << " = " << v << "\n";
    }
    out << "# series: metrics.histograms\n";
    csv.row({"name", "count", "mean", "stddev", "min", "max", "sum", "p50",
             "p90", "p99"});
    for (const auto& [name, s] : metrics_->histograms) {
      csv.typed_row(name, s.count, s.mean, s.stddev, s.min, s.max, s.sum,
                    s.p50, s.p90, s.p99);
    }
  }
}

std::string ExperimentReport::to_markdown(int precision) const {
  std::ostringstream out;
  if (!params_.empty()) {
    TextTable params({"parameter", "value"});
    for (const auto& [k, v] : params_) params.add_row({k, v});
    out << params.render_markdown() << "\n";
  }
  for (const auto& [name, s] : series_) {
    out << "### series `" << name << "`\n\n";
    TextTable table(s.columns());
    for (const auto& row : s.rows()) table.add_numeric_row(row, precision);
    out << table.render_markdown() << "\n";
  }
  return out.str();
}

void ExperimentReport::save_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_json: cannot open " + path);
  out << to_json() << "\n";
  if (!out) throw std::runtime_error("save_json: write failed for " + path);
}

void ExperimentReport::save_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_csv: cannot open " + path);
  write_csv(out);
  if (!out) throw std::runtime_error("save_csv: write failed for " + path);
}

}  // namespace rdp
