#include "exp/ratio_experiment.hpp"

#include <stdexcept>

#include "core/instance.hpp"
#include "core/realization.hpp"
#include "exact/optimal.hpp"
#include "obs/hooks.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "perturb/adversary.hpp"

namespace rdp {

namespace {

RatioTrial finish_trial(Time algo_makespan, const Realization& actual,
                        const Instance& instance,
                        const RatioExperimentConfig& config) {
  RatioTrial trial;
  trial.algorithm_makespan = algo_makespan;
  obs::MetricsRegistry* const mx = obs::metrics();
  if (mx) mx->counter("exp.ratio.trials").add(1);
  obs::ScopedTimer opt_timer(mx ? &mx->histogram("exp.ratio.certify_seconds")
                                : nullptr);
  const CertifiedCmax opt =
      certified_cmax(actual.actual, instance.num_machines(), config.exact_node_budget);
  trial.optimal_lower_bound = opt.lower;
  trial.exact_optimum = opt.exact;
  if (opt.lower <= 0) {
    throw std::logic_error("measure_ratio: degenerate optimum");
  }
  trial.ratio = algo_makespan / opt.lower;
  return trial;
}

}  // namespace

RatioTrial measure_ratio(const TwoPhaseStrategy& strategy, const Instance& instance,
                         const Realization& actual,
                         const RatioExperimentConfig& config) {
  const StrategyResult result = strategy.run(instance, actual);
  return finish_trial(result.makespan, actual, instance, config);
}

RatioTrial measure_adversarial_ratio(const TwoPhaseStrategy& strategy,
                                     const Instance& instance,
                                     const RatioExperimentConfig& config) {
  const Placement placement = strategy.place(instance);
  const Realization actual = adversarial_realization(instance, placement);
  const DispatchResult dispatched =
      dispatch_with_rule(instance, placement, actual, strategy.rule());
  return finish_trial(dispatched.schedule.makespan(), actual, instance, config);
}

RatioAggregate measure_ratio_batch(const TwoPhaseStrategy& strategy,
                                   const Instance& instance, NoiseModel noise,
                                   std::size_t trials, std::uint64_t seed,
                                   const RatioExperimentConfig& config) {
  obs::ScopedSpan span(obs::tracer(), "measure_ratio_batch", "exp");
  RatioAggregate agg;
  agg.strategy_name = strategy.name();
  agg.noise_name = to_string(noise);
  // Phase 1 is deterministic: place once, re-dispatch per realization.
  const Placement placement = strategy.place(instance);
  for (std::size_t t = 0; t < trials; ++t) {
    const Realization actual = realize(instance, noise, seed + t);
    const DispatchResult dispatched =
        dispatch_with_rule(instance, placement, actual, strategy.rule());
    const RatioTrial trial =
        finish_trial(dispatched.schedule.makespan(), actual, instance, config);
    agg.ratios.add(trial.ratio);
    if (trial.ratio > agg.worst.ratio) agg.worst = trial;
  }
  return agg;
}

}  // namespace rdp
