#include "exp/ratio_experiment.hpp"

#include <stdexcept>

#include "algo/dispatch_policies.hpp"
#include "check/invariants.hpp"
#include "core/instance.hpp"
#include "core/realization.hpp"
#include "exact/certify.hpp"
#include "obs/hooks.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "perturb/adversary.hpp"
#include "sim/online_dispatcher.hpp"
#include "sim/workspace.hpp"

namespace rdp {

namespace {

CertifyEngine& engine_for(const RatioExperimentConfig& config) {
  return config.engine != nullptr ? *config.engine : default_certify_engine();
}

RatioTrial make_trial(Time algo_makespan, const CertifiedCmax& opt) {
  RatioTrial trial;
  trial.algorithm_makespan = algo_makespan;
  trial.optimal_lower_bound = opt.lower;
  trial.exact_optimum = opt.exact;
  if (opt.lower <= 0) {
    throw std::logic_error("measure_ratio: degenerate optimum");
  }
  trial.ratio = algo_makespan / opt.lower;
  return trial;
}

/// Debug-only schedule re-validation (the --debug-checks flag /
/// RDP_DEBUG_CHECKS=1): throws std::logic_error with every broken
/// invariant when a dispatcher produced an inconsistent schedule. Costs
/// one relaxed atomic load when disabled.
void debug_validate(const Instance& instance, const Placement& placement,
                    const Realization& actual, const Schedule& schedule,
                    const char* context) {
  if (!check::debug_checks_enabled()) return;
  check::throw_on_violations(
      check::check_invariants(instance, placement, actual, schedule), context);
}

RatioTrial finish_trial(Time algo_makespan, const Realization& actual,
                        const Instance& instance,
                        const RatioExperimentConfig& config) {
  obs::MetricsRegistry* const mx = obs::metrics();
  if (mx) mx->counter("exp.ratio.trials").add(1);
  CertifyOptions options;
  options.node_budget = config.exact_node_budget;
  CertifiedCmax opt;
  {
    obs::ScopedTimer opt_timer(mx ? &mx->histogram("exp.ratio.certify_seconds")
                                  : nullptr);
    opt = engine_for(config).certify(actual.actual, instance.num_machines(),
                                     options);
  }
  return make_trial(algo_makespan, opt);
}

}  // namespace

RatioTrial measure_ratio(const TwoPhaseStrategy& strategy, const Instance& instance,
                         const Realization& actual,
                         const RatioExperimentConfig& config) {
  const StrategyResult result = strategy.run(instance, actual);
  debug_validate(instance, result.placement, actual, result.schedule,
                 "measure_ratio");
  return finish_trial(result.makespan, actual, instance, config);
}

RatioTrial measure_adversarial_ratio(const TwoPhaseStrategy& strategy,
                                     const Instance& instance,
                                     const RatioExperimentConfig& config) {
  const Placement placement = strategy.place(instance);
  const Realization actual = adversarial_realization(instance, placement);
  const DispatchResult dispatched =
      dispatch_with_rule(instance, placement, actual, strategy.rule());
  debug_validate(instance, placement, actual, dispatched.schedule,
                 "measure_adversarial_ratio");
  return finish_trial(dispatched.schedule.makespan(), actual, instance, config);
}

std::vector<RatioTrial> measure_ratio_trials(const TwoPhaseStrategy& strategy,
                                             const Instance& instance,
                                             NoiseModel noise, std::size_t trials,
                                             std::uint64_t seed,
                                             const RatioExperimentConfig& config) {
  if (trials == 0) {
    throw std::invalid_argument("measure_ratio_trials: trials must be >= 1");
  }
  obs::ScopedSpan span(obs::tracer(), "measure_ratio_trials", "exp");
  // Phase 1 is deterministic: place once, re-dispatch per realization.
  const Placement placement = strategy.place(instance);
  // The priority permutation is a function of the instance alone; build
  // it once instead of re-sorting inside every trial.
  const std::vector<TaskId> priority = make_priority(instance, strategy.rule());

  // Per-trial slots are index-addressed, so the parallel path writes the
  // same bytes the sequential path would. Each worker thread reuses one
  // workspace + result pair, so steady-state trials allocate nothing in
  // the dispatcher.
  std::vector<Realization> actuals(trials);
  std::vector<Time> makespans(trials);
  const auto run_trial = [&](std::size_t t) {
    actuals[t] = realize(instance, noise, seed + t);
    thread_local DispatchResult dispatched;
    dispatch_online(instance, placement, actuals[t], priority, {}, {},
                    thread_workspace(), dispatched);
    debug_validate(instance, placement, actuals[t], dispatched.schedule,
                   "measure_ratio_trials");
    makespans[t] = dispatched.schedule.makespan();
  };
  if (config.pool != nullptr && trials > 1) {
    parallel_for_each_index(*config.pool, trials, run_trial);
  } else {
    for (std::size_t t = 0; t < trials; ++t) run_trial(t);
  }

  obs::MetricsRegistry* const mx = obs::metrics();
  if (mx) mx->counter("exp.ratio.trials").add(trials);
  std::vector<CertifyRequest> requests(trials);
  for (std::size_t t = 0; t < trials; ++t) {
    requests[t] = CertifyRequest{actuals[t].actual, instance.num_machines()};
  }
  CertifyOptions options;
  options.node_budget = config.exact_node_budget;
  options.pool = config.pool;
  std::vector<CertifiedCmax> optima;
  {
    obs::ScopedTimer certify_timer(
        mx ? &mx->histogram("exp.ratio.certify_seconds") : nullptr);
    optima = engine_for(config).certify_batch(requests, options);
  }

  std::vector<RatioTrial> out(trials);
  for (std::size_t t = 0; t < trials; ++t) {
    out[t] = make_trial(makespans[t], optima[t]);
  }
  return out;
}

RatioAggregate measure_ratio_batch(const TwoPhaseStrategy& strategy,
                                   const Instance& instance, NoiseModel noise,
                                   std::size_t trials, std::uint64_t seed,
                                   const RatioExperimentConfig& config) {
  if (trials == 0) {
    throw std::invalid_argument("measure_ratio_batch: trials must be >= 1");
  }
  obs::ScopedSpan span(obs::tracer(), "measure_ratio_batch", "exp");
  RatioAggregate agg;
  agg.strategy_name = strategy.name();
  agg.noise_name = to_string(noise);
  // Welford aggregation happens after the batch barrier, in trial order,
  // so the aggregate is bit-identical to the sequential order.
  const std::vector<RatioTrial> series =
      measure_ratio_trials(strategy, instance, noise, trials, seed, config);
  for (const RatioTrial& trial : series) {
    agg.ratios.add(trial.ratio);
    if (trial.ratio > agg.worst.ratio) agg.worst = trial;
  }
  return agg;
}

}  // namespace rdp
