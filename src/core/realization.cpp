#include "core/realization.hpp"

#include <algorithm>

#include "core/instance.hpp"
#include "core/scan.hpp"

namespace rdp {

namespace {
// Relative slack for floating-point comparisons on the band boundary.
constexpr double kBandTolerance = 1e-9;
}  // namespace

Realization exact_realization(const Instance& instance) {
  Realization r;
  r.actual.reserve(instance.num_tasks());
  for (const Task& t : instance.tasks()) r.actual.push_back(t.estimate);
  return r;
}

bool respects_uncertainty(const Instance& instance, const Realization& r) {
  if (r.actual.size() != instance.num_tasks()) return false;
  const double a = instance.alpha();
  for (TaskId j = 0; j < r.actual.size(); ++j) {
    const Time est = instance.estimate(j);
    const Time lo = est / a;
    const Time hi = est * a;
    const Time p = r.actual[j];
    if (p < lo * (1.0 - kBandTolerance) || p > hi * (1.0 + kBandTolerance)) {
      return false;
    }
  }
  return true;
}

Realization clamp_to_band(const Instance& instance, Realization r) {
  const double a = instance.alpha();
  const std::size_t n = std::min<std::size_t>(r.actual.size(), instance.num_tasks());
  for (TaskId j = 0; j < n; ++j) {
    const Time est = instance.estimate(j);
    r.actual[j] = std::clamp(r.actual[j], est / a, est * a);
  }
  return r;
}

Time total_actual(const Realization& r) {
  // Sequential-order sum on purpose: callers fold this into reported
  // aggregates whose goldens predate the unrolled scans.
  Time sum = 0;
  for (Time p : r.actual) sum += p;
  return sum;
}

Time max_actual(const Realization& r) { return max_scan(r.actual); }

}  // namespace rdp
