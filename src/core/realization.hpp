// A realization fixes the *actual* processing times p_j that phase 2
// discovers only as tasks complete. Any realization must respect the
// paper's Equation (1): estimate/alpha <= actual <= alpha*estimate.
#pragma once

#include <vector>

#include "core/types.hpp"

namespace rdp {

class Instance;

/// Actual processing times, indexed by TaskId.
struct Realization {
  std::vector<Time> actual;

  [[nodiscard]] Time operator[](TaskId j) const { return actual.at(j); }
  [[nodiscard]] std::size_t size() const noexcept { return actual.size(); }
};

/// Realization where every actual time equals its estimate (alpha plays no
/// role); useful as a baseline and for certain-time substrates.
[[nodiscard]] Realization exact_realization(const Instance& instance);

/// True iff `r` has one entry per task and every entry lies within the
/// multiplicative alpha band of its estimate (with a tiny tolerance for
/// floating-point boundary values).
[[nodiscard]] bool respects_uncertainty(const Instance& instance, const Realization& r);

/// Clamps every actual time into the legal alpha band of its estimate.
[[nodiscard]] Realization clamp_to_band(const Instance& instance, Realization r);

/// Sum of actual processing times.
[[nodiscard]] Time total_actual(const Realization& r);

/// Largest actual processing time (0 when empty).
[[nodiscard]] Time max_actual(const Realization& r);

}  // namespace rdp
