// Unrolled reductions over contiguous Time arrays (load vectors, finish
// times, realizations). Compilers refuse to vectorize floating-point
// reductions at -O2 because reassociation changes rounding; splitting the
// loop into independent lanes hands them the reassociated form
// explicitly, which SLP-vectorizes and pipelines even when it does not.
//
// Bit-exactness notes:
//  * max_scan is safe to reorder: IEEE max of non-NaN values is
//    associative and commutative, so the lane split returns the exact
//    bits of the sequential loop.
//  * sum_scan IS a reassociation -- its result may differ from the
//    sequential sum in the last ulp. Callers that feed goldens use it
//    deliberately and own the (regenerated) expectations.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>

#include "core/types.hpp"

namespace rdp {

/// Maximum over `values`, 0 when empty (loads and finish times are
/// non-negative, so 0 is the identity the callers want).
[[nodiscard]] inline Time max_scan(std::span<const Time> values) noexcept {
  const std::size_t n = values.size();
  const Time* const v = values.data();
  Time m0 = 0, m1 = 0, m2 = 0, m3 = 0;
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    m0 = std::max(m0, v[k]);
    m1 = std::max(m1, v[k + 1]);
    m2 = std::max(m2, v[k + 2]);
    m3 = std::max(m3, v[k + 3]);
  }
  for (; k < n; ++k) m0 = std::max(m0, v[k]);
  return std::max(std::max(m0, m1), std::max(m2, m3));
}

/// Sum of `values` with four independent accumulators (pairwise combine).
[[nodiscard]] inline Time sum_scan(std::span<const Time> values) noexcept {
  const std::size_t n = values.size();
  const Time* const v = values.data();
  Time s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    s0 += v[k];
    s1 += v[k + 1];
    s2 += v[k + 2];
    s3 += v[k + 3];
  }
  for (; k < n; ++k) s0 += v[k];
  return (s0 + s1) + (s2 + s3);
}

}  // namespace rdp
