#include "core/schedule.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/realization.hpp"
#include "core/scan.hpp"

namespace rdp {

bool Assignment::complete() const noexcept {
  return std::all_of(machine_of.begin(), machine_of.end(),
                     [](MachineId i) { return i != kNoMachine; });
}

std::vector<std::vector<TaskId>> Assignment::tasks_per_machine(
    MachineId num_machines) const {
  std::vector<std::vector<TaskId>> out(num_machines);
  for (TaskId j = 0; j < machine_of.size(); ++j) {
    const MachineId i = machine_of[j];
    if (i == kNoMachine) continue;
    if (i >= num_machines) {
      throw std::out_of_range("Assignment: machine id out of range");
    }
    out[i].push_back(j);
  }
  return out;
}

Time Schedule::makespan() const noexcept { return max_scan(finish); }

Schedule sequence_assignment(const Assignment& assignment, const Realization& actual,
                             MachineId num_machines) {
  if (assignment.num_tasks() != actual.size()) {
    throw std::invalid_argument(
        "sequence_assignment: assignment/realization size mismatch");
  }
  Schedule s;
  s.assignment = assignment;
  s.start.assign(assignment.num_tasks(), 0);
  s.finish.assign(assignment.num_tasks(), 0);
  std::vector<Time> ready(num_machines, 0);
  for (TaskId j = 0; j < assignment.num_tasks(); ++j) {
    const MachineId i = assignment[j];
    if (i == kNoMachine) {
      throw std::invalid_argument("sequence_assignment: unassigned task");
    }
    if (i >= num_machines) {
      throw std::out_of_range("sequence_assignment: machine id out of range");
    }
    s.start[j] = ready[i];
    s.finish[j] = ready[i] + actual[j];
    ready[i] = s.finish[j];
  }
  return s;
}

}  // namespace rdp
