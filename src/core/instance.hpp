// Problem instance: n independent tasks, m identical machines, and the
// multiplicative uncertainty factor alpha of the paper's Equation (1):
//   p_j / alpha <= actual_j <= alpha * p_j   (estimates p_j known offline).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace rdp {

/// One task: an estimated processing time (the only time information the
/// scheduler has before completion) and a data size used by the
/// memory-aware model. Size is ignored by the replication-bound model.
struct Task {
  Time estimate = 0.0;  ///< \f$\tilde p_j\f$, must be > 0
  double size = 1.0;    ///< \f$s_j\f$, must be >= 0
};

/// An immutable scheduling instance. Construction validates the model
/// preconditions (positive estimates, alpha >= 1, at least one machine)
/// and throws std::invalid_argument on violation.
class Instance {
 public:
  Instance() = default;

  /// Builds an instance from explicit tasks.
  Instance(std::vector<Task> tasks, MachineId machines, double alpha);

  /// Convenience: tasks with unit sizes from a vector of estimates.
  static Instance from_estimates(std::vector<Time> estimates, MachineId machines,
                                 double alpha);

  [[nodiscard]] std::size_t num_tasks() const noexcept { return tasks_.size(); }
  [[nodiscard]] MachineId num_machines() const noexcept { return machines_; }
  [[nodiscard]] double alpha() const noexcept { return alpha_; }
  [[nodiscard]] const std::vector<Task>& tasks() const noexcept { return tasks_; }
  [[nodiscard]] const Task& task(TaskId j) const { return tasks_.at(j); }

  /// \f$\tilde p_j\f$ of task j.
  [[nodiscard]] Time estimate(TaskId j) const { return tasks_.at(j).estimate; }

  /// \f$s_j\f$ of task j.
  [[nodiscard]] double size(TaskId j) const { return tasks_.at(j).size; }

  /// All estimates as a dense vector (copy), convenient for kernels that
  /// operate on raw processing-time arrays.
  [[nodiscard]] std::vector<Time> estimates() const;

  /// All sizes as a dense vector (copy).
  [[nodiscard]] std::vector<double> sizes() const;

  /// Sum of estimated processing times.
  [[nodiscard]] Time total_estimate() const noexcept;

  /// Largest estimated processing time (0 for an empty instance).
  [[nodiscard]] Time max_estimate() const noexcept;

  /// Sum of task sizes.
  [[nodiscard]] double total_size() const noexcept;

  /// Human-readable one-line summary, e.g. "n=100 m=8 alpha=1.5".
  [[nodiscard]] std::string summary() const;

 private:
  std::vector<Task> tasks_;
  MachineId machines_ = 1;
  double alpha_ = 1.0;
};

}  // namespace rdp
