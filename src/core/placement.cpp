#include "core/placement.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>

namespace rdp {

namespace {

/// Order-insensitive mix of the (sorted, deduplicated) set contents.
/// Per-element finalizers are independent, so the hash pipelines instead
/// of forming one long multiply chain; collisions are harmless (interning
/// always confirms with a full set comparison).
std::uint64_t hash_machine_set(const std::vector<MachineId>& set) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ set.size();
  for (MachineId i : set) {
    std::uint64_t z = static_cast<std::uint64_t>(i) + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    h ^= z ^ (z >> 31);
  }
  return h;
}

}  // namespace

Placement::Placement(std::vector<std::vector<MachineId>> sets, MachineId num_machines)
    : sets_(std::move(sets)), machines_(num_machines) {
  if (machines_ == 0) {
    throw std::invalid_argument("Placement: need at least one machine");
  }
  for (auto& set : sets_) {
    std::sort(set.begin(), set.end());
    set.erase(std::unique(set.begin(), set.end()), set.end());
    if (set.empty()) {
      throw std::invalid_argument("Placement: every task needs at least one replica");
    }
    if (set.back() >= machines_) {
      throw std::invalid_argument("Placement: machine id " +
                                  std::to_string(set.back()) + " out of range");
    }
  }

  // Intern identical sets: open-addressed table of canonical ids keyed by
  // the set hash, confirmed by full comparison against the id's
  // representative (hash collisions must never merge different sets).
  const std::size_t n = sets_.size();
  set_id_.resize(n);
  const std::size_t table_cap = std::max<std::size_t>(64, std::bit_ceil(2 * n + 1));
  std::vector<std::uint32_t> table(table_cap, UINT32_MAX);
  std::vector<std::uint64_t> id_hash;
  for (TaskId j = 0; j < n; ++j) {
    const std::uint64_t h = hash_machine_set(sets_[j]);
    std::size_t idx = h & (table_cap - 1);
    std::uint32_t s;
    while (true) {
      s = table[idx];
      if (s == UINT32_MAX) {
        s = static_cast<std::uint32_t>(distinct_rep_.size());
        distinct_rep_.push_back(j);
        set_population_.push_back(0);
        id_hash.push_back(h);
        table[idx] = s;
        break;
      }
      if (id_hash[s] == h && sets_[distinct_rep_[s]] == sets_[j]) break;
      idx = (idx + 1) & (table_cap - 1);
    }
    set_id_[j] = s;
    ++set_population_[s];
  }
}

Placement Placement::singleton(const std::vector<MachineId>& machine_of,
                               MachineId num_machines) {
  std::vector<std::vector<MachineId>> sets;
  sets.reserve(machine_of.size());
  for (MachineId i : machine_of) sets.push_back({i});
  return Placement(std::move(sets), num_machines);
}

Placement Placement::everywhere(std::size_t num_tasks, MachineId num_machines) {
  std::vector<MachineId> all(num_machines);
  for (MachineId i = 0; i < num_machines; ++i) all[i] = i;
  std::vector<std::vector<MachineId>> sets(num_tasks, all);
  return Placement(std::move(sets), num_machines);
}

Placement Placement::in_groups(const std::vector<MachineId>& group_of, MachineId k,
                               MachineId num_machines) {
  if (k == 0 || num_machines % k != 0) {
    throw std::invalid_argument("Placement::in_groups: k must divide m");
  }
  const MachineId group_size = num_machines / k;
  std::vector<std::vector<MachineId>> sets;
  sets.reserve(group_of.size());
  for (MachineId g : group_of) {
    if (g >= k) {
      throw std::invalid_argument("Placement::in_groups: group id out of range");
    }
    std::vector<MachineId> set(group_size);
    for (MachineId i = 0; i < group_size; ++i) set[i] = g * group_size + i;
    sets.push_back(std::move(set));
  }
  return Placement(std::move(sets), num_machines);
}

std::size_t Placement::max_replication_degree() const noexcept {
  std::size_t best = 0;
  for (const auto& set : sets_) best = std::max(best, set.size());
  return best;
}

bool Placement::allows(TaskId j, MachineId i) const {
  const auto& set = sets_.at(j);
  return std::binary_search(set.begin(), set.end(), i);
}

std::size_t Placement::total_replicas() const noexcept {
  std::size_t sum = 0;
  for (const auto& set : sets_) sum += set.size();
  return sum;
}

std::vector<std::vector<TaskId>> Placement::tasks_per_machine() const {
  std::vector<std::vector<TaskId>> out(machines_);
  for (TaskId j = 0; j < sets_.size(); ++j) {
    for (MachineId i : sets_[j]) out[i].push_back(j);
  }
  return out;
}

}  // namespace rdp
