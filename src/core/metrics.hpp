// Objective evaluation: makespan C_max over actual times, and the
// memory-aware model's per-machine occupation Mem_i / Mem_max.
#pragma once

#include <vector>

#include "core/types.hpp"

namespace rdp {

class Instance;
class Placement;
struct Assignment;
struct Realization;

/// Load (sum of actual processing times) of every machine under `a`.
[[nodiscard]] std::vector<Time> machine_loads(const Assignment& a,
                                              const Realization& actual,
                                              MachineId num_machines);

/// C_max = max_i sum_{j in E_i} p_j. Requires a complete assignment.
[[nodiscard]] Time makespan(const Assignment& a, const Realization& actual,
                            MachineId num_machines);

/// Loads using *estimated* processing times (the planned makespan
/// \f$\tilde C_{max}\f$ of the proofs).
[[nodiscard]] std::vector<Time> estimated_loads(const Assignment& a,
                                                const Instance& instance);

/// Planned makespan on estimates.
[[nodiscard]] Time estimated_makespan(const Assignment& a, const Instance& instance);

/// Memory occupation Mem_i of every machine under a placement:
/// Mem_i = sum of sizes of tasks replicated on machine i.
[[nodiscard]] std::vector<double> memory_per_machine(const Placement& placement,
                                                     const Instance& instance);

/// Mem_max = max_i Mem_i of a placement.
[[nodiscard]] double max_memory(const Placement& placement, const Instance& instance);

/// Memory occupation of a replication-free assignment (each task's data
/// only on its execution machine).
[[nodiscard]] std::vector<double> memory_per_machine(const Assignment& a,
                                                     const Instance& instance);

/// Mem_max of a replication-free assignment.
[[nodiscard]] double max_memory(const Assignment& a, const Instance& instance);

/// Load imbalance: C_max divided by average load (1.0 = perfectly balanced).
/// Returns 0 for an empty instance.
[[nodiscard]] double imbalance(const Assignment& a, const Realization& actual,
                               MachineId num_machines);

}  // namespace rdp
