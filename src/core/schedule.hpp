// Phase-2 output: which machine each task ran on and when. An Assignment
// carries only the task->machine map (enough for makespan / memory); a
// Schedule additionally carries start/finish times produced by the
// online dispatcher.
#pragma once

#include <cstddef>
#include <vector>

#include "core/types.hpp"

namespace rdp {

class Instance;
struct Realization;

/// Task -> machine map. `machine_of[j] == kNoMachine` means unassigned.
struct Assignment {
  std::vector<MachineId> machine_of;

  Assignment() = default;
  explicit Assignment(std::size_t num_tasks)
      : machine_of(num_tasks, kNoMachine) {}

  [[nodiscard]] std::size_t num_tasks() const noexcept { return machine_of.size(); }
  [[nodiscard]] MachineId operator[](TaskId j) const { return machine_of.at(j); }
  [[nodiscard]] bool complete() const noexcept;

  /// Task ids grouped by machine (the sets E_i of the paper).
  [[nodiscard]] std::vector<std::vector<TaskId>> tasks_per_machine(
      MachineId num_machines) const;
};

/// A fully timed schedule. Invariants (checked by core/validate.hpp):
/// finish[j] == start[j] + actual[j]; tasks on one machine do not overlap.
struct Schedule {
  Assignment assignment;
  std::vector<Time> start;   ///< dispatch time of each task
  std::vector<Time> finish;  ///< completion time of each task

  [[nodiscard]] std::size_t num_tasks() const noexcept {
    return assignment.num_tasks();
  }

  /// Completion time of the last task, i.e. C_max. 0 when empty.
  [[nodiscard]] Time makespan() const noexcept;
};

/// Builds a timed Schedule by running each machine's tasks back-to-back in
/// the order given by ascending TaskId (sufficient whenever only loads
/// matter, e.g. for static phase-1-only strategies).
[[nodiscard]] Schedule sequence_assignment(const Assignment& assignment,
                                           const Realization& actual,
                                           MachineId num_machines);

}  // namespace rdp
