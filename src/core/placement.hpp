// Phase-1 output: for every task j, the set M_j of machines holding a
// replica of its data. Phase 2 may only run j on a machine in M_j.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/types.hpp"

namespace rdp {

class Instance;

/// Replication sets M_j for every task. Each set is stored sorted and
/// duplicate-free. A Placement is only meaningful relative to the Instance
/// it was built for (same task count, machine ids < m).
class Placement {
 public:
  Placement() = default;

  /// Builds from raw sets; sorts and deduplicates each. Throws
  /// std::invalid_argument if any set is empty or contains a machine >= m.
  Placement(std::vector<std::vector<MachineId>> sets, MachineId num_machines);

  /// |M_j| = 1 for all j: task j pinned to `machine_of[j]`.
  static Placement singleton(const std::vector<MachineId>& machine_of,
                             MachineId num_machines);

  /// |M_j| = m for all j: every task replicated on every machine.
  static Placement everywhere(std::size_t num_tasks, MachineId num_machines);

  /// Group replication: machines are partitioned into `k` equal contiguous
  /// groups (k must divide m); task j is replicated on every machine of
  /// group `group_of[j]` (values in [0, k)).
  static Placement in_groups(const std::vector<MachineId>& group_of, MachineId k,
                             MachineId num_machines);

  [[nodiscard]] std::size_t num_tasks() const noexcept { return sets_.size(); }
  [[nodiscard]] MachineId num_machines() const noexcept { return machines_; }

  /// The sorted replica set M_j.
  [[nodiscard]] const std::vector<MachineId>& machines_for(TaskId j) const {
    return sets_.at(j);
  }

  /// |M_j|.
  [[nodiscard]] std::size_t replication_degree(TaskId j) const {
    return sets_.at(j).size();
  }

  /// max_j |M_j| (0 for an empty placement).
  [[nodiscard]] std::size_t max_replication_degree() const noexcept;

  /// True iff machine i holds a replica of task j (binary search).
  [[nodiscard]] bool allows(TaskId j, MachineId i) const;

  /// Total number of replicas, sum_j |M_j|.
  [[nodiscard]] std::size_t total_replicas() const noexcept;

  /// Tasks replicated on each machine, as per-machine sorted task lists.
  [[nodiscard]] std::vector<std::vector<TaskId>> tasks_per_machine() const;

  // Tasks sharing an identical replica set are interned to one canonical
  // set id at construction (ids in first-appearance task order). A
  // placement is built once and then dispatched against many realizations
  // in a sweep, so the simulators read the precomputed ids instead of
  // re-hashing every task's set on every run.

  /// Number of distinct replica sets.
  [[nodiscard]] std::uint32_t num_distinct_sets() const noexcept {
    return static_cast<std::uint32_t>(distinct_rep_.size());
  }

  /// Canonical id of task j's replica set, in [0, num_distinct_sets()).
  [[nodiscard]] std::uint32_t set_id(TaskId j) const { return set_id_.at(j); }

  /// The shared replica set with canonical id `s`.
  [[nodiscard]] const std::vector<MachineId>& distinct_set(std::uint32_t s) const {
    return sets_.at(distinct_rep_.at(s));
  }

  /// Number of tasks whose replica set has canonical id `s`.
  [[nodiscard]] std::uint32_t set_population(std::uint32_t s) const {
    return set_population_.at(s);
  }

 private:
  std::vector<std::vector<MachineId>> sets_;
  std::vector<std::uint32_t> set_id_;         ///< per task, canonical set id
  std::vector<TaskId> distinct_rep_;          ///< representative task per id
  std::vector<std::uint32_t> set_population_; ///< tasks per id
  MachineId machines_ = 0;
};

}  // namespace rdp
