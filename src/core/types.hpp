// Fundamental identifier and quantity types shared by every rdp module.
#pragma once

#include <cstdint>
#include <limits>

namespace rdp {

/// Index of a task within an Instance (dense, 0-based).
using TaskId = std::uint32_t;

/// Index of a machine within an Instance (dense, 0-based).
using MachineId = std::uint32_t;

/// Processing time / wall-clock quantity. All model quantities are
/// non-negative; negative values indicate a programming error.
using Time = double;

/// Sentinel for "no machine" (e.g. an unassigned task).
inline constexpr MachineId kNoMachine = std::numeric_limits<MachineId>::max();

/// Sentinel for "no task".
inline constexpr TaskId kNoTask = std::numeric_limits<TaskId>::max();

}  // namespace rdp
