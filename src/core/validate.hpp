// Cross-object consistency checks used by tests and by public entry points
// that accept user-built objects. Checks return a diagnostic string:
// empty == valid, otherwise a human-readable reason.
#pragma once

#include <string>

#include "core/types.hpp"

namespace rdp {

class Instance;
class Placement;
struct Assignment;
struct Realization;
struct Schedule;

/// Placement matches the instance: one set per task, machine ids < m.
[[nodiscard]] std::string check_placement(const Instance& instance,
                                          const Placement& placement);

/// Assignment is complete and every task runs on a machine of its M_j.
[[nodiscard]] std::string check_assignment(const Instance& instance,
                                           const Placement& placement,
                                           const Assignment& assignment);

/// Realization has one actual time per task, all within the alpha band.
[[nodiscard]] std::string check_realization(const Instance& instance,
                                            const Realization& realization);

/// Schedule is internally consistent: finish = start + actual, no two
/// tasks overlap on a machine, start times are non-negative, and the
/// semi-clairvoyant property holds (a machine never idles while it still
/// has work, i.e. per-machine execution is back-to-back from time 0 --
/// which is what every greedy dispatcher in this library produces).
[[nodiscard]] std::string check_schedule(const Instance& instance,
                                         const Realization& realization,
                                         const Schedule& schedule,
                                         bool require_no_idle = false);

/// Convenience: throws std::invalid_argument with the diagnostic when the
/// string is non-empty.
void throw_if_invalid(const std::string& diagnostic);

}  // namespace rdp
