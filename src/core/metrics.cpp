#include "core/metrics.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/instance.hpp"
#include "core/placement.hpp"
#include "core/realization.hpp"
#include "core/schedule.hpp"

namespace rdp {

namespace {

template <typename GetWeight>
std::vector<double> accumulate_by_machine(const Assignment& a, MachineId m,
                                          std::size_t num_tasks, GetWeight weight) {
  if (a.num_tasks() != num_tasks) {
    throw std::invalid_argument("metrics: assignment size mismatch");
  }
  std::vector<double> acc(m, 0.0);
  for (TaskId j = 0; j < num_tasks; ++j) {
    const MachineId i = a[j];
    if (i == kNoMachine) {
      throw std::invalid_argument("metrics: assignment is incomplete");
    }
    if (i >= m) {
      throw std::out_of_range("metrics: machine id out of range");
    }
    acc[i] += weight(j);
  }
  return acc;
}

}  // namespace

std::vector<Time> machine_loads(const Assignment& a, const Realization& actual,
                                MachineId num_machines) {
  return accumulate_by_machine(a, num_machines, actual.size(),
                               [&](TaskId j) { return actual[j]; });
}

Time makespan(const Assignment& a, const Realization& actual, MachineId num_machines) {
  const auto loads = machine_loads(a, actual, num_machines);
  return loads.empty() ? 0.0 : *std::max_element(loads.begin(), loads.end());
}

std::vector<Time> estimated_loads(const Assignment& a, const Instance& instance) {
  return accumulate_by_machine(a, instance.num_machines(), instance.num_tasks(),
                               [&](TaskId j) { return instance.estimate(j); });
}

Time estimated_makespan(const Assignment& a, const Instance& instance) {
  const auto loads = estimated_loads(a, instance);
  return loads.empty() ? 0.0 : *std::max_element(loads.begin(), loads.end());
}

std::vector<double> memory_per_machine(const Placement& placement,
                                       const Instance& instance) {
  if (placement.num_tasks() != instance.num_tasks()) {
    throw std::invalid_argument("metrics: placement size mismatch");
  }
  if (placement.num_machines() != instance.num_machines()) {
    throw std::invalid_argument("metrics: placement machine count mismatch");
  }
  std::vector<double> mem(instance.num_machines(), 0.0);
  for (TaskId j = 0; j < placement.num_tasks(); ++j) {
    for (MachineId i : placement.machines_for(j)) {
      mem[i] += instance.size(j);
    }
  }
  return mem;
}

double max_memory(const Placement& placement, const Instance& instance) {
  const auto mem = memory_per_machine(placement, instance);
  return mem.empty() ? 0.0 : *std::max_element(mem.begin(), mem.end());
}

std::vector<double> memory_per_machine(const Assignment& a, const Instance& instance) {
  return accumulate_by_machine(a, instance.num_machines(), instance.num_tasks(),
                               [&](TaskId j) { return instance.size(j); });
}

double max_memory(const Assignment& a, const Instance& instance) {
  const auto mem = memory_per_machine(a, instance);
  return mem.empty() ? 0.0 : *std::max_element(mem.begin(), mem.end());
}

double imbalance(const Assignment& a, const Realization& actual,
                 MachineId num_machines) {
  const Time total = total_actual(actual);
  if (total <= 0) return 0.0;
  const Time avg = total / static_cast<double>(num_machines);
  return makespan(a, actual, num_machines) / avg;
}

}  // namespace rdp
