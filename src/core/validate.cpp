#include "core/validate.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/instance.hpp"
#include "core/placement.hpp"
#include "core/realization.hpp"
#include "core/schedule.hpp"

namespace rdp {

namespace {
constexpr double kTimeTolerance = 1e-9;

bool nearly_equal(Time a, Time b) {
  const Time scale = std::max({std::abs(a), std::abs(b), Time{1}});
  return std::abs(a - b) <= kTimeTolerance * scale;
}
}  // namespace

std::string check_placement(const Instance& instance, const Placement& placement) {
  std::ostringstream os;
  if (placement.num_tasks() != instance.num_tasks()) {
    os << "placement has " << placement.num_tasks() << " sets, instance has "
       << instance.num_tasks() << " tasks";
    return os.str();
  }
  if (placement.num_machines() != instance.num_machines()) {
    os << "placement built for m=" << placement.num_machines() << ", instance has m="
       << instance.num_machines();
    return os.str();
  }
  for (TaskId j = 0; j < placement.num_tasks(); ++j) {
    const auto& set = placement.machines_for(j);
    if (set.empty()) {
      os << "task " << j << " has an empty replica set";
      return os.str();
    }
    if (set.back() >= instance.num_machines()) {
      os << "task " << j << " replicated on machine " << set.back() << " >= m";
      return os.str();
    }
  }
  return {};
}

std::string check_assignment(const Instance& instance, const Placement& placement,
                             const Assignment& assignment) {
  std::ostringstream os;
  if (auto d = check_placement(instance, placement); !d.empty()) return d;
  if (assignment.num_tasks() != instance.num_tasks()) {
    os << "assignment covers " << assignment.num_tasks() << " tasks, expected "
       << instance.num_tasks();
    return os.str();
  }
  for (TaskId j = 0; j < assignment.num_tasks(); ++j) {
    const MachineId i = assignment[j];
    if (i == kNoMachine) {
      os << "task " << j << " is unassigned";
      return os.str();
    }
    if (!placement.allows(j, i)) {
      os << "task " << j << " assigned to machine " << i
         << " which holds no replica of its data";
      return os.str();
    }
  }
  return {};
}

std::string check_realization(const Instance& instance, const Realization& realization) {
  std::ostringstream os;
  if (realization.size() != instance.num_tasks()) {
    os << "realization covers " << realization.size() << " tasks, expected "
       << instance.num_tasks();
    return os.str();
  }
  if (!respects_uncertainty(instance, realization)) {
    os << "realization violates the alpha=" << instance.alpha() << " band";
    return os.str();
  }
  return {};
}

std::string check_schedule(const Instance& instance, const Realization& realization,
                           const Schedule& schedule, bool require_no_idle) {
  std::ostringstream os;
  if (schedule.num_tasks() != instance.num_tasks() ||
      schedule.start.size() != instance.num_tasks() ||
      schedule.finish.size() != instance.num_tasks()) {
    return "schedule arrays do not match the instance size";
  }
  for (TaskId j = 0; j < schedule.num_tasks(); ++j) {
    if (schedule.start[j] < -kTimeTolerance) {
      os << "task " << j << " starts before time 0";
      return os.str();
    }
    if (!nearly_equal(schedule.finish[j], schedule.start[j] + realization[j])) {
      os << "task " << j << " finish != start + actual";
      return os.str();
    }
  }
  // Per-machine overlap / idle check.
  const auto per_machine =
      schedule.assignment.tasks_per_machine(instance.num_machines());
  for (MachineId i = 0; i < instance.num_machines(); ++i) {
    std::vector<TaskId> tasks = per_machine[i];
    std::sort(tasks.begin(), tasks.end(), [&](TaskId a, TaskId b) {
      return schedule.start[a] < schedule.start[b];
    });
    Time cursor = 0;
    for (TaskId j : tasks) {
      if (schedule.start[j] < cursor - kTimeTolerance) {
        os << "machine " << i << ": task " << j << " overlaps its predecessor";
        return os.str();
      }
      if (require_no_idle && !nearly_equal(schedule.start[j], cursor)) {
        os << "machine " << i << ": idle gap before task " << j;
        return os.str();
      }
      cursor = schedule.finish[j];
    }
  }
  return {};
}

void throw_if_invalid(const std::string& diagnostic) {
  if (!diagnostic.empty()) {
    throw std::invalid_argument(diagnostic);
  }
}

}  // namespace rdp
