#include "core/instance.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace rdp {

Instance::Instance(std::vector<Task> tasks, MachineId machines, double alpha)
    : tasks_(std::move(tasks)), machines_(machines), alpha_(alpha) {
  if (machines_ == 0) {
    throw std::invalid_argument("Instance: need at least one machine");
  }
  if (!(alpha_ >= 1.0)) {
    throw std::invalid_argument("Instance: alpha must be >= 1 (got " +
                                std::to_string(alpha_) + ")");
  }
  for (const Task& t : tasks_) {
    if (!(t.estimate > 0.0)) {
      throw std::invalid_argument("Instance: task estimates must be positive");
    }
    if (!(t.size >= 0.0)) {
      throw std::invalid_argument("Instance: task sizes must be non-negative");
    }
  }
}

Instance Instance::from_estimates(std::vector<Time> estimates, MachineId machines,
                                  double alpha) {
  std::vector<Task> tasks;
  tasks.reserve(estimates.size());
  for (Time p : estimates) {
    tasks.push_back(Task{p, 1.0});
  }
  return Instance(std::move(tasks), machines, alpha);
}

std::vector<Time> Instance::estimates() const {
  std::vector<Time> out;
  out.reserve(tasks_.size());
  for (const Task& t : tasks_) out.push_back(t.estimate);
  return out;
}

std::vector<double> Instance::sizes() const {
  std::vector<double> out;
  out.reserve(tasks_.size());
  for (const Task& t : tasks_) out.push_back(t.size);
  return out;
}

Time Instance::total_estimate() const noexcept {
  return std::accumulate(tasks_.begin(), tasks_.end(), Time{0},
                         [](Time acc, const Task& t) { return acc + t.estimate; });
}

Time Instance::max_estimate() const noexcept {
  Time best = 0;
  for (const Task& t : tasks_) best = std::max(best, t.estimate);
  return best;
}

double Instance::total_size() const noexcept {
  return std::accumulate(tasks_.begin(), tasks_.end(), 0.0,
                         [](double acc, const Task& t) { return acc + t.size; });
}

std::string Instance::summary() const {
  std::ostringstream os;
  os << "n=" << tasks_.size() << " m=" << machines_ << " alpha=" << alpha_;
  return os.str();
}

}  // namespace rdp
