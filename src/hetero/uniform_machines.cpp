#include "hetero/uniform_machines.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "algo/dispatch_policies.hpp"
#include "algo/lpt.hpp"
#include "core/instance.hpp"
#include "core/realization.hpp"
#include "core/scan.hpp"

namespace rdp {

SpeedProfile::SpeedProfile(std::vector<double> speeds) : speeds_(std::move(speeds)) {
  if (speeds_.empty()) {
    throw std::invalid_argument("SpeedProfile: need at least one machine");
  }
  for (double s : speeds_) {
    if (!(s > 0.0)) {
      throw std::invalid_argument("SpeedProfile: speeds must be positive");
    }
  }
}

SpeedProfile SpeedProfile::identical(MachineId num_machines) {
  return SpeedProfile(std::vector<double>(num_machines, 1.0));
}

SpeedProfile SpeedProfile::with_stragglers(MachineId num_machines,
                                           MachineId stragglers,
                                           double straggler_speed) {
  if (stragglers > num_machines) {
    throw std::invalid_argument("SpeedProfile: more stragglers than machines");
  }
  std::vector<double> speeds(num_machines, 1.0);
  for (MachineId i = 0; i < stragglers; ++i) speeds[i] = straggler_speed;
  return SpeedProfile(std::move(speeds));
}

double SpeedProfile::total_speed() const noexcept {
  return std::accumulate(speeds_.begin(), speeds_.end(), 0.0);
}

double SpeedProfile::max_speed() const noexcept {
  return *std::max_element(speeds_.begin(), speeds_.end());
}

Time makespan_uniform(const Assignment& assignment, const Realization& actual,
                      const SpeedProfile& profile) {
  std::vector<Time> finish(profile.size(), 0);
  for (TaskId j = 0; j < assignment.num_tasks(); ++j) {
    const MachineId i = assignment[j];
    if (i == kNoMachine) {
      throw std::invalid_argument("makespan_uniform: incomplete assignment");
    }
    finish.at(i) += actual[j] / profile.speed(i);
  }
  return max_scan(finish);
}

Time makespan_lower_bound_uniform(std::span<const Time> work,
                                  const SpeedProfile& profile) {
  if (work.empty()) return 0;
  std::vector<Time> sorted_work(work.begin(), work.end());
  std::sort(sorted_work.begin(), sorted_work.end(), std::greater<>());
  std::vector<double> sorted_speed = profile.speeds();
  std::sort(sorted_speed.begin(), sorted_speed.end(), std::greater<>());

  // The k heaviest jobs can use at most the k fastest machines' capacity.
  Time bound = 0;
  Time work_prefix = 0;
  double speed_prefix = 0;
  const std::size_t k_max = std::min<std::size_t>(work.size(), sorted_speed.size());
  for (std::size_t k = 0; k < k_max; ++k) {
    work_prefix += sorted_work[k];
    speed_prefix += sorted_speed[k];
    bound = std::max(bound, work_prefix / speed_prefix);
  }
  // Average bound over all machines.
  Time total = 0;
  for (Time w : work) total += w;
  bound = std::max(bound, total / profile.total_speed());
  return bound;
}

GreedyScheduleResult lpt_uniform_schedule(std::span<const Time> work,
                                          const SpeedProfile& profile) {
  const MachineId m = profile.size();
  GreedyScheduleResult result;
  result.assignment = Assignment(work.size());
  result.loads.assign(m, 0);  // loads are *finish times* here

  for (TaskId j : lpt_order(work)) {
    MachineId best = 0;
    Time best_finish = std::numeric_limits<Time>::infinity();
    for (MachineId i = 0; i < m; ++i) {
      const Time finish = result.loads[i] + work[j] / profile.speed(i);
      if (finish < best_finish) {
        best_finish = finish;
        best = i;
      }
    }
    result.assignment.machine_of[j] = best;
    result.loads[best] = best_finish;
  }
  result.makespan = max_scan(result.loads);
  return result;
}

Placement lpt_no_choice_uniform(const Instance& instance,
                                const SpeedProfile& profile) {
  if (profile.size() != instance.num_machines()) {
    throw std::invalid_argument("lpt_no_choice_uniform: speed profile size mismatch");
  }
  const auto estimates = instance.estimates();
  const GreedyScheduleResult lpt = lpt_uniform_schedule(estimates, profile);
  return Placement::singleton(lpt.assignment.machine_of, instance.num_machines());
}

namespace {

UniformStrategyResult run_with(const Instance& instance, const Realization& actual,
                               const SpeedProfile& profile, Placement placement,
                               PriorityRule rule) {
  UniformStrategyResult result;
  result.placement = std::move(placement);
  DispatchResult dispatched =
      dispatch_online(instance, result.placement, actual,
                      make_priority(instance, rule), {}, profile.speeds());
  result.schedule = std::move(dispatched.schedule);
  result.makespan = result.schedule.makespan();
  return result;
}

}  // namespace

UniformStrategyResult run_no_choice_uniform(const Instance& instance,
                                            const Realization& actual,
                                            const SpeedProfile& profile) {
  return run_with(instance, actual, profile,
                  lpt_no_choice_uniform(instance, profile),
                  PriorityRule::kInputOrder);
}

UniformStrategyResult run_no_restriction_uniform(const Instance& instance,
                                                 const Realization& actual,
                                                 const SpeedProfile& profile) {
  if (profile.size() != instance.num_machines()) {
    throw std::invalid_argument(
        "run_no_restriction_uniform: speed profile size mismatch");
  }
  return run_with(instance, actual, profile,
                  Placement::everywhere(instance.num_tasks(), instance.num_machines()),
                  PriorityRule::kLongestEstimateFirst);
}

UniformStrategyResult run_group_uniform(const Instance& instance,
                                        const Realization& actual,
                                        const SpeedProfile& profile,
                                        MachineId num_groups) {
  const MachineId m = instance.num_machines();
  if (profile.size() != m) {
    throw std::invalid_argument("run_group_uniform: speed profile size mismatch");
  }
  if (num_groups == 0 || m % num_groups != 0) {
    throw std::invalid_argument("run_group_uniform: k must divide m");
  }
  // Phase 1: List Scheduling over groups by estimated *finish time*,
  // where a group's capacity is the sum of its members' speeds.
  const MachineId group_size = m / num_groups;
  std::vector<double> capacity(num_groups, 0);
  for (MachineId g = 0; g < num_groups; ++g) {
    for (MachineId o = 0; o < group_size; ++o) {
      capacity[g] += profile.speed(g * group_size + o);
    }
  }
  std::vector<Time> load(num_groups, 0);  // estimated work per group
  std::vector<MachineId> group_of(instance.num_tasks());
  for (TaskId j = 0; j < instance.num_tasks(); ++j) {
    MachineId best = 0;
    Time best_finish = std::numeric_limits<Time>::infinity();
    for (MachineId g = 0; g < num_groups; ++g) {
      const Time finish = (load[g] + instance.estimate(j)) / capacity[g];
      if (finish < best_finish) {
        best_finish = finish;
        best = g;
      }
    }
    group_of[j] = best;
    load[best] += instance.estimate(j);
  }
  return run_with(instance, actual, profile,
                  Placement::in_groups(group_of, num_groups, m),
                  PriorityRule::kInputOrder);
}

}  // namespace rdp
