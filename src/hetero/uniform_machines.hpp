// Uniform (related) machines -- Q||Cmax: machine i runs at speed s_i, so
// a task of work w occupies it for w/s_i. This extends the paper's model
// toward its motivating scenarios where uncertainty partly lives in the
// *machines* (stragglers, heterogeneous nodes) rather than the tasks.
// The two-phase structure carries over unchanged: placement by estimated
// work, online dispatch driven by machine-idle events with speed-scaled
// durations.
#pragma once

#include <vector>

#include "algo/list_scheduling.hpp"
#include "core/placement.hpp"
#include "core/schedule.hpp"
#include "core/types.hpp"
#include "sim/online_dispatcher.hpp"

namespace rdp {

class Instance;
struct Realization;

/// Per-machine speeds; validated positive on construction.
class SpeedProfile {
 public:
  explicit SpeedProfile(std::vector<double> speeds);

  /// m identical machines (speed 1) -- the degenerate base model.
  static SpeedProfile identical(MachineId num_machines);

  /// All speed 1 except `stragglers` machines at `straggler_speed`
  /// (machines 0..stragglers-1 are the slow ones).
  static SpeedProfile with_stragglers(MachineId num_machines, MachineId stragglers,
                                      double straggler_speed);

  [[nodiscard]] MachineId size() const noexcept {
    return static_cast<MachineId>(speeds_.size());
  }
  [[nodiscard]] double speed(MachineId i) const { return speeds_.at(i); }
  [[nodiscard]] const std::vector<double>& speeds() const noexcept { return speeds_; }
  [[nodiscard]] double total_speed() const noexcept;
  [[nodiscard]] double max_speed() const noexcept;

 private:
  std::vector<double> speeds_;
};

/// Makespan of an assignment under speeds: max_i (sum of work on i)/s_i.
[[nodiscard]] Time makespan_uniform(const Assignment& assignment,
                                    const Realization& actual,
                                    const SpeedProfile& profile);

/// Analytic lower bound on OPT for Q||Cmax: max over the k largest jobs
/// of (their total work) / (total speed of the k fastest machines), for
/// k = 1..m, and the average bound total/total_speed.
[[nodiscard]] Time makespan_lower_bound_uniform(std::span<const Time> work,
                                                const SpeedProfile& profile);

/// Offline LPT for uniform machines: jobs in non-increasing work order,
/// each to the machine minimizing its *finish time* load_i + w/s_i.
/// 2-approximation on Q||Cmax (Gonzalez, Ibarra & Sahni style bound).
[[nodiscard]] GreedyScheduleResult lpt_uniform_schedule(std::span<const Time> work,
                                                        const SpeedProfile& profile);

/// Phase 1 for the no-choice strategy on uniform machines: LPT-uniform
/// over the estimates, singleton replica sets.
[[nodiscard]] Placement lpt_no_choice_uniform(const Instance& instance,
                                              const SpeedProfile& profile);

/// Full two-phase runs on uniform machines (phase 2 = dispatch_online
/// with the speed profile).
struct UniformStrategyResult {
  Placement placement;
  Schedule schedule;
  Time makespan = 0;
};

/// No replication: LPT-uniform pinning, static phase 2.
[[nodiscard]] UniformStrategyResult run_no_choice_uniform(const Instance& instance,
                                                          const Realization& actual,
                                                          const SpeedProfile& profile);

/// Full replication: online LPT dispatch over estimates with speeds.
[[nodiscard]] UniformStrategyResult run_no_restriction_uniform(
    const Instance& instance, const Realization& actual, const SpeedProfile& profile);

/// Group replication: machines are split into k contiguous groups of
/// equal *cardinality* (k divides m); tasks go to groups by List
/// Scheduling on estimated finish time over group capacities, then
/// dispatch online within groups with speeds.
[[nodiscard]] UniformStrategyResult run_group_uniform(const Instance& instance,
                                                      const Realization& actual,
                                                      const SpeedProfile& profile,
                                                      MachineId num_groups);

}  // namespace rdp
