// A fixed-size worker pool for the experiment harness. Tasks are
// arbitrary void() callables; submit() returns immediately and wait_idle()
// blocks until the queue drains. Exceptions thrown by tasks are captured
// and rethrown from wait_idle() (first one wins).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rdp {

class ThreadPool {
 public:
  /// `threads == 0` selects hardware_concurrency (minimum 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains outstanding work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Throws std::runtime_error after shutdown began.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task finished; rethrows the first task
  /// exception, if any (and clears it).
  void wait_idle();

  [[nodiscard]] std::size_t num_threads() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::exception_ptr first_error_;
};

}  // namespace rdp
