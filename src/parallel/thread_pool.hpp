// A fixed-size worker pool for the experiment harness. Tasks are
// arbitrary void() callables; submit() returns immediately and wait_idle()
// blocks until the queue drains. Exceptions thrown by tasks are captured
// and rethrown from wait_idle() (first one wins). Under the default
// ErrorPolicy::kCancelPending, tasks that have not started when the first
// error is recorded are dropped instead of executed, so a failing
// parallel sweep stops scheduling new cells (matching the serial path);
// ErrorPolicy::kRunAll keeps the old run-everything behaviour.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rdp {

class ThreadPool {
 public:
  enum class ErrorPolicy {
    kCancelPending,  ///< drop not-yet-started tasks once a task has thrown
    kRunAll,         ///< run every submitted task regardless of errors
  };

  /// `threads == 0` selects hardware_concurrency (minimum 1).
  explicit ThreadPool(std::size_t threads = 0,
                      ErrorPolicy policy = ErrorPolicy::kCancelPending);

  /// Drains outstanding work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Throws std::runtime_error after shutdown began.
  /// Under kCancelPending, a task submitted while an unconsumed error is
  /// pending is silently dropped (wait_idle() will rethrow the error).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task finished or was cancelled;
  /// rethrows the first task exception, if any (and clears it, returning
  /// the pool to a usable state).
  void wait_idle();

  [[nodiscard]] std::size_t num_threads() const noexcept { return workers_.size(); }
  [[nodiscard]] ErrorPolicy error_policy() const noexcept { return policy_; }

  /// Tasks dropped by kCancelPending since construction (observability).
  [[nodiscard]] std::uint64_t cancelled_count() const;

 private:
  struct Task {
    std::function<void()> fn;
    std::uint64_t enqueue_ns = 0;  // 0 when observability was off at submit
  };

  void worker_loop();
  void drop_pending_locked();

  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<Task> queue_;
  std::vector<std::thread> workers_;
  ErrorPolicy policy_;
  std::size_t in_flight_ = 0;
  std::uint64_t cancelled_ = 0;
  bool shutting_down_ = false;
  std::exception_ptr first_error_;
};

}  // namespace rdp
