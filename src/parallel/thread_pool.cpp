#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace rdp {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock lock(mutex_);
    if (shutting_down_) {
      throw std::runtime_error("ThreadPool: submit after shutdown");
    }
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr e = std::exchange(first_error_, nullptr);
    std::rethrow_exception(e);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    try {
      task();
    } catch (...) {
      std::unique_lock lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::unique_lock lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace rdp
