#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "obs/hooks.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rdp {

namespace {

std::uint64_t steady_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads, ErrorPolicy policy) : policy_(policy) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  obs::MetricsRegistry* const mx = obs::metrics();
  Task entry{std::move(task), mx || obs::tracer() ? steady_now_ns() : 0};
  std::size_t depth = 0;
  {
    std::unique_lock lock(mutex_);
    if (shutting_down_) {
      throw std::runtime_error("ThreadPool: submit after shutdown");
    }
    if (policy_ == ErrorPolicy::kCancelPending && first_error_) {
      ++cancelled_;
      if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
      return;
    }
    queue_.push_back(std::move(entry));
    depth = queue_.size();
  }
  if (mx) {
    mx->counter("pool.tasks.submitted").add(1);
    // Last-write-wins current depth plus a CAS-max peak: concurrent
    // submits can reorder the set() calls, but never lose the maximum.
    mx->gauge("pool.queue_depth").set(static_cast<double>(depth));
    mx->gauge("pool.queue_depth.max").set_max(static_cast<double>(depth));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr e = std::exchange(first_error_, nullptr);
    std::rethrow_exception(e);
  }
}

std::uint64_t ThreadPool::cancelled_count() const {
  std::unique_lock lock(mutex_);
  return cancelled_;
}

// Caller holds mutex_. Drops every queued task (kCancelPending after the
// first error) and wakes waiters if that made the pool idle.
void ThreadPool::drop_pending_locked() {
  cancelled_ += queue_.size();
  queue_.clear();
  if (in_flight_ == 0) idle_.notify_all();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down
      if (policy_ == ErrorPolicy::kCancelPending && first_error_) {
        drop_pending_locked();
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }

    obs::MetricsRegistry* const mx = obs::metrics();
    obs::Tracer* const tr = obs::tracer();
    const std::uint64_t run_start_ns = mx || tr ? steady_now_ns() : 0;
    if (mx && task.enqueue_ns != 0) {
      mx->histogram("pool.task.wait_seconds")
          .observe(static_cast<double>(run_start_ns - task.enqueue_ns) * 1e-9);
    }
    const std::uint64_t span_start_us = tr ? tr->now_us() : 0;

    try {
      task.fn();
    } catch (...) {
      std::unique_lock lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
      if (policy_ == ErrorPolicy::kCancelPending) drop_pending_locked();
    }

    if (mx || tr) {
      const std::uint64_t run_end_ns = steady_now_ns();
      if (mx) {
        mx->counter("pool.tasks.completed").add(1);
        mx->histogram("pool.task.run_seconds")
            .observe(static_cast<double>(run_end_ns - run_start_ns) * 1e-9);
      }
      if (tr) tr->span("pool.task", "parallel", span_start_us, tr->now_us() - span_start_us);
    }

    {
      std::unique_lock lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace rdp
