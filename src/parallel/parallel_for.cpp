#include "parallel/parallel_for.hpp"

#include <algorithm>

#include "parallel/thread_pool.hpp"

namespace rdp {

void parallel_for_blocked(ThreadPool& pool, std::size_t count,
                          const std::function<void(std::size_t, std::size_t)>& body,
                          std::size_t block) {
  if (count == 0) return;
  if (block == 0) {
    block = std::max<std::size_t>(1, count / (4 * pool.num_threads()));
  }
  for (std::size_t begin = 0; begin < count; begin += block) {
    const std::size_t end = std::min(count, begin + block);
    pool.submit([&body, begin, end] { body(begin, end); });
  }
  pool.wait_idle();
}

void parallel_for_each_index(ThreadPool& pool, std::size_t count,
                             const std::function<void(std::size_t)>& body,
                             std::size_t block) {
  parallel_for_blocked(
      pool, count,
      [&body](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) body(i);
      },
      block);
}

}  // namespace rdp
