// Blocked parallel_for on top of ThreadPool. The body receives [begin,
// end) index ranges; determinism is the caller's responsibility (write to
// disjoint slots, derive RNG streams from the index).
#pragma once

#include <cstddef>
#include <functional>

namespace rdp {

class ThreadPool;

/// Runs body(begin, end) over `count` indices split into blocks of at
/// most `block` (0 = pick count/4T, minimum 1). Blocks run on `pool`;
/// the call returns when all finished. Task exceptions propagate; under
/// the pool's default ErrorPolicy::kCancelPending, blocks not yet started
/// when the first exception is recorded are dropped, not executed.
void parallel_for_blocked(ThreadPool& pool, std::size_t count,
                          const std::function<void(std::size_t, std::size_t)>& body,
                          std::size_t block = 0);

/// Per-index convenience wrapper.
void parallel_for_each_index(ThreadPool& pool, std::size_t count,
                             const std::function<void(std::size_t)>& body,
                             std::size_t block = 0);

}  // namespace rdp
