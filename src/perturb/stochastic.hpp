// Stochastic realization models: draw actual processing times inside the
// alpha band around the estimates. These model the paper's motivating
// scenarios (imprecise analytic models, noisy ML predictions) as opposed
// to the adversarial constructions in perturb/adversary.hpp.
#pragma once

#include <cstdint>
#include <string>

#include "core/realization.hpp"
#include "core/types.hpp"

namespace rdp {

class Instance;

/// How the multiplicative factor f in [1/alpha, alpha] is drawn per task.
enum class NoiseModel {
  kNone,         ///< f = 1 (actual == estimate)
  kUniform,      ///< f uniform on [1/alpha, alpha]
  kLogUniform,   ///< log f uniform on [-log alpha, log alpha] (symmetric in ratio)
  kTwoPoint,     ///< f = alpha or 1/alpha, equal probability (worst-ish variance)
  kBetaCentered, ///< f concentrated near 1 (Beta(4,4) mapped into the band)
  kAlwaysHigh,   ///< f = alpha for every task (systematic under-estimation)
  kAlwaysLow,    ///< f = 1/alpha for every task (systematic over-estimation)
};

/// Printable name ("uniform", "log-uniform", ...).
[[nodiscard]] std::string to_string(NoiseModel model);

/// All stochastic models, for sweep harnesses.
[[nodiscard]] const std::vector<NoiseModel>& all_noise_models();

/// Draws a realization. Deterministic in (model, seed).
[[nodiscard]] Realization realize(const Instance& instance, NoiseModel model,
                                  std::uint64_t seed);

}  // namespace rdp
