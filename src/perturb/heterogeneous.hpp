// Per-task uncertainty bands. The paper's model uses one global alpha;
// in practice different task classes are predicted with different
// confidence (e.g. dense kernels vs irregular traversals). A HeteroBand
// gives each task its own alpha_j <= alpha; every realization drawn from
// it is also a legal realization of the instance's global band, so all
// the paper's guarantees (stated in the global alpha) still apply --
// they are just pessimistic for the well-predicted tasks, which the
// ext experiments can quantify.
#pragma once

#include <cstdint>
#include <vector>

#include "core/realization.hpp"
#include "core/types.hpp"
#include "perturb/stochastic.hpp"

namespace rdp {

class Instance;

/// Per-task multiplicative bands; alphas[j] >= 1 for all j.
class HeteroBand {
 public:
  explicit HeteroBand(std::vector<double> alphas);

  /// Two task classes: fraction `noisy_fraction` of tasks (chosen by
  /// seeded coin flips) gets `noisy_alpha`, the rest `calm_alpha`.
  static HeteroBand two_class(std::size_t num_tasks, double calm_alpha,
                              double noisy_alpha, double noisy_fraction,
                              std::uint64_t seed);

  [[nodiscard]] std::size_t size() const noexcept { return alphas_.size(); }
  [[nodiscard]] double alpha(TaskId j) const { return alphas_.at(j); }
  [[nodiscard]] const std::vector<double>& alphas() const noexcept { return alphas_; }

  /// The global alpha this band embeds into: max_j alpha_j.
  [[nodiscard]] double max_alpha() const noexcept;

 private:
  std::vector<double> alphas_;
};

/// Draws a realization with task j's factor confined to
/// [1/alpha_j, alpha_j], using the same factor shapes as NoiseModel.
/// The band must match the instance size and satisfy
/// max_alpha() <= instance.alpha() (so the result respects the model).
[[nodiscard]] Realization realize_hetero(const Instance& instance,
                                         const HeteroBand& band, NoiseModel model,
                                         std::uint64_t seed);

/// Adversary move under per-task bands: tasks of the most (estimated-)
/// loaded replica-set group are slowed by *their own* alpha_j, all
/// others sped up by 1/alpha_j -- the heterogeneous analogue of
/// adversarial_realization().
class Placement;
[[nodiscard]] Realization adversarial_realization_hetero(const Instance& instance,
                                                         const Placement& placement,
                                                         const HeteroBand& band);

}  // namespace rdp
