// Adversarial realization constructions -- the instances the paper's
// proofs are built from. The adversary observes the phase-1 placement and
// then picks actual processing times (within the alpha band) that hurt
// the algorithm the most.
#pragma once

#include <cstdint>

#include "core/instance.hpp"
#include "core/realization.hpp"
#include "core/types.hpp"

namespace rdp {

class Placement;
struct Assignment;

/// The Theorem 1 instance: lambda * m tasks of unit estimate.
[[nodiscard]] Instance thm1_instance(std::size_t lambda, MachineId m, double alpha);

/// The Theorem 1 adversary move against a *singleton* placement: every
/// task on the most (estimated-)loaded machine is slowed by a factor
/// alpha, every other task is sped up by 1/alpha.
[[nodiscard]] Realization thm1_realization(const Instance& instance,
                                           const Placement& placement);

/// The proof's upper bound on the offline optimum after the adversary
/// move, (1/alpha) ceil((lambda m - B)/m) + alpha ceil(B/m), where B is
/// the task count of the most loaded machine.
[[nodiscard]] Time thm1_offline_optimal_upper(std::size_t lambda, MachineId m,
                                              double alpha, std::size_t heaviest_count);

/// Generic placement-aware adversary: tasks are grouped by identical
/// replica sets; the group with the largest estimated load per machine is
/// inflated by alpha, everything else deflated by 1/alpha. Reduces to the
/// Theorem 1 move for singleton placements and to the Theorem 4 worst
/// case for group placements; full replication makes every task share one
/// group (the adversary cannot discriminate).
[[nodiscard]] Realization adversarial_realization(const Instance& instance,
                                                  const Placement& placement);

/// Adversary against a fixed assignment (phase 2 already done): inflate
/// the machine with the largest estimated load, deflate the rest. This is
/// the worst case used in the Theorem 2 analysis.
[[nodiscard]] Realization adversarial_realization(const Instance& instance,
                                                  const Assignment& assignment);

/// Result of the exhaustive two-point adversary search.
struct ExhaustiveAdversaryResult {
  Realization realization;   ///< the worst two-point realization found
  double ratio = 0;          ///< Cmax(assignment)/OPT under it
  Time algorithm_makespan = 0;
  Time optimal_makespan = 0;
};

/// Exhaustive adversary for *static* (singleton-placement) algorithms:
/// tries all 2^n realizations with each actual time at alpha*est or
/// est/alpha, computing the exact optimum for each, and returns the one
/// maximizing Cmax(assignment)/OPT. Guarded to n <= max_tasks.
[[nodiscard]] ExhaustiveAdversaryResult exhaustive_two_point_adversary(
    const Instance& instance, const Assignment& assignment,
    std::size_t max_tasks = 12);

}  // namespace rdp
