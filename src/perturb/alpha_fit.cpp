#include "perturb/alpha_fit.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace rdp {

namespace {

// Symmetric misprediction factor of one observation: the smallest alpha
// whose band contains it.
double factor_of(const Observation& o) {
  if (!(o.estimate > 0.0) || !(o.actual > 0.0)) {
    throw std::invalid_argument("alpha_fit: observations must be positive");
  }
  const double ratio = o.actual / o.estimate;
  return std::max(ratio, 1.0 / ratio);
}

}  // namespace

double fit_alpha_max(std::span<const Observation> history) {
  double alpha = 1.0;
  for (const Observation& o : history) alpha = std::max(alpha, factor_of(o));
  return alpha;
}

double fit_alpha_quantile(std::span<const Observation> history, double coverage) {
  if (!(coverage > 0.0) || coverage > 1.0) {
    throw std::invalid_argument("fit_alpha_quantile: coverage must be in (0, 1]");
  }
  if (history.empty()) return 1.0;
  std::vector<double> factors;
  factors.reserve(history.size());
  for (const Observation& o : history) factors.push_back(factor_of(o));
  std::sort(factors.begin(), factors.end());
  // Smallest alpha covering a k/n fraction of the observations with
  // k/n >= coverage. The comparison runs in ratio space (k/n vs
  // coverage, the same quotient coverage_of_alpha computes) rather than
  // product space: ceil(coverage * n) can round across an integer in
  // either direction (0.9 * 10 > 9 in doubles), which would silently
  // over- or under-cover the requested quantile.
  const std::size_t n = factors.size();
  const double scaled = coverage * static_cast<double>(n);
  std::size_t k = std::min<std::size_t>(
      n, std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(scaled))));
  while (k > 1 &&
         static_cast<double>(k - 1) / static_cast<double>(n) >= coverage) {
    --k;
  }
  while (k < n && static_cast<double>(k) / static_cast<double>(n) < coverage) {
    ++k;
  }
  return std::max(1.0, factors[k - 1]);
}

double coverage_of_alpha(std::span<const Observation> history, double alpha) {
  if (!(alpha >= 1.0)) {
    throw std::invalid_argument("coverage_of_alpha: alpha must be >= 1");
  }
  if (history.empty()) return 1.0;
  std::size_t covered = 0;
  for (const Observation& o : history) {
    if (factor_of(o) <= alpha * (1.0 + 1e-12)) ++covered;
  }
  return static_cast<double>(covered) / static_cast<double>(history.size());
}

CalibrationReport calibrate(std::span<const Observation> history) {
  CalibrationReport report;
  report.samples = history.size();
  if (history.empty()) return report;
  report.alpha_max = fit_alpha_max(history);
  report.alpha_p95 = fit_alpha_quantile(history, 0.95);
  report.alpha_p50 = fit_alpha_quantile(history, 0.50);
  double log_sum = 0;
  for (const Observation& o : history) {
    log_sum += std::log(o.actual / o.estimate);
  }
  report.bias = std::exp(log_sum / static_cast<double>(history.size()));
  return report;
}

}  // namespace rdp
