#include "perturb/stochastic.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/instance.hpp"
#include "rng/distributions.hpp"
#include "rng/rng.hpp"

namespace rdp {

std::string to_string(NoiseModel model) {
  switch (model) {
    case NoiseModel::kNone: return "none";
    case NoiseModel::kUniform: return "uniform";
    case NoiseModel::kLogUniform: return "log-uniform";
    case NoiseModel::kTwoPoint: return "two-point";
    case NoiseModel::kBetaCentered: return "beta-centered";
    case NoiseModel::kAlwaysHigh: return "always-high";
    case NoiseModel::kAlwaysLow: return "always-low";
  }
  throw std::invalid_argument("to_string: unknown NoiseModel");
}

const std::vector<NoiseModel>& all_noise_models() {
  static const std::vector<NoiseModel> kAll = {
      NoiseModel::kNone,        NoiseModel::kUniform,    NoiseModel::kLogUniform,
      NoiseModel::kTwoPoint,    NoiseModel::kBetaCentered,
      NoiseModel::kAlwaysHigh,  NoiseModel::kAlwaysLow,
  };
  return kAll;
}

Realization realize(const Instance& instance, NoiseModel model, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  const double a = instance.alpha();
  const double log_a = std::log(a);

  Realization r;
  r.actual.reserve(instance.num_tasks());
  for (TaskId j = 0; j < instance.num_tasks(); ++j) {
    double factor = 1.0;
    switch (model) {
      case NoiseModel::kNone:
        factor = 1.0;
        break;
      case NoiseModel::kUniform:
        factor = sample_uniform(rng, 1.0 / a, a);
        break;
      case NoiseModel::kLogUniform:
        factor = std::exp(sample_uniform(rng, -log_a, log_a));
        break;
      case NoiseModel::kTwoPoint:
        factor = (rng.next_double() < 0.5) ? a : 1.0 / a;
        break;
      case NoiseModel::kBetaCentered: {
        const double b = sample_beta(rng, 4.0, 4.0);  // mass near 0.5
        factor = std::exp((2.0 * b - 1.0) * log_a);
        break;
      }
      case NoiseModel::kAlwaysHigh:
        factor = a;
        break;
      case NoiseModel::kAlwaysLow:
        factor = 1.0 / a;
        break;
    }
    r.actual.push_back(instance.estimate(j) * factor);
  }
  return r;
}

}  // namespace rdp
