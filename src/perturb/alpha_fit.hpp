// Calibrating alpha from history. The model's single uncertainty knob is
// the multiplicative factor alpha; in practice it must be estimated from
// past (estimate, actual) pairs -- exactly what the paper's citations do
// with SVMs / analytic models. This module fits alpha and reports how
// well a candidate alpha would have covered history.
#pragma once

#include <span>

#include "core/types.hpp"

namespace rdp {

/// One historical observation.
struct Observation {
  Time estimate = 0;  ///< what the model predicted (must be > 0)
  Time actual = 0;    ///< what really happened (must be > 0)
};

/// The smallest alpha >= 1 covering *every* observation, i.e.
/// max_j max(actual/estimate, estimate/actual). Returns 1 for empty
/// input; throws std::invalid_argument on non-positive values.
[[nodiscard]] double fit_alpha_max(std::span<const Observation> history);

/// The smallest alpha >= 1 covering a `coverage` fraction of the
/// observations (e.g. 0.95). coverage must be in (0, 1].
[[nodiscard]] double fit_alpha_quantile(std::span<const Observation> history,
                                        double coverage);

/// Fraction of observations inside the band of a candidate alpha.
[[nodiscard]] double coverage_of_alpha(std::span<const Observation> history,
                                       double alpha);

struct CalibrationReport {
  std::size_t samples = 0;
  double alpha_max = 1.0;   ///< covers 100% of history
  double alpha_p95 = 1.0;   ///< covers 95%
  double alpha_p50 = 1.0;   ///< covers 50%
  double bias = 1.0;        ///< geometric mean of actual/estimate (1 = unbiased)
};

/// Full calibration in one pass.
[[nodiscard]] CalibrationReport calibrate(std::span<const Observation> history);

}  // namespace rdp
