#include "perturb/adversary.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "core/metrics.hpp"
#include "core/placement.hpp"
#include "core/schedule.hpp"
#include "exact/branch_and_bound.hpp"
#include "workload/generators.hpp"

namespace rdp {

Instance thm1_instance(std::size_t lambda, MachineId m, double alpha) {
  if (lambda == 0) throw std::invalid_argument("thm1_instance: lambda must be >= 1");
  return unit_tasks(lambda * m, m, alpha);
}

Realization thm1_realization(const Instance& instance, const Placement& placement) {
  if (placement.max_replication_degree() != 1) {
    throw std::invalid_argument("thm1_realization: placement must be singleton");
  }
  if (placement.num_machines() != instance.num_machines() ||
      placement.num_tasks() != instance.num_tasks()) {
    throw std::invalid_argument("thm1_realization: placement/instance mismatch");
  }
  // Estimated load (== task count for unit tasks) per machine.
  std::vector<Time> load(instance.num_machines(), 0);
  for (TaskId j = 0; j < placement.num_tasks(); ++j) {
    load[placement.machines_for(j).front()] += instance.estimate(j);
  }
  const MachineId heaviest = static_cast<MachineId>(
      std::max_element(load.begin(), load.end()) - load.begin());

  const double a = instance.alpha();
  Realization r;
  r.actual.reserve(instance.num_tasks());
  for (TaskId j = 0; j < instance.num_tasks(); ++j) {
    const bool on_heaviest = placement.machines_for(j).front() == heaviest;
    r.actual.push_back(instance.estimate(j) * (on_heaviest ? a : 1.0 / a));
  }
  return r;
}

Time thm1_offline_optimal_upper(std::size_t lambda, MachineId m, double alpha,
                                std::size_t heaviest_count) {
  const double dm = static_cast<double>(m);
  const double fast = std::ceil(
      (static_cast<double>(lambda * m) - static_cast<double>(heaviest_count)) / dm);
  const double slow = std::ceil(static_cast<double>(heaviest_count) / dm);
  return fast / alpha + slow * alpha;
}

namespace {

// FNV-1a over a replica set, same scheme as the dispatcher's bucketing.
std::uint64_t hash_set(const std::vector<MachineId>& set) {
  std::uint64_t h = 1469598103934665603ULL;
  for (MachineId i : set) {
    h ^= static_cast<std::uint64_t>(i) + 1;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

Realization adversarial_realization(const Instance& instance,
                                    const Placement& placement) {
  if (placement.num_tasks() != instance.num_tasks()) {
    throw std::invalid_argument("adversarial_realization: placement size mismatch");
  }
  // Group tasks by identical replica set; track estimated load and width.
  struct Group {
    Time load = 0;
    double width = 1;
    std::vector<TaskId> tasks;
  };
  std::unordered_map<std::uint64_t, Group> groups;
  for (TaskId j = 0; j < instance.num_tasks(); ++j) {
    const auto& set = placement.machines_for(j);
    Group& g = groups[hash_set(set)];
    g.load += instance.estimate(j);
    g.width = static_cast<double>(set.size());
    g.tasks.push_back(j);
  }
  // Inflate the group with the largest load density (load per machine of
  // its replica set); ties break toward the smallest first task id for
  // determinism.
  const Group* target = nullptr;
  for (const auto& [h, g] : groups) {
    (void)h;
    if (target == nullptr) {
      target = &g;
      continue;
    }
    const double d = g.load / g.width;
    const double best = target->load / target->width;
    if (d > best || (d == best && g.tasks.front() < target->tasks.front())) {
      target = &g;
    }
  }

  const double a = instance.alpha();
  Realization r;
  r.actual.assign(instance.num_tasks(), 0);
  std::vector<bool> inflate(instance.num_tasks(), false);
  if (target != nullptr) {
    for (TaskId j : target->tasks) inflate[j] = true;
  }
  for (TaskId j = 0; j < instance.num_tasks(); ++j) {
    r.actual[j] = instance.estimate(j) * (inflate[j] ? a : 1.0 / a);
  }
  return r;
}

Realization adversarial_realization(const Instance& instance,
                                    const Assignment& assignment) {
  std::vector<Time> load(instance.num_machines(), 0);
  for (TaskId j = 0; j < instance.num_tasks(); ++j) {
    load[assignment[j]] += instance.estimate(j);
  }
  const MachineId heaviest = static_cast<MachineId>(
      std::max_element(load.begin(), load.end()) - load.begin());
  const double a = instance.alpha();
  Realization r;
  r.actual.reserve(instance.num_tasks());
  for (TaskId j = 0; j < instance.num_tasks(); ++j) {
    const bool slow = assignment[j] == heaviest;
    r.actual.push_back(instance.estimate(j) * (slow ? a : 1.0 / a));
  }
  return r;
}

ExhaustiveAdversaryResult exhaustive_two_point_adversary(const Instance& instance,
                                                         const Assignment& assignment,
                                                         std::size_t max_tasks) {
  const std::size_t n = instance.num_tasks();
  if (n > max_tasks) {
    throw std::invalid_argument("exhaustive_two_point_adversary: instance too large");
  }
  if (n == 0) {
    return {};
  }
  const double a = instance.alpha();
  ExhaustiveAdversaryResult best;
  best.ratio = -1;

  Realization r;
  r.actual.assign(n, 0);
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << n); ++mask) {
    for (TaskId j = 0; j < n; ++j) {
      const bool high = (mask >> j) & 1U;
      r.actual[j] = instance.estimate(j) * (high ? a : 1.0 / a);
    }
    const Time algo = makespan(assignment, r, instance.num_machines());
    const BnbResult opt = branch_and_bound_cmax(r.actual, instance.num_machines());
    if (opt.best <= 0) continue;
    const double ratio = algo / opt.best;
    if (ratio > best.ratio) {
      best.ratio = ratio;
      best.realization = r;
      best.algorithm_makespan = algo;
      best.optimal_makespan = opt.best;
    }
  }
  return best;
}

}  // namespace rdp
