#include "perturb/heterogeneous.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "core/instance.hpp"
#include "core/placement.hpp"
#include "rng/distributions.hpp"
#include "rng/rng.hpp"

namespace rdp {

HeteroBand::HeteroBand(std::vector<double> alphas) : alphas_(std::move(alphas)) {
  for (double a : alphas_) {
    if (!(a >= 1.0)) {
      throw std::invalid_argument("HeteroBand: every alpha must be >= 1");
    }
  }
}

HeteroBand HeteroBand::two_class(std::size_t num_tasks, double calm_alpha,
                                 double noisy_alpha, double noisy_fraction,
                                 std::uint64_t seed) {
  if (noisy_fraction < 0.0 || noisy_fraction > 1.0) {
    throw std::invalid_argument("HeteroBand: noisy_fraction out of [0,1]");
  }
  Xoshiro256 rng(seed);
  std::vector<double> alphas(num_tasks, calm_alpha);
  for (double& a : alphas) {
    if (rng.next_double() < noisy_fraction) a = noisy_alpha;
  }
  return HeteroBand(std::move(alphas));
}

double HeteroBand::max_alpha() const noexcept {
  double best = 1.0;
  for (double a : alphas_) best = std::max(best, a);
  return best;
}

namespace {

void check_band(const Instance& instance, const HeteroBand& band) {
  if (band.size() != instance.num_tasks()) {
    throw std::invalid_argument("HeteroBand: size mismatch with instance");
  }
  if (band.max_alpha() > instance.alpha() * (1.0 + 1e-12)) {
    throw std::invalid_argument(
        "HeteroBand: per-task alpha exceeds the instance's global alpha");
  }
}

double draw_factor(Xoshiro256& rng, NoiseModel model, double a) {
  const double log_a = std::log(a);
  switch (model) {
    case NoiseModel::kNone: return 1.0;
    case NoiseModel::kUniform: return sample_uniform(rng, 1.0 / a, a);
    case NoiseModel::kLogUniform:
      return std::exp(sample_uniform(rng, -log_a, log_a));
    case NoiseModel::kTwoPoint: return rng.next_double() < 0.5 ? a : 1.0 / a;
    case NoiseModel::kBetaCentered: {
      const double b = sample_beta(rng, 4.0, 4.0);
      return std::exp((2.0 * b - 1.0) * log_a);
    }
    case NoiseModel::kAlwaysHigh: return a;
    case NoiseModel::kAlwaysLow: return 1.0 / a;
  }
  throw std::invalid_argument("realize_hetero: unknown NoiseModel");
}

}  // namespace

Realization realize_hetero(const Instance& instance, const HeteroBand& band,
                           NoiseModel model, std::uint64_t seed) {
  check_band(instance, band);
  Xoshiro256 rng(seed);
  Realization r;
  r.actual.reserve(instance.num_tasks());
  for (TaskId j = 0; j < instance.num_tasks(); ++j) {
    r.actual.push_back(instance.estimate(j) * draw_factor(rng, model, band.alpha(j)));
  }
  return r;
}

Realization adversarial_realization_hetero(const Instance& instance,
                                           const Placement& placement,
                                           const HeteroBand& band) {
  check_band(instance, band);
  if (placement.num_tasks() != instance.num_tasks()) {
    throw std::invalid_argument("adversarial_realization_hetero: size mismatch");
  }
  // Group by replica set (same bucketing idea as the global adversary).
  struct Group {
    double load = 0;
    double width = 1;
    std::vector<TaskId> tasks;
  };
  std::unordered_map<std::uint64_t, Group> groups;
  auto hash_set = [](const std::vector<MachineId>& set) {
    std::uint64_t h = 1469598103934665603ULL;
    for (MachineId i : set) {
      h ^= static_cast<std::uint64_t>(i) + 1;
      h *= 1099511628211ULL;
    }
    return h;
  };
  for (TaskId j = 0; j < instance.num_tasks(); ++j) {
    const auto& set = placement.machines_for(j);
    Group& g = groups[hash_set(set)];
    g.load += instance.estimate(j);
    g.width = static_cast<double>(set.size());
    g.tasks.push_back(j);
  }
  const Group* target = nullptr;
  for (const auto& [h, g] : groups) {
    (void)h;
    if (target == nullptr || g.load / g.width > target->load / target->width ||
        (g.load / g.width == target->load / target->width &&
         g.tasks.front() < target->tasks.front())) {
      target = &g;
    }
  }
  std::vector<bool> inflate(instance.num_tasks(), false);
  if (target != nullptr) {
    for (TaskId j : target->tasks) inflate[j] = true;
  }
  Realization r;
  r.actual.reserve(instance.num_tasks());
  for (TaskId j = 0; j < instance.num_tasks(); ++j) {
    const double a = band.alpha(j);
    r.actual.push_back(instance.estimate(j) * (inflate[j] ? a : 1.0 / a));
  }
  return r;
}

}  // namespace rdp
