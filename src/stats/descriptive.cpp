#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "stats/welford.hpp"

namespace rdp {

double percentile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("percentile: q out of [0,1]");
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - std::floor(pos);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::span<const double> sample) {
  Summary s;
  if (sample.empty()) return s;
  Welford w;
  for (double x : sample) w.add(x);
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  s.count = w.count();
  s.mean = w.mean();
  s.stddev = w.stddev();
  s.min = w.min();
  s.max = w.max();
  s.p50 = percentile_sorted(sorted, 0.50);
  s.p90 = percentile_sorted(sorted, 0.90);
  s.p99 = percentile_sorted(sorted, 0.99);
  return s;
}

std::string to_string(const Summary& s) {
  std::ostringstream os;
  os << "n=" << s.count << " mean=" << s.mean << " sd=" << s.stddev << " min=" << s.min
     << " p50=" << s.p50 << " p90=" << s.p90 << " p99=" << s.p99 << " max=" << s.max;
  return os.str();
}

double pearson(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double cov = 0, vx = 0, vy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    cov += (x[i] - mx) * (y[i] - my);
    vx += (x[i] - mx) * (x[i] - mx);
    vy += (y[i] - my) * (y[i] - my);
  }
  if (vx <= 0.0 || vy <= 0.0) return 0.0;
  return cov / std::sqrt(vx * vy);
}

}  // namespace rdp
