// Numerically stable streaming moments (Welford's algorithm), used by the
// experiment harness to aggregate per-trial ratios without storing them.
#pragma once

#include <cstddef>

namespace rdp {

class Welford {
 public:
  void add(double x) noexcept;

  /// Merges another accumulator (parallel reduction; Chan et al. update).
  void merge(const Welford& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }

  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;

  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Raw second central moment (sum of squared deviations); exposed so
  /// tests can assert bitwise-identical aggregation across thread counts.
  [[nodiscard]] double m2() const noexcept { return m2_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace rdp
