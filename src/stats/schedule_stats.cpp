#include "stats/schedule_stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/instance.hpp"
#include "core/schedule.hpp"

namespace rdp {

ScheduleStats compute_schedule_stats(const Instance& instance,
                                     const Schedule& schedule) {
  ScheduleStats stats;
  const MachineId m = instance.num_machines();
  stats.loads.assign(m, 0);
  for (TaskId j = 0; j < schedule.num_tasks(); ++j) {
    const MachineId i = schedule.assignment[j];
    if (i == kNoMachine) continue;
    stats.loads[i] += schedule.finish[j] - schedule.start[j];
  }
  stats.makespan = schedule.makespan();
  for (Time l : stats.loads) stats.total_busy += l;
  if (stats.makespan <= 0) return stats;

  stats.total_idle = stats.makespan * static_cast<double>(m) - stats.total_busy;
  stats.mean_utilization =
      stats.total_busy / (stats.makespan * static_cast<double>(m));
  const Time min_load = *std::min_element(stats.loads.begin(), stats.loads.end());
  stats.min_utilization = min_load / stats.makespan;

  const double mean_load = stats.total_busy / static_cast<double>(m);
  if (mean_load > 0) {
    double sq = 0;
    for (Time l : stats.loads) sq += (l - mean_load) * (l - mean_load);
    stats.load_cv = std::sqrt(sq / static_cast<double>(m)) / mean_load;
  }
  return stats;
}

std::string to_string(const ScheduleStats& stats) {
  std::ostringstream os;
  os.precision(3);
  os << "util=" << stats.mean_utilization * 100.0 << "% (min "
     << stats.min_utilization * 100.0 << "%) cv=" << stats.load_cv
     << " idle=" << stats.total_idle;
  return os.str();
}

}  // namespace rdp
