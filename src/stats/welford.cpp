#include "stats/welford.hpp"

#include <algorithm>
#include <cmath>

namespace rdp {

void Welford::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double d1 = x - mean_;
  mean_ += d1 / static_cast<double>(count_);
  const double d2 = x - mean_;
  m2_ += d1 * d2;
}

void Welford::merge(const Welford& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Welford::variance() const noexcept {
  // m2_ is non-negative in exact arithmetic but can round to a tiny
  // negative under cancellation; clamp so stddev() never goes NaN.
  return count_ > 1 ? std::max(0.0, m2_) / static_cast<double>(count_ - 1) : 0.0;
}

double Welford::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace rdp
