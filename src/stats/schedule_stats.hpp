// Schedule quality diagnostics beyond the two model objectives: machine
// utilization, idle time, and load dispersion. Used by the examples and
// the fault-tolerance bench to explain *why* a strategy wins.
#pragma once

#include <string>
#include <vector>

#include "core/types.hpp"

namespace rdp {

class Instance;
struct Realization;
struct Schedule;

struct ScheduleStats {
  Time makespan = 0;
  Time total_busy = 0;        ///< sum of actual processing times executed
  Time total_idle = 0;        ///< m * makespan - total_busy
  double mean_utilization = 0;///< total_busy / (m * makespan), in [0, 1]
  double min_utilization = 0; ///< utilization of the least-busy machine
  double load_cv = 0;         ///< coefficient of variation of machine loads
  std::vector<Time> loads;    ///< per-machine busy time
};

/// Computes diagnostics from a timed schedule. Returns zeros for an
/// empty schedule.
[[nodiscard]] ScheduleStats compute_schedule_stats(const Instance& instance,
                                                   const Schedule& schedule);

/// One-line rendering ("util=93.1% (min 81.0%) cv=0.071 idle=12.4").
[[nodiscard]] std::string to_string(const ScheduleStats& stats);

}  // namespace rdp
