// Batch descriptive statistics over a stored sample.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace rdp {

struct Summary {
  std::size_t count = 0;
  double mean = 0;
  double stddev = 0;
  double min = 0;
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
  double max = 0;
};

/// Computes the summary of a sample (copies + sorts internally).
[[nodiscard]] Summary summarize(std::span<const double> sample);

/// Linear-interpolation percentile of a *sorted* sample, q in [0, 1].
[[nodiscard]] double percentile_sorted(std::span<const double> sorted, double q);

/// "mean=… sd=… min=… p50=… max=…" one-liner.
[[nodiscard]] std::string to_string(const Summary& s);

/// Pearson correlation of two equal-length samples (0 if degenerate).
[[nodiscard]] double pearson(std::span<const double> x, std::span<const double> y);

}  // namespace rdp
