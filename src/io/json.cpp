#include "io/json.hpp"

#include <cmath>
#include <cstdio>

namespace rdp {

std::string json_escape(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

namespace {

std::string number_to_string(double d) {
  if (!std::isfinite(d)) return "null";  // JSON has no inf/nan
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    return std::to_string(static_cast<long long>(d));
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.12g", d);
  return buf;
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth), ' ');
}

}  // namespace

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  if (std::holds_alternative<std::nullptr_t>(value_)) {
    out += "null";
  } else if (const bool* b = std::get_if<bool>(&value_)) {
    out += *b ? "true" : "false";
  } else if (const double* d = std::get_if<double>(&value_)) {
    out += number_to_string(*d);
  } else if (const std::string* s = std::get_if<std::string>(&value_)) {
    out += json_escape(*s);
  } else if (const JsonArray* a = std::get_if<JsonArray>(&value_)) {
    if (a->empty()) {
      out += "[]";
      return;
    }
    out += '[';
    for (std::size_t i = 0; i < a->size(); ++i) {
      if (i > 0) out += ',';
      newline_indent(out, indent, depth + 1);
      (*a)[i].dump_to(out, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out += ']';
  } else if (const JsonObject* o = std::get_if<JsonObject>(&value_)) {
    if (o->empty()) {
      out += "{}";
      return;
    }
    out += '{';
    bool first = true;
    for (const auto& [key, value] : *o) {
      if (!first) out += ',';
      first = false;
      newline_indent(out, indent, depth + 1);
      out += json_escape(key);
      out += indent < 0 ? ":" : ": ";
      value.dump_to(out, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out += '}';
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

}  // namespace rdp
