#include "io/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace rdp {

std::string json_escape(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

namespace {

std::string number_to_string(double d) {
  if (!std::isfinite(d)) return "null";  // JSON has no inf/nan
  if (d == 0.0) return std::signbit(d) ? "-0" : "0";
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    return std::to_string(static_cast<long long>(d));
  }
  // Shortest representation that parses back to exactly d ("%.12g" used
  // to collapse values differing below ~1e-12, masking real drift in
  // golden comparisons and provenance hashes).
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, d);
  if (ec != std::errc{}) {  // cannot happen for a finite double; be safe
    std::snprintf(buf, sizeof buf, "%.17g", d);
    return buf;
  }
  return std::string(buf, ptr);
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth), ' ');
}

}  // namespace

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  if (std::holds_alternative<std::nullptr_t>(value_)) {
    out += "null";
  } else if (const bool* b = std::get_if<bool>(&value_)) {
    out += *b ? "true" : "false";
  } else if (const double* d = std::get_if<double>(&value_)) {
    out += number_to_string(*d);
  } else if (const std::string* s = std::get_if<std::string>(&value_)) {
    out += json_escape(*s);
  } else if (const JsonArray* a = std::get_if<JsonArray>(&value_)) {
    if (a->empty()) {
      out += "[]";
      return;
    }
    out += '[';
    for (std::size_t i = 0; i < a->size(); ++i) {
      if (i > 0) out += ',';
      newline_indent(out, indent, depth + 1);
      (*a)[i].dump_to(out, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out += ']';
  } else if (const JsonObject* o = std::get_if<JsonObject>(&value_)) {
    if (o->empty()) {
      out += "{}";
      return;
    }
    out += '{';
    bool first = true;
    for (const auto& [key, value] : *o) {
      if (!first) out += ',';
      first = false;
      newline_indent(out, indent, depth + 1);
      out += json_escape(key);
      out += indent < 0 ? ":" : ": ";
      value.dump_to(out, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out += '}';
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// ---------------------------------------------------------------------
// Read-side accessors.

namespace {

const char* type_name(std::size_t index) {
  static const char* const kNames[] = {"null",   "bool",  "number",
                                       "string", "array", "object"};
  return index < 6 ? kNames[index] : "?";
}

}  // namespace

bool JsonValue::is_null() const noexcept {
  return std::holds_alternative<std::nullptr_t>(value_);
}
bool JsonValue::is_bool() const noexcept {
  return std::holds_alternative<bool>(value_);
}
bool JsonValue::is_number() const noexcept {
  return std::holds_alternative<double>(value_);
}
bool JsonValue::is_string() const noexcept {
  return std::holds_alternative<std::string>(value_);
}
bool JsonValue::is_array() const noexcept {
  return std::holds_alternative<JsonArray>(value_);
}
bool JsonValue::is_object() const noexcept {
  return std::holds_alternative<JsonObject>(value_);
}

namespace {
[[noreturn]] void type_error(const char* wanted, std::size_t got) {
  throw std::runtime_error(std::string("json: expected ") + wanted + ", got " +
                           type_name(got));
}
}  // namespace

bool JsonValue::as_bool() const {
  if (const bool* b = std::get_if<bool>(&value_)) return *b;
  type_error("bool", value_.index());
}
double JsonValue::as_number() const {
  if (const double* d = std::get_if<double>(&value_)) return *d;
  type_error("number", value_.index());
}
const std::string& JsonValue::as_string() const {
  if (const std::string* s = std::get_if<std::string>(&value_)) return *s;
  type_error("string", value_.index());
}
const JsonArray& JsonValue::as_array() const {
  if (const JsonArray* a = std::get_if<JsonArray>(&value_)) return *a;
  type_error("array", value_.index());
}
const JsonObject& JsonValue::as_object() const {
  if (const JsonObject* o = std::get_if<JsonObject>(&value_)) return *o;
  type_error("object", value_.index());
}

const JsonValue* JsonValue::find(const std::string& key) const noexcept {
  const JsonObject* o = std::get_if<JsonObject>(&value_);
  if (o == nullptr) return nullptr;
  const auto it = o->find(key);
  return it == o->end() ? nullptr : &it->second;
}

std::string JsonValue::get_string(const std::string& key,
                                  const std::string& fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_string()) ? v->as_string() : fallback;
}
double JsonValue::get_number(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_number()) ? v->as_number() : fallback;
}
bool JsonValue::get_bool(const std::string& key, bool fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_bool()) ? v->as_bool() : fallback;
}

// ---------------------------------------------------------------------
// Parser: strict recursive descent over the byte string.

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 128;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at byte " + std::to_string(pos_) +
                             ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t len = 0;
    while (lit[len] != '\0') ++len;
    if (text_.compare(pos_, len, lit) != 0) return false;
    pos_ += len;
    return true;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return JsonValue(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue(nullptr);
        fail("invalid literal");
      default: return parse_number();
    }
  }

  JsonValue parse_object(int depth) {
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[std::move(key)] = parse_value(depth + 1);
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return JsonValue(std::move(obj));
      }
      fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array(int depth) {
    expect('[');
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return JsonValue(std::move(arr));
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control byte in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += parse_unicode_escape(); break;
        default: fail("unknown escape");
      }
    }
  }

  std::string parse_unicode_escape() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid hex digit in \\u escape");
    }
    // UTF-8 encode the BMP code point (surrogate pairs are not combined;
    // the writer never emits them for this library's data).
    std::string out;
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '+' ||
          c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      fail("invalid number");
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("invalid number '" + token + "'");
    return JsonValue(value);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace rdp
