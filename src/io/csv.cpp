#include "io/csv.hpp"

#include <ostream>
#include <sstream>
#include <stdexcept>

namespace rdp {

namespace {

bool needs_quoting(const std::string& cell) {
  return cell.find_first_of(",\"\n\r") != std::string::npos;
}

std::string quoted(const std::string& cell) {
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void CsvWriter::row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) *out_ << ',';
    *out_ << (needs_quoting(cells[i]) ? quoted(cells[i]) : cells[i]);
  }
  *out_ << '\n';
}

std::string CsvWriter::cell_of(double v) {
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

std::string CsvWriter::cell_of(long long v) { return std::to_string(v); }
std::string CsvWriter::cell_of(unsigned long long v) { return std::to_string(v); }

std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> current_row;
  std::string cell;
  bool in_quotes = false;
  bool row_has_content = false;
  std::size_t line = 1;             // 1-based, for error messages
  std::size_t quote_open_line = 0;  // line where the open quoted field began

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '\n') ++line;
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        quote_open_line = line;
        row_has_content = true;
        break;
      case ',':
        current_row.push_back(std::move(cell));
        cell.clear();
        row_has_content = true;
        break;
      case '\r':
        break;  // swallow; \n terminates the row (CRLF leaves no \r behind)
      case '\n':
        ++line;
        if (row_has_content || !cell.empty()) {
          current_row.push_back(std::move(cell));
          cell.clear();
          rows.push_back(std::move(current_row));
          current_row.clear();
          row_has_content = false;
        }
        break;
      default:
        cell += c;
        row_has_content = true;
        break;
    }
  }
  if (in_quotes) {
    throw std::runtime_error(
        "parse_csv: unterminated quoted field starting at line " +
        std::to_string(quote_open_line));
  }
  if (row_has_content || !cell.empty()) {
    current_row.push_back(std::move(cell));
    rows.push_back(std::move(current_row));
  }
  return rows;
}

}  // namespace rdp
