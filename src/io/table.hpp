// Fixed-width plain-text tables: what the bench binaries print to
// regenerate the paper's tables/figure series on stdout.
#pragma once

#include <string>
#include <vector>

namespace rdp {

class TextTable {
 public:
  /// Sets the header row (also fixes the column count).
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; must match the header's column count.
  void add_row(std::vector<std::string> cells);

  /// Convenience for numeric rows; formats doubles with `precision`.
  void add_numeric_row(const std::vector<double>& values, int precision = 4);

  /// Renders with column-aligned padding and a separator under the header.
  [[nodiscard]] std::string render() const;

  /// Renders as a GitHub-flavored-markdown pipe table (used by the repro
  /// pipeline when assembling docs/RESULTS.md). Pipe characters inside
  /// cells are escaped as "\|".
  [[nodiscard]] std::string render_markdown() const;

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& header() const noexcept {
    return header_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const noexcept {
    return rows_;
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper shared by benches).
[[nodiscard]] std::string fmt(double value, int precision = 4);

}  // namespace rdp
