#include "io/instance_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "io/csv.hpp"

namespace rdp {

void write_instance(std::ostream& out, const Instance& instance) {
  out << "# rdp instance: n=" << instance.num_tasks() << "\n";
  CsvWriter csv(out);
  csv.typed_row("machines", static_cast<std::size_t>(instance.num_machines()), "alpha",
                instance.alpha());
  for (const Task& t : instance.tasks()) {
    csv.typed_row(t.estimate, t.size);
  }
}

std::string instance_to_string(const Instance& instance) {
  std::ostringstream os;
  write_instance(os, instance);
  return os.str();
}

namespace {

double parse_double(const std::string& cell, const char* what) {
  std::size_t consumed = 0;
  double value = 0;
  try {
    value = std::stod(cell, &consumed);
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string("parse_instance: bad ") + what + " '" +
                                cell + "'");
  }
  if (consumed != cell.size()) {
    throw std::invalid_argument(std::string("parse_instance: trailing junk in ") +
                                what + " '" + cell + "'");
  }
  return value;
}

}  // namespace

Instance parse_instance(const std::string& text) {
  // Strip comment lines before CSV parsing.
  std::string cleaned;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (!line.empty() && line[0] == '#') continue;
    cleaned += line;
    cleaned += '\n';
  }
  const auto rows = parse_csv(cleaned);
  if (rows.empty()) throw std::invalid_argument("parse_instance: empty input");

  const auto& header = rows.front();
  if (header.size() != 4 || header[0] != "machines" || header[2] != "alpha") {
    throw std::invalid_argument("parse_instance: malformed header row");
  }
  const double m = parse_double(header[1], "machine count");
  const double alpha = parse_double(header[3], "alpha");
  if (m < 1 || m != static_cast<double>(static_cast<MachineId>(m))) {
    throw std::invalid_argument("parse_instance: bad machine count");
  }

  std::vector<Task> tasks;
  tasks.reserve(rows.size() - 1);
  for (std::size_t r = 1; r < rows.size(); ++r) {
    if (rows[r].size() != 2) {
      throw std::invalid_argument("parse_instance: task rows need estimate,size");
    }
    tasks.push_back(Task{parse_double(rows[r][0], "estimate"),
                         parse_double(rows[r][1], "size")});
  }
  return Instance(std::move(tasks), static_cast<MachineId>(m), alpha);
}

void save_instance(const std::string& path, const Instance& instance) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_instance: cannot open " + path);
  write_instance(out, instance);
  if (!out) throw std::runtime_error("save_instance: write failed for " + path);
}

Instance load_instance(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_instance: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_instance(buffer.str());
}

}  // namespace rdp
