// SVG rendering of schedules: publication-grade Gantt charts (the text
// Gantt in sim/trace.hpp is for terminals; this one is for figures).
#pragma once

#include <string>
#include <vector>

#include "core/types.hpp"

namespace rdp {

class Instance;
struct Schedule;

struct SvgOptions {
  int width = 800;          ///< drawing width in px (time axis)
  int row_height = 26;      ///< per-machine lane height
  int margin = 36;          ///< left margin for machine labels
  bool show_task_ids = true;
  /// Tasks with this flag set render hollow (used to distinguish the
  /// memory-intensive S2 tasks like the paper's uncolored blocks);
  /// empty = all solid.
  std::vector<bool> hollow;
};

/// Renders the schedule as a standalone SVG document.
[[nodiscard]] std::string render_svg(const Instance& instance, const Schedule& schedule,
                                     const SvgOptions& options = {});

/// Writes render_svg() output to a file. Throws std::runtime_error on
/// I/O failure.
void save_svg(const std::string& path, const Instance& instance,
              const Schedule& schedule, const SvgOptions& options = {});

}  // namespace rdp
