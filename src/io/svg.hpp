// SVG rendering of schedules: publication-grade Gantt charts (the text
// Gantt in sim/trace.hpp is for terminals; this one is for figures).
#pragma once

#include <string>
#include <vector>

#include "core/types.hpp"

namespace rdp {

class Instance;
struct Schedule;

struct SvgOptions {
  int width = 800;          ///< drawing width in px (time axis)
  int row_height = 26;      ///< per-machine lane height
  int margin = 36;          ///< left margin for machine labels
  bool show_task_ids = true;
  /// Tasks with this flag set render hollow (used to distinguish the
  /// memory-intensive S2 tasks like the paper's uncolored blocks);
  /// empty = all solid.
  std::vector<bool> hollow;
};

/// Renders the schedule as a standalone SVG document.
[[nodiscard]] std::string render_svg(const Instance& instance, const Schedule& schedule,
                                     const SvgOptions& options = {});

/// Writes render_svg() output to a file. Throws std::runtime_error on
/// I/O failure.
void save_svg(const std::string& path, const Instance& instance,
              const Schedule& schedule, const SvgOptions& options = {});

// ---------------------------------------------------------------------
// Line charts -- the guarantee-curve figures (Figure 3, Figure 6). Same
// self-contained-SVG philosophy as the Gantt renderer: no external
// plotting stack, deterministic output byte-for-byte.

/// One polyline: a label (legend entry) plus (x, y) points in draw order.
struct ChartSeries {
  std::string label;
  std::vector<std::pair<double, double>> points;
};

struct ChartOptions {
  int width = 640;    ///< full drawing width in px
  int height = 400;   ///< full drawing height in px
  int margin = 52;    ///< axis margin on the left/bottom
  std::string title;
  std::string x_label;
  std::string y_label;
  bool log_x = false; ///< log10 x axis (replication degrees, Delta sweeps)
};

/// Renders the series as a standalone SVG line chart (axes, ticks,
/// legend). Throws std::invalid_argument on empty input, non-positive
/// geometry, or log_x with x <= 0.
[[nodiscard]] std::string render_line_chart(const std::vector<ChartSeries>& series,
                                            const ChartOptions& options = {});

/// Writes render_line_chart() output to a file. Throws std::runtime_error
/// on I/O failure.
void save_line_chart(const std::string& path, const std::vector<ChartSeries>& series,
                     const ChartOptions& options = {});

}  // namespace rdp
