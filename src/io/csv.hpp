// Minimal CSV writing/reading (RFC-4180-ish quoting) for experiment
// output. No external dependencies.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rdp {

class CsvWriter {
 public:
  /// Writes to `out`; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Writes one row, quoting cells that contain separators/quotes/newlines.
  void row(const std::vector<std::string>& cells);

  /// Convenience: mixed cells via to_string-able values.
  template <typename... Ts>
  void typed_row(const Ts&... values) {
    std::vector<std::string> cells;
    cells.reserve(sizeof...(values));
    (cells.push_back(cell_of(values)), ...);
    row(cells);
  }

 private:
  static std::string cell_of(const std::string& s) { return s; }
  static std::string cell_of(const char* s) { return s; }
  static std::string cell_of(double v);
  static std::string cell_of(long long v);
  static std::string cell_of(unsigned long long v);
  static std::string cell_of(int v) { return cell_of(static_cast<long long>(v)); }
  static std::string cell_of(unsigned v) {
    return cell_of(static_cast<unsigned long long>(v));
  }
  static std::string cell_of(std::size_t v) {
    return cell_of(static_cast<unsigned long long>(v));
  }

  std::ostream* out_;
};

/// Parses CSV text into rows of cells (handles quoted cells with embedded
/// separators, quotes, and newlines; CRLF row endings are accepted and
/// leave no trailing '\r' in cells). Throws std::runtime_error naming the
/// offending line on a quoted field left unterminated at end of input.
[[nodiscard]] std::vector<std::vector<std::string>> parse_csv(const std::string& text);

}  // namespace rdp
