// Instance (de)serialization in a small CSV dialect:
//   # comment lines allowed
//   header row: machines,<m>,alpha,<alpha>
//   then one row per task: estimate,size
#pragma once

#include <iosfwd>
#include <string>

#include "core/instance.hpp"

namespace rdp {

/// Writes `instance` to `out` in the library's CSV dialect.
void write_instance(std::ostream& out, const Instance& instance);

/// Serializes to a string.
[[nodiscard]] std::string instance_to_string(const Instance& instance);

/// Parses a serialized instance. Throws std::invalid_argument on
/// malformed input (missing header, non-numeric cells, bad counts).
[[nodiscard]] Instance parse_instance(const std::string& text);

/// File convenience wrappers. Throw std::runtime_error on I/O failure.
void save_instance(const std::string& path, const Instance& instance);
[[nodiscard]] Instance load_instance(const std::string& path);

}  // namespace rdp
