// Minimal JSON reader/writer (objects/arrays/scalars, proper string
// escaping). Writing dumps experiment results for downstream plotting;
// parsing exists so the repro pipeline can read back its own provenance
// manifests (it is a strict little recursive-descent parser, not a
// general-purpose validator -- numbers become doubles, \uXXXX escapes
// outside the BMP are passed through as-is).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace rdp {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

/// A JSON value: null, bool, number, string, array, or object.
class JsonValue {
 public:
  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}
  JsonValue(bool b) : value_(b) {}
  JsonValue(double d) : value_(d) {}
  JsonValue(int i) : value_(static_cast<double>(i)) {}
  JsonValue(unsigned u) : value_(static_cast<double>(u)) {}
  JsonValue(long long i) : value_(static_cast<double>(i)) {}
  JsonValue(unsigned long long u) : value_(static_cast<double>(u)) {}
  JsonValue(long i) : value_(static_cast<double>(i)) {}
  JsonValue(unsigned long u) : value_(static_cast<double>(u)) {}
  JsonValue(const char* s) : value_(std::string(s)) {}
  JsonValue(std::string s) : value_(std::move(s)) {}
  JsonValue(JsonArray a) : value_(std::move(a)) {}
  JsonValue(JsonObject o) : value_(std::move(o)) {}

  /// Serializes compactly (no whitespace) unless indent >= 0, in which
  /// case nested structures are pretty-printed with that many spaces.
  [[nodiscard]] std::string dump(int indent = -1) const;

  // -- Read-side accessors (for parsed documents) ---------------------

  [[nodiscard]] bool is_null() const noexcept;
  [[nodiscard]] bool is_bool() const noexcept;
  [[nodiscard]] bool is_number() const noexcept;
  [[nodiscard]] bool is_string() const noexcept;
  [[nodiscard]] bool is_array() const noexcept;
  [[nodiscard]] bool is_object() const noexcept;

  /// Typed access; throws std::runtime_error naming the expected and the
  /// actual type on mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const JsonArray& as_array() const;
  [[nodiscard]] const JsonObject& as_object() const;

  /// Object member lookup: nullptr when this is not an object or the key
  /// is absent.
  [[nodiscard]] const JsonValue* find(const std::string& key) const noexcept;

  /// Convenience getters with fallbacks (never throw).
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback = "") const;
  [[nodiscard]] double get_number(const std::string& key, double fallback = 0) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback = false) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject> value_;
};

/// Parses a JSON document (single value, trailing whitespace allowed).
/// Throws std::runtime_error with a byte offset on malformed input.
[[nodiscard]] JsonValue parse_json(const std::string& text);

/// Escapes a string for embedding in JSON (quotes included).
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace rdp
