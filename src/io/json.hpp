// Minimal JSON *writer* (objects/arrays/scalars, proper string escaping).
// Used to dump experiment results for downstream plotting; parsing JSON
// is out of scope for this library.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace rdp {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

/// A JSON value: null, bool, number, string, array, or object.
class JsonValue {
 public:
  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}
  JsonValue(bool b) : value_(b) {}
  JsonValue(double d) : value_(d) {}
  JsonValue(int i) : value_(static_cast<double>(i)) {}
  JsonValue(unsigned u) : value_(static_cast<double>(u)) {}
  JsonValue(long long i) : value_(static_cast<double>(i)) {}
  JsonValue(unsigned long long u) : value_(static_cast<double>(u)) {}
  JsonValue(long i) : value_(static_cast<double>(i)) {}
  JsonValue(unsigned long u) : value_(static_cast<double>(u)) {}
  JsonValue(const char* s) : value_(std::string(s)) {}
  JsonValue(std::string s) : value_(std::move(s)) {}
  JsonValue(JsonArray a) : value_(std::move(a)) {}
  JsonValue(JsonObject o) : value_(std::move(o)) {}

  /// Serializes compactly (no whitespace) unless indent >= 0, in which
  /// case nested structures are pretty-printed with that many spaces.
  [[nodiscard]] std::string dump(int indent = -1) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject> value_;
};

/// Escapes a string for embedding in JSON (quotes included).
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace rdp
