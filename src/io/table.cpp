#include "io/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace rdp {

std::string fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) {
    throw std::invalid_argument("TextTable: header must have columns");
  }
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("TextTable: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

void TextTable::add_numeric_row(const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(fmt(v, precision));
  add_row(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::left
         << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string TextTable::render_markdown() const {
  const auto escape = [](const std::string& cell) {
    std::string out;
    out.reserve(cell.size());
    for (char c : cell) {
      if (c == '|') out += "\\|";
      else if (c == '\n') out += ' ';
      else out += c;
    }
    return out;
  };

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (const std::string& cell : row) os << ' ' << escape(cell) << " |";
    os << '\n';
  };
  emit_row(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) os << " --- |";
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

}  // namespace rdp
