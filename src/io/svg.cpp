#include "io/svg.hpp"

#include <algorithm>
#include <fstream>
#include <iterator>
#include <sstream>
#include <stdexcept>

#include "core/instance.hpp"
#include "core/schedule.hpp"

namespace rdp {

namespace {

// A small qualitative palette; task colors cycle through it.
constexpr const char* kPalette[] = {
    "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
    "#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
};

}  // namespace

std::string render_svg(const Instance& instance, const Schedule& schedule,
                       const SvgOptions& options) {
  if (options.width <= 0 || options.row_height <= 0 || options.margin < 0) {
    throw std::invalid_argument("render_svg: bad geometry options");
  }
  if (!options.hollow.empty() && options.hollow.size() != instance.num_tasks()) {
    throw std::invalid_argument("render_svg: hollow mask size mismatch");
  }
  const Time horizon = std::max(schedule.makespan(), Time{1e-9});
  const MachineId m = instance.num_machines();
  const double scale = static_cast<double>(options.width) / horizon;
  const int total_w = options.width + options.margin + 10;
  const int total_h = options.row_height * static_cast<int>(m) + 40;

  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << total_w
      << "\" height=\"" << total_h << "\" viewBox=\"0 0 " << total_w << " "
      << total_h << "\">\n";
  svg << "  <style>text{font-family:sans-serif;font-size:11px}</style>\n";

  // Lanes and labels.
  for (MachineId i = 0; i < m; ++i) {
    const int y = 10 + options.row_height * static_cast<int>(i);
    svg << "  <text x=\"2\" y=\"" << y + options.row_height / 2 + 4 << "\">m" << i
        << "</text>\n";
    svg << "  <line x1=\"" << options.margin << "\" y1=\"" << y + options.row_height
        << "\" x2=\"" << options.margin + options.width << "\" y2=\""
        << y + options.row_height << "\" stroke=\"#ddd\"/>\n";
  }

  // Task rectangles.
  for (TaskId j = 0; j < schedule.num_tasks(); ++j) {
    const MachineId i = schedule.assignment[j];
    if (i == kNoMachine) continue;
    const double x = options.margin + schedule.start[j] * scale;
    const double w =
        std::max(1.0, (schedule.finish[j] - schedule.start[j]) * scale);
    const int y = 12 + options.row_height * static_cast<int>(i);
    const char* color = kPalette[j % std::size(kPalette)];
    const bool hollow = !options.hollow.empty() && options.hollow[j];
    svg << "  <rect x=\"" << x << "\" y=\"" << y << "\" width=\"" << w
        << "\" height=\"" << options.row_height - 6 << "\" fill=\""
        << (hollow ? "none" : color) << "\" stroke=\"" << color
        << "\" stroke-width=\"1.5\" rx=\"2\"/>\n";
    if (options.show_task_ids && w > 14) {
      svg << "  <text x=\"" << x + 3 << "\" y=\"" << y + options.row_height / 2 + 2
          << "\"" << (hollow ? "" : " fill=\"#fff\"") << ">" << j << "</text>\n";
    }
  }

  // Time axis.
  const int axis_y = options.row_height * static_cast<int>(m) + 24;
  svg << "  <text x=\"" << options.margin << "\" y=\"" << axis_y << "\">0</text>\n";
  svg << "  <text x=\"" << options.margin + options.width - 40 << "\" y=\"" << axis_y
      << "\">t=" << horizon << "</text>\n";
  svg << "</svg>\n";
  return svg.str();
}

void save_svg(const std::string& path, const Instance& instance,
              const Schedule& schedule, const SvgOptions& options) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_svg: cannot open " + path);
  out << render_svg(instance, schedule, options);
  if (!out) throw std::runtime_error("save_svg: write failed for " + path);
}

}  // namespace rdp
