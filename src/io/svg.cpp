#include "io/svg.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <sstream>
#include <stdexcept>

#include "core/instance.hpp"
#include "core/schedule.hpp"

namespace rdp {

namespace {

// A small qualitative palette; task colors cycle through it.
constexpr const char* kPalette[] = {
    "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
    "#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
};

}  // namespace

std::string render_svg(const Instance& instance, const Schedule& schedule,
                       const SvgOptions& options) {
  if (options.width <= 0 || options.row_height <= 0 || options.margin < 0) {
    throw std::invalid_argument("render_svg: bad geometry options");
  }
  if (!options.hollow.empty() && options.hollow.size() != instance.num_tasks()) {
    throw std::invalid_argument("render_svg: hollow mask size mismatch");
  }
  const Time horizon = std::max(schedule.makespan(), Time{1e-9});
  const MachineId m = instance.num_machines();
  const double scale = static_cast<double>(options.width) / horizon;
  const int total_w = options.width + options.margin + 10;
  const int total_h = options.row_height * static_cast<int>(m) + 40;

  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << total_w
      << "\" height=\"" << total_h << "\" viewBox=\"0 0 " << total_w << " "
      << total_h << "\">\n";
  svg << "  <style>text{font-family:sans-serif;font-size:11px}</style>\n";

  // Lanes and labels.
  for (MachineId i = 0; i < m; ++i) {
    const int y = 10 + options.row_height * static_cast<int>(i);
    svg << "  <text x=\"2\" y=\"" << y + options.row_height / 2 + 4 << "\">m" << i
        << "</text>\n";
    svg << "  <line x1=\"" << options.margin << "\" y1=\"" << y + options.row_height
        << "\" x2=\"" << options.margin + options.width << "\" y2=\""
        << y + options.row_height << "\" stroke=\"#ddd\"/>\n";
  }

  // Task rectangles.
  for (TaskId j = 0; j < schedule.num_tasks(); ++j) {
    const MachineId i = schedule.assignment[j];
    if (i == kNoMachine) continue;
    const double x = options.margin + schedule.start[j] * scale;
    const double w =
        std::max(1.0, (schedule.finish[j] - schedule.start[j]) * scale);
    const int y = 12 + options.row_height * static_cast<int>(i);
    const char* color = kPalette[j % std::size(kPalette)];
    const bool hollow = !options.hollow.empty() && options.hollow[j];
    svg << "  <rect x=\"" << x << "\" y=\"" << y << "\" width=\"" << w
        << "\" height=\"" << options.row_height - 6 << "\" fill=\""
        << (hollow ? "none" : color) << "\" stroke=\"" << color
        << "\" stroke-width=\"1.5\" rx=\"2\"/>\n";
    if (options.show_task_ids && w > 14) {
      svg << "  <text x=\"" << x + 3 << "\" y=\"" << y + options.row_height / 2 + 2
          << "\"" << (hollow ? "" : " fill=\"#fff\"") << ">" << j << "</text>\n";
    }
  }

  // Time axis.
  const int axis_y = options.row_height * static_cast<int>(m) + 24;
  svg << "  <text x=\"" << options.margin << "\" y=\"" << axis_y << "\">0</text>\n";
  svg << "  <text x=\"" << options.margin + options.width - 40 << "\" y=\"" << axis_y
      << "\">t=" << horizon << "</text>\n";
  svg << "</svg>\n";
  return svg.str();
}

void save_svg(const std::string& path, const Instance& instance,
              const Schedule& schedule, const SvgOptions& options) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_svg: cannot open " + path);
  out << render_svg(instance, schedule, options);
  if (!out) throw std::runtime_error("save_svg: write failed for " + path);
}

namespace {

std::string tick_label(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.4g", v);
  return buf;
}

}  // namespace

std::string render_line_chart(const std::vector<ChartSeries>& series,
                              const ChartOptions& options) {
  if (options.width <= 0 || options.height <= 0 || options.margin <= 0) {
    throw std::invalid_argument("render_line_chart: bad geometry options");
  }
  if (series.empty()) {
    throw std::invalid_argument("render_line_chart: no series");
  }

  const auto tx = [&](double x) {
    if (!options.log_x) return x;
    if (x <= 0) {
      throw std::invalid_argument("render_line_chart: log_x requires x > 0");
    }
    return std::log10(x);
  };

  double x_min = 0, x_max = 0, y_min = 0, y_max = 0;
  bool first = true;
  for (const ChartSeries& s : series) {
    for (const auto& [x, y] : s.points) {
      const double xv = tx(x);
      if (first) {
        x_min = x_max = xv;
        y_min = y_max = y;
        first = false;
      } else {
        x_min = std::min(x_min, xv);
        x_max = std::max(x_max, xv);
        y_min = std::min(y_min, y);
        y_max = std::max(y_max, y);
      }
    }
  }
  if (first) throw std::invalid_argument("render_line_chart: no points");
  if (x_max - x_min < 1e-12) x_max = x_min + 1.0;
  if (y_max - y_min < 1e-12) y_max = y_min + 1.0;
  // A little headroom so curves do not touch the frame.
  const double y_pad = (y_max - y_min) * 0.05;
  y_min -= y_pad;
  y_max += y_pad;

  const int plot_x = options.margin;
  const int plot_y = options.title.empty() ? 14 : 30;
  const int plot_w = options.width - options.margin - 12;
  const int plot_h = options.height - plot_y - options.margin;
  const auto px = [&](double x) {
    return plot_x + (tx(x) - x_min) / (x_max - x_min) * plot_w;
  };
  const auto py = [&](double y) {
    return plot_y + (y_max - y) / (y_max - y_min) * plot_h;
  };

  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << options.width
      << "\" height=\"" << options.height << "\" viewBox=\"0 0 " << options.width
      << " " << options.height << "\">\n"
      << "  <style>text{font-family:sans-serif;font-size:11px}"
         ".t{font-size:13px;font-weight:bold}</style>\n"
      << "  <rect x=\"0\" y=\"0\" width=\"" << options.width << "\" height=\""
      << options.height << "\" fill=\"#fff\"/>\n";
  if (!options.title.empty()) {
    svg << "  <text class=\"t\" x=\"" << options.width / 2 << "\" y=\"16\""
        << " text-anchor=\"middle\">" << options.title << "</text>\n";
  }

  // Frame + ticks (4 intervals each way; x ticks label the raw value).
  svg << "  <rect x=\"" << plot_x << "\" y=\"" << plot_y << "\" width=\"" << plot_w
      << "\" height=\"" << plot_h << "\" fill=\"none\" stroke=\"#999\"/>\n";
  constexpr int kTicks = 4;
  for (int t = 0; t <= kTicks; ++t) {
    const double fx = x_min + (x_max - x_min) * t / kTicks;
    const double raw_x = options.log_x ? std::pow(10.0, fx) : fx;
    const double gx = plot_x + static_cast<double>(plot_w) * t / kTicks;
    svg << "  <line x1=\"" << gx << "\" y1=\"" << plot_y << "\" x2=\"" << gx
        << "\" y2=\"" << plot_y + plot_h << "\" stroke=\"#eee\"/>\n"
        << "  <text x=\"" << gx << "\" y=\"" << plot_y + plot_h + 14
        << "\" text-anchor=\"middle\">" << tick_label(raw_x) << "</text>\n";
    const double fy = y_min + (y_max - y_min) * t / kTicks;
    const double gy = py(fy);
    svg << "  <line x1=\"" << plot_x << "\" y1=\"" << gy << "\" x2=\""
        << plot_x + plot_w << "\" y2=\"" << gy << "\" stroke=\"#eee\"/>\n"
        << "  <text x=\"" << plot_x - 4 << "\" y=\"" << gy + 4
        << "\" text-anchor=\"end\">" << tick_label(fy) << "</text>\n";
  }
  if (!options.x_label.empty()) {
    svg << "  <text x=\"" << plot_x + plot_w / 2 << "\" y=\""
        << options.height - 6 << "\" text-anchor=\"middle\">" << options.x_label
        << "</text>\n";
  }
  if (!options.y_label.empty()) {
    svg << "  <text x=\"12\" y=\"" << plot_y + plot_h / 2
        << "\" text-anchor=\"middle\" transform=\"rotate(-90 12 "
        << plot_y + plot_h / 2 << ")\">" << options.y_label << "</text>\n";
  }

  // Polylines + legend.
  for (std::size_t s = 0; s < series.size(); ++s) {
    const char* color = kPalette[s % std::size(kPalette)];
    if (!series[s].points.empty()) {
      svg << "  <polyline fill=\"none\" stroke=\"" << color
          << "\" stroke-width=\"1.8\" points=\"";
      for (const auto& [x, y] : series[s].points) {
        svg << px(x) << ',' << py(y) << ' ';
      }
      svg << "\"/>\n";
    }
    const int ly = plot_y + 8 + static_cast<int>(s) * 15;
    svg << "  <line x1=\"" << plot_x + plot_w - 110 << "\" y1=\"" << ly
        << "\" x2=\"" << plot_x + plot_w - 92 << "\" y2=\"" << ly << "\" stroke=\""
        << color << "\" stroke-width=\"2\"/>\n"
        << "  <text x=\"" << plot_x + plot_w - 88 << "\" y=\"" << ly + 4 << "\">"
        << series[s].label << "</text>\n";
  }
  svg << "</svg>\n";
  return svg.str();
}

void save_line_chart(const std::string& path, const std::vector<ChartSeries>& series,
                     const ChartOptions& options) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_line_chart: cannot open " + path);
  out << render_line_chart(series, options);
  if (!out) throw std::runtime_error("save_line_chart: write failed for " + path);
}

}  // namespace rdp
