#include "bounds/replication_bounds.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rdp {

namespace {
void require_model(double alpha, MachineId m) {
  if (!(alpha >= 1.0)) throw std::invalid_argument("bounds: alpha must be >= 1");
  if (m == 0) throw std::invalid_argument("bounds: m must be >= 1");
}
}  // namespace

double thm1_no_replication_lower_bound(double alpha, MachineId m) {
  require_model(alpha, m);
  const double a2 = alpha * alpha;
  const double dm = static_cast<double>(m);
  return a2 * dm / (a2 + dm - 1.0);
}

double thm1_limit_lower_bound(double alpha) {
  if (!(alpha >= 1.0)) throw std::invalid_argument("bounds: alpha must be >= 1");
  return alpha * alpha;
}

double thm2_lpt_no_choice(double alpha, MachineId m) {
  require_model(alpha, m);
  const double a2 = alpha * alpha;
  const double dm = static_cast<double>(m);
  return 2.0 * a2 * dm / (2.0 * a2 + dm - 1.0);
}

double thm3_lpt_no_restriction_raw(double alpha, MachineId m) {
  require_model(alpha, m);
  const double a2 = alpha * alpha;
  const double dm = static_cast<double>(m);
  return 1.0 + (dm - 1.0) / dm * a2 / 2.0;
}

double thm3_lpt_no_restriction(double alpha, MachineId m) {
  return std::min(thm3_lpt_no_restriction_raw(alpha, m), graham_list_scheduling(m));
}

double thm4_ls_group(double alpha, MachineId m, MachineId k) {
  require_model(alpha, m);
  if (k == 0 || k > m) throw std::invalid_argument("thm4: need 1 <= k <= m");
  const double a2 = alpha * alpha;
  const double dm = static_cast<double>(m);
  const double dk = static_cast<double>(k);
  return dk * a2 / (a2 + dk - 1.0) * (1.0 + (dk - 1.0) / dm) + (dm - dk) / dm;
}

double graham_list_scheduling(MachineId m) {
  if (m == 0) throw std::invalid_argument("bounds: m must be >= 1");
  return 2.0 - 1.0 / static_cast<double>(m);
}

double graham_lpt(MachineId m) {
  if (m == 0) throw std::invalid_argument("bounds: m must be >= 1");
  return 4.0 / 3.0 - 1.0 / (3.0 * static_cast<double>(m));
}

double ratio_for_replication_degree(double alpha, MachineId m, MachineId replication) {
  require_model(alpha, m);
  if (replication == 0 || m % replication != 0) {
    throw std::invalid_argument(
        "ratio_for_replication_degree: replication must divide m");
  }
  if (replication == 1) return thm2_lpt_no_choice(alpha, m);
  if (replication == m) return thm3_lpt_no_restriction(alpha, m);
  return thm4_ls_group(alpha, m, m / replication);
}

std::vector<MachineId> feasible_replication_degrees(MachineId m) {
  if (m == 0) throw std::invalid_argument("bounds: m must be >= 1");
  std::vector<MachineId> divisors;
  for (MachineId r = 1; r <= m; ++r) {
    if (m % r == 0) divisors.push_back(r);
  }
  return divisors;
}

double thm3_graham_crossover_alpha() { return std::sqrt(2.0); }

MachineId min_replication_beating_lower_bound(double alpha, MachineId m) {
  const double lb = thm1_no_replication_lower_bound(alpha, m);
  for (MachineId r : feasible_replication_degrees(m)) {
    if (r == 1 || r == m) continue;
    if (thm4_ls_group(alpha, m, m / r) < lb) return r;
  }
  return 0;
}

}  // namespace rdp
