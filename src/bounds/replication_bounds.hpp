// Closed-form guarantees of the replication-bound model (the paper's
// Table 1), plus the classical Graham bounds used for comparison. All
// functions are pure; alpha must be >= 1, m >= 1, and for the group bound
// k in [1, m].
#pragma once

#include <vector>

#include "core/types.hpp"

namespace rdp {

/// Theorem 1: no online algorithm with |M_j| = 1 beats
/// alpha^2 m / (alpha^2 + m - 1).
[[nodiscard]] double thm1_no_replication_lower_bound(double alpha, MachineId m);

/// Corollary of Theorem 1: the m -> infinity limit, alpha^2.
[[nodiscard]] double thm1_limit_lower_bound(double alpha);

/// Theorem 2: LPT-NoChoice is 2 alpha^2 m / (2 alpha^2 + m - 1) competitive.
[[nodiscard]] double thm2_lpt_no_choice(double alpha, MachineId m);

/// Theorem 3 (raw form): 1 + (m-1)/m * alpha^2 / 2.
[[nodiscard]] double thm3_lpt_no_restriction_raw(double alpha, MachineId m);

/// Theorem 3 combined with Graham: min(raw, 2 - 1/m), the guarantee the
/// paper states for LPT-NoRestriction.
[[nodiscard]] double thm3_lpt_no_restriction(double alpha, MachineId m);

/// Theorem 4: LS-Group with k groups is
/// k alpha^2/(alpha^2+k-1) * (1 + (k-1)/m) + (m-k)/m competitive.
[[nodiscard]] double thm4_ls_group(double alpha, MachineId m, MachineId k);

/// Graham's List Scheduling competitive ratio 2 - 1/m (valid with any
/// amount of replication >= everywhere, independent of alpha).
[[nodiscard]] double graham_list_scheduling(MachineId m);

/// Graham's offline LPT ratio 4/3 - 1/(3m) (certain processing times).
[[nodiscard]] double graham_lpt(MachineId m);

/// One point of the paper's Figure 3: the guarantee attached to a given
/// replication degree r = m/k on m machines (r = 1 -> Theorem 2;
/// r = m -> Theorem 3; otherwise Theorem 4 with k = m/r groups).
[[nodiscard]] double ratio_for_replication_degree(double alpha, MachineId m,
                                                  MachineId replication);

/// All divisors of m in increasing order: the feasible replication
/// degrees for equal-size groups (the x-axis of Figure 3).
[[nodiscard]] std::vector<MachineId> feasible_replication_degrees(MachineId m);

/// The alpha above which Graham's 2-1/m guarantee beats the paper's
/// Theorem 3 bound for LPT-NoRestriction: sqrt(2), independent of m
/// asymptotically; this returns the exact crossover for finite m
/// (1 + (m-1)/m * a^2/2 = 2 - 1/m  =>  a = sqrt(2)).
[[nodiscard]] double thm3_graham_crossover_alpha();

/// The smallest feasible replication degree r > 1 whose LS-Group
/// guarantee beats the Theorem 1 *lower bound* of the no-replication
/// model (the paper's "better guarantee with fewer replications than
/// can be achieved on a single machine" headline). Returns 0 when no
/// degree below m achieves it.
[[nodiscard]] MachineId min_replication_beating_lower_bound(double alpha,
                                                            MachineId m);

}  // namespace rdp
