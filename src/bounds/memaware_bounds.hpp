// Closed-form guarantees of the memory-aware model (the paper's Table 2
// and Figure 6). A bi-objective guarantee is a (makespan factor, memory
// factor) pair; sweeping the knob Delta traces each algorithm's guarantee
// curve in that plane.
#pragma once

#include <vector>

#include "core/types.hpp"

namespace rdp {

/// A point in the (makespan approximation, memory approximation) plane.
struct BiObjectiveGuarantee {
  double makespan = 0;
  double memory = 0;
};

/// SBO_Delta (substrate, certain processing times, no replication):
/// [(1+Delta) rho1, (1+1/Delta) rho2].
[[nodiscard]] BiObjectiveGuarantee sbo_guarantee(double delta, double rho1, double rho2);

/// Theorems 5 & 6 -- SABO_Delta: [(1+Delta) alpha^2 rho1, (1+1/Delta) rho2].
[[nodiscard]] BiObjectiveGuarantee sabo_guarantee(double delta, double alpha,
                                                  double rho1, double rho2);

/// Theorems 7 & 8 -- ABO_Delta:
/// [2 - 1/m + Delta alpha^2 rho1, (1 + m/Delta) rho2].
[[nodiscard]] BiObjectiveGuarantee abo_guarantee(double delta, double alpha, MachineId m,
                                                 double rho1, double rho2);

/// The impossibility frontier of the bi-objective (makespan, memory)
/// problem from the SBO paper the text cites: no algorithm guarantees
/// better than memory < 1 + 1/(makespan - 1) simultaneously with the
/// given makespan factor -- equivalently the (1+Delta, 1+1/Delta) curve.
/// Returns the minimal achievable memory factor for a makespan factor > 1.
[[nodiscard]] double impossibility_memory_for_makespan(double makespan_factor);

/// Sweeps Delta log-uniformly over [delta_min, delta_max] and returns the
/// guarantee curve of an algorithm; used by the Figure 6 bench.
enum class MemAwareAlgorithm { kSbo, kSabo, kAbo };

struct GuaranteeCurvePoint {
  double delta;
  BiObjectiveGuarantee guarantee;
};

[[nodiscard]] std::vector<GuaranteeCurvePoint> guarantee_curve(
    MemAwareAlgorithm algorithm, double alpha, MachineId m, double rho1, double rho2,
    double delta_min, double delta_max, int points);

}  // namespace rdp
