#include "bounds/memaware_bounds.hpp"

#include <cmath>
#include <stdexcept>

namespace rdp {

namespace {
void require_params(double delta, double rho1, double rho2) {
  if (!(delta > 0.0)) throw std::invalid_argument("memaware bounds: Delta must be > 0");
  if (!(rho1 >= 1.0) || !(rho2 >= 1.0)) {
    throw std::invalid_argument("memaware bounds: rho factors must be >= 1");
  }
}
}  // namespace

BiObjectiveGuarantee sbo_guarantee(double delta, double rho1, double rho2) {
  require_params(delta, rho1, rho2);
  return {(1.0 + delta) * rho1, (1.0 + 1.0 / delta) * rho2};
}

BiObjectiveGuarantee sabo_guarantee(double delta, double alpha, double rho1,
                                    double rho2) {
  require_params(delta, rho1, rho2);
  if (!(alpha >= 1.0)) throw std::invalid_argument("memaware bounds: alpha >= 1");
  return {(1.0 + delta) * alpha * alpha * rho1, (1.0 + 1.0 / delta) * rho2};
}

BiObjectiveGuarantee abo_guarantee(double delta, double alpha, MachineId m, double rho1,
                                   double rho2) {
  require_params(delta, rho1, rho2);
  if (!(alpha >= 1.0)) throw std::invalid_argument("memaware bounds: alpha >= 1");
  if (m == 0) throw std::invalid_argument("memaware bounds: m >= 1");
  const double dm = static_cast<double>(m);
  return {2.0 - 1.0 / dm + delta * alpha * alpha * rho1, (1.0 + dm / delta) * rho2};
}

double impossibility_memory_for_makespan(double makespan_factor) {
  if (!(makespan_factor > 1.0)) {
    throw std::invalid_argument(
        "impossibility frontier: makespan factor must be > 1");
  }
  return 1.0 + 1.0 / (makespan_factor - 1.0);
}

std::vector<GuaranteeCurvePoint> guarantee_curve(MemAwareAlgorithm algorithm,
                                                 double alpha, MachineId m, double rho1,
                                                 double rho2, double delta_min,
                                                 double delta_max, int points) {
  if (!(delta_min > 0.0) || delta_min > delta_max || points < 2) {
    throw std::invalid_argument("guarantee_curve: bad sweep parameters");
  }
  std::vector<GuaranteeCurvePoint> curve;
  curve.reserve(static_cast<std::size_t>(points));
  const double log_lo = std::log(delta_min);
  const double log_hi = std::log(delta_max);
  for (int i = 0; i < points; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(points - 1);
    const double delta = std::exp(log_lo + t * (log_hi - log_lo));
    BiObjectiveGuarantee g;
    switch (algorithm) {
      case MemAwareAlgorithm::kSbo:
        g = sbo_guarantee(delta, rho1, rho2);
        break;
      case MemAwareAlgorithm::kSabo:
        g = sabo_guarantee(delta, alpha, rho1, rho2);
        break;
      case MemAwareAlgorithm::kAbo:
        g = abo_guarantee(delta, alpha, m, rho1, rho2);
        break;
    }
    curve.push_back({delta, g});
  }
  return curve;
}

}  // namespace rdp
