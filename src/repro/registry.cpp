#include "repro/registry.hpp"

#include <cmath>
#include <sstream>

#include "algo/strategy.hpp"
#include "bounds/memaware_bounds.hpp"
#include "bounds/replication_bounds.hpp"
#include "core/instance.hpp"
#include "core/metrics.hpp"
#include "core/realization.hpp"
#include "core/schedule.hpp"
#include "exact/branch_and_bound.hpp"
#include "exp/memaware_experiment.hpp"
#include "exp/ratio_experiment.hpp"
#include "io/svg.hpp"
#include "io/table.hpp"
#include "memaware/abo.hpp"
#include "memaware/sabo.hpp"
#include "perturb/adversary.hpp"
#include "perturb/stochastic.hpp"
#include "workload/generators.hpp"

namespace rdp::repro {

namespace {

RatioExperimentConfig ratio_config(const ArtifactContext& ctx) {
  RatioExperimentConfig config;
  config.exact_node_budget = ctx.node_budget;
  config.engine = ctx.engine;
  config.pool = ctx.pool;
  return config;
}

MemAwareConfig memaware_config(const ArtifactContext& ctx) {
  MemAwareConfig config;
  config.exact_node_budget = ctx.node_budget;
  config.engine = ctx.engine;
  return config;
}

/// Worst measured ratio across the placement-aware adversary and
/// stochastic trials of each listed noise model (the validation protocol
/// shared by Table 1 and the per-theorem sweeps).
double worst_measured_ratio(const TwoPhaseStrategy& strategy, const Instance& inst,
                            std::size_t trials, std::uint64_t seed,
                            const std::vector<NoiseModel>& noises,
                            const ArtifactContext& ctx) {
  const RatioExperimentConfig config = ratio_config(ctx);
  double worst = measure_adversarial_ratio(strategy, inst, config).ratio;
  for (NoiseModel noise : noises) {
    const RatioAggregate agg =
        measure_ratio_batch(strategy, inst, noise, trials, seed, config);
    worst = std::max(worst, agg.worst.ratio);
  }
  return worst;
}

std::string alpha_tag(double alpha) { return "alpha=" + fmt(alpha, 2); }

// -------------------------------------------------------------------
// Table 1: guarantee formulas vs. worst measured ratios.

ArtifactResult run_table1(const ArtifactContext& ctx) {
  constexpr MachineId kM = 8;
  constexpr std::size_t kN = 24;
  constexpr std::size_t kTrials = 5;
  const std::vector<double> alphas = {1.1, 1.5, 2.0};
  const std::vector<NoiseModel> noises = {NoiseModel::kUniform,
                                          NoiseModel::kTwoPoint};

  ArtifactResult result{
      ExperimentReport("table1-summary",
                       "Table 1: replication-bound guarantees vs. measured"),
      {}, {}, {}};
  result.report.set_param("m", static_cast<double>(kM));
  result.report.set_param("n", static_cast<double>(kN));
  result.report.set_param("trials", static_cast<double>(kTrials));
  Series& series = result.report.series(
      "table1", {"alpha", "replication", "guarantee", "measured"});

  std::ostringstream md;
  for (double alpha : alphas) {
    WorkloadParams params;
    params.num_tasks = kN;
    params.num_machines = kM;
    params.alpha = alpha;
    params.seed = ctx.seed + 6;
    const Instance inst = uniform_workload(params, 1.0, 10.0);

    struct Row {
      MachineId replication;
      double guarantee;
      TwoPhaseStrategy strategy;
      std::string theorem;
    };
    std::vector<Row> rows;
    rows.push_back({1, thm2_lpt_no_choice(alpha, kM), make_lpt_no_choice(),
                    "Theorem 2"});
    for (MachineId k : {kM / 2, kM / 4}) {
      rows.push_back({kM / k, thm4_ls_group(alpha, kM, k), make_ls_group(k),
                      "Theorem 4"});
    }
    rows.push_back({kM, thm3_lpt_no_restriction(alpha, kM),
                    make_lpt_no_restriction(), "Theorem 3"});

    TextTable table({"replication", "algorithm", "guarantee", "measured", "source"});
    for (const Row& row : rows) {
      const double measured = worst_measured_ratio(row.strategy, inst, kTrials,
                                                   ctx.seed + 100, noises, ctx);
      table.add_row({"|M_j|=" + std::to_string(row.replication),
                     row.strategy.name(), fmt(row.guarantee), fmt(measured),
                     row.theorem});
      series.add_row({alpha, static_cast<double>(row.replication), row.guarantee,
                      measured});
      result.checks.push_back({row.theorem + ": " + row.strategy.name() + ", " +
                                   alpha_tag(alpha),
                               measured, row.guarantee,
                               TheoremCheck::Kind::kUpperBound, 1e-9});
    }
    md << "**alpha = " << fmt(alpha, 2) << "** (m=" << kM << ", n=" << kN
       << ", worst over the placement-aware adversary and " << kTrials
       << " trials of uniform/two-point noise, certified optima):\n\n"
       << table.render_markdown() << "\n";
  }
  result.markdown = md.str();
  return result;
}

// -------------------------------------------------------------------
// Table 2: memory-aware bi-objective guarantees vs. one realization.

ArtifactResult run_table2(const ArtifactContext& ctx) {
  constexpr MachineId kM = 5;
  constexpr std::size_t kN = 14;
  constexpr double kAlpha = 1.5;
  const std::vector<double> deltas = {0.1, 0.5, 2.0, 8.0};

  ArtifactResult result{
      ExperimentReport("table2-memaware",
                       "Table 2: SABO/ABO bi-objective guarantees vs. measured"),
      {}, {}, {}};
  result.report.set_param("m", static_cast<double>(kM));
  result.report.set_param("n", static_cast<double>(kN));
  result.report.set_param("alpha", kAlpha);
  Series& series = result.report.series(
      "table2", {"is_abo", "delta", "makespan_guarantee", "makespan_measured",
                 "memory_guarantee", "memory_measured"});

  WorkloadParams params;
  params.num_tasks = kN;
  params.num_machines = kM;
  params.alpha = kAlpha;
  params.seed = ctx.seed + 10;
  const Instance inst = independent_sizes_workload(params);
  const Realization actual = realize(inst, NoiseModel::kUniform, ctx.seed + 98);
  const MemAwareConfig config = memaware_config(ctx);

  TextTable table({"algorithm", "Delta", "makespan guar.", "measured",
                   "memory guar.", "measured"});
  const auto add = [&](const char* algo, bool is_abo, const MemAwareTrial& trial) {
    table.add_row({algo, fmt(trial.delta, 2), fmt(trial.makespan_guarantee),
                   fmt(trial.makespan_ratio), fmt(trial.memory_guarantee),
                   fmt(trial.memory_ratio)});
    series.add_row({is_abo ? 1.0 : 0.0, trial.delta, trial.makespan_guarantee,
                    trial.makespan_ratio, trial.memory_guarantee,
                    trial.memory_ratio});
    const std::string suffix =
        std::string(algo) + ", Delta=" + fmt(trial.delta, 2);
    result.checks.push_back({"makespan guarantee: " + suffix, trial.makespan_ratio,
                             trial.makespan_guarantee,
                             TheoremCheck::Kind::kUpperBound, 1e-9});
    result.checks.push_back({"memory guarantee: " + suffix, trial.memory_ratio,
                             trial.memory_guarantee,
                             TheoremCheck::Kind::kUpperBound, 1e-9});
  };
  for (double delta : deltas) add("SABO", false, measure_sabo(inst, actual, delta, config));
  for (double delta : deltas) add("ABO", true, measure_abo(inst, actual, delta, config));

  std::ostringstream md;
  md << "One uniform-noise realization of an independent-sizes workload (m=" << kM
     << ", n=" << kN << ", alpha=" << fmt(kAlpha, 1)
     << "); ratios against certified optima:\n\n"
     << table.render_markdown() << "\n";
  result.markdown = md.str();
  return result;
}

// -------------------------------------------------------------------
// Figure 1: the Theorem 1 adversary construction.

ArtifactResult run_fig1(const ArtifactContext&) {
  constexpr MachineId kM = 6;
  constexpr double kAlpha = 2.0;
  constexpr std::size_t kLambdaIllustration = 3;
  constexpr std::size_t kSweepMax = 64;

  ArtifactResult result{
      ExperimentReport("fig1-adversary",
                       "Figure 1: Theorem 1 adversary, ratio converging to the "
                       "lower bound"),
      {}, {}, {}};
  result.report.set_param("m", static_cast<double>(kM));
  result.report.set_param("alpha", kAlpha);
  Series& series = result.report.series(
      "sweep", {"lambda", "online_cmax", "opt_upper", "ratio", "thm1_bound"});

  const TwoPhaseStrategy strategy = make_lpt_no_choice();
  const double bound = thm1_no_replication_lower_bound(kAlpha, kM);

  // Illustration schedule (the paper's drawn instance).
  const Instance inst = thm1_instance(kLambdaIllustration, kM, kAlpha);
  const Placement placement = strategy.place(inst);
  const Realization worst = thm1_realization(inst, placement);
  const StrategyResult online = strategy.run(inst, worst);
  result.extra_files.push_back(
      {"fig1-adversary.svg", render_svg(inst, online.schedule)});

  TextTable table({"lambda", "online C_max", "OPT upper", "ratio", "Thm 1 bound"});
  double final_ratio = 0;
  for (std::size_t l = 1; l <= kSweepMax; l *= 2) {
    const Instance sweep_inst = thm1_instance(l, kM, kAlpha);
    const Placement sweep_placement = strategy.place(sweep_inst);
    const Realization sweep_worst = thm1_realization(sweep_inst, sweep_placement);
    const StrategyResult run = strategy.run(sweep_inst, sweep_worst);
    const Time opt_upper = thm1_offline_optimal_upper(l, kM, kAlpha, l);
    final_ratio = run.makespan / opt_upper;
    table.add_row({std::to_string(l), fmt(run.makespan, 2), fmt(opt_upper, 2),
                   fmt(final_ratio), fmt(bound)});
    series.add_row({static_cast<double>(l), run.makespan, opt_upper, final_ratio,
                    bound});
  }

  result.checks.push_back({"Thm 1 soundness: adversary ratio <= bound",
                           final_ratio, bound, TheoremCheck::Kind::kUpperBound,
                           1e-6});
  result.checks.push_back({"Thm 1 tightness: adversary ratio >= 0.9 x bound "
                           "(lambda=64)",
                           final_ratio, bound, TheoremCheck::Kind::kLowerBound,
                           0.1});

  std::ostringstream md;
  md << "The adversary slows every task of the most loaded machine by alpha and "
        "speeds the rest up by 1/alpha; the online/OPT ratio approaches the "
        "Theorem 1 lower bound from below as lambda grows.\n\n"
     << "![Figure 1: online schedule after the adversary move](" << kArtifactsToken
     << "/fig1-adversary/fig1-adversary.svg)\n\n"
     << table.render_markdown() << "\n";
  result.markdown = md.str();
  return result;
}

// -------------------------------------------------------------------
// Figure 2: the group-replication construction.

ArtifactResult run_fig2(const ArtifactContext& ctx) {
  constexpr MachineId kM = 6;
  constexpr MachineId kK = 2;
  constexpr std::size_t kN = 10;
  constexpr double kAlpha = 1.5;

  ArtifactResult result{
      ExperimentReport("fig2-groups",
                       "Figure 2: two-phase replication in machine groups"),
      {}, {}, {}};
  result.report.set_param("m", static_cast<double>(kM));
  result.report.set_param("k", static_cast<double>(kK));
  result.report.set_param("n", static_cast<double>(kN));

  WorkloadParams params;
  params.num_tasks = kN;
  params.num_machines = kM;
  params.alpha = kAlpha;
  params.seed = ctx.seed + 2;
  const Instance inst = uniform_workload(params, 1.0, 9.0);

  const TwoPhaseStrategy strategy = make_ls_group(kK);
  const Placement placement = strategy.place(inst);
  TextTable phase1({"task", "estimate", "replica machines"});
  for (TaskId j = 0; j < inst.num_tasks(); ++j) {
    std::string machines;
    for (MachineId i : placement.machines_for(j)) {
      machines += (machines.empty() ? "" : ",") + std::to_string(i);
    }
    phase1.add_row({std::to_string(j), fmt(inst.estimate(j), 2), machines});
  }

  const Realization actual = realize(inst, NoiseModel::kUniform, ctx.seed + 3);
  const StrategyResult run = strategy.run(inst, actual);
  result.extra_files.push_back({"fig2-groups.svg", render_svg(inst, run.schedule)});

  Series& series = result.report.series("result", {"cmax", "max_replication"});
  series.add_row({run.makespan, static_cast<double>(run.max_replication)});

  std::ostringstream md;
  md << "Phase 1 replicates each task's data on one group of " << kM / kK
     << " machines; phase 2 runs online List Scheduling within each group.\n\n"
     << phase1.render_markdown() << "\n"
     << "![Figure 2: phase-2 schedule](" << kArtifactsToken
     << "/fig2-groups/fig2-groups.svg)\n\n"
     << "C_max = " << fmt(run.makespan, 2) << ", max replication degree = "
     << run.max_replication << ".\n";
  result.markdown = md.str();
  return result;
}

// -------------------------------------------------------------------
// Figure 3: the ratio-replication tradeoff (analytic).

ArtifactResult run_fig3(const ArtifactContext&) {
  constexpr MachineId kM = 210;
  const std::vector<double> alphas = {1.1, 1.5, 2.0};

  ArtifactResult result{
      ExperimentReport("fig3-ratio-replication",
                       "Figure 3: guarantee vs. replication degree"),
      {}, {}, {}};
  result.report.set_param("m", static_cast<double>(kM));
  Series& series = result.report.series(
      "curves", {"alpha", "replication", "ls_group", "lpt_no_choice",
                 "lpt_no_restriction", "thm1_lower_bound"});

  std::vector<ChartSeries> chart;
  std::ostringstream md;
  TextTable headline({"alpha", "min replication beating the no-replication lower "
                               "bound",
                      "LS-Group guarantee there", "Thm 1 lower bound"});
  for (double alpha : alphas) {
    ChartSeries curve{"LS-Group " + alpha_tag(alpha), {}};
    ChartSeries lb{"Thm1 LB " + alpha_tag(alpha), {}};
    for (MachineId r : feasible_replication_degrees(kM)) {
      const double group = thm4_ls_group(alpha, kM, kM / r);
      series.add_row({alpha, static_cast<double>(r), group,
                      thm2_lpt_no_choice(alpha, kM),
                      thm3_lpt_no_restriction(alpha, kM),
                      thm1_no_replication_lower_bound(alpha, kM)});
      curve.points.emplace_back(static_cast<double>(r), group);
      lb.points.emplace_back(static_cast<double>(r),
                             thm1_no_replication_lower_bound(alpha, kM));
    }
    chart.push_back(std::move(curve));
    chart.push_back(std::move(lb));

    const MachineId beats = min_replication_beating_lower_bound(alpha, kM);
    if (beats != 0) {
      const double there = ratio_for_replication_degree(alpha, kM, beats);
      const double bound = thm1_no_replication_lower_bound(alpha, kM);
      headline.add_row({fmt(alpha, 2), std::to_string(beats), fmt(there),
                        fmt(bound)});
      result.checks.push_back(
          {"Fig 3 headline: LS-Group(r=" + std::to_string(beats) +
               ") beats the no-replication lower bound, " + alpha_tag(alpha),
           there, bound, TheoremCheck::Kind::kUpperBound, 1e-9});
    }
  }

  ChartOptions options;
  options.title = "Guarantee vs. replication degree (m=210)";
  options.x_label = "replication degree r (log)";
  options.y_label = "competitive ratio guarantee";
  options.log_x = true;
  result.extra_files.push_back(
      {"fig3-ratio-replication.svg", render_line_chart(chart, options)});

  md << "LS-Group guarantee per feasible replication degree r (divisors of m), "
        "against the flat no-replication lower bound of Theorem 1.\n\n"
     << "![Figure 3: ratio vs. replication](" << kArtifactsToken
     << "/fig3-ratio-replication/fig3-ratio-replication.svg)\n\n"
     << headline.render_markdown() << "\n";
  result.markdown = md.str();
  return result;
}

// -------------------------------------------------------------------
// Figures 4 & 5: example SABO / ABO schedules.

ArtifactResult run_fig4(const ArtifactContext& ctx) {
  constexpr MachineId kM = 4;
  constexpr std::size_t kN = 10;
  constexpr double kDelta = 1.0;

  ArtifactResult result{
      ExperimentReport("fig4-sabo-schedule", "Figure 4: an example SABO_Delta "
                                             "schedule"),
      {}, {}, {}};
  result.report.set_param("m", static_cast<double>(kM));
  result.report.set_param("n", static_cast<double>(kN));
  result.report.set_param("delta", kDelta);

  WorkloadParams params;
  params.num_tasks = kN;
  params.num_machines = kM;
  params.alpha = 1.5;
  params.seed = ctx.seed + 4;
  const Instance inst = independent_sizes_workload(params);

  const SaboResult sabo = run_sabo(inst, kDelta);
  TextTable split({"task", "estimate", "size", "set", "machine"});
  for (TaskId j = 0; j < inst.num_tasks(); ++j) {
    split.add_row({std::to_string(j), fmt(inst.estimate(j), 2),
                   fmt(inst.size(j), 2),
                   sabo.in_s2[j] ? "S2 (memory)" : "S1 (time)",
                   std::to_string(sabo.assignment[j])});
  }

  const Realization actual = realize(inst, NoiseModel::kUniform, ctx.seed + 11);
  const Schedule schedule =
      sequence_assignment(sabo.assignment, actual, inst.num_machines());
  SvgOptions options;
  options.hollow = sabo.in_s2;
  result.extra_files.push_back(
      {"fig4-sabo-schedule.svg", render_svg(inst, schedule, options)});

  Series& series = result.report.series("result", {"cmax", "mem_max"});
  series.add_row({schedule.makespan(), sabo.max_memory});

  std::ostringstream md;
  md << "SABO splits tasks into time-intensive S1 (solid) and memory-intensive "
        "S2 (hollow) and pins each to one machine (no replication).\n\n"
     << split.render_markdown() << "\n"
     << "![Figure 4: SABO schedule](" << kArtifactsToken
     << "/fig4-sabo-schedule/fig4-sabo-schedule.svg)\n\n"
     << "C_max = " << fmt(schedule.makespan(), 2) << ", Mem_max = "
     << fmt(sabo.max_memory, 2) << ".\n";
  result.markdown = md.str();
  return result;
}

ArtifactResult run_fig5(const ArtifactContext& ctx) {
  constexpr MachineId kM = 4;
  constexpr std::size_t kN = 10;
  constexpr double kDelta = 1.0;

  ArtifactResult result{
      ExperimentReport("fig5-abo-schedule", "Figure 5: an example ABO_Delta "
                                            "schedule"),
      {}, {}, {}};
  result.report.set_param("m", static_cast<double>(kM));
  result.report.set_param("n", static_cast<double>(kN));
  result.report.set_param("delta", kDelta);

  WorkloadParams params;
  params.num_tasks = kN;
  params.num_machines = kM;
  params.alpha = 1.5;
  params.seed = ctx.seed + 4;
  const Instance inst = independent_sizes_workload(params);
  const Realization actual = realize(inst, NoiseModel::kUniform, ctx.seed + 11);

  const AboResult abo = run_abo(inst, actual, kDelta);
  TextTable split({"task", "estimate", "size", "set", "replicas", "ran on"});
  for (TaskId j = 0; j < inst.num_tasks(); ++j) {
    split.add_row({std::to_string(j), fmt(inst.estimate(j), 2),
                   fmt(inst.size(j), 2),
                   abo.in_s2[j] ? "S2 (pinned)" : "S1 (replicated)",
                   std::to_string(abo.placement.replication_degree(j)),
                   std::to_string(abo.schedule.assignment[j])});
  }
  SvgOptions options;
  options.hollow = abo.in_s2;
  result.extra_files.push_back(
      {"fig5-abo-schedule.svg", render_svg(inst, abo.schedule, options)});

  Series& series = result.report.series("result", {"cmax", "mem_max"});
  series.add_row({abo.makespan, abo.max_memory});

  std::ostringstream md;
  md << "ABO pins memory-intensive S2 tasks (hollow) and replicates "
        "time-intensive S1 tasks everywhere for online dispatch.\n\n"
     << split.render_markdown() << "\n"
     << "![Figure 5: ABO schedule](" << kArtifactsToken
     << "/fig5-abo-schedule/fig5-abo-schedule.svg)\n\n"
     << "C_max = " << fmt(abo.makespan, 2) << ", Mem_max = "
     << fmt(abo.max_memory, 2) << " (every S1 replica counted).\n";
  result.markdown = md.str();
  return result;
}

// -------------------------------------------------------------------
// Figure 6: memory-makespan guarantee tradeoff.

ArtifactResult run_fig6(const ArtifactContext&) {
  struct Config {
    const char* label;
    const char* slug;
    MachineId m;
    double alpha2;
    double rho;
  };
  constexpr Config kConfigs[] = {
      {"(a) m=5, alpha^2=2, rho=4/3", "a", 5, 2.0, 4.0 / 3.0},
      {"(b) m=5, alpha^2=3, rho=1", "b", 5, 3.0, 1.0},
      {"(c) m=5, alpha^2=3, rho=4/3", "c", 5, 3.0, 4.0 / 3.0},
  };
  constexpr int kPoints = 17;

  ArtifactResult result{
      ExperimentReport("fig6-memory-makespan",
                       "Figure 6: memory-makespan guarantee tradeoff"),
      {}, {}, {}};
  Series& series = result.report.series(
      "curves", {"config", "is_abo", "delta", "makespan_guarantee",
                 "memory_guarantee", "frontier_memory"});

  std::ostringstream md;
  md << "SABO and ABO guarantee curves swept over Delta, against the "
        "impossibility frontier memory >= 1 + 1/(makespan - 1) of the cited "
        "SBO work.\n\n";

  int config_index = 0;
  for (const Config& c : kConfigs) {
    const double alpha = std::sqrt(c.alpha2);
    std::vector<ChartSeries> chart;
    for (auto algo : {MemAwareAlgorithm::kSabo, MemAwareAlgorithm::kAbo}) {
      const bool is_abo = algo == MemAwareAlgorithm::kAbo;
      ChartSeries curve{is_abo ? "ABO" : "SABO", {}};
      ChartSeries frontier{"frontier", {}};
      double min_margin = 1e30;
      for (const GuaranteeCurvePoint& pt :
           guarantee_curve(algo, alpha, c.m, c.rho, c.rho, 0.05, 20.0, kPoints)) {
        const double mk = pt.guarantee.makespan;
        const double mem = pt.guarantee.memory;
        const double frontier_mem =
            mk > 1.0 ? impossibility_memory_for_makespan(mk) : 0.0;
        series.add_row({static_cast<double>(config_index), is_abo ? 1.0 : 0.0,
                        pt.delta, mk, mem, frontier_mem});
        curve.points.emplace_back(mk, mem);
        if (frontier_mem > 0) {
          frontier.points.emplace_back(mk, frontier_mem);
          min_margin = std::min(min_margin, mem / frontier_mem);
        }
      }
      chart.push_back(std::move(curve));
      if (!is_abo) chart.push_back(std::move(frontier));
      result.checks.push_back(
          {std::string("Fig 6") + c.slug + " " + (is_abo ? "ABO" : "SABO") +
               ": guarantee curve sits above the impossibility frontier",
           min_margin, 1.0, TheoremCheck::Kind::kLowerBound, 1e-9});
    }
    ChartOptions options;
    options.title = std::string("Figure 6 ") + c.label;
    options.x_label = "makespan guarantee";
    options.y_label = "memory guarantee";
    const std::string filename =
        std::string("fig6-memory-makespan-") + c.slug + ".svg";
    result.extra_files.push_back({filename, render_line_chart(chart, options)});
    md << "![Figure 6 " << c.slug << "](" << kArtifactsToken
       << "/fig6-memory-makespan/" << filename << ")\n";
    ++config_index;
  }
  md << "\n";
  result.markdown = md.str();
  return result;
}

// -------------------------------------------------------------------
// Theorem sweeps: worst measured ratio vs. proven bound.

struct TheoremSweepSpec {
  std::string name;
  std::string theorem;
  MachineId m;
  std::size_t n;
  std::size_t trials;
  std::vector<double> alphas;
};

ArtifactResult run_ratio_theorem_sweep(
    const ArtifactContext& ctx, const TheoremSweepSpec& spec,
    const std::function<TwoPhaseStrategy()>& make_strategy,
    const std::function<double(double)>& bound_for_alpha,
    const std::string& protocol_note) {
  const std::vector<NoiseModel> noises = {NoiseModel::kUniform,
                                          NoiseModel::kTwoPoint,
                                          NoiseModel::kAlwaysHigh};

  ArtifactResult result{ExperimentReport(spec.name, spec.theorem), {}, {}, {}};
  result.report.set_param("m", static_cast<double>(spec.m));
  result.report.set_param("n", static_cast<double>(spec.n));
  result.report.set_param("trials", static_cast<double>(spec.trials));
  Series& series =
      result.report.series("sweep", {"alpha", "measured_worst", "bound"});

  const TwoPhaseStrategy strategy = make_strategy();
  TextTable table({"alpha", "worst measured ratio", "proven bound", "margin"});
  for (double alpha : spec.alphas) {
    WorkloadParams params;
    params.num_tasks = spec.n;
    params.num_machines = spec.m;
    params.alpha = alpha;
    params.seed = ctx.seed + 21;
    const Instance inst = uniform_workload(params, 1.0, 10.0);
    const double measured = worst_measured_ratio(strategy, inst, spec.trials,
                                                 ctx.seed + 300, noises, ctx);
    const double bound = bound_for_alpha(alpha);
    table.add_row({fmt(alpha, 2), fmt(measured), fmt(bound),
                   fmt(bound - measured)});
    series.add_row({alpha, measured, bound});
    result.checks.push_back({spec.theorem + ": " + strategy.name() + ", " +
                                 alpha_tag(alpha),
                             measured, bound, TheoremCheck::Kind::kUpperBound,
                             1e-9});
  }

  std::ostringstream md;
  md << protocol_note << "\n\n" << table.render_markdown() << "\n";
  result.markdown = md.str();
  return result;
}

ArtifactResult run_thm4_sweep(const ArtifactContext& ctx) {
  constexpr MachineId kM = 8;
  constexpr std::size_t kN = 16;
  constexpr std::size_t kTrials = 6;
  const std::vector<double> alphas = {1.5, 2.0};
  const std::vector<MachineId> ks = {2, 4};
  const std::vector<NoiseModel> noises = {NoiseModel::kUniform,
                                          NoiseModel::kTwoPoint};

  ArtifactResult result{
      ExperimentReport("thm4-ls-group", "Theorem 4: LS-Group guarantee"), {}, {},
      {}};
  result.report.set_param("m", static_cast<double>(kM));
  result.report.set_param("n", static_cast<double>(kN));
  result.report.set_param("trials", static_cast<double>(kTrials));
  Series& series = result.report.series(
      "sweep", {"alpha", "k_groups", "measured_worst", "bound"});

  TextTable table({"alpha", "k groups", "worst measured ratio", "proven bound",
                   "margin"});
  for (double alpha : alphas) {
    WorkloadParams params;
    params.num_tasks = kN;
    params.num_machines = kM;
    params.alpha = alpha;
    params.seed = ctx.seed + 21;
    const Instance inst = uniform_workload(params, 1.0, 10.0);
    for (MachineId k : ks) {
      const TwoPhaseStrategy strategy = make_ls_group(k);
      const double measured = worst_measured_ratio(strategy, inst, kTrials,
                                                   ctx.seed + 300, noises, ctx);
      const double bound = thm4_ls_group(alpha, kM, k);
      table.add_row({fmt(alpha, 2), std::to_string(k), fmt(measured), fmt(bound),
                     fmt(bound - measured)});
      series.add_row({alpha, static_cast<double>(k), measured, bound});
      result.checks.push_back({"Theorem 4: LS-Group(k=" + std::to_string(k) +
                                   "), " + alpha_tag(alpha),
                               measured, bound, TheoremCheck::Kind::kUpperBound,
                               1e-9});
    }
  }

  std::ostringstream md;
  md << "Worst measured ratio of LS-Group over the placement-aware adversary "
        "and "
     << kTrials << " trials each of uniform/two-point noise (m=" << kM
     << ", n=" << kN << ", certified optima) must stay below the Theorem 4 "
        "closed form.\n\n"
     << table.render_markdown() << "\n";
  result.markdown = md.str();
  return result;
}

ArtifactResult run_memaware_theorems(const ArtifactContext& ctx) {
  constexpr MachineId kM = 5;
  constexpr std::size_t kN = 12;
  constexpr std::size_t kTrials = 5;
  constexpr double kAlpha = 1.5;
  const std::vector<double> deltas = {0.5, 1.0, 2.0};

  ArtifactResult result{
      ExperimentReport("thm5-8-memaware",
                       "Theorems 5-8: SABO/ABO bi-objective guarantees"),
      {}, {}, {}};
  result.report.set_param("m", static_cast<double>(kM));
  result.report.set_param("n", static_cast<double>(kN));
  result.report.set_param("alpha", kAlpha);
  result.report.set_param("trials", static_cast<double>(kTrials));
  Series& series = result.report.series(
      "sweep", {"is_abo", "delta", "worst_makespan_ratio", "makespan_guarantee",
                "worst_memory_ratio", "memory_guarantee"});

  WorkloadParams params;
  params.num_tasks = kN;
  params.num_machines = kM;
  params.alpha = kAlpha;
  params.seed = ctx.seed + 17;
  const Instance inst = independent_sizes_workload(params);
  const MemAwareConfig config = memaware_config(ctx);

  TextTable table({"algorithm", "Delta", "worst makespan ratio",
                   "makespan guarantee", "worst memory ratio",
                   "memory guarantee"});
  for (const bool is_abo : {false, true}) {
    const char* algo = is_abo ? "ABO" : "SABO";
    const char* theorems = is_abo ? "Theorems 7-8" : "Theorems 5-6";
    for (double delta : deltas) {
      double worst_mk = 0, worst_mem = 0, mk_guar = 0, mem_guar = 0;
      for (std::size_t t = 0; t < kTrials; ++t) {
        const Realization actual =
            realize(inst, NoiseModel::kUniform, ctx.seed + 50 + t);
        const MemAwareTrial trial = is_abo
                                        ? measure_abo(inst, actual, delta, config)
                                        : measure_sabo(inst, actual, delta, config);
        worst_mk = std::max(worst_mk, trial.makespan_ratio);
        worst_mem = std::max(worst_mem, trial.memory_ratio);
        mk_guar = trial.makespan_guarantee;
        mem_guar = trial.memory_guarantee;
      }
      table.add_row({algo, fmt(delta, 2), fmt(worst_mk), fmt(mk_guar),
                     fmt(worst_mem), fmt(mem_guar)});
      series.add_row({is_abo ? 1.0 : 0.0, delta, worst_mk, mk_guar, worst_mem,
                      mem_guar});
      const std::string suffix =
          std::string(algo) + ", Delta=" + fmt(delta, 2);
      result.checks.push_back({std::string(theorems) + " makespan: " + suffix,
                               worst_mk, mk_guar,
                               TheoremCheck::Kind::kUpperBound, 1e-9});
      result.checks.push_back({std::string(theorems) + " memory: " + suffix,
                               worst_mem, mem_guar,
                               TheoremCheck::Kind::kUpperBound, 1e-9});
    }
  }

  std::ostringstream md;
  md << "Worst measured (makespan, memory) ratios over " << kTrials
     << " uniform-noise realizations (m=" << kM << ", n=" << kN
     << ", certified optima for both objectives) must stay below the "
        "bi-objective guarantees.\n\n"
     << table.render_markdown() << "\n";
  result.markdown = md.str();
  return result;
}

// -------------------------------------------------------------------
// Large-n theorem validation: certified-LB denominators from the
// Hochbaum-Shmoys backend.

ArtifactResult run_certify_scale_sweep(const ArtifactContext& ctx) {
  constexpr MachineId kM = 8;
  constexpr std::size_t kN = 100'000;
  constexpr std::size_t kTrials = 2;
  const std::vector<double> alphas = {1.5, 2.0};
  const std::vector<NoiseModel> noises = {NoiseModel::kUniform,
                                          NoiseModel::kTwoPoint};

  ArtifactResult result{
      ExperimentReport("ext-certify-scale",
                       "Theorems 2-4 at n=10^5: PTAS-certified denominators"),
      {}, {}, {}};
  result.report.set_param("m", static_cast<double>(kM));
  result.report.set_param("n", static_cast<double>(kN));
  result.report.set_param("trials", static_cast<double>(kTrials));
  Series& series = result.report.series(
      "sweep", {"alpha", "replication", "measured_worst", "bound"});

  struct Row {
    MachineId replication;
    TwoPhaseStrategy strategy;
    std::string theorem;
    std::function<double(double)> bound;
  };
  std::vector<Row> rows;
  rows.push_back({1, make_lpt_no_choice(), "Theorem 2",
                  [](double a) { return thm2_lpt_no_choice(a, kM); }});
  rows.push_back({kM / 2, make_ls_group(2), "Theorem 4",
                  [](double a) { return thm4_ls_group(a, kM, 2); }});
  rows.push_back({kM, make_lpt_no_restriction(), "Theorem 3",
                  [](double a) { return thm3_lpt_no_restriction(a, kM); }});

  const RatioExperimentConfig config = ratio_config(ctx);
  TextTable table({"alpha", "replication", "algorithm", "worst measured ratio",
                   "proven bound", "exact denominators"});
  for (double alpha : alphas) {
    WorkloadParams params;
    params.num_tasks = kN;
    params.num_machines = kM;
    params.alpha = alpha;
    params.seed = ctx.seed + 33;
    const Instance inst = uniform_workload(params, 1.0, 10.0);
    for (const Row& row : rows) {
      double worst = 0;
      bool all_exact = true;
      for (NoiseModel noise : noises) {
        const RatioAggregate agg = measure_ratio_batch(
            row.strategy, inst, noise, kTrials, ctx.seed + 400, config);
        worst = std::max(worst, agg.worst.ratio);
        all_exact = all_exact && agg.worst.exact_optimum;
      }
      const double bound = row.bound(alpha);
      table.add_row({fmt(alpha, 2), "|M_j|=" + std::to_string(row.replication),
                     row.strategy.name(), fmt(worst), fmt(bound),
                     all_exact ? "yes" : "no (certified LB)"});
      series.add_row({alpha, static_cast<double>(row.replication), worst,
                      bound});
      result.checks.push_back({row.theorem + " at n=1e5: " +
                                   row.strategy.name() + ", " + alpha_tag(alpha),
                               worst, bound, TheoremCheck::Kind::kUpperBound,
                               1e-9});
    }
  }

  std::ostringstream md;
  md << "The theorem sweeps above certify their denominators with exact "
        "branch-and-bound, which caps them near n=24. This sweep re-runs "
        "the Theorem 2-4 validations at n=" << kN << " (m=" << kM
     << "): denominators route to the Hochbaum-Shmoys dual-approximation "
        "backend, whose certified lower bound never exceeds OPT, so "
        "measured ratios over-estimate the true competitive ratio and "
        "\"measured <= bound\" stays a sound check (see "
        "docs/ALGORITHMS.md). Worst ratio over " << kTrials
     << " trials each of uniform/two-point noise; the placement-aware "
        "adversary is a small-n construction and is exercised by the "
        "exact sweeps.\n\n"
     << table.render_markdown() << "\n";
  result.markdown = md.str();
  return result;
}

std::map<std::string, std::string> ratio_sweep_params(const TheoremSweepSpec& spec) {
  std::map<std::string, std::string> params;
  params["m"] = std::to_string(spec.m);
  params["n"] = std::to_string(spec.n);
  params["trials"] = std::to_string(spec.trials);
  std::string alphas;
  for (double a : spec.alphas) alphas += fmt(a, 2) + ",";
  params["alphas"] = alphas;
  params["noises"] = "adversary,uniform,two-point,always-high";
  return params;
}

std::vector<Artifact> build_registry() {
  std::vector<Artifact> artifacts;

  artifacts.push_back(
      {"table1-summary", "Table 1: replication-bound model guarantees", "Table 1",
       "The guarantee formulas of the replication-bound model tabulated over "
       "(m, alpha), with the worst measured competitive ratio of each "
       "algorithm next to its closed form.",
       ArtifactKind::kTable,
       {},
       {{"m", "8"}, {"n", "24"}, {"trials", "5"}, {"alphas", "1.1,1.5,2.0"}},
       run_table1});

  artifacts.push_back(
      {"table2-memaware", "Table 2: memory-aware guarantees", "Table 2",
       "The SABO/ABO bi-objective guarantees with measured makespan and memory "
       "ratios against certified optima.",
       ArtifactKind::kTable,
       {},
       {{"m", "5"}, {"n", "14"}, {"alpha", "1.5"}, {"deltas", "0.1,0.5,2.0,8.0"}},
       run_table2});

  artifacts.push_back(
      {"fig1-adversary", "Figure 1: the Theorem 1 adversary", "Figure 1",
       "The lower-bound construction: an online schedule after the adversary "
       "move, and the lambda sweep showing the measured ratio converging to "
       "the Theorem 1 bound from below.",
       ArtifactKind::kFigure,
       {},
       {{"m", "6"}, {"alpha", "2.0"}, {"sweep", "64"}},
       run_fig1});

  artifacts.push_back(
      {"fig2-groups", "Figure 2: replication in groups", "Figure 2",
       "The two-phase group construction: phase-1 group placement and the "
       "phase-2 online schedule within groups.",
       ArtifactKind::kFigure,
       {},
       {{"m", "6"}, {"k", "2"}, {"n", "10"}, {"alpha", "1.5"}},
       run_fig2});

  artifacts.push_back(
      {"fig3-ratio-replication", "Figure 3: ratio vs. replication degree",
       "Figure 3",
       "The guarantee attached to every feasible replication degree on m=210 "
       "machines, for three alpha values (analytic; the paper's central "
       "tradeoff).",
       ArtifactKind::kFigure,
       {"smoke"},
       {{"m", "210"}, {"alphas", "1.1,1.5,2.0"}},
       run_fig3});

  artifacts.push_back(
      {"fig4-sabo-schedule", "Figure 4: an example SABO schedule", "Figure 4",
       "SABO's S1/S2 split and the resulting static schedule under a "
       "uniform-noise realization (S2 tasks hollow, as in the paper).",
       ArtifactKind::kFigure,
       {},
       {{"m", "4"}, {"n", "10"}, {"delta", "1.0"}},
       run_fig4});

  artifacts.push_back(
      {"fig5-abo-schedule", "Figure 5: an example ABO schedule", "Figure 5",
       "ABO's pinned S2 tasks and everywhere-replicated S1 tasks dispatched "
       "online.",
       ArtifactKind::kFigure,
       {},
       {{"m", "4"}, {"n", "10"}, {"delta", "1.0"}},
       run_fig5});

  artifacts.push_back(
      {"fig6-memory-makespan", "Figure 6: memory-makespan tradeoff", "Figure 6",
       "SABO and ABO guarantee curves in the (makespan factor, memory factor) "
       "plane for the paper's three configurations, against the impossibility "
       "frontier.",
       ArtifactKind::kFigure,
       {"smoke"},
       {{"points", "17"}, {"configs", "a,b,c"}},
       run_fig6});

  {
    TheoremSweepSpec spec{"thm2-lpt-no-choice", "Theorem 2", 8, 20, 8,
                          {1.1, 1.5, 2.0}};
    artifacts.push_back(
        {spec.name, "Theorem 2: LPT-NoChoice is 2a^2m/(2a^2+m-1)-competitive",
         "Theorem 2",
         "Empirical validation: the worst measured ratio of LPT-NoChoice over "
         "the placement-aware adversary and three stochastic noise models "
         "never exceeds the Theorem 2 guarantee.",
         ArtifactKind::kTheorem, {}, ratio_sweep_params(spec),
         [spec](const ArtifactContext& ctx) {
           return run_ratio_theorem_sweep(
               ctx, spec, make_lpt_no_choice,
               [&](double alpha) { return thm2_lpt_no_choice(alpha, spec.m); },
               "Worst measured ratio of LPT-NoChoice over the placement-aware "
               "adversary and 8 trials each of uniform/two-point/always-high "
               "noise (m=8, n=20, certified optima) vs. the Theorem 2 bound.");
         }});
  }

  {
    TheoremSweepSpec spec{"thm3-lpt-no-restriction", "Theorem 3", 8, 20, 8,
                          {1.1, 1.5, 2.0}};
    artifacts.push_back(
        {spec.name,
         "Theorem 3: LPT-NoRestriction is min(1+(m-1)/m a^2/2, 2-1/m)-"
         "competitive",
         "Theorem 3",
         "Empirical validation: the worst measured ratio of LPT-NoRestriction "
         "(full replication) never exceeds the combined Theorem 3 + Graham "
         "guarantee.",
         ArtifactKind::kTheorem, {}, ratio_sweep_params(spec),
         [spec](const ArtifactContext& ctx) {
           return run_ratio_theorem_sweep(
               ctx, spec, make_lpt_no_restriction,
               [&](double alpha) {
                 return thm3_lpt_no_restriction(alpha, spec.m);
               },
               "Worst measured ratio of LPT-NoRestriction over the "
               "placement-aware adversary and 8 trials each of "
               "uniform/two-point/always-high noise (m=8, n=20, certified "
               "optima) vs. the Theorem 3 + Graham bound.");
         }});
  }

  artifacts.push_back(
      {"thm4-ls-group", "Theorem 4: LS-Group guarantee", "Theorem 4",
       "Empirical validation: the worst measured ratio of LS-Group for k in "
       "{2, 4} groups never exceeds the Theorem 4 closed form.",
       ArtifactKind::kTheorem,
       {"smoke"},
       {{"m", "8"}, {"n", "16"}, {"trials", "6"}, {"alphas", "1.5,2.0"},
        {"ks", "2,4"}},
       run_thm4_sweep});

  artifacts.push_back(
      {"thm5-8-memaware", "Theorems 5-8: bi-objective guarantees",
       "Theorems 5-8",
       "Empirical validation: SABO (Thms 5-6) and ABO (Thms 7-8) stay below "
       "both their makespan and memory guarantees across Delta values and "
       "realizations.",
       ArtifactKind::kTheorem,
       {},
       {{"m", "5"}, {"n", "12"}, {"alpha", "1.5"}, {"deltas", "0.5,1.0,2.0"},
        {"trials", "5"}},
       run_memaware_theorems});

  artifacts.push_back(
      {"ext-certify-scale",
       "Theorems 2-4 at n=10^5: PTAS-certified denominators", "Theorems 2-4",
       "Empirical validation at scale: the Theorem 2-4 ratio checks re-run "
       "at n=100000, where competitive-ratio denominators come from the "
       "Hochbaum-Shmoys certified lower bound instead of exact "
       "branch-and-bound.",
       ArtifactKind::kTheorem,
       {"smoke"},
       {{"m", "8"}, {"n", "100000"}, {"trials", "2"}, {"alphas", "1.5,2.0"}},
       run_certify_scale_sweep});

  return artifacts;
}

}  // namespace

const std::vector<Artifact>& paper_artifacts() {
  static const std::vector<Artifact> kRegistry = build_registry();
  return kRegistry;
}

std::vector<const Artifact*> select_artifacts(const std::vector<Artifact>& all,
                                              const std::string& filter) {
  std::vector<std::string> terms;
  std::stringstream ss(filter);
  std::string term;
  while (std::getline(ss, term, ',')) {
    if (!term.empty()) terms.push_back(term);
  }

  std::vector<const Artifact*> selected;
  for (const Artifact& artifact : all) {
    if (terms.empty()) {
      selected.push_back(&artifact);
      continue;
    }
    for (const std::string& t : terms) {
      if (artifact.matches(t)) {
        selected.push_back(&artifact);
        break;
      }
    }
  }
  return selected;
}

}  // namespace rdp::repro
