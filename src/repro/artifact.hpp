// The artifact model of the reproduction pipeline: one Artifact per
// paper table/figure/theorem, each a pure function from an
// ArtifactContext (seed, certify engine, thread pool) to an
// ArtifactResult (machine-readable report + markdown fragment + extra
// files + theorem checks). The pipeline driver (repro/pipeline.hpp) owns
// layout, hashing, skipping, and manifest bookkeeping; artifacts only
// compute.
//
// Determinism contract: an artifact's result may depend on the context's
// seed and node budget but NOT on the pool size -- everything routed
// through CertifyEngine / measure_ratio_trials is bit-identical across
// thread counts, so `repro --jobs 1` and `--jobs 8` produce the same
// bytes (tests/test_repro.cpp pins this).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "exp/report.hpp"

namespace rdp {

class CertifyEngine;
class ThreadPool;

namespace repro {

enum class ArtifactKind { kTable, kFigure, kTheorem };

[[nodiscard]] std::string to_string(ArtifactKind kind);

/// Everything an artifact computation may use. Engine and pool are owned
/// by the pipeline and shared across artifacts (so the certify cache
/// carries over between artifacts that re-solve the same instances).
struct ArtifactContext {
  std::uint64_t seed = 1;
  std::uint64_t node_budget = 400'000;  ///< branch-and-bound budget per solve
  CertifyEngine* engine = nullptr;      ///< never null when run by the pipeline
  ThreadPool* pool = nullptr;           ///< never null when run by the pipeline
};

/// One empirical validation of a proven statement. `kind` is the
/// direction of the inequality the theorem states: kUpperBound means the
/// measurement must sit at or below `bound` (competitive-ratio
/// guarantees), kLowerBound means at or above (adversary tightness).
struct TheoremCheck {
  enum class Kind { kUpperBound, kLowerBound };

  std::string label;      ///< e.g. "Thm 2: LPT-NoChoice, alpha=1.5"
  double measured = 0;
  double bound = 0;
  Kind kind = Kind::kUpperBound;
  double tolerance = 1e-9;  ///< relative slack on the comparison

  [[nodiscard]] bool pass() const noexcept {
    return kind == Kind::kUpperBound ? measured <= bound * (1.0 + tolerance)
                                     : measured >= bound * (1.0 - tolerance);
  }
};

/// An extra output file (SVG figure, auxiliary CSV) emitted next to the
/// artifact's report.
struct ArtifactFile {
  std::string filename;  ///< basename only; the pipeline decides the dir
  std::string content;
};

/// What one artifact computation produces.
struct ArtifactResult {
  ExperimentReport report;              ///< saved as <name>.json + <name>.csv
  std::string markdown;                 ///< RESULTS.md fragment body. Links to
                                        ///< own files use the literal prefix
                                        ///< kArtifactsToken (rewritten at
                                        ///< render time).
  std::vector<ArtifactFile> extra_files;
  std::vector<TheoremCheck> checks;
};

/// Placeholder for "path from RESULTS.md to the artifacts root" inside
/// markdown fragments; resolved by the pipeline when RESULTS.md is
/// assembled (fragments are cached on disk and must stay
/// location-independent).
inline constexpr const char* kArtifactsToken = "$(ARTIFACTS)";

/// A registered artifact: identity + provenance inputs + compute fn.
struct Artifact {
  std::string name;        ///< slug, doubles as the output directory name
  std::string title;       ///< human heading in RESULTS.md
  std::string paper_ref;   ///< e.g. "Table 1", "Theorems 5-6"
  std::string description; ///< one paragraph for RESULTS.md
  ArtifactKind kind = ArtifactKind::kTable;
  std::vector<std::string> tags;  ///< filter targets ("smoke", ...)
  /// The artifact's input parameters. Part of the provenance hash: change
  /// a param and the artifact regenerates on the next run.
  std::map<std::string, std::string> params;
  std::function<ArtifactResult(const ArtifactContext&)> run;

  [[nodiscard]] bool has_tag(const std::string& tag) const;
  /// True when `pattern` is a substring of the name or equals a tag or
  /// the kind name ("table", "figure", "theorem").
  [[nodiscard]] bool matches(const std::string& pattern) const;
};

/// FNV-1a over a byte string (the same construction the certify cache
/// keys use; stable across platforms and runs).
[[nodiscard]] std::uint64_t fnv1a(const std::string& bytes) noexcept;

/// The provenance hash of an artifact under a given (seed, node_budget):
/// FNV-1a over name, params, seed, budget, and the pipeline recipe
/// version (bumping kRecipeVersion invalidates every cached artifact).
[[nodiscard]] std::uint64_t artifact_input_hash(const Artifact& artifact,
                                                std::uint64_t seed,
                                                std::uint64_t node_budget);

/// Bump when artifact semantics change in a way the params cannot see
/// (output layout, fragment format, check definitions).
inline constexpr const char* kRecipeVersion = "repro-v1";

}  // namespace repro
}  // namespace rdp
