#include "repro/manifest.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "io/json.hpp"

namespace rdp::repro {

namespace fs = std::filesystem;

const ManifestEntry* Manifest::find(const std::string& name) const {
  for (const ManifestEntry& e : entries) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

std::string hash_to_hex(std::uint64_t hash) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(hash));
  return buf;
}

std::string Manifest::to_json(int indent) const {
  JsonArray entry_array;
  for (const ManifestEntry& e : entries) {
    JsonObject obj;
    obj["name"] = e.name;
    obj["kind"] = e.kind;
    obj["input_hash"] = e.input_hash;
    obj["status"] = e.status;
    obj["wall_seconds"] = e.wall_seconds;
    JsonArray outputs;
    for (const std::string& o : e.outputs) outputs.emplace_back(o);
    obj["outputs"] = std::move(outputs);
    obj["checks"] = e.checks;
    obj["violations"] = e.violations;
    entry_array.emplace_back(std::move(obj));
  }

  JsonObject counters;
  counters["theorem_checks"] = theorem_checks;
  counters["bound_violations"] = bound_violations;
  counters["certify_cache_hits"] = certify_cache_hits;
  counters["certify_cache_misses"] = certify_cache_misses;

  JsonObject root;
  root["schema_version"] = schema_version;
  root["git_sha"] = git_sha;
  root["seed"] = seed;
  root["node_budget"] = node_budget;
  root["jobs"] = jobs;
  root["filter"] = filter;
  root["artifacts"] = std::move(entry_array);
  root["counters"] = std::move(counters);
  root["total_wall_seconds"] = total_wall_seconds;
  if (!sampler_path.empty()) {
    JsonObject sampler;
    sampler["path"] = sampler_path;
    sampler["period_ms"] = sampler_period_ms;
    sampler["samples"] = sampler_samples;
    root["sampler"] = std::move(sampler);
  }
  return JsonValue(std::move(root)).dump(indent);
}

void Manifest::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("manifest: cannot open " + path);
  out << to_json() << "\n";
  if (!out) throw std::runtime_error("manifest: write failed for " + path);
}

std::optional<Manifest> load_manifest(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::stringstream buffer;
  buffer << in.rdbuf();

  try {
    const JsonValue root = parse_json(buffer.str());
    Manifest m;
    m.schema_version = static_cast<int>(root.get_number("schema_version", -1));
    if (m.schema_version != Manifest{}.schema_version) return std::nullopt;
    m.git_sha = root.get_string("git_sha", "unknown");
    m.seed = static_cast<std::uint64_t>(root.get_number("seed"));
    m.node_budget = static_cast<std::uint64_t>(root.get_number("node_budget"));
    m.jobs = static_cast<std::size_t>(root.get_number("jobs"));
    m.filter = root.get_string("filter");
    m.total_wall_seconds = root.get_number("total_wall_seconds");
    if (const JsonValue* counters = root.find("counters")) {
      m.theorem_checks =
          static_cast<std::uint64_t>(counters->get_number("theorem_checks"));
      m.bound_violations =
          static_cast<std::uint64_t>(counters->get_number("bound_violations"));
      m.certify_cache_hits =
          static_cast<std::uint64_t>(counters->get_number("certify_cache_hits"));
      m.certify_cache_misses =
          static_cast<std::uint64_t>(counters->get_number("certify_cache_misses"));
    }
    if (const JsonValue* sampler = root.find("sampler")) {
      m.sampler_path = sampler->get_string("path");
      m.sampler_period_ms =
          static_cast<std::uint64_t>(sampler->get_number("period_ms"));
      m.sampler_samples =
          static_cast<std::uint64_t>(sampler->get_number("samples"));
    }
    if (const JsonValue* artifacts = root.find("artifacts")) {
      for (const JsonValue& v : artifacts->as_array()) {
        ManifestEntry e;
        e.name = v.get_string("name");
        e.kind = v.get_string("kind");
        e.input_hash = v.get_string("input_hash");
        e.status = v.get_string("status");
        e.wall_seconds = v.get_number("wall_seconds");
        e.checks = static_cast<std::uint64_t>(v.get_number("checks"));
        e.violations = static_cast<std::uint64_t>(v.get_number("violations"));
        if (const JsonValue* outputs = v.find("outputs")) {
          for (const JsonValue& o : outputs->as_array()) {
            e.outputs.push_back(o.as_string());
          }
        }
        m.entries.push_back(std::move(e));
      }
    }
    return m;
  } catch (const std::exception&) {
    return std::nullopt;  // stale/corrupt manifests just disable skipping
  }
}

namespace {

std::string trim(std::string s) {
  while (!s.empty() && (s.back() == '\n' || s.back() == '\r' || s.back() == ' ')) {
    s.pop_back();
  }
  return s;
}

std::string read_first_line(const fs::path& path) {
  std::ifstream in(path);
  if (!in) return "";
  std::string line;
  std::getline(in, line);
  return trim(std::move(line));
}

}  // namespace

std::string read_git_sha(const std::string& start_dir) {
  std::error_code ec;
  fs::path dir = fs::absolute(start_dir, ec);
  if (ec) return "unknown";
  while (true) {
    const fs::path git_dir = dir / ".git";
    if (fs::exists(git_dir, ec) && !ec) {
      const std::string head = read_first_line(git_dir / "HEAD");
      if (head.rfind("ref: ", 0) != 0) {
        return head.empty() ? "unknown" : head;  // detached HEAD
      }
      const std::string ref = head.substr(5);
      const std::string direct = read_first_line(git_dir / ref);
      if (!direct.empty()) return direct;
      // Packed ref: lines of "<40-hex sha> <refname>".
      std::ifstream packed(git_dir / "packed-refs");
      std::string line;
      while (std::getline(packed, line)) {
        line = trim(std::move(line));
        if (line.size() == ref.size() + 41 && line[40] == ' ' &&
            line.compare(41, ref.size(), ref) == 0) {
          return line.substr(0, 40);
        }
      }
      return "unknown";
    }
    const fs::path parent = dir.parent_path();
    if (parent == dir) return "unknown";
    dir = parent;
  }
}

}  // namespace rdp::repro
