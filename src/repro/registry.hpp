// The registry of paper artifacts: every table, figure, and theorem
// validation of "Replicated Data Placement for Uncertain Scheduling",
// each reproducible in isolation (`rdp_cli repro --filter=NAME`) or as a
// set. docs/REPRODUCING.md is the human index of this list.
#pragma once

#include <vector>

#include "repro/artifact.hpp"

namespace rdp::repro {

/// All registered artifacts, in RESULTS.md order (tables, then figures,
/// then theorem sweeps). The vector is built once and cached.
[[nodiscard]] const std::vector<Artifact>& paper_artifacts();

/// The subset matching a comma-separated filter expression (each term
/// matches name substrings, tags, or kind names; empty selects all).
[[nodiscard]] std::vector<const Artifact*> select_artifacts(
    const std::vector<Artifact>& all, const std::string& filter);

}  // namespace rdp::repro
