#include "repro/pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "exact/certify.hpp"
#include "io/json.hpp"
#include "io/table.hpp"
#include "obs/hooks.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "parallel/thread_pool.hpp"
#include "repro/artifact.hpp"
#include "repro/registry.hpp"

namespace rdp::repro {

namespace fs = std::filesystem;

namespace {

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("repro: cannot read " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const fs::path& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("repro: cannot open " + path.string());
  out << content;
  if (!out) throw std::runtime_error("repro: write failed for " + path.string());
}

std::string checks_to_json(const std::vector<TheoremCheck>& checks) {
  JsonArray array;
  for (const TheoremCheck& c : checks) {
    JsonObject obj;
    obj["label"] = c.label;
    obj["measured"] = c.measured;
    obj["bound"] = c.bound;
    obj["kind"] = c.kind == TheoremCheck::Kind::kUpperBound ? "upper_bound"
                                                            : "lower_bound";
    obj["tolerance"] = c.tolerance;
    obj["pass"] = c.pass();
    array.emplace_back(std::move(obj));
  }
  return JsonValue(std::move(array)).dump(2) + "\n";
}

std::string checks_to_markdown(const std::vector<TheoremCheck>& checks) {
  if (checks.empty()) return "";
  TextTable table({"check", "measured", "bound", "direction", "status"});
  for (const TheoremCheck& c : checks) {
    table.add_row({c.label, fmt(c.measured), fmt(c.bound),
                   c.kind == TheoremCheck::Kind::kUpperBound ? "<=" : ">=",
                   c.pass() ? "PASS" : "**FAIL**"});
  }
  return "**Theorem checks:**\n\n" + table.render_markdown() + "\n";
}

/// The full RESULTS.md section of one artifact, cached next to its data
/// so cached artifacts can be re-assembled without recomputing.
std::string render_fragment(const Artifact& artifact, const ArtifactResult& result) {
  std::ostringstream md;
  md << "## " << artifact.title << "\n\n"
     << "*Reproduces " << artifact.paper_ref << " (artifact `" << artifact.name
     << "`).* " << artifact.description << "\n\n"
     << result.markdown;
  md << checks_to_markdown(result.checks);
  return md.str();
}

std::string kind_heading(ArtifactKind kind) {
  switch (kind) {
    case ArtifactKind::kTable: return "# Tables";
    case ArtifactKind::kFigure: return "# Figures";
    case ArtifactKind::kTheorem: return "# Theorem validation";
  }
  return "#";
}

/// Replaces every occurrence of kArtifactsToken with `replacement`.
std::string resolve_links(std::string fragment, const std::string& replacement) {
  const std::string token = kArtifactsToken;
  std::size_t pos = 0;
  while ((pos = fragment.find(token, pos)) != std::string::npos) {
    fragment.replace(pos, token.size(), replacement);
    pos += replacement.size();
  }
  return fragment;
}

}  // namespace

ReproSummary run_repro(const ReproOptions& options) {
  const auto run_start = std::chrono::steady_clock::now();
  const fs::path out_root(options.out_dir);
  fs::create_directories(out_root);

  const std::vector<Artifact>& all = paper_artifacts();
  const std::vector<const Artifact*> selected =
      select_artifacts(all, options.filter);
  if (selected.empty()) {
    throw std::invalid_argument("repro: filter '" + options.filter +
                                "' matches no artifact");
  }

  const fs::path manifest_path = out_root / "manifest.json";
  const std::optional<Manifest> previous = load_manifest(manifest_path.string());

  // One engine + pool shared across artifacts: the certify cache carries
  // over (theorem sweeps re-solve instances the tables already certified).
  CertifyEngine engine(1 << 15);
  ThreadPool pool(options.jobs);

  // Count checks/violations into the installed registry if the caller
  // provided one (rdp_cli --metrics-out), else into a local scope.
  obs::MetricsRegistry local_registry;
  std::optional<obs::ObservabilityScope> scope;
  if (obs::metrics() == nullptr) scope.emplace(&local_registry, nullptr);
  obs::MetricsRegistry& registry = *obs::metrics();

  ReproSummary summary;
  summary.selected = selected.size();
  summary.manifest_path = manifest_path.string();

  Manifest manifest;
  manifest.git_sha = read_git_sha(options.out_dir);
  manifest.seed = options.seed;
  manifest.node_budget = options.node_budget;
  manifest.jobs = pool.num_threads();
  manifest.filter = options.filter;

  ArtifactContext ctx;
  ctx.seed = options.seed;
  ctx.node_budget = options.node_budget;
  ctx.engine = &engine;
  ctx.pool = &pool;

  for (const Artifact& artifact : all) {
    const bool is_selected =
        std::find(selected.begin(), selected.end(), &artifact) != selected.end();
    const ManifestEntry* prev_entry =
        previous ? previous->find(artifact.name) : nullptr;

    if (!is_selected) {
      // Not part of this run: carry the previous record forward unchanged
      // so filtered runs don't erase full-run provenance.
      if (prev_entry != nullptr) manifest.entries.push_back(*prev_entry);
      continue;
    }

    const std::uint64_t hash =
        artifact_input_hash(artifact, options.seed, options.node_budget);
    const std::string hash_hex = hash_to_hex(hash);
    const fs::path dir = out_root / artifact.name;

    // Skip when provenance matches and every recorded output still exists.
    bool cached = !options.force && prev_entry != nullptr &&
                  prev_entry->input_hash == hash_hex &&
                  fs::exists(dir / "fragment.md");
    if (cached) {
      for (const std::string& rel : prev_entry->outputs) {
        if (!fs::exists(out_root / rel)) {
          cached = false;
          break;
        }
      }
    }
    if (cached) {
      ManifestEntry entry = *prev_entry;
      entry.status = "cached";
      entry.wall_seconds = 0;
      manifest.entries.push_back(std::move(entry));
      ++summary.cached;
      if (options.log) {
        *options.log << "[repro] cached    " << artifact.name << "\n";
      }
      continue;
    }

    if (options.log) {
      *options.log << "[repro] running   " << artifact.name << " ..." << std::flush;
    }
    const auto start = std::chrono::steady_clock::now();
    const ArtifactResult result = artifact.run(ctx);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();

    fs::create_directories(dir);
    ManifestEntry entry;
    entry.name = artifact.name;
    entry.kind = to_string(artifact.kind);
    entry.input_hash = hash_hex;
    entry.status = "generated";
    entry.wall_seconds = wall;

    const auto emit = [&](const std::string& filename, const std::string& content) {
      write_file(dir / filename, content);
      entry.outputs.push_back(artifact.name + "/" + filename);
    };
    emit(artifact.name + ".json", result.report.to_json() + "\n");
    {
      std::ostringstream csv;
      result.report.write_csv(csv);
      emit(artifact.name + ".csv", csv.str());
    }
    for (const ArtifactFile& file : result.extra_files) {
      emit(file.filename, file.content);
    }
    emit("checks.json", checks_to_json(result.checks));
    emit("fragment.md", render_fragment(artifact, result));

    std::uint64_t violations = 0;
    for (const TheoremCheck& check : result.checks) {
      if (!check.pass()) ++violations;
    }
    entry.checks = result.checks.size();
    entry.violations = violations;
    registry.counter("repro.theorem_checks").add(entry.checks);
    if (violations > 0) registry.counter("repro.bound_violations").add(violations);
    summary.checks += entry.checks;
    summary.violations += violations;

    manifest.entries.push_back(std::move(entry));
    ++summary.generated;
    if (options.log) {
      *options.log << " done (" << fmt(wall, 2) << "s, "
                   << result.checks.size() << " checks, " << violations
                   << " violations)\n";
    }
  }

  // Run-wide counters: what the obs registry accumulated plus the shared
  // engine's cache statistics.
  const obs::MetricsSnapshot snapshot = registry.snapshot();
  manifest.theorem_checks = snapshot.counter_or("repro.theorem_checks");
  manifest.bound_violations = snapshot.counter_or("repro.bound_violations");
  const CertifyCacheStats cache = engine.cache_stats();
  manifest.certify_cache_hits = cache.hits;
  manifest.certify_cache_misses = cache.misses;
  if (const obs::RunSampler* sampler = obs::sampler()) {
    manifest.sampler_path = sampler->path();
    manifest.sampler_period_ms = sampler->period_ms();
    manifest.sampler_samples = sampler->samples();
  }
  manifest.total_wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - run_start)
          .count();
  manifest.save(manifest_path.string());
  summary.manifest = manifest;

  // RESULTS.md is only assembled when every registered artifact has a
  // fragment (fresh or cached): a filtered run must never truncate the
  // committed document.
  if (!options.results_path.empty()) {
    bool complete = true;
    for (const Artifact& artifact : all) {
      if (!fs::exists(out_root / artifact.name / "fragment.md")) {
        complete = false;
        break;
      }
    }
    if (complete) {
      const fs::path results_path(options.results_path);
      fs::path results_dir = results_path.parent_path();
      if (results_dir.empty()) results_dir = ".";
      fs::create_directories(results_dir);
      std::error_code ec;
      fs::path rel = fs::relative(out_root, results_dir, ec);
      if (ec || rel.empty()) rel = fs::absolute(out_root);
      const std::string artifacts_prefix = rel.generic_string();

      std::ostringstream md;
      md << "<!-- Generated by `rdp_cli repro`. Do not edit: regenerate "
            "with `rdp_cli repro` (see docs/REPRODUCING.md). -->\n\n"
         << "# Reproduced results\n\n"
         << "Every table, figure, and theorem validation of the paper, "
            "regenerated from this repository. Inputs, hashes, and wall "
            "times are recorded in the run's `manifest.json`.\n\n";

      TextTable index({"artifact", "reproduces", "kind", "checks", "status"});
      for (const Artifact& artifact : all) {
        const std::string checks_json =
            read_file(out_root / artifact.name / "checks.json");
        const JsonValue checks = parse_json(checks_json);
        std::size_t total = checks.as_array().size();
        std::size_t failed = 0;
        for (const JsonValue& c : checks.as_array()) {
          if (!c.get_bool("pass", true)) ++failed;
        }
        index.add_row({"`" + artifact.name + "`", artifact.paper_ref,
                       to_string(artifact.kind), std::to_string(total),
                       total == 0 ? "-"
                       : failed == 0 ? "PASS"
                                     : "**FAIL (" + std::to_string(failed) + ")**"});
      }
      md << index.render_markdown() << "\n";

      ArtifactKind current_kind = ArtifactKind::kTable;
      bool first_section = true;
      for (const Artifact& artifact : all) {
        if (first_section || artifact.kind != current_kind) {
          md << kind_heading(artifact.kind) << "\n\n";
          current_kind = artifact.kind;
          first_section = false;
        }
        const std::string fragment =
            read_file(out_root / artifact.name / "fragment.md");
        md << resolve_links(fragment, artifacts_prefix) << "\n";
      }
      write_file(results_path, md.str());
      summary.results_written = true;
      if (options.log) {
        *options.log << "[repro] wrote " << options.results_path << "\n";
      }
    } else if (options.log) {
      *options.log << "[repro] skipped " << options.results_path
                   << " (fragments incomplete; run without --filter to "
                      "generate everything)\n";
    }
  }

  return summary;
}

}  // namespace rdp::repro
