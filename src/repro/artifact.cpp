#include "repro/artifact.hpp"

namespace rdp::repro {

std::string to_string(ArtifactKind kind) {
  switch (kind) {
    case ArtifactKind::kTable: return "table";
    case ArtifactKind::kFigure: return "figure";
    case ArtifactKind::kTheorem: return "theorem";
  }
  return "?";
}

bool Artifact::has_tag(const std::string& tag) const {
  for (const std::string& t : tags) {
    if (t == tag) return true;
  }
  return false;
}

bool Artifact::matches(const std::string& pattern) const {
  if (pattern.empty()) return true;
  if (name.find(pattern) != std::string::npos) return true;
  if (has_tag(pattern)) return true;
  return to_string(kind) == pattern;
}

std::uint64_t fnv1a(const std::string& bytes) noexcept {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

std::uint64_t artifact_input_hash(const Artifact& artifact, std::uint64_t seed,
                                  std::uint64_t node_budget) {
  std::string blob = kRecipeVersion;
  blob += '\0';
  blob += artifact.name;
  blob += '\0';
  for (const auto& [k, v] : artifact.params) {
    blob += k;
    blob += '=';
    blob += v;
    blob += '\0';
  }
  blob += "seed=" + std::to_string(seed);
  blob += '\0';
  blob += "node_budget=" + std::to_string(node_budget);
  return fnv1a(blob);
}

}  // namespace rdp::repro
