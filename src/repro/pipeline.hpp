// The reproduction pipeline driver (`rdp_cli repro`): runs every
// registered paper artifact through one shared CertifyEngine + ThreadPool,
// emits each artifact's files under a deterministic layout,
//
//   <out>/<artifact-name>/<artifact-name>.json   machine-readable report
//   <out>/<artifact-name>/<artifact-name>.csv    the same series as CSV
//   <out>/<artifact-name>/*.svg                  figures
//   <out>/<artifact-name>/checks.json            theorem checks, PASS/FAIL
//   <out>/<artifact-name>/fragment.md            RESULTS.md section body
//   <out>/manifest.json                          provenance (repro/manifest.hpp)
//
// and assembles docs/RESULTS.md from the fragments. Incremental: an
// artifact whose input hash matches the previous manifest and whose
// output files still exist is skipped ("cached"); --force regenerates.
//
// Determinism: artifact outputs (reports, fragments, figures) contain no
// timestamps, git shas, or thread counts, so two runs with the same seed
// are byte-identical even across different --jobs values. Run-varying
// provenance (wall times, jobs, sha) lives only in manifest.json.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "repro/manifest.hpp"

namespace rdp::repro {

struct ReproOptions {
  std::string out_dir = "artifacts";          ///< artifact tree root
  std::string results_path = "docs/RESULTS.md";  ///< "" = skip RESULTS.md
  std::string filter;        ///< comma-separated terms; "" = everything
  std::size_t jobs = 0;      ///< worker threads (0 = hardware concurrency)
  std::uint64_t seed = 1;
  std::uint64_t node_budget = 400'000;  ///< branch-and-bound budget per solve
  bool force = false;        ///< regenerate even when hashes match
  std::ostream* log = nullptr;  ///< per-artifact progress lines (may be null)
};

struct ReproSummary {
  std::size_t selected = 0;
  std::size_t generated = 0;
  std::size_t cached = 0;
  std::uint64_t checks = 0;      ///< theorem checks evaluated (this run)
  std::uint64_t violations = 0;  ///< failed checks (this run)
  bool results_written = false;  ///< false when fragments were incomplete
  std::string manifest_path;
  Manifest manifest;             ///< what was saved to manifest_path
};

/// Runs the pipeline. Throws std::invalid_argument when the filter
/// matches nothing, std::runtime_error on I/O failure. Theorem-check
/// violations do NOT throw; they are counted (summary + manifest +
/// metrics counter "repro.bound_violations") and rendered as FAIL.
ReproSummary run_repro(const ReproOptions& options);

}  // namespace rdp::repro
