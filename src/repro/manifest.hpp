// The provenance manifest of a repro run: which artifact versions were
// produced, from which inputs (hash), at which git revision, and what the
// theorem-validation counters said. manifest.json is both a record (what
// exactly produced these files?) and the incremental-skip index (the next
// run reuses any artifact whose input hash is unchanged and whose output
// files still exist).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace rdp::repro {

/// Per-artifact provenance. `input_hash` is artifact_input_hash() printed
/// as 16 hex digits (strings survive the JSON round-trip exactly;
/// doubles would not).
struct ManifestEntry {
  std::string name;
  std::string kind;                   ///< "table" | "figure" | "theorem"
  std::string input_hash;             ///< 16 hex digits
  std::string status;                 ///< "generated" | "cached"
  double wall_seconds = 0;            ///< 0 when cached
  std::vector<std::string> outputs;   ///< paths relative to the out dir
  std::uint64_t checks = 0;           ///< theorem checks evaluated
  std::uint64_t violations = 0;       ///< checks that FAILED
};

struct Manifest {
  int schema_version = 1;
  std::string git_sha;        ///< "unknown" outside a git checkout
  std::uint64_t seed = 0;
  std::uint64_t node_budget = 0;
  std::size_t jobs = 0;       ///< worker threads the run used
  std::string filter;         ///< the --filter argument ("" = everything)
  std::vector<ManifestEntry> entries;
  /// Selected run-wide counters (from the obs::MetricsRegistry installed
  /// for the run + the certify engine's cache stats).
  std::uint64_t theorem_checks = 0;
  std::uint64_t bound_violations = 0;
  std::uint64_t certify_cache_hits = 0;
  std::uint64_t certify_cache_misses = 0;
  double total_wall_seconds = 0;
  /// Time-series sampler provenance (obs::RunSampler active during the
  /// run). Empty path = no sampler; then the other two fields are 0 and
  /// the "sampler" object is omitted from the JSON, keeping unsampled
  /// manifests byte-identical to the pre-sampler format.
  std::string sampler_path;
  std::uint64_t sampler_period_ms = 0;
  std::uint64_t sampler_samples = 0;   ///< samples taken when the manifest was written

  [[nodiscard]] const ManifestEntry* find(const std::string& name) const;

  [[nodiscard]] std::string to_json(int indent = 2) const;
  void save(const std::string& path) const;
};

/// Formats a 64-bit hash as the manifest's 16-hex-digit string.
[[nodiscard]] std::string hash_to_hex(std::uint64_t hash);

/// Loads a previously written manifest. Returns nullopt when the file is
/// missing, unparseable, or of a different schema version -- all of which
/// simply disable incremental skipping.
[[nodiscard]] std::optional<Manifest> load_manifest(const std::string& path);

/// Best-effort HEAD commit sha: walks up from `start_dir` to the first
/// `.git` and resolves HEAD (symbolic refs, then packed-refs). Returns
/// "unknown" when anything is missing -- never throws.
[[nodiscard]] std::string read_git_sha(const std::string& start_dir = ".");

}  // namespace rdp::repro
