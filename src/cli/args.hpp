// Tiny flag parser for the bench/example binaries: --key=value and
// --key value forms, with typed getters and a usage dump.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rdp {

class Args {
 public:
  /// Parses argv. Unknown positional arguments are kept in positionals().
  /// Throws std::invalid_argument on a malformed flag ("--" alone).
  Args(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;

  /// Typed getters with defaults; throw std::invalid_argument when the
  /// value cannot be parsed.
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const;
  [[nodiscard]] double get(const std::string& key, double fallback) const;
  [[nodiscard]] std::int64_t get(const std::string& key, std::int64_t fallback) const;
  [[nodiscard]] bool get(const std::string& key, bool fallback) const;

  [[nodiscard]] const std::vector<std::string>& positionals() const noexcept {
    return positionals_;
  }
  [[nodiscard]] const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positionals_;
};

}  // namespace rdp
