#include "cli/args.hpp"

#include <stdexcept>

namespace rdp {

Args::Args(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      positionals_.push_back(std::move(token));
      continue;
    }
    token.erase(0, 2);
    if (token.empty()) {
      throw std::invalid_argument("Args: bare '--' is not a flag");
    }
    const std::size_t eq = token.find('=');
    if (eq != std::string::npos) {
      flags_[token.substr(0, eq)] = token.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[token] = argv[++i];
    } else {
      flags_[token] = "true";  // boolean switch
    }
  }
}

bool Args::has(const std::string& key) const { return flags_.count(key) > 0; }

std::string Args::get(const std::string& key, const std::string& fallback) const {
  const auto it = flags_.find(key);
  return it == flags_.end() ? fallback : it->second;
}

double Args::get(const std::string& key, double fallback) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("Args: flag --" + key + " expects a number, got '" +
                                it->second + "'");
  }
}

std::int64_t Args::get(const std::string& key, std::int64_t fallback) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("Args: flag --" + key + " expects an integer, got '" +
                                it->second + "'");
  }
}

bool Args::get(const std::string& key, bool fallback) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::invalid_argument("Args: flag --" + key + " expects a boolean, got '" + v +
                              "'");
}

}  // namespace rdp
