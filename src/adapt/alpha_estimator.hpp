// Online alpha estimation from completed-task observations. The paper
// treats the uncertainty factor alpha as a known input; in a running
// system it is neither known nor constant. This layer closes the loop:
// every finished task yields one (estimate, actual) pair, tasks are
// bucketed into estimate-magnitude classes (small jobs routinely have a
// different error profile than big ones), and each class keeps streaming
// moments of log(actual / estimate) through stats/welford. The running
// per-class estimate
//
//   alpha_hat = exp(|mean| + z * stddev)        (clamped to [1, cap])
//
// is the multiplicative band that covers the bulk of the observed log-
// ratio distribution -- a quantile-flavoured alternative to the batch
// fitters in perturb/alpha_fit that needs O(classes) memory and O(1)
// update time, so it can ride inside the streaming dispatcher.
#pragma once

#include <cstddef>
#include <vector>

#include "core/types.hpp"
#include "stats/welford.hpp"

namespace rdp {

class Instance;
struct Realization;

/// Buckets tasks into estimate-magnitude classes by quantiles of the
/// estimates it was built from. Class 0 holds the smallest estimates.
/// Deterministic in the instance; an estimator and the placement that
/// consumes it must share one classifier so "class c" means the same
/// tasks on both sides.
class TaskClassifier {
 public:
  /// Single-class classifier (every task maps to class 0).
  TaskClassifier() = default;

  /// Quantile boundaries from the instance's estimates. `num_classes`
  /// must be >= 1; duplicate boundaries (heavily tied estimates) simply
  /// leave some classes empty.
  TaskClassifier(const Instance& instance, std::size_t num_classes);

  [[nodiscard]] std::size_t num_classes() const noexcept {
    return boundaries_.size() + 1;
  }

  /// Class of an estimate: the number of boundaries strictly below it.
  [[nodiscard]] std::size_t class_of(Time estimate) const noexcept;

 private:
  std::vector<Time> boundaries_;  ///< ascending class upper edges
};

struct AlphaEstimatorOptions {
  std::size_t num_classes = 4;
  /// Below this many observations a class answers with the prior alpha
  /// (the instance's declared band) instead of its own noisy moments.
  std::size_t min_samples = 8;
  /// Dispersion multiplier: how many stddevs of log-ratio the band must
  /// cover. 2 covers ~95% of a roughly normal log-ratio distribution.
  double z = 2.0;
  /// Hard ceiling on the estimate (a single wild outlier must not push
  /// the band, and with it the replication degree, to infinity).
  double alpha_cap = 16.0;
};

/// Streaming per-class alpha estimator. Feed it completed tasks with
/// observe() / observe_run(); read the running band with alpha_hat().
/// Not thread-safe; each serving loop owns one.
class AlphaEstimator {
 public:
  explicit AlphaEstimator(AlphaEstimatorOptions options = {});

  /// One completed task. Throws std::invalid_argument unless both times
  /// are positive and the class is in range.
  void observe(std::size_t task_class, Time estimate, Time actual);

  /// Every task of a finished run at once (the offline-dispatch feed).
  void observe_run(const TaskClassifier& classifier, const Instance& instance,
                   const Realization& actual);

  /// Running band of one class; `prior_alpha` answers for cold classes.
  [[nodiscard]] double alpha_hat(std::size_t task_class, double prior_alpha) const;

  /// Band of all classes merged (the drift signal for re-planning).
  [[nodiscard]] double alpha_hat_global(double prior_alpha) const;

  [[nodiscard]] std::size_t num_classes() const noexcept { return classes_.size(); }
  [[nodiscard]] std::size_t samples() const noexcept;
  [[nodiscard]] std::size_t samples(std::size_t task_class) const;
  [[nodiscard]] const AlphaEstimatorOptions& options() const noexcept {
    return options_;
  }

  /// Raw per-class moments (for tests and reports).
  [[nodiscard]] const Welford& class_moments(std::size_t task_class) const;

  void reset();

 private:
  [[nodiscard]] double from_moments(const Welford& moments,
                                    double prior_alpha) const;

  AlphaEstimatorOptions options_;
  std::vector<Welford> classes_;  ///< moments of log(actual / estimate)
};

/// The smallest alpha whose band covers every task of a realization:
/// max_j max(actual_j / estimate_j, estimate_j / actual_j), floored at 1.
/// This is the alpha the theorem bounds must be evaluated at when judging
/// a realized schedule (see check/fuzz.cpp's adaptive cross-check).
[[nodiscard]] double realized_alpha(const Instance& instance,
                                    const Realization& actual);

}  // namespace rdp
