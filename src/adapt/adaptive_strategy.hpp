// Adaptive replication degree: choose |M_j| per task class from the
// running alpha estimate instead of fixing one k per strategy. The
// guarantee curve r -> ratio_for_replication_degree(alpha, m, r) is
// minimized by full replication for every alpha (Theorem 3 + Graham
// dominates), but replication is what costs memory -- so the selection
// rule takes the *smallest* feasible degree whose bound undercuts the
// next degree's bound within a slack band:
//
//   pick min { r : bound(r) <= (1 + bound_slack) * min_r' bound(r') }
//
// At small alpha_hat the degree-1 bound sits inside the band (cheap
// placement suffices); as alpha_hat grows the low-degree bounds blow up
// quadratically and fall out, pushing the degree toward m. A hysteresis
// band on top keeps the degree from flapping when alpha_hat hovers near
// a crossover (the BOINC adaptive-replication scheduler shape).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "adapt/alpha_estimator.hpp"
#include "algo/strategy.hpp"
#include "core/placement.hpp"
#include "core/types.hpp"

namespace rdp {

struct AdaptiveGroupOptions {
  AlphaEstimatorOptions estimator;
  /// Guarantee degradation accepted in exchange for fewer replicas:
  /// a degree qualifies when its bound is within (1 + bound_slack) of
  /// the best achievable bound at alpha_hat.
  double bound_slack = 0.35;
  /// Keep the previous degree unless the newly selected one improves its
  /// bound by more than this fraction (anti-flapping band).
  double hysteresis = 0.10;
};

/// The selection rule above. `current_degree` (0 = none) enables the
/// hysteresis comparison; throws std::invalid_argument on alpha_hat < 1
/// or m == 0.
[[nodiscard]] MachineId select_replication_degree(double alpha_hat, MachineId m,
                                                  MachineId current_degree = 0,
                                                  double bound_slack = 0.35,
                                                  double hysteresis = 0.0);

/// The guarantee a mixed-degree placement promises at a given alpha: the
/// loosest (max) per-degree theorem bound over the degrees it uses.
/// Every degree must divide m.
[[nodiscard]] double adaptive_theorem_bound(const Placement& placement,
                                            double alpha, MachineId m);

/// Block List Scheduling with per-class degrees: machines are cut into
/// m / r_c contiguous blocks for each class, every task goes to the
/// least-loaded block of its class (load = base_load + estimate / r
/// spread over block members, ties to the lowest block). `base_load`
/// (optional, size m) seeds the per-machine load -- the serving loop
/// passes current machine ready-times so placement sees the backlog.
[[nodiscard]] Placement place_adaptive_blocks(
    const Instance& instance, const TaskClassifier& classifier,
    std::span<const MachineId> class_degrees,
    std::span<const double> base_load = {});

/// Phase-1 policy: classify tasks, pick a degree per class from the
/// shared estimator (hysteresis state is kept across place() calls), and
/// assign replica blocks with place_adaptive_blocks. Cold classes fall
/// back to the instance's declared alpha, so an unfed policy behaves
/// like the best fixed degree for the declared band. Observes the
/// `adapt.alpha_hat` / `adapt.k_chosen` histograms when obs metrics are
/// installed. Placement is not thread-safe (the hysteresis memory is
/// mutable state); dispatchers sharing the resulting Placement are.
class AdaptiveGroupPlacement final : public PlacementPolicy {
 public:
  AdaptiveGroupPlacement(std::shared_ptr<AlphaEstimator> estimator,
                         AdaptiveGroupOptions options);

  [[nodiscard]] Placement place(const Instance& instance) const override;
  [[nodiscard]] std::string name() const override { return "adaptive-group"; }

  /// Degrees the policy would pick right now, one per class.
  [[nodiscard]] std::vector<MachineId> class_degrees(const Instance& instance) const;

  [[nodiscard]] AlphaEstimator& estimator() noexcept { return *estimator_; }
  [[nodiscard]] const AlphaEstimator& estimator() const noexcept {
    return *estimator_;
  }

 private:
  std::shared_ptr<AlphaEstimator> estimator_;
  AdaptiveGroupOptions options_;
  mutable std::vector<MachineId> last_degrees_;  ///< hysteresis memory
  mutable MachineId last_machines_ = 0;
};

/// Adaptive strategy around a caller-owned estimator (feed it between
/// runs with AlphaEstimator::observe_run to close the loop).
[[nodiscard]] TwoPhaseStrategy make_adaptive_group(
    std::shared_ptr<AlphaEstimator> estimator, AdaptiveGroupOptions options = {});

/// Self-contained variant with a fresh cold estimator (spec
/// "adaptive-group"): until fed, it places by the declared alpha.
[[nodiscard]] TwoPhaseStrategy make_adaptive_group(AdaptiveGroupOptions options = {});

}  // namespace rdp
