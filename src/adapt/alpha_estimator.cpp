#include "adapt/alpha_estimator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/instance.hpp"
#include "core/realization.hpp"

namespace rdp {

TaskClassifier::TaskClassifier(const Instance& instance, std::size_t num_classes) {
  if (num_classes == 0) {
    throw std::invalid_argument("TaskClassifier: need at least one class");
  }
  if (num_classes == 1 || instance.num_tasks() == 0) return;
  std::vector<Time> sorted = instance.estimates();
  std::sort(sorted.begin(), sorted.end());
  boundaries_.reserve(num_classes - 1);
  for (std::size_t c = 1; c < num_classes; ++c) {
    // Upper edge of class c-1: the c/num_classes quantile estimate.
    const std::size_t index =
        std::min(sorted.size() - 1, c * sorted.size() / num_classes);
    boundaries_.push_back(sorted[index]);
  }
}

std::size_t TaskClassifier::class_of(Time estimate) const noexcept {
  std::size_t c = 0;
  while (c < boundaries_.size() && estimate > boundaries_[c]) ++c;
  return c;
}

AlphaEstimator::AlphaEstimator(AlphaEstimatorOptions options)
    : options_(options) {
  if (options_.num_classes == 0) {
    throw std::invalid_argument("AlphaEstimator: need at least one class");
  }
  if (!(options_.z >= 0.0) || !(options_.alpha_cap >= 1.0)) {
    throw std::invalid_argument(
        "AlphaEstimator: z must be >= 0 and alpha_cap >= 1");
  }
  classes_.resize(options_.num_classes);
}

void AlphaEstimator::observe(std::size_t task_class, Time estimate, Time actual) {
  if (task_class >= classes_.size()) {
    throw std::invalid_argument("AlphaEstimator: task class out of range");
  }
  if (!(estimate > 0.0) || !(actual > 0.0)) {
    throw std::invalid_argument("AlphaEstimator: times must be positive");
  }
  classes_[task_class].add(std::log(actual / estimate));
}

void AlphaEstimator::observe_run(const TaskClassifier& classifier,
                                 const Instance& instance,
                                 const Realization& actual) {
  if (actual.actual.size() != instance.num_tasks()) {
    throw std::invalid_argument(
        "AlphaEstimator: realization does not match the instance");
  }
  for (TaskId j = 0; j < instance.num_tasks(); ++j) {
    observe(classifier.class_of(instance.estimate(j)), instance.estimate(j),
            actual.actual[j]);
  }
}

double AlphaEstimator::from_moments(const Welford& moments,
                                    double prior_alpha) const {
  if (moments.count() < options_.min_samples) {
    return std::clamp(prior_alpha, 1.0, options_.alpha_cap);
  }
  // The band must cover both tails of the log-ratio distribution, so it
  // extends |mean| + z * stddev on each side of zero.
  const double spread = std::abs(moments.mean()) + options_.z * moments.stddev();
  return std::clamp(std::exp(spread), 1.0, options_.alpha_cap);
}

double AlphaEstimator::alpha_hat(std::size_t task_class,
                                 double prior_alpha) const {
  if (task_class >= classes_.size()) {
    throw std::invalid_argument("AlphaEstimator: task class out of range");
  }
  return from_moments(classes_[task_class], prior_alpha);
}

double AlphaEstimator::alpha_hat_global(double prior_alpha) const {
  Welford merged;
  for (const Welford& w : classes_) merged.merge(w);
  return from_moments(merged, prior_alpha);
}

std::size_t AlphaEstimator::samples() const noexcept {
  std::size_t total = 0;
  for (const Welford& w : classes_) total += w.count();
  return total;
}

std::size_t AlphaEstimator::samples(std::size_t task_class) const {
  if (task_class >= classes_.size()) {
    throw std::invalid_argument("AlphaEstimator: task class out of range");
  }
  return classes_[task_class].count();
}

const Welford& AlphaEstimator::class_moments(std::size_t task_class) const {
  if (task_class >= classes_.size()) {
    throw std::invalid_argument("AlphaEstimator: task class out of range");
  }
  return classes_[task_class];
}

void AlphaEstimator::reset() {
  classes_.assign(options_.num_classes, Welford{});
}

double realized_alpha(const Instance& instance, const Realization& actual) {
  if (actual.actual.size() != instance.num_tasks()) {
    throw std::invalid_argument(
        "realized_alpha: realization does not match the instance");
  }
  double alpha = 1.0;
  for (TaskId j = 0; j < instance.num_tasks(); ++j) {
    const double ratio = actual.actual[j] / instance.estimate(j);
    if (!(ratio > 0.0)) {
      throw std::invalid_argument("realized_alpha: times must be positive");
    }
    alpha = std::max({alpha, ratio, 1.0 / ratio});
  }
  return alpha;
}

}  // namespace rdp
