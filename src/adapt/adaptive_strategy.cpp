#include "adapt/adaptive_strategy.hpp"

#include <algorithm>
#include <limits>
#include <set>
#include <stdexcept>

#include "bounds/replication_bounds.hpp"
#include "core/instance.hpp"
#include "obs/hooks.hpp"
#include "obs/metrics.hpp"

namespace rdp {

MachineId select_replication_degree(double alpha_hat, MachineId m,
                                    MachineId current_degree, double bound_slack,
                                    double hysteresis) {
  if (!(alpha_hat >= 1.0)) {
    throw std::invalid_argument(
        "select_replication_degree: alpha_hat must be >= 1");
  }
  if (m == 0) {
    throw std::invalid_argument("select_replication_degree: m must be >= 1");
  }
  if (!(bound_slack >= 0.0) || !(hysteresis >= 0.0)) {
    throw std::invalid_argument(
        "select_replication_degree: slack/hysteresis must be >= 0");
  }
  const std::vector<MachineId> degrees = feasible_replication_degrees(m);
  double best = std::numeric_limits<double>::infinity();
  for (MachineId r : degrees) {
    best = std::min(best, ratio_for_replication_degree(alpha_hat, m, r));
  }
  MachineId pick = m;
  for (MachineId r : degrees) {
    if (ratio_for_replication_degree(alpha_hat, m, r) <=
        (1.0 + bound_slack) * best) {
      pick = r;
      break;
    }
  }
  if (current_degree != 0 && current_degree <= m && m % current_degree == 0 &&
      current_degree != pick) {
    const double held =
        ratio_for_replication_degree(alpha_hat, m, current_degree);
    const double chosen = ratio_for_replication_degree(alpha_hat, m, pick);
    // Within the hysteresis band the held degree also has to still
    // qualify for the slack band; a degree whose bound has left the band
    // entirely must be dropped no matter how small the improvement.
    if (chosen >= held * (1.0 - hysteresis) &&
        held <= (1.0 + bound_slack) * best) {
      return current_degree;
    }
  }
  return pick;
}

double adaptive_theorem_bound(const Placement& placement, double alpha,
                              MachineId m) {
  if (!(alpha >= 1.0)) {
    throw std::invalid_argument("adaptive_theorem_bound: alpha must be >= 1");
  }
  std::set<std::size_t> degrees;
  for (TaskId j = 0; j < placement.num_tasks(); ++j) {
    degrees.insert(placement.replication_degree(j));
  }
  double bound = 1.0;
  for (std::size_t r : degrees) {
    bound = std::max(bound, ratio_for_replication_degree(
                                alpha, m, static_cast<MachineId>(r)));
  }
  return bound;
}

Placement place_adaptive_blocks(const Instance& instance,
                                const TaskClassifier& classifier,
                                std::span<const MachineId> class_degrees,
                                std::span<const double> base_load) {
  const MachineId m = instance.num_machines();
  if (class_degrees.size() != classifier.num_classes()) {
    throw std::invalid_argument(
        "place_adaptive_blocks: one degree per class required");
  }
  for (MachineId r : class_degrees) {
    if (r == 0 || r > m || m % r != 0) {
      throw std::invalid_argument(
          "place_adaptive_blocks: degrees must divide the machine count");
    }
  }
  if (!base_load.empty() && base_load.size() != m) {
    throw std::invalid_argument(
        "place_adaptive_blocks: base_load must cover every machine");
  }
  std::vector<double> load(m, 0.0);
  if (!base_load.empty()) load.assign(base_load.begin(), base_load.end());

  const std::size_t n = instance.num_tasks();
  std::vector<std::vector<MachineId>> sets(n);
  for (TaskId j = 0; j < n; ++j) {
    const Time estimate = instance.estimate(j);
    const MachineId r = class_degrees[classifier.class_of(estimate)];
    const MachineId blocks = m / r;
    MachineId best_block = 0;
    double best_load = std::numeric_limits<double>::infinity();
    for (MachineId b = 0; b < blocks; ++b) {
      double total = 0.0;
      for (MachineId i = b * r; i < (b + 1) * r; ++i) total += load[i];
      if (total < best_load) {
        best_load = total;
        best_block = b;
      }
    }
    sets[j].reserve(r);
    const double share = estimate / static_cast<double>(r);
    for (MachineId i = best_block * r; i < (best_block + 1) * r; ++i) {
      sets[j].push_back(i);
      load[i] += share;
    }
  }
  return Placement(std::move(sets), m);
}

AdaptiveGroupPlacement::AdaptiveGroupPlacement(
    std::shared_ptr<AlphaEstimator> estimator, AdaptiveGroupOptions options)
    : estimator_(std::move(estimator)), options_(options) {
  if (!estimator_) {
    throw std::invalid_argument("AdaptiveGroupPlacement: null estimator");
  }
}

std::vector<MachineId> AdaptiveGroupPlacement::class_degrees(
    const Instance& instance) const {
  const MachineId m = instance.num_machines();
  const std::size_t num_classes = estimator_->num_classes();
  if (last_machines_ != m || last_degrees_.size() != num_classes) {
    last_degrees_.assign(num_classes, 0);
    last_machines_ = m;
  }
  obs::MetricsRegistry* mx = obs::metrics();
  std::vector<MachineId> degrees(num_classes);
  for (std::size_t c = 0; c < num_classes; ++c) {
    const double alpha = estimator_->alpha_hat(c, instance.alpha());
    degrees[c] = select_replication_degree(alpha, m, last_degrees_[c],
                                           options_.bound_slack,
                                           options_.hysteresis);
    if (mx != nullptr) {
      mx->histogram("adapt.alpha_hat").observe(alpha);
      mx->histogram("adapt.k_chosen").observe(static_cast<double>(degrees[c]));
    }
  }
  last_degrees_ = degrees;
  return degrees;
}

Placement AdaptiveGroupPlacement::place(const Instance& instance) const {
  const TaskClassifier classifier(instance, estimator_->num_classes());
  const std::vector<MachineId> degrees = class_degrees(instance);
  return place_adaptive_blocks(instance, classifier, degrees);
}

TwoPhaseStrategy make_adaptive_group(std::shared_ptr<AlphaEstimator> estimator,
                                     AdaptiveGroupOptions options) {
  // LPT dispatch: Theorems 2 and 3 (the degree-1 / degree-m components
  // of the adaptive bound) assume LPT order, and Theorem 4 holds for any
  // list order -- so LPT is the rule under which adaptive_theorem_bound
  // is sound for every degree the policy can pick.
  return TwoPhaseStrategy(
      std::make_shared<AdaptiveGroupPlacement>(std::move(estimator), options),
      PriorityRule::kLongestEstimateFirst, "Adaptive-Group");
}

TwoPhaseStrategy make_adaptive_group(AdaptiveGroupOptions options) {
  return make_adaptive_group(std::make_shared<AlphaEstimator>(options.estimator),
                             options);
}

}  // namespace rdp
