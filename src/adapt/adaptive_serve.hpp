// Adaptive streaming service: the PR 8 serve loop with the estimator in
// the loop. Tasks are admitted in arrival order and cut into placement
// epochs; within an epoch the replica sets are frozen (those tasks are
// "admitted"), and at every epoch boundary the estimator -- fed by the
// tasks that just completed -- may re-place the not-yet-admitted tail:
// the per-class degrees are re-selected whenever the global alpha_hat
// has drifted past a relative threshold since the last planning point.
// Machine ready-times carry across epochs, and the epoch placement seeds
// its block loads with them, so re-planning sees the real backlog.
//
// This is deliberately an admission-epoch approximation (tasks of one
// epoch are fully scheduled before the next epoch is placed) rather than
// a task-by-task re-optimizer: placement stays phase-1-shaped -- replica
// sets never change after admission, matching the paper's model -- and
// the whole run stays deterministic in (instance, arrivals, realization).
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "adapt/adaptive_strategy.hpp"
#include "core/schedule.hpp"
#include "core/types.hpp"

namespace rdp {

class Instance;
struct Realization;

struct AdaptiveServeOptions {
  AdaptiveGroupOptions adapt;
  /// Tasks admitted per placement epoch (the re-planning granularity).
  std::size_t epoch_tasks = 256;
  /// Re-select degrees when |alpha_hat / alpha_planned - 1| exceeds this.
  double drift_threshold = 0.10;
};

/// One epoch's planning record.
struct AdaptiveEpoch {
  std::size_t first_task = 0;    ///< index into the arrival order
  std::size_t tasks = 0;
  double alpha_hat = 1.0;        ///< global estimate when the epoch was placed
  MachineId min_degree = 0;      ///< over the classes
  MachineId max_degree = 0;
  bool replanned = false;        ///< degrees re-selected at this boundary
};

struct AdaptiveServeResult {
  Schedule schedule;             ///< all tasks, original task ids
  std::vector<AdaptiveEpoch> epochs;
  std::size_t replans = 0;       ///< drift-triggered re-placements
  std::size_t peak_backlog = 0;  ///< max over epochs
  Time makespan = 0;
  double final_alpha_hat = 1.0;
};

/// Runs the adaptive serve loop. `arrivals` must hold one finite,
/// non-negative release time per task. When `estimator` is null a fresh
/// one is created (cold start: the first epoch places by the declared
/// alpha); pass a warm estimator to resume from history.
[[nodiscard]] AdaptiveServeResult serve_adaptive(
    const Instance& instance, const Realization& actual,
    std::span<const Time> arrivals, const AdaptiveServeOptions& options = {},
    std::shared_ptr<AlphaEstimator> estimator = nullptr);

}  // namespace rdp
