#include "adapt/adaptive_serve.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "core/instance.hpp"
#include "core/realization.hpp"
#include "obs/hooks.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "serve/streaming_dispatcher.hpp"

namespace rdp {

AdaptiveServeResult serve_adaptive(const Instance& instance,
                                   const Realization& actual,
                                   std::span<const Time> arrivals,
                                   const AdaptiveServeOptions& options,
                                   std::shared_ptr<AlphaEstimator> estimator) {
  const std::size_t n = instance.num_tasks();
  const MachineId m = instance.num_machines();
  if (actual.actual.size() != n || arrivals.size() != n) {
    throw std::invalid_argument(
        "serve_adaptive: realization/arrivals must match the instance");
  }
  if (options.epoch_tasks == 0) {
    throw std::invalid_argument("serve_adaptive: epoch_tasks must be >= 1");
  }
  if (!(options.drift_threshold >= 0.0)) {
    throw std::invalid_argument(
        "serve_adaptive: drift_threshold must be >= 0");
  }
  for (const Time t : arrivals) {
    if (!(t >= 0.0) || !std::isfinite(t)) {
      throw std::invalid_argument(
          "serve_adaptive: arrivals must be finite and non-negative");
    }
  }
  if (!estimator) {
    estimator = std::make_shared<AlphaEstimator>(options.adapt.estimator);
  }

  AdaptiveServeResult result;
  result.schedule.assignment = Assignment(n);
  result.schedule.start.assign(n, 0);
  result.schedule.finish.assign(n, 0);
  if (n == 0) return result;

  // Admission order: by release time, ties by task id (the order the
  // streaming dispatcher itself admits equal-time arrivals).
  std::vector<TaskId> order(n);
  std::iota(order.begin(), order.end(), TaskId{0});
  std::stable_sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
    return arrivals[a] < arrivals[b];
  });

  const TaskClassifier classifier(instance, estimator->num_classes());
  const std::size_t num_classes = estimator->num_classes();
  std::vector<MachineId> degrees(num_classes, 0);
  std::vector<Time> machine_ready(m, 0);
  double alpha_planned = 0.0;  // 0 = never planned
  obs::MetricsRegistry* mx = obs::metrics();

  for (std::size_t begin = 0; begin < n; begin += options.epoch_tasks) {
    const std::size_t count = std::min(options.epoch_tasks, n - begin);
    const double alpha_now = estimator->alpha_hat_global(instance.alpha());
    // alpha_hat as a gauge gives the sampler JSONL a per-epoch time
    // series; the histogram below keeps the whole-run distribution.
    if (mx != nullptr) mx->gauge("adapt.alpha_hat_now").set(alpha_now);

    AdaptiveEpoch epoch;
    epoch.first_task = begin;
    epoch.tasks = count;
    epoch.alpha_hat = alpha_now;
    const bool drifted =
        alpha_planned > 0.0 &&
        std::abs(alpha_now / alpha_planned - 1.0) > options.drift_threshold;
    if (alpha_planned == 0.0 || drifted) {
      for (std::size_t c = 0; c < num_classes; ++c) {
        const double alpha_c = estimator->alpha_hat(c, instance.alpha());
        degrees[c] = select_replication_degree(alpha_c, m, degrees[c],
                                               options.adapt.bound_slack,
                                               options.adapt.hysteresis);
        if (mx != nullptr) {
          mx->histogram("adapt.alpha_hat").observe(alpha_c);
          mx->histogram("adapt.k_chosen")
              .observe(static_cast<double>(degrees[c]));
        }
      }
      if (drifted) {
        epoch.replanned = true;
        ++result.replans;
      }
      alpha_planned = alpha_now;
    }
    epoch.min_degree = *std::min_element(degrees.begin(), degrees.end());
    epoch.max_degree = *std::max_element(degrees.begin(), degrees.end());

    // The epoch's tasks as a sub-instance, absolute times kept.
    std::vector<Task> sub_tasks(count);
    std::vector<Time> sub_arrivals(count);
    Realization sub_actual;
    sub_actual.actual.resize(count);
    for (std::size_t t = 0; t < count; ++t) {
      const TaskId j = order[begin + t];
      sub_tasks[t] = instance.tasks()[j];
      sub_arrivals[t] = arrivals[j];
      sub_actual.actual[t] = actual.actual[j];
    }
    const Instance sub(std::move(sub_tasks), m, instance.alpha());
    const Placement placement =
        place_adaptive_blocks(sub, classifier, degrees, machine_ready);
    std::vector<TaskId> priority(count);
    std::iota(priority.begin(), priority.end(), TaskId{0});

    // Mask the flight recorder during the sub-run: serve_stream would
    // emit the epoch's *local* task ids 0..count-1. The epoch's events
    // are re-emitted below under global ids instead.
    obs::TimelineRecorder* const tl = obs::timeline();
    StreamingDispatchResult served;
    {
      obs::TimelineScope mask(nullptr);
      served = serve_stream(sub, placement, sub_actual, priority, sub_arrivals,
                            machine_ready);
    }
    result.peak_backlog = std::max(result.peak_backlog, served.peak_backlog);
    if (tl != nullptr) {
      const auto block = tl->reserve(3 * count);
      std::size_t cursor = 0;
      for (std::size_t t = 0; t < count && cursor < block.count; ++t, ++cursor) {
        block.when[cursor] = sub_arrivals[t];
        block.task[cursor] = order[begin + t];
        block.machine[cursor] = obs::kTimelineNone;
        block.kind[cursor] =
            static_cast<std::uint8_t>(obs::TimelineEventKind::kArrive);
      }
      for (std::size_t t = 0; t < count && cursor < block.count; ++t, ++cursor) {
        block.when[cursor] = served.schedule.start[t];
        block.task[cursor] = order[begin + t];
        block.machine[cursor] = served.schedule.assignment[t];
        block.kind[cursor] =
            static_cast<std::uint8_t>(obs::TimelineEventKind::kStart);
      }
      for (std::size_t t = 0; t < count && cursor < block.count; ++t, ++cursor) {
        block.when[cursor] = served.schedule.finish[t];
        block.task[cursor] = order[begin + t];
        block.machine[cursor] = served.schedule.assignment[t];
        block.kind[cursor] =
            static_cast<std::uint8_t>(obs::TimelineEventKind::kFinish);
      }
    }

    for (std::size_t t = 0; t < count; ++t) {
      const TaskId j = order[begin + t];
      const MachineId i = served.schedule.assignment[t];
      result.schedule.assignment.machine_of[j] = i;
      result.schedule.start[j] = served.schedule.start[t];
      result.schedule.finish[j] = served.schedule.finish[t];
      if (i != kNoMachine) {
        machine_ready[i] = std::max(machine_ready[i], served.schedule.finish[t]);
      }
      estimator->observe(classifier.class_of(sub.estimate(t)), sub.estimate(t),
                         sub_actual.actual[t]);
    }
    result.epochs.push_back(epoch);
  }

  result.makespan = result.schedule.makespan();
  result.final_alpha_hat = estimator->alpha_hat_global(instance.alpha());
  return result;
}

}  // namespace rdp
