#include "sim/workspace.hpp"

namespace rdp {

void SimWorkspace::begin_run(std::size_t /*num_tasks*/, MachineId num_machines) {
  arena.reset();
  events.reset();
  // Never shrink the outer vector: inner heaps keep their capacity for
  // the next run at this machine count.
  if (machine_heaps.size() < num_machines) machine_heaps.resize(num_machines);
  for (MachineId i = 0; i < num_machines; ++i) machine_heaps[i].clear();
  heaps_in_use_ = num_machines;
  deferred.clear();
  parked.clear();
}

SimWorkspace& thread_workspace() {
  static thread_local SimWorkspace ws;
  return ws;
}

}  // namespace rdp
