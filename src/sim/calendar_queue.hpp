// Bucketed calendar queue -- the O(1)-amortized event queue behind the
// rewritten simulator hot path (replacing the std::priority_queue binary
// heaps in the dispatchers and the generic Simulator).
//
// Events are hashed into time buckets of one "year" width; a pop scans
// the bucket that covers the current simulated instant and only falls
// through to the next bucket when the current one holds no event of the
// current year. With the width tuned to the queue's time spread divided
// by its size, each year holds O(1) events, so push and pop are amortized
// O(1) versus the heap's O(log n).
//
// Storage is a flat slab: kBucketCap event slots per bucket in one
// contiguous array plus a one-byte occupancy count per bucket. A pop's
// year scan walks the count array sequentially and reads one cache-line-
// sized slot group -- no per-bucket vector headers to chase, and no
// sensitivity to how fragmented the heap got before the queue was built.
// The rare year whose population exceeds kBucketCap spills into a small
// binary-heap overflow whose minimum is compared against the calendar's
// candidate on every pop; rebuilds (size doubling/halving, periodic width
// recalibration) fold the overflow back into the slab.
//
// Determinism contract: pops are totally ordered by the `Before`
// comparator, which callers must make a strict total order (the
// dispatchers include their monotone sequence counter as the final
// tie-break, preserving the FIFO-among-equal-times guarantee of the old
// binary heaps bit-for-bit). `Before(a, b)` means "a pops before b" and
// must be consistent with event time: time(a) < time(b) implies
// Before(a, b). Scans never use insertion order -- the minimum per
// `Before` is selected among the events of the current year -- so the
// pop sequence is independent of bucket geometry, spill history, and
// resize history.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/types.hpp"

namespace rdp {

template <typename Event, typename GetTime, typename Before>
class CalendarQueue {
 public:
  explicit CalendarQueue(GetTime get_time = GetTime{}, Before before = Before{})
      : get_time_(std::move(get_time)), before_(std::move(before)) {
    resize_slab(kMinBuckets);
  }

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  void push(Event event) {
    const Time t = get_time_(event);
    assert(t >= 0);
    if (size_ == 0 || t < search_time_) {
      search_time_ = t;  // robustness: rewind, never skip an event
    }
    const std::size_t b = virtual_of(t) & (bucket_count_ - 1);
    if (counts_[b] < kBucketCap) {
      slots_[b * kBucketCap + counts_[b]] = std::move(event);
      ++counts_[b];
    } else {
      overflow_.push_back(std::move(event));
      std::push_heap(overflow_.begin(), overflow_.end(), overflow_after());
    }
    ++size_;
    ++ops_since_rebuild_;
    cached_min_valid_ = false;
    if (size_ > bucket_count_ * 2 && bucket_count_ < kMaxBuckets) {
      rebuild(bucket_count_ * 2);
    } else if (ops_since_rebuild_ > kRecalibrateSlack + 4 * size_) {
      // Periodic width recalibration: a long-lived queue's event horizon
      // slides and stretches (or shrinks), and the width that was right at
      // the last resize degrades into too-full or too-sparse years. Cost
      // is O(size + buckets) amortized over >= 4*size operations.
      rebuild(fitted_buckets());
    }
  }

  /// The next event to pop. Valid until the next push/pop.
  [[nodiscard]] const Event& top() {
    assert(size_ > 0);
    locate_min();
    return min_event();
  }

  Event pop() {
    assert(size_ > 0);
    ++ops_since_rebuild_;
    if (ops_since_rebuild_ > kRecalibrateSlack + 4 * size_) {
      rebuild(fitted_buckets());
    }
    locate_min();
    Event out = std::move(min_event());
    if (min_bucket_ == kOverflowBucket) {
      std::pop_heap(overflow_.begin(), overflow_.end(), overflow_after());
      overflow_.pop_back();
    } else {
      // Order within a bucket is irrelevant (pops select by comparator),
      // so swap-remove keeps removal O(1).
      const std::size_t base = min_bucket_ * kBucketCap;
      const std::size_t last = counts_[min_bucket_] - std::size_t{1};
      slots_[base + min_index_] = std::move(slots_[base + last]);
      counts_[min_bucket_] = static_cast<std::uint8_t>(last);
    }
    --size_;
    search_time_ = get_time_(out);
    cached_min_valid_ = false;
    return out;
  }

  /// Drops every event but keeps slab capacity (workspace reuse).
  void reset() {
    std::fill(counts_.begin(), counts_.end(), std::uint8_t{0});
    overflow_.clear();
    size_ = 0;
    search_time_ = 0;
    inv_width_ = 0;
    ops_since_rebuild_ = 0;
    cached_min_valid_ = false;
  }

 private:
  static constexpr std::size_t kBucketCap = 8;
  static constexpr std::size_t kMinBuckets = 16;
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 20;
  static constexpr std::size_t kRecalibrateSlack = 64;
  static constexpr std::size_t kOverflowBucket = SIZE_MAX;
  static constexpr std::uint64_t kNoYearLimit = UINT64_MAX;

  /// Heap comparator for the overflow: std::push_heap keeps the *largest*
  /// at the front, so "after" ordering puts the Before-minimum there.
  [[nodiscard]] auto overflow_after() const {
    return [this](const Event& a, const Event& b) { return before_(b, a); };
  }

  [[nodiscard]] Event& min_event() {
    return min_bucket_ == kOverflowBucket
               ? overflow_.front()
               : slots_[min_bucket_ * kBucketCap + min_index_];
  }

  /// Virtual (un-wrapped) bucket index of time t. The same computation
  /// feeds placement and the pop-time year filter, so boundary rounding
  /// can never classify an event into one year and search it in another.
  /// Multiplies by the cached reciprocal: this runs once per *scanned*
  /// event on the pop path, and an FP division there dominates the scan.
  [[nodiscard]] std::uint64_t virtual_of(Time t) const noexcept {
    if (inv_width_ <= 0) return 0;
    const double v = t * inv_width_;
    if (v >= 9.0e15) return kNoYearLimit - 1;  // saturate far-future events
    return static_cast<std::uint64_t>(v);
  }

  /// Smallest power-of-two bucket count with count*2 >= size (within
  /// [kMin, kMax]), so periodic rebuilds also shed slab that a since-
  /// drained peak left behind (otherwise every recalibration of a small
  /// queue would still touch the peak-sized arrays).
  [[nodiscard]] std::size_t fitted_buckets() const noexcept {
    std::size_t want = kMinBuckets;
    while (want * 2 < size_ && want < kMaxBuckets) want <<= 1;
    return want;
  }

  void resize_slab(std::size_t bucket_count) {
    bucket_count_ = bucket_count;
    slots_.resize(bucket_count * kBucketCap);
    counts_.assign(bucket_count, 0);
  }

  void rebuild(std::size_t new_bucket_count) {
    scratch_.clear();
    scratch_.reserve(size_);
    for (std::size_t b = 0; b < bucket_count_; ++b) {
      for (std::size_t i = 0; i < counts_[b]; ++i) {
        scratch_.push_back(std::move(slots_[b * kBucketCap + i]));
      }
    }
    for (Event& event : overflow_) scratch_.push_back(std::move(event));
    overflow_.clear();
    if (bucket_count_ != new_bucket_count) {
      resize_slab(new_bucket_count);
    } else {
      std::fill(counts_.begin(), counts_.end(), std::uint8_t{0});
    }
    // Width = the average inter-event gap of the *current* contents (time
    // spread / size), so each year holds O(1) events no matter how the
    // arrival order interleaved times. Estimating from consecutive
    // push-time deltas instead would measure the arrival shuffle, not the
    // density: random-order pushes over a window of spread S average S/3
    // per delta and put the whole queue into a couple of buckets.
    if (size_ >= 2) {
      Time lo = get_time_(scratch_.front());
      Time hi = lo;
      for (const Event& event : scratch_) {
        const Time t = get_time_(event);
        lo = t < lo ? t : lo;
        hi = t > hi ? t : hi;
      }
      if (hi > lo) {
        inv_width_ = static_cast<double>(size_) / (hi - lo);
      }
      // All-equal times: any width works (one shared year); keep as-is.
    }
    const std::size_t mask = bucket_count_ - 1;
    for (Event& event : scratch_) {
      const std::size_t b = virtual_of(get_time_(event)) & mask;
      if (counts_[b] < kBucketCap) {
        slots_[b * kBucketCap + counts_[b]] = std::move(event);
        ++counts_[b];
      } else {
        overflow_.push_back(std::move(event));
      }
    }
    std::make_heap(overflow_.begin(), overflow_.end(), overflow_after());
    scratch_.clear();
    ops_since_rebuild_ = 0;
    cached_min_valid_ = false;
  }

  void locate_min() {
    if (cached_min_valid_) return;
    assert(size_ > 0);
    bool found = false;
    if (inv_width_ <= 0) {
      // Warm-up regime: every slab event lives in bucket 0.
      found = find_min_in(0, kNoYearLimit, false);
    } else {
      std::uint64_t year = virtual_of(search_time_);
      const std::size_t mask = bucket_count_ - 1;
      for (std::size_t scanned = 0; scanned < bucket_count_;
           ++scanned, ++year) {
        const std::size_t b = static_cast<std::size_t>(year) & mask;
        if (counts_[b] == 0) continue;
        if (find_min_in(b, year, false)) {
          found = true;
          break;
        }
      }
      if (!found) {
        // Every slab event lies beyond a full calendar round (sparse far
        // future): direct scan over all buckets with no year filter.
        for (std::size_t b = 0; b < bucket_count_; ++b) {
          if (counts_[b] == 0) continue;
          found = find_min_in(b, kNoYearLimit, found);
        }
      }
    }
    // The overflow minimum competes with the calendar candidate: a spilled
    // event may belong to any year, including one earlier than wherever
    // the year scan stopped.
    if (!overflow_.empty() &&
        (!found || before_(overflow_.front(), min_event()))) {
      min_bucket_ = kOverflowBucket;
      min_index_ = 0;
      found = true;
    }
    assert(found);
    cached_min_valid_ = true;
  }

  // Narrows (min_bucket_, min_index_) with this bucket's events whose
  // virtual bucket is <= max_year (<= rather than ==: a rewound search
  // may start past events that were pushed behind the previous search
  // point). `have` says whether the current (min_bucket_, min_index_) is
  // already a live candidate to compare against; returns whether one
  // exists afterwards.
  bool find_min_in(std::size_t b, std::uint64_t max_year, bool have) {
    const std::size_t base = b * kBucketCap;
    for (std::size_t i = 0; i < counts_[b]; ++i) {
      if (virtual_of(get_time_(slots_[base + i])) > max_year) continue;
      if (!have || before_(slots_[base + i], min_event())) {
        min_bucket_ = b;
        min_index_ = i;
        have = true;
      }
    }
    return have;
  }

  GetTime get_time_;
  Before before_;
  std::vector<Event> slots_;          ///< bucket_count_ * kBucketCap slab
  std::vector<std::uint8_t> counts_;  ///< live slots per bucket
  std::vector<Event> overflow_;       ///< Before-min binary heap of spills
  std::vector<Event> scratch_;        ///< rebuild staging, capacity retained
  std::size_t bucket_count_ = 0;
  std::size_t size_ = 0;
  Time search_time_ = 0;          ///< last popped time (scan start hint)
  double inv_width_ = 0;          ///< 1 / bucket width; <= 0 until calibrated
  std::size_t ops_since_rebuild_ = 0;
  std::size_t min_bucket_ = 0;
  std::size_t min_index_ = 0;
  bool cached_min_valid_ = false;
};

}  // namespace rdp
