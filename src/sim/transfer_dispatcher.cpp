#include "sim/transfer_dispatcher.hpp"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <stdexcept>

#include "core/instance.hpp"
#include "core/realization.hpp"
#include "obs/hooks.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/ready_heap.hpp"
#include "sim/workspace.hpp"

namespace rdp {

namespace {

inline void heap_push(std::vector<RankedTask>& heap, RankedTask entry) {
  heap.push_back(entry);
  std::push_heap(heap.begin(), heap.end(), std::greater<>{});
}

inline void heap_pop(std::vector<RankedTask>& heap) {
  std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
  heap.pop_back();
}

}  // namespace

TransferDispatchResult dispatch_with_transfers(const Instance& instance,
                                               const Placement& placement,
                                               const Realization& actual,
                                               const std::vector<TaskId>& priority,
                                               const TransferModel& model) {
  const std::size_t n = instance.num_tasks();
  const MachineId m = instance.num_machines();
  if (placement.num_tasks() != n || actual.size() != n || priority.size() != n) {
    throw std::invalid_argument("dispatch_with_transfers: size mismatch");
  }
  if (!(model.bandwidth > 0.0)) {
    throw std::invalid_argument("dispatch_with_transfers: bandwidth must be > 0");
  }
  if (model.latency < 0.0) {
    throw std::invalid_argument("dispatch_with_transfers: negative latency");
  }

  SimWorkspace& ws = thread_workspace();
  ws.begin_run(n, m);
  MonotonicArena& arena = ws.arena;

  const std::span<std::uint32_t> rank = arena.make_span<std::uint32_t>(n, UINT32_MAX);
  for (std::uint32_t r = 0; r < n; ++r) {
    const TaskId j = priority[r];
    if (j >= n || rank[j] != UINT32_MAX) {
      throw std::invalid_argument("dispatch_with_transfers: bad priority");
    }
    rank[j] = r;
  }

  obs::MetricsRegistry* const mx = obs::metrics();
  obs::ScopedSpan span(obs::tracer(), "dispatch_with_transfers", "sim");

  const std::span<std::uint8_t> scheduled = arena.make_span<std::uint8_t>(n, 0);

  // Per-machine *local* candidate heaps (lazily invalidated). The best
  // remote candidate needs no per-machine structure: when a machine has
  // no local waiting task at all, every waiting task is remote for it, so
  // the globally best-ranked waiting task -- found by a cursor over the
  // priority permutation -- is the remote pick. Together these replace
  // the former all-tasks scan per dispatch.
  for (TaskId j = 0; j < n; ++j) {
    for (MachineId i : placement.machines_for(j)) {
      heap_push(ws.machine_heaps[i], RankedTask{rank[j], j});
    }
  }
  std::size_t head = 0;  // first maybe-unscheduled rank in priority order

  ReadyHeap pool;
  pool.init(arena, m, {});

  TransferDispatchResult result;
  result.schedule.assignment = Assignment(n);
  result.schedule.start.assign(n, 0);
  result.schedule.finish.assign(n, 0);
  result.trace.events.reserve(n);

  std::size_t remaining = n;
  while (remaining > 0) {
    if (pool.empty()) {
      throw std::logic_error("dispatch_with_transfers: no machine available");
    }
    const MachineId i = pool.top();

    std::vector<RankedTask>& heap = ws.machine_heaps[i];
    while (!heap.empty() && scheduled[heap.front().second]) heap_pop(heap);
    const bool use_local = !heap.empty();
    TaskId j = kNoTask;
    if (use_local) {
      j = heap.front().second;
      heap_pop(heap);
    } else {
      while (head < n && scheduled[priority[head]]) ++head;
      if (head < n) j = priority[head];
    }
    if (j == kNoTask) {
      throw std::logic_error("dispatch_with_transfers: no waiting task");
    }
    Time duration = actual[j];
    if (!use_local) {
      const Time fetch = model.latency + instance.size(j) / model.bandwidth;
      duration += fetch;
      result.transfer_time += fetch;
      ++result.remote_runs;
      if (mx) {
        mx->counter("sim.transfer.remote_runs").add(1);
        mx->histogram("sim.transfer.fetch_time").observe(fetch);
      }
    }
    const auto [start, finish] = pool.occupy_top(duration);
    scheduled[j] = 1;
    result.schedule.assignment.machine_of[j] = i;
    result.schedule.start[j] = start;
    result.schedule.finish[j] = finish;
    result.trace.events.push_back(DispatchEvent{start, j, i, duration});
    --remaining;
  }

  result.makespan = result.schedule.makespan();
  if (mx) {
    mx->counter("sim.transfer.calls").add(1);
    mx->counter("sim.transfer.tasks").add(n);
  }
  return result;
}

}  // namespace rdp
