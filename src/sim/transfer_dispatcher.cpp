#include "sim/transfer_dispatcher.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "core/instance.hpp"
#include "core/realization.hpp"
#include "obs/hooks.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/machine_pool.hpp"

namespace rdp {

TransferDispatchResult dispatch_with_transfers(const Instance& instance,
                                               const Placement& placement,
                                               const Realization& actual,
                                               const std::vector<TaskId>& priority,
                                               const TransferModel& model) {
  const std::size_t n = instance.num_tasks();
  const MachineId m = instance.num_machines();
  if (placement.num_tasks() != n || actual.size() != n || priority.size() != n) {
    throw std::invalid_argument("dispatch_with_transfers: size mismatch");
  }
  if (!(model.bandwidth > 0.0)) {
    throw std::invalid_argument("dispatch_with_transfers: bandwidth must be > 0");
  }
  if (model.latency < 0.0) {
    throw std::invalid_argument("dispatch_with_transfers: negative latency");
  }

  std::vector<std::uint32_t> rank(n, UINT32_MAX);
  for (std::uint32_t r = 0; r < n; ++r) {
    const TaskId j = priority[r];
    if (j >= n || rank[j] != UINT32_MAX) {
      throw std::invalid_argument("dispatch_with_transfers: bad priority");
    }
    rank[j] = r;
  }

  obs::MetricsRegistry* const mx = obs::metrics();
  obs::ScopedSpan span(obs::tracer(), "dispatch_with_transfers", "sim");

  std::vector<bool> scheduled(n, false);
  MachinePool pool(m);

  TransferDispatchResult result;
  result.schedule.assignment = Assignment(n);
  result.schedule.start.assign(n, 0);
  result.schedule.finish.assign(n, 0);
  result.trace.events.reserve(n);

  std::size_t remaining = n;
  while (remaining > 0) {
    const auto idle = pool.next_idle();
    if (!idle) {
      throw std::logic_error("dispatch_with_transfers: no machine available");
    }
    const MachineId i = *idle;

    // Best local and best remote waiting tasks by priority.
    TaskId best_local = kNoTask, best_remote = kNoTask;
    std::uint32_t local_rank = UINT32_MAX, remote_rank = UINT32_MAX;
    for (TaskId j = 0; j < n; ++j) {
      if (scheduled[j]) continue;
      if (placement.allows(j, i)) {
        if (rank[j] < local_rank) {
          local_rank = rank[j];
          best_local = j;
        }
      } else if (rank[j] < remote_rank) {
        remote_rank = rank[j];
        best_remote = j;
      }
    }

    const bool use_local = best_local != kNoTask;
    const TaskId j = use_local ? best_local : best_remote;
    if (j == kNoTask) {
      throw std::logic_error("dispatch_with_transfers: no waiting task");
    }
    Time duration = actual[j];
    if (!use_local) {
      const Time fetch = model.latency + instance.size(j) / model.bandwidth;
      duration += fetch;
      result.transfer_time += fetch;
      ++result.remote_runs;
      if (mx) {
        mx->counter("sim.transfer.remote_runs").add(1);
        mx->histogram("sim.transfer.fetch_time").observe(fetch);
      }
    }
    const auto [start, finish] = pool.occupy(i, duration);
    scheduled[j] = true;
    result.schedule.assignment.machine_of[j] = i;
    result.schedule.start[j] = start;
    result.schedule.finish[j] = finish;
    result.trace.events.push_back(DispatchEvent{start, j, i, duration});
    --remaining;
  }

  result.makespan = result.schedule.makespan();
  if (mx) {
    mx->counter("sim.transfer.calls").add(1);
    mx->counter("sim.transfer.tasks").add(n);
  }
  return result;
}

}  // namespace rdp
