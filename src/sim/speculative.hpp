// Speculative execution (MapReduce-style backup tasks) -- the paper's
// introduction cites launching the same task multiple times as a way to
// cope with hardware differences at the cost of extra resource usage.
// This dispatcher implements it on uniform machines: when a machine
// idles with no waiting work, it may launch a *duplicate copy* of the
// running task with the latest estimated completion, provided it holds a
// replica of that task's data. The first copy to complete wins; losers
// are killed (their burned machine time is reported as waste).
//
// Replication interacts with speculation twice: it lets the duplicate
// run at all (data must be local), and it determines how many machines
// compete to host it.
#pragma once

#include <cstdint>
#include <vector>

#include "core/placement.hpp"
#include "core/schedule.hpp"
#include "core/types.hpp"
#include "hetero/uniform_machines.hpp"
#include "sim/trace.hpp"

namespace rdp {

class Instance;
struct Realization;

struct SpeculationPolicy {
  bool enabled = true;
  /// Maximum simultaneous copies per task (>= 1; 1 disables duplication).
  unsigned max_copies = 2;
  /// Only speculate on tasks whose estimated completion is at least this
  /// far past the current time... negative values allow eager duplication
  /// of anything still running.
  Time min_estimated_remaining = 0.0;
};

struct SpeculativeResult {
  Schedule schedule;        ///< winning copy of every task
  DispatchTrace trace;      ///< every launch, including killed copies
  std::size_t duplicates_launched = 0;
  std::size_t duplicates_won = 0;  ///< tasks whose winner was a backup copy
  Time wasted_time = 0;            ///< machine time burned by killed copies
  Time makespan = 0;
};

/// Runs speculative dispatch on uniform machines. With
/// `policy.enabled == false` (or max_copies == 1) the result matches
/// dispatch_online with the same speed profile exactly.
[[nodiscard]] SpeculativeResult dispatch_speculative(
    const Instance& instance, const Placement& placement, const Realization& actual,
    const std::vector<TaskId>& priority, const SpeedProfile& speeds,
    const SpeculationPolicy& policy);

}  // namespace rdp
