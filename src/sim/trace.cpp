#include "sim/trace.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "core/instance.hpp"
#include "core/schedule.hpp"

namespace rdp {

std::string render_gantt(const Instance& instance, const Schedule& schedule,
                         int width) {
  std::ostringstream os;
  const Time horizon = schedule.makespan();
  if (horizon <= 0 || width <= 8) return "(empty schedule)\n";
  const double scale = static_cast<double>(width) / horizon;

  const auto per_machine = schedule.assignment.tasks_per_machine(instance.num_machines());
  for (MachineId i = 0; i < instance.num_machines(); ++i) {
    std::vector<TaskId> tasks = per_machine[i];
    std::sort(tasks.begin(), tasks.end(), [&](TaskId a, TaskId b) {
      return schedule.start[a] < schedule.start[b];
    });
    std::string row(static_cast<std::size_t>(width), '.');
    for (TaskId j : tasks) {
      auto from = static_cast<std::size_t>(std::floor(schedule.start[j] * scale));
      auto to = static_cast<std::size_t>(std::ceil(schedule.finish[j] * scale));
      from = std::min(from, static_cast<std::size_t>(width) - 1);
      to = std::clamp(to, from + 1, static_cast<std::size_t>(width));
      const char glyph = static_cast<char>('A' + static_cast<int>(j % 26));
      for (std::size_t c = from; c < to; ++c) row[c] = glyph;
    }
    os << "m" << i << " |" << row << "|\n";
  }
  os << "    0";
  for (int c = 0; c < width - 6; ++c) os << ' ';
  os << "t=" << horizon << "\n";
  return os.str();
}

std::string render_trace(const DispatchTrace& trace) {
  std::ostringstream os;
  for (const DispatchEvent& e : trace.events) {
    os << "t=" << e.when << "  task " << e.task << " -> machine " << e.machine
       << "  (actual " << e.actual << ")\n";
  }
  return os.str();
}

}  // namespace rdp
