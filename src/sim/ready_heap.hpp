// Min-heap of machines keyed by (ready time, id), backed by an arena
// span so a run allocates nothing after init(). Selection order is
// identical to MachinePool's lazy heap -- earliest ready time, then
// lowest id.
//
// The API is top-only (occupy_top / retire_top): every dispatcher
// operates exclusively on the machine it just selected, so the heap
// stores (ready, id) entries inline and sifts from the root. The
// classic indexed alternative (heap of ids + pos[] + ready[]) costs two
// dependent loads per comparison; inline entries cost one, and the
// child-selection compare lives in the same cache line.
#pragma once

#include <cstdint>
#include <span>
#include <utility>

#include "core/types.hpp"
#include "sim/arena.hpp"

namespace rdp {

class ReadyHeap {
 public:
  /// Carves the heap out of `arena` for `m` machines and heapifies the
  /// given initial ready times (empty span = all machines ready at 0).
  void init(MonotonicArena& arena, MachineId m, std::span<const Time> initial) {
    entries_ = arena.allocate_span<Entry>(m);
    size_ = m;
    for (MachineId i = 0; i < m; ++i) {
      entries_[i] = Entry{initial.empty() ? Time{0} : initial[i], i};
    }
    if (!initial.empty() && m > 1) {
      for (std::uint32_t k = size_ / 2; k-- > 0;) sift_down(k);
    }
    // All-zero ready times: the identity array is already (ready, id)
    // heap-ordered, no heapify needed.
  }

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Machine that becomes idle next.
  [[nodiscard]] MachineId top() const noexcept { return entries_[0].id; }

  [[nodiscard]] Time top_ready() const noexcept { return entries_[0].ready; }

  /// Occupies the top machine from its ready time for `duration`;
  /// returns the (start, finish) interval. In-place increase-key.
  std::pair<Time, Time> occupy_top(Time duration) noexcept {
    const Time start = entries_[0].ready;
    const Time finish = start + duration;
    entries_[0].ready = finish;
    sift_down(0);
    return {start, finish};
  }

  /// Removes the top machine from consideration permanently.
  void retire_top() noexcept {
    --size_;
    if (size_ > 0) {
      entries_[0] = entries_[size_];
      sift_down(0);
    }
  }

  /// Re-inserts a machine that was removed with retire_top(), ready at
  /// `ready` -- how the streaming dispatcher wakes a parked machine at an
  /// arrival. The span from init() holds all m machines and a machine is
  /// in the heap at most once, so size_ never exceeds the capacity.
  void push(Time ready, MachineId id) noexcept {
    const Entry entry{ready, id};
    std::uint32_t k = size_++;
    while (k > 0) {
      const std::uint32_t parent = (k - 1) / 2;
      if (!before(entry, entries_[parent])) break;
      entries_[k] = entries_[parent];
      k = parent;
    }
    entries_[k] = entry;
  }

 private:
  struct Entry {
    Time ready;
    MachineId id;
  };

  [[nodiscard]] static bool before(const Entry& a, const Entry& b) noexcept {
    if (a.ready != b.ready) return a.ready < b.ready;
    return a.id < b.id;
  }

  void sift_down(std::uint32_t k) noexcept {
    const Entry moving = entries_[k];
    while (true) {
      std::uint32_t child = 2 * k + 1;
      if (child >= size_) break;
      const std::uint32_t right = child + 1;
      // Written so the child choice compiles to a conditional move; a
      // branch here mispredicts roughly every other sift level.
      child += static_cast<std::uint32_t>(right < size_ &&
                                          before(entries_[right], entries_[child]));
      if (!before(entries_[child], moving)) break;
      entries_[k] = entries_[child];
      k = child;
    }
    entries_[k] = moving;
  }

  std::span<Entry> entries_;
  std::uint32_t size_ = 0;
};

}  // namespace rdp
