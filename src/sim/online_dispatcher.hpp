// Phase 2 of the paper: the online semi-clairvoyant dispatcher.
//
// Tasks are ranked by a priority order chosen offline (input order for
// List Scheduling, non-increasing estimates for LPT). Whenever a machine
// becomes idle it receives the highest-priority not-yet-dispatched task
// whose replica set M_j contains that machine. Decisions never look at
// actual processing times -- the dispatcher only observes *when* machines
// become idle, exactly as the paper's model prescribes; actual times are
// revealed (consumed from the Realization) at completion.
#pragma once

#include <span>
#include <vector>

#include "core/placement.hpp"
#include "core/schedule.hpp"
#include "core/types.hpp"
#include "sim/trace.hpp"

namespace rdp {

class Instance;
struct Realization;
class SimWorkspace;

/// Result of a phase-2 run: the timed schedule plus the dispatch trace.
struct DispatchResult {
  Schedule schedule;
  DispatchTrace trace;
};

/// Runs the greedy semi-clairvoyant dispatch.
///
/// \param priority  a permutation of all task ids; earlier = dispatched
///                  first whenever eligible.
/// \param initial_ready  optional per-machine busy-until times (used by
///                  ABO, which dispatches replicated tasks after the
///                  pinned memory-intensive load); empty = all idle at 0.
/// \param speeds    optional per-machine speeds for the uniform-machines
///                  (Q||Cmax) extension: task j occupies machine i for
///                  actual[j] / speeds[i]; empty = identical machines.
///
/// Internally, tasks sharing the same replica set share one FIFO queue
/// (sorted by priority), so replicate-everywhere and group placements
/// dispatch in O((n + m) log m) regardless of replica counts.
[[nodiscard]] DispatchResult dispatch_online(const Instance& instance,
                                             const Placement& placement,
                                             const Realization& actual,
                                             const std::vector<TaskId>& priority,
                                             std::vector<Time> initial_ready = {},
                                             std::vector<double> speeds = {});

/// Workspace form of dispatch_online: all per-run state is carved out of
/// `ws` and the result is written into `out` (reusing its capacity), so a
/// caller that keeps one (ws, out) pair per worker thread performs zero
/// steady-state allocation across a sweep. The by-value overload wraps
/// this with a per-thread workspace.
void dispatch_online(const Instance& instance, const Placement& placement,
                     const Realization& actual, const std::vector<TaskId>& priority,
                     std::span<const Time> initial_ready,
                     std::span<const double> speeds, SimWorkspace& ws,
                     DispatchResult& out);

}  // namespace rdp
