#include "sim/event_queue.hpp"

#include <stdexcept>
#include <utility>

namespace rdp {

void Simulator::schedule_at(Time when, Handler handler) {
  if (when < now_) {
    throw std::invalid_argument("Simulator: cannot schedule in the past");
  }
  queue_.push(when, std::move(handler));
}

void Simulator::schedule_in(Time delay, Handler handler) {
  if (delay < 0) {
    throw std::invalid_argument("Simulator: negative delay");
  }
  schedule_at(now_ + delay, std::move(handler));
}

Time Simulator::run() {
  while (!queue_.empty()) {
    auto event = queue_.pop();
    now_ = event.time;
    ++processed_;
    event.payload(*this);
  }
  return now_;
}

}  // namespace rdp
