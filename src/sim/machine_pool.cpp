#include "sim/machine_pool.hpp"

#include <stdexcept>

namespace rdp {

MachinePool::MachinePool(MachineId num_machines)
    : MachinePool(std::vector<Time>(num_machines, 0)) {}

MachinePool::MachinePool(std::vector<Time> initial_ready)
    : ready_(std::move(initial_ready)), retired_(ready_.size(), false) {
  if (ready_.empty()) {
    throw std::invalid_argument("MachinePool: need at least one machine");
  }
  for (MachineId i = 0; i < ready_.size(); ++i) {
    if (ready_[i] < 0) {
      throw std::invalid_argument("MachinePool: negative initial ready time");
    }
    heap_.push(Slot{ready_[i], i});
  }
}

void MachinePool::refresh() const {
  while (!heap_.empty()) {
    const Slot& top = heap_.top();
    if (retired_[top.id] || ready_[top.id] != top.ready) {
      heap_.pop();  // stale
    } else {
      return;
    }
  }
}

std::optional<MachineId> MachinePool::next_idle() const {
  refresh();
  if (heap_.empty()) return std::nullopt;
  return heap_.top().id;
}

std::pair<Time, Time> MachinePool::occupy(MachineId i, Time duration) {
  if (i >= ready_.size()) throw std::out_of_range("MachinePool: bad machine id");
  if (duration < 0) throw std::invalid_argument("MachinePool: negative duration");
  if (retired_[i]) throw std::invalid_argument("MachinePool: machine retired");
  const Time start = ready_[i];
  const Time finish = start + duration;
  ready_[i] = finish;
  heap_.push(Slot{finish, i});
  return {start, finish};
}

void MachinePool::retire(MachineId i) {
  if (i >= ready_.size()) throw std::out_of_range("MachinePool: bad machine id");
  retired_[i] = true;
}

}  // namespace rdp
