#include "sim/machine_pool.hpp"

#include <stdexcept>

namespace rdp {

MachinePool::MachinePool(MachineId num_machines)
    : MachinePool(std::vector<Time>(num_machines, 0)) {}

MachinePool::MachinePool(std::vector<Time> initial_ready)
    : ready_(std::move(initial_ready)), retired_(ready_.size(), false) {
  if (ready_.empty()) {
    throw std::invalid_argument("MachinePool: need at least one machine");
  }
  heap_.reserve(ready_.size());
  for (MachineId i = 0; i < ready_.size(); ++i) {
    if (ready_[i] < 0) {
      throw std::invalid_argument("MachinePool: negative initial ready time");
    }
    heap_.push_back(Slot{ready_[i], i});
  }
  std::make_heap(heap_.begin(), heap_.end());
  active_ = ready_.size();
}

void MachinePool::compact() const {
  heap_.clear();
  for (MachineId i = 0; i < ready_.size(); ++i) {
    if (!retired_[i]) heap_.push_back(Slot{ready_[i], i});
  }
  std::make_heap(heap_.begin(), heap_.end());
  stale_ = 0;
}

void MachinePool::refresh() const {
  // Rebuild instead of popping one-by-one once stale entries outnumber
  // live ones; with the 1/2 threshold the heap never exceeds twice the
  // active machine count, so a long stream of occupy() calls can no
  // longer grow it without bound.
  if (stale_ * 2 > heap_.size()) compact();
  while (!heap_.empty() && stale(heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end());
    heap_.pop_back();
    --stale_;
  }
}

std::optional<MachineId> MachinePool::next_idle() const {
  refresh();
  if (heap_.empty()) return std::nullopt;
  return heap_.front().id;
}

std::pair<Time, Time> MachinePool::occupy(MachineId i, Time duration) {
  if (i >= ready_.size()) throw std::out_of_range("MachinePool: bad machine id");
  if (duration < 0) throw std::invalid_argument("MachinePool: negative duration");
  if (retired_[i]) throw std::invalid_argument("MachinePool: machine retired");
  const Time start = ready_[i];
  const Time finish = start + duration;
  ready_[i] = finish;
  ++stale_;  // machine i's previous live entry now mismatches ready_[i]
  heap_.push_back(Slot{finish, i});
  std::push_heap(heap_.begin(), heap_.end());
  if (stale_ * 2 > heap_.size()) compact();
  return {start, finish};
}

void MachinePool::retire(MachineId i) {
  if (i >= ready_.size()) throw std::out_of_range("MachinePool: bad machine id");
  if (retired_[i]) return;
  retired_[i] = true;
  --active_;
  ++stale_;  // machine i's live entry is now dead weight
  if (stale_ * 2 > heap_.size()) compact();
}

}  // namespace rdp
