// Monotonic arena for per-run simulator state. A dispatcher carves all of
// its per-task / per-machine arrays (the SoA hot fields) out of one arena
// at run start; `reset()` rewinds the cursor without freeing, so a reused
// workspace reaches zero steady-state allocation after the first run at a
// given problem size. Chunked, not contiguous: growing the arena appends
// a chunk instead of reallocating, so spans handed out earlier in the
// same run stay valid.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <span>
#include <type_traits>
#include <vector>

namespace rdp {

class MonotonicArena {
 public:
  explicit MonotonicArena(std::size_t first_chunk_bytes = 1 << 16)
      : next_chunk_bytes_(first_chunk_bytes) {}

  MonotonicArena(const MonotonicArena&) = delete;
  MonotonicArena& operator=(const MonotonicArena&) = delete;

  /// Rewinds to empty while keeping every chunk for reuse.
  void reset() noexcept {
    chunk_ = 0;
    offset_ = 0;
  }

  /// Total bytes currently reserved across chunks (capacity, not use).
  [[nodiscard]] std::size_t reserved_bytes() const noexcept {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    return total;
  }

  /// Uninitialized storage for `n` objects of T. T must be trivially
  /// destructible: the arena never runs destructors.
  template <typename T>
  [[nodiscard]] T* allocate(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>);
    return static_cast<T*>(allocate_bytes(n * sizeof(T), alignof(T)));
  }

  /// A span of `n` Ts, uninitialized; the caller writes every element
  /// before reading (all uses are fill-then-scan CSR arrays).
  template <typename T>
  [[nodiscard]] std::span<T> allocate_span(std::size_t n) {
    static_assert(std::is_trivial_v<T>);
    return {allocate<T>(n), n};
  }

  /// A span of `n` Ts, every element initialized to `init`.
  template <typename T>
  [[nodiscard]] std::span<T> make_span(std::size_t n, T init = T{}) {
    T* p = allocate<T>(n);
    for (std::size_t i = 0; i < n; ++i) ::new (static_cast<void*>(p + i)) T(init);
    return {p, n};
  }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void* allocate_bytes(std::size_t bytes, std::size_t align) {
    if (bytes == 0) bytes = 1;
    while (true) {
      if (chunk_ < chunks_.size()) {
        Chunk& c = chunks_[chunk_];
        const std::size_t aligned = (offset_ + align - 1) & ~(align - 1);
        if (aligned + bytes <= c.size) {
          offset_ = aligned + bytes;
          return c.data.get() + aligned;
        }
        // Current chunk exhausted: move on (its tail is wasted until the
        // next reset, which is fine -- chunks double, so waste is bounded
        // by a constant fraction).
        ++chunk_;
        offset_ = 0;
        continue;
      }
      std::size_t want = next_chunk_bytes_;
      if (want < bytes + align) want = bytes + align;
      chunks_.push_back(Chunk{std::make_unique<std::byte[]>(want), want});
      next_chunk_bytes_ = want * 2;
      chunk_ = chunks_.size() - 1;
      offset_ = 0;
    }
  }

  std::vector<Chunk> chunks_;
  std::size_t chunk_ = 0;        ///< index of the chunk being filled
  std::size_t offset_ = 0;       ///< fill offset within that chunk
  std::size_t next_chunk_bytes_;
};

}  // namespace rdp
