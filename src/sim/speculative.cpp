#include "sim/speculative.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>
#include <vector>

#include "core/instance.hpp"
#include "core/realization.hpp"
#include "obs/hooks.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rdp {

namespace {

constexpr Time kNever = std::numeric_limits<Time>::infinity();

struct Copy {
  MachineId machine = kNoMachine;
  Time start = 0;
  Time finish = 0;      // actual completion if not killed
  bool alive = false;
};

struct Event {
  Time when;
  bool is_finish;       // finish events before free events at equal times
  MachineId machine;
  TaskId task;          // finish only
  std::size_t copy;     // finish only
  std::uint64_t seq;

  bool operator<(const Event& other) const noexcept {
    if (when != other.when) return when > other.when;
    if (is_finish != other.is_finish) return !is_finish;  // finish first
    if (!is_finish && machine != other.machine) return machine > other.machine;
    return seq > other.seq;
  }
};

}  // namespace

SpeculativeResult dispatch_speculative(const Instance& instance,
                                       const Placement& placement,
                                       const Realization& actual,
                                       const std::vector<TaskId>& priority,
                                       const SpeedProfile& speeds,
                                       const SpeculationPolicy& policy) {
  const std::size_t n = instance.num_tasks();
  const MachineId m = instance.num_machines();
  if (placement.num_tasks() != n || actual.size() != n || priority.size() != n) {
    throw std::invalid_argument("dispatch_speculative: size mismatch");
  }
  if (speeds.size() != m) {
    throw std::invalid_argument("dispatch_speculative: speed profile mismatch");
  }
  if (policy.max_copies == 0) {
    throw std::invalid_argument("dispatch_speculative: max_copies must be >= 1");
  }

  std::vector<std::uint32_t> rank(n, UINT32_MAX);
  for (std::uint32_t r = 0; r < n; ++r) {
    const TaskId j = priority[r];
    if (j >= n || rank[j] != UINT32_MAX) {
      throw std::invalid_argument("dispatch_speculative: bad priority");
    }
    rank[j] = r;
  }

  obs::MetricsRegistry* const mx = obs::metrics();
  obs::Tracer* const tr = obs::tracer();
  obs::ScopedSpan obs_span(tr, "dispatch_speculative", "sim");

  enum class TaskState { kWaiting, kRunning, kDone };
  std::vector<TaskState> state(n, TaskState::kWaiting);
  std::vector<std::vector<Copy>> copies(n);
  std::vector<bool> machine_busy(m, false);
  std::vector<bool> machine_idle_parked(m, false);

  SpeculativeResult result;
  result.schedule.assignment = Assignment(n);
  result.schedule.start.assign(n, 0);
  result.schedule.finish.assign(n, 0);

  std::priority_queue<Event> events;
  std::uint64_t seq = 0;
  for (MachineId i = 0; i < m; ++i) {
    events.push(Event{0, false, i, kNoTask, 0, seq++});
  }

  const bool speculation_on = policy.enabled && policy.max_copies >= 2;
  std::size_t remaining = n;

  auto launch = [&](TaskId j, MachineId i, Time now, bool is_backup) {
    const Time duration = actual[j] / speeds.speed(i);
    Copy copy;
    copy.machine = i;
    copy.start = now;
    copy.finish = now + duration;
    copy.alive = true;
    copies[j].push_back(copy);
    machine_busy[i] = true;
    state[j] = TaskState::kRunning;
    if (is_backup) {
      ++result.duplicates_launched;
      if (tr) {
        tr->instant("speculative_copy", "sim",
                    "{\"task\":" + std::to_string(j) +
                        ",\"machine\":" + std::to_string(i) + "}");
      }
    }
    result.trace.events.push_back(DispatchEvent{now, j, i, duration});
    events.push(Event{copy.finish, true, i, j, copies[j].size() - 1, seq++});
  };

  auto wake_parked = [&](Time now) {
    for (MachineId i = 0; i < m; ++i) {
      if (machine_idle_parked[i]) {
        machine_idle_parked[i] = false;
        events.push(Event{now, false, i, kNoTask, 0, seq++});
      }
    }
  };

  while (remaining > 0) {
    if (events.empty()) {
      throw std::logic_error("dispatch_speculative: event queue drained early");
    }
    const Event e = events.top();
    events.pop();

    if (e.is_finish) {
      const TaskId j = e.task;
      Copy& copy = copies[j][e.copy];
      if (!copy.alive || state[j] == TaskState::kDone) continue;  // killed/stale
      // Winner.
      copy.alive = false;
      machine_busy[copy.machine] = false;
      state[j] = TaskState::kDone;
      --remaining;
      result.schedule.assignment.machine_of[j] = copy.machine;
      result.schedule.start[j] = copy.start;
      result.schedule.finish[j] = copy.finish;
      if (e.copy > 0) ++result.duplicates_won;
      // Kill every other live copy; their machines free immediately.
      for (std::size_t c = 0; c < copies[j].size(); ++c) {
        Copy& other = copies[j][c];
        if (c == e.copy || !other.alive) continue;
        other.alive = false;
        machine_busy[other.machine] = false;
        result.wasted_time += e.when - other.start;
        events.push(Event{e.when, false, other.machine, kNoTask, 0, seq++});
      }
      events.push(Event{e.when, false, copy.machine, kNoTask, 0, seq++});
      wake_parked(e.when);
      continue;
    }

    // Machine-free event.
    const MachineId i = e.machine;
    if (machine_busy[i]) continue;  // stale

    // 1. Highest-priority waiting task with a replica here.
    TaskId best_waiting = kNoTask;
    std::uint32_t best_rank = UINT32_MAX;
    for (TaskId j = 0; j < n; ++j) {
      if (state[j] != TaskState::kWaiting || !placement.allows(j, i)) continue;
      if (rank[j] < best_rank) {
        best_rank = rank[j];
        best_waiting = j;
      }
    }
    if (best_waiting != kNoTask) {
      launch(best_waiting, i, e.when, /*is_backup=*/false);
      continue;
    }

    // 2. No waiting work: consider speculating on a running task.
    if (speculation_on) {
      TaskId candidate = kNoTask;
      Time latest_estimate = -kNever;
      for (TaskId j = 0; j < n; ++j) {
        if (state[j] != TaskState::kRunning || !placement.allows(j, i)) continue;
        std::size_t live = 0;
        Time earliest_est_finish = kNever;
        for (const Copy& c : copies[j]) {
          if (!c.alive) continue;
          ++live;
          const Time est =
              c.start + instance.estimate(j) / speeds.speed(c.machine);
          earliest_est_finish = std::min(earliest_est_finish, est);
        }
        if (live == 0 || live >= policy.max_copies) continue;
        if (earliest_est_finish - e.when < policy.min_estimated_remaining) continue;
        // Don't duplicate onto a machine that wouldn't even beat the
        // current copy's *estimated* completion.
        const Time my_est_finish = e.when + instance.estimate(j) / speeds.speed(i);
        if (my_est_finish >= earliest_est_finish) continue;
        if (earliest_est_finish > latest_estimate) {
          latest_estimate = earliest_est_finish;
          candidate = j;
        }
      }
      if (candidate != kNoTask) {
        launch(candidate, i, e.when, /*is_backup=*/true);
        continue;
      }
    }

    machine_idle_parked[i] = true;  // re-woken on the next completion
  }

  result.makespan = result.schedule.makespan();
  if (mx) {
    mx->counter("sim.speculative.calls").add(1);
    mx->counter("sim.speculative.tasks").add(n);
    mx->counter("sim.speculative.duplicates_launched").add(result.duplicates_launched);
    mx->counter("sim.speculative.duplicates_won").add(result.duplicates_won);
    mx->histogram("sim.speculative.wasted_time").observe(result.wasted_time);
  }
  return result;
}

}  // namespace rdp
