#include "sim/speculative.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <stdexcept>

#include "core/instance.hpp"
#include "core/realization.hpp"
#include "obs/hooks.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/workspace.hpp"

namespace rdp {

namespace {

constexpr Time kNever = std::numeric_limits<Time>::infinity();

enum : std::uint8_t { kWaiting = 0, kRunning = 1, kDone = 2 };

inline void heap_push(std::vector<RankedTask>& heap, RankedTask entry) {
  heap.push_back(entry);
  std::push_heap(heap.begin(), heap.end(), std::greater<>{});
}

inline void heap_pop(std::vector<RankedTask>& heap) {
  std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
  heap.pop_back();
}

}  // namespace

SpeculativeResult dispatch_speculative(const Instance& instance,
                                       const Placement& placement,
                                       const Realization& actual,
                                       const std::vector<TaskId>& priority,
                                       const SpeedProfile& speeds,
                                       const SpeculationPolicy& policy) {
  const std::size_t n = instance.num_tasks();
  const MachineId m = instance.num_machines();
  if (placement.num_tasks() != n || actual.size() != n || priority.size() != n) {
    throw std::invalid_argument("dispatch_speculative: size mismatch");
  }
  if (speeds.size() != m) {
    throw std::invalid_argument("dispatch_speculative: speed profile mismatch");
  }
  if (policy.max_copies == 0) {
    throw std::invalid_argument("dispatch_speculative: max_copies must be >= 1");
  }

  SimWorkspace& ws = thread_workspace();
  ws.begin_run(n, m);
  MonotonicArena& arena = ws.arena;

  const std::span<std::uint32_t> rank = arena.make_span<std::uint32_t>(n, UINT32_MAX);
  for (std::uint32_t r = 0; r < n; ++r) {
    const TaskId j = priority[r];
    if (j >= n || rank[j] != UINT32_MAX) {
      throw std::invalid_argument("dispatch_speculative: bad priority");
    }
    rank[j] = r;
  }

  obs::MetricsRegistry* const mx = obs::metrics();
  obs::Tracer* const tr = obs::tracer();
  obs::ScopedSpan obs_span(tr, "dispatch_speculative", "sim");

  const std::span<std::uint8_t> state = arena.make_span<std::uint8_t>(n, kWaiting);
  const std::span<std::uint8_t> machine_busy = arena.make_span<std::uint8_t>(m, 0);
  const std::span<std::uint8_t> machine_parked = arena.make_span<std::uint8_t>(m, 0);

  // Copies, struct-of-arrays with a fixed per-task stride. Live copies of
  // one task occupy distinct busy machines and none dies before the task
  // completes, so a task never accumulates more than min(max_copies, m)
  // copies over its whole lifetime.
  const std::size_t stride =
      std::min<std::size_t>(policy.max_copies, static_cast<std::size_t>(m));
  const std::span<std::uint32_t> copy_count = arena.make_span<std::uint32_t>(n, 0);
  const std::span<MachineId> copy_machine = arena.allocate_span<MachineId>(n * stride);
  const std::span<Time> copy_start = arena.allocate_span<Time>(n * stride);
  const std::span<Time> copy_finish = arena.allocate_span<Time>(n * stride);
  const std::span<std::uint8_t> copy_alive =
      arena.make_span<std::uint8_t>(n * stride, 0);

  SpeculativeResult result;
  result.schedule.assignment = Assignment(n);
  result.schedule.start.assign(n, 0);
  result.schedule.finish.assign(n, 0);
  result.trace.events.reserve(n);

  // Per-machine waiting-task heaps; tasks never return to kWaiting here
  // (no failures), so entries are pushed once and go stale in place.
  for (TaskId j = 0; j < n; ++j) {
    for (MachineId i : placement.machines_for(j)) {
      heap_push(ws.machine_heaps[i], RankedTask{rank[j], j});
    }
  }

  SimEventQueue& events = ws.events;
  std::uint64_t seq = 0;
  for (MachineId i = 0; i < m; ++i) {
    events.push(SimEvent{0, kSimEventFree, i, kNoTask, 0, seq++});
  }

  const bool speculation_on = policy.enabled && policy.max_copies >= 2;
  std::size_t remaining = n;

  auto launch = [&](TaskId j, MachineId i, Time now, bool is_backup) {
    const Time duration = actual[j] / speeds.speed(i);
    const std::size_t c = j * stride + copy_count[j];
    copy_machine[c] = i;
    copy_start[c] = now;
    copy_finish[c] = now + duration;
    copy_alive[c] = 1;
    machine_busy[i] = 1;
    state[j] = kRunning;
    if (is_backup) {
      ++result.duplicates_launched;
      if (tr) {
        tr->instant("speculative_copy", "sim",
                    "{\"task\":" + std::to_string(j) +
                        ",\"machine\":" + std::to_string(i) + "}");
      }
    }
    result.trace.events.push_back(DispatchEvent{now, j, i, duration});
    events.push(SimEvent{now + duration, kSimEventFinish, i, j, copy_count[j], seq++});
    ++copy_count[j];
  };

  // Machines idle with no work to take park on an explicit list instead
  // of a parked flag rescan: a completion used to walk all m machines to
  // find the (typically few) parked ones.
  auto wake_parked = [&](Time now) {
    for (MachineId i : ws.parked) {
      machine_parked[i] = 0;
      events.push(SimEvent{now, kSimEventFree, i, kNoTask, 0, seq++});
    }
    ws.parked.clear();
  };

  while (remaining > 0) {
    if (events.empty()) {
      throw std::logic_error("dispatch_speculative: event queue drained early");
    }
    const SimEvent e = events.pop();

    if (e.kind == kSimEventFinish) {
      const TaskId j = e.task;
      const std::size_t c = j * stride + e.aux;
      if (!copy_alive[c] || state[j] == kDone) continue;  // killed/stale
      // Winner.
      copy_alive[c] = 0;
      machine_busy[copy_machine[c]] = 0;
      state[j] = kDone;
      --remaining;
      result.schedule.assignment.machine_of[j] = copy_machine[c];
      result.schedule.start[j] = copy_start[c];
      result.schedule.finish[j] = copy_finish[c];
      if (e.aux > 0) ++result.duplicates_won;
      // Kill every other live copy; their machines free immediately.
      for (std::size_t k = j * stride; k < j * stride + copy_count[j]; ++k) {
        if (k == c || !copy_alive[k]) continue;
        copy_alive[k] = 0;
        machine_busy[copy_machine[k]] = 0;
        result.wasted_time += e.when - copy_start[k];
        events.push(
            SimEvent{e.when, kSimEventFree, copy_machine[k], kNoTask, 0, seq++});
      }
      events.push(SimEvent{e.when, kSimEventFree, copy_machine[c], kNoTask, 0, seq++});
      wake_parked(e.when);
      continue;
    }

    // Machine-free event.
    const MachineId i = e.machine;
    if (machine_busy[i]) continue;  // stale

    // 1. Highest-priority waiting task with a replica here (lazy heap;
    // ranks are a permutation, so the pop matches the former full scan).
    std::vector<RankedTask>& heap = ws.machine_heaps[i];
    while (!heap.empty() && state[heap.front().second] != kWaiting) heap_pop(heap);
    if (!heap.empty()) {
      const TaskId j = heap.front().second;
      heap_pop(heap);
      launch(j, i, e.when, /*is_backup=*/false);
      continue;
    }

    // 2. No waiting work: consider speculating on a running task.
    if (speculation_on) {
      TaskId candidate = kNoTask;
      Time latest_estimate = -kNever;
      for (TaskId j = 0; j < n; ++j) {
        if (state[j] != kRunning || !placement.allows(j, i)) continue;
        std::size_t live = 0;
        Time earliest_est_finish = kNever;
        for (std::size_t k = j * stride; k < j * stride + copy_count[j]; ++k) {
          if (!copy_alive[k]) continue;
          ++live;
          const Time est =
              copy_start[k] + instance.estimate(j) / speeds.speed(copy_machine[k]);
          earliest_est_finish = std::min(earliest_est_finish, est);
        }
        if (live == 0 || live >= policy.max_copies) continue;
        if (earliest_est_finish - e.when < policy.min_estimated_remaining) continue;
        // Don't duplicate onto a machine that wouldn't even beat the
        // current copy's *estimated* completion.
        const Time my_est_finish = e.when + instance.estimate(j) / speeds.speed(i);
        if (my_est_finish >= earliest_est_finish) continue;
        if (earliest_est_finish > latest_estimate) {
          latest_estimate = earliest_est_finish;
          candidate = j;
        }
      }
      if (candidate != kNoTask) {
        launch(candidate, i, e.when, /*is_backup=*/true);
        continue;
      }
    }

    if (!machine_parked[i]) {  // re-woken on the next completion
      machine_parked[i] = 1;
      ws.parked.push_back(i);
    }
  }

  result.makespan = result.schedule.makespan();
  if (mx) {
    mx->counter("sim.speculative.calls").add(1);
    mx->counter("sim.speculative.tasks").add(n);
    mx->counter("sim.speculative.duplicates_launched").add(result.duplicates_launched);
    mx->counter("sim.speculative.duplicates_won").add(result.duplicates_won);
    mx->histogram("sim.speculative.wasted_time").observe(result.wasted_time);
  }
  return result;
}

}  // namespace rdp
