// Locality-aware dispatch with data-transfer costs. The paper's model
// makes remote execution *impossible* ("prohibitive overhead"); this
// dispatcher makes the overhead a parameter instead: a machine may run a
// task whose data it does not hold by first fetching it, paying
// size / bandwidth extra time. Replication then trades memory against
// both adaptation (as in the paper) and fetch traffic -- and as bandwidth
// grows the value of replication must vanish, a crossover the
// ext_transfer_crossover bench maps out.
//
// Dispatch rule (Hadoop-style locality preference): when a machine
// becomes idle it takes its highest-priority *local* waiting task if one
// exists; otherwise its highest-priority remote task, paying the fetch.
#pragma once

#include <vector>

#include "core/placement.hpp"
#include "core/schedule.hpp"
#include "core/types.hpp"
#include "sim/trace.hpp"

namespace rdp {

class Instance;
struct Realization;

struct TransferModel {
  /// Size units transferred per time unit; must be > 0. Infinite
  /// bandwidth makes every task local-equivalent.
  double bandwidth = 1.0;
  /// Fixed per-fetch latency added on top of size/bandwidth.
  Time latency = 0.0;
};

struct TransferDispatchResult {
  Schedule schedule;
  DispatchTrace trace;
  std::size_t remote_runs = 0;   ///< dispatches that paid a fetch
  Time transfer_time = 0;        ///< total time spent fetching
  Time makespan = 0;
};

/// Runs locality-aware dispatch. Every task may run anywhere; placement
/// only determines which runs are free (local) vs paid (remote).
[[nodiscard]] TransferDispatchResult dispatch_with_transfers(
    const Instance& instance, const Placement& placement, const Realization& actual,
    const std::vector<TaskId>& priority, const TransferModel& model);

}  // namespace rdp
