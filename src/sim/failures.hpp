// Fail-stop machine failures -- the other reason systems replicate data
// (the paper's Hadoop motivation). This extends the semi-clairvoyant
// dispatcher with permanent machine failures at known-only-when-they-
// happen times:
//
//  * a task running on a machine when it fails is lost and must restart
//    from scratch on another machine holding its data;
//  * queued tasks of a failed machine flow to surviving replicas;
//  * a task whose every replica machine has failed must first re-fetch
//    its data from stable storage: it becomes runnable anywhere after a
//    per-task transfer penalty is added to its processing time.
//
// Placement determines how gracefully the schedule degrades -- which is
// exactly what the fault-tolerance bench measures across strategies.
#pragma once

#include <cstdint>
#include <vector>

#include "core/placement.hpp"
#include "core/schedule.hpp"
#include "core/types.hpp"
#include "sim/trace.hpp"

namespace rdp {

class Instance;
struct Realization;
class SimWorkspace;

/// A permanent fail-stop event.
struct MachineFailure {
  MachineId machine = 0;
  Time when = 0;
};

struct FailurePlan {
  std::vector<MachineFailure> failures;  ///< at most one per machine
  /// Added to a task's processing time when it must re-fetch data
  /// because every replica machine failed.
  Time refetch_penalty = 0;
};

struct FailureDispatchResult {
  Schedule schedule;        ///< final (successful) run of every task
  DispatchTrace trace;      ///< every dispatch, including lost attempts
  std::size_t restarts = 0; ///< dispatches that were killed by a failure
  std::size_t refetches = 0;///< tasks that lost every replica
  Time makespan = 0;
  /// Simulation events popped from the queue (finishes + failures +
  /// machine-free wakeups); the throughput bench divides by wall time.
  std::uint64_t events_processed = 0;
};

/// Runs the failure-aware semi-clairvoyant dispatch. Priority semantics
/// match dispatch_online(); restarted tasks re-enter with their original
/// priority. Throws std::invalid_argument if all machines fail while
/// refetch_penalty makes recovery impossible (it never does -- refetched
/// tasks may run on failed-set-free machines; if *every* machine fails
/// the instance is infeasible and an exception is raised).
[[nodiscard]] FailureDispatchResult dispatch_with_failures(
    const Instance& instance, const Placement& placement, const Realization& actual,
    const std::vector<TaskId>& priority, const FailurePlan& plan);

/// Workspace form: per-run state lives in `ws` and the result is written
/// into `out` reusing its capacity, so repeated calls on one thread reach
/// zero steady-state allocation. The by-value overload wraps this with
/// the per-thread workspace.
void dispatch_with_failures(const Instance& instance, const Placement& placement,
                            const Realization& actual,
                            const std::vector<TaskId>& priority,
                            const FailurePlan& plan, SimWorkspace& ws,
                            FailureDispatchResult& out);

}  // namespace rdp
