// Reusable per-run state for the simulator hot path. A SimWorkspace owns
// the arena that backs every struct-of-arrays hot field (task state,
// ranks, start/finish times, assignments, per-machine tables) plus the
// calendar event queue and the candidate-heap containers, so a sweep that
// reuses one workspace per worker thread performs zero steady-state
// allocation: the first trial at a given (n, m) sizes everything, later
// trials only rewind cursors and clear vectors in place.
//
// Lifetimes: arena spans live until the next `begin_run()`; the dispatch
// results returned to callers are ordinary vectors (copied out of the SoA
// arrays at the end of a run) so nothing user-visible aliases the arena.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "sim/arena.hpp"
#include "sim/calendar_queue.hpp"

namespace rdp {

/// One POD event, shared by every event-driven dispatcher. `kind` values
/// are ordered so the comparator resolves equal-time ties the same way
/// the retired binary heaps did: finishes before failures before frees.
struct SimEvent {
  Time when = 0;
  std::uint8_t kind = 0;        ///< SimEventKind, stored small
  MachineId machine = kNoMachine;
  TaskId task = kNoTask;
  std::uint64_t aux = 0;        ///< finish: attempt epoch or copy index
  std::uint64_t seq = 0;        ///< FIFO tie-break, monotone per run
};

enum : std::uint8_t {
  kSimEventFinish = 0,   ///< processed first at equal times
  kSimEventFailure = 1,
  kSimEventFree = 2,
};

struct SimEventTime {
  Time operator()(const SimEvent& e) const noexcept { return e.when; }
};

/// "a pops before b". Equal-time frees order by machine id (simultaneously
/// freed machines grab work in id order, matching MachinePool's
/// tie-break); everything else falls back to insertion sequence.
struct SimEventBefore {
  bool operator()(const SimEvent& a, const SimEvent& b) const noexcept {
    if (a.when != b.when) return a.when < b.when;
    if (a.kind != b.kind) return a.kind < b.kind;
    if (a.kind == kSimEventFree && a.machine != b.machine) {
      return a.machine < b.machine;
    }
    return a.seq < b.seq;
  }
};

using SimEventQueue = CalendarQueue<SimEvent, SimEventTime, SimEventBefore>;

/// (priority rank, task) candidate entry for the per-machine eligible
/// heaps; min-heap order on rank (ranks are a permutation, so ties are
/// impossible and the order is total).
using RankedTask = std::pair<std::uint32_t, TaskId>;

class SimWorkspace {
 public:
  SimWorkspace() = default;
  SimWorkspace(const SimWorkspace&) = delete;
  SimWorkspace& operator=(const SimWorkspace&) = delete;

  /// Rewinds the arena and clears every container in place. Called by the
  /// dispatchers at run start; invalidates spans from the previous run.
  void begin_run(std::size_t num_tasks, MachineId num_machines);

  MonotonicArena arena;
  SimEventQueue events;

  /// Per-machine candidate heaps (vector heaps driven by std::push_heap /
  /// std::pop_heap). Sized to the largest m seen; inner capacity sticks.
  std::vector<std::vector<RankedTask>> machine_heaps;

  /// Entries popped too early (eligible only in the future); re-pushed
  /// after each selection.
  std::vector<RankedTask> deferred;

  /// Machines idle with no eligible work, woken by the next completion.
  std::vector<MachineId> parked;

 private:
  std::size_t heaps_in_use_ = 0;
};

/// The calling thread's lazily-created workspace. The by-value dispatcher
/// entry points route through this, so even callers that never handle a
/// workspace explicitly get cross-call state reuse on each thread.
[[nodiscard]] SimWorkspace& thread_workspace();

}  // namespace rdp
