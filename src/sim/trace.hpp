// Dispatch trace: the ordered record of phase-2 decisions, plus a plain
// text Gantt rendering used by the figure-reproduction binaries and the
// example applications.
#pragma once

#include <string>
#include <vector>

#include "core/types.hpp"

namespace rdp {

class Instance;
struct Schedule;

/// One dispatch decision.
struct DispatchEvent {
  Time when;       ///< time the machine became idle and took the task
  TaskId task;     ///< dispatched task
  MachineId machine;
  Time actual;     ///< actual processing time (known only at when+actual)
};

struct DispatchTrace {
  std::vector<DispatchEvent> events;

  [[nodiscard]] std::size_t size() const noexcept { return events.size(); }
};

/// Fixed-width ASCII Gantt chart of a schedule (one row per machine,
/// columns proportional to time). `width` is the chart width in chars.
[[nodiscard]] std::string render_gantt(const Instance& instance,
                                       const Schedule& schedule, int width = 72);

/// One-line-per-event textual dump of a trace.
[[nodiscard]] std::string render_trace(const DispatchTrace& trace);

}  // namespace rdp
