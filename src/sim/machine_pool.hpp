// A pool of m machines tracked by their ready times. Supports the single
// operation the semi-clairvoyant dispatcher needs: "which machine becomes
// idle next?", with deterministic tie-breaking by machine id.
#pragma once

#include <optional>
#include <queue>
#include <vector>

#include "core/types.hpp"

namespace rdp {

class MachinePool {
 public:
  /// All machines start idle at the given ready times (default: all 0).
  explicit MachinePool(MachineId num_machines);
  explicit MachinePool(std::vector<Time> initial_ready);

  [[nodiscard]] MachineId size() const noexcept {
    return static_cast<MachineId>(ready_.size());
  }

  /// Earliest-idle active machine (smallest ready time, then smallest id);
  /// nullopt when every machine has been retired.
  [[nodiscard]] std::optional<MachineId> next_idle() const;

  /// Ready time of machine i.
  [[nodiscard]] Time ready_time(MachineId i) const { return ready_.at(i); }

  /// Occupies machine i for `duration` starting at its current ready time;
  /// returns the (start, finish) interval.
  std::pair<Time, Time> occupy(MachineId i, Time duration);

  /// Removes machine i from next_idle() consideration (it has no eligible
  /// work left). Its ready time remains queryable.
  void retire(MachineId i);

  [[nodiscard]] bool retired(MachineId i) const { return retired_.at(i); }

  /// Per-machine ready times (== final loads when starts were all 0).
  [[nodiscard]] const std::vector<Time>& ready_times() const noexcept { return ready_; }

 private:
  struct Slot {
    Time ready;
    MachineId id;
    bool operator<(const Slot& other) const noexcept {
      if (ready != other.ready) return ready > other.ready;  // min-heap
      return id > other.id;
    }
  };

  void refresh() const;

  std::vector<Time> ready_;
  std::vector<bool> retired_;
  // Lazy heap: entries may be stale (ready changed / machine retired);
  // refresh() pops them.
  mutable std::priority_queue<Slot> heap_;
};

}  // namespace rdp
