// A pool of m machines tracked by their ready times. Supports the single
// operation the semi-clairvoyant dispatcher needs: "which machine becomes
// idle next?", with deterministic tie-breaking by machine id.
#pragma once

#include <algorithm>
#include <optional>
#include <vector>

#include "core/types.hpp"

namespace rdp {

class MachinePool {
 public:
  /// All machines start idle at the given ready times (default: all 0).
  explicit MachinePool(MachineId num_machines);
  explicit MachinePool(std::vector<Time> initial_ready);

  [[nodiscard]] MachineId size() const noexcept {
    return static_cast<MachineId>(ready_.size());
  }

  /// Earliest-idle active machine (smallest ready time, then smallest id);
  /// nullopt when every machine has been retired.
  [[nodiscard]] std::optional<MachineId> next_idle() const;

  /// Ready time of machine i.
  [[nodiscard]] Time ready_time(MachineId i) const { return ready_.at(i); }

  /// Occupies machine i for `duration` starting at its current ready time;
  /// returns the (start, finish) interval.
  std::pair<Time, Time> occupy(MachineId i, Time duration);

  /// Removes machine i from next_idle() consideration (it has no eligible
  /// work left). Its ready time remains queryable.
  void retire(MachineId i);

  [[nodiscard]] bool retired(MachineId i) const { return retired_.at(i); }

  /// Per-machine ready times (== final loads when starts were all 0).
  [[nodiscard]] const std::vector<Time>& ready_times() const noexcept { return ready_; }

  /// Current entry count of the internal lazy heap, live + stale. Exposed
  /// so tests can pin the O(active machines) bound that compaction
  /// enforces; not part of the scheduling contract.
  [[nodiscard]] std::size_t heap_size() const noexcept { return heap_.size(); }

 private:
  struct Slot {
    Time ready;
    MachineId id;
    // "Later" ordering: std::push_heap/std::pop_heap build a max-heap, so
    // inverting yields the min-(ready, id) element on top.
    bool operator<(const Slot& other) const noexcept {
      if (ready != other.ready) return ready > other.ready;
      return id > other.id;
    }
  };

  void refresh() const;
  void compact() const;
  [[nodiscard]] bool stale(const Slot& slot) const noexcept {
    return retired_[slot.id] || ready_[slot.id] != slot.ready;
  }

  std::vector<Time> ready_;
  std::vector<bool> retired_;
  // Lazy heap: entries go stale in place when a machine's ready time
  // moves (occupy) or the machine retires; refresh() pops stale tops and
  // compact() rebuilds once stale entries outnumber live ones, keeping
  // the heap O(active machines) even for long-lived / streaming runs.
  mutable std::vector<Slot> heap_;
  mutable std::size_t stale_ = 0;   ///< stale entries currently in heap_
  std::size_t active_ = 0;          ///< machines not yet retired
};

}  // namespace rdp
