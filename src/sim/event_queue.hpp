// Minimal discrete-event-simulation core: a time-ordered event queue with
// FIFO tie-breaking, and a Simulator driving std::function events. The
// online dispatcher uses the specialized MachinePool instead for speed,
// but examples and tests exercise this general engine directly.
//
// Since the hot-path rewrite the queue is a bucketed calendar queue
// (sim/calendar_queue.hpp) instead of a binary heap, and pop() *moves*
// the event out -- the old copy-out pop paid a heap allocation per event
// for any payload with out-of-line state (std::function handlers being
// the canonical case) and required payloads to be copyable at all.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "core/types.hpp"
#include "sim/calendar_queue.hpp"

namespace rdp {

/// Priority queue of (time, payload) with deterministic FIFO order among
/// equal-time events (insertion sequence breaks ties). Payloads only need
/// to be movable.
template <typename Payload>
class EventQueue {
 public:
  struct Event {
    Time time;
    std::uint64_t seq;
    Payload payload;
  };

  void push(Time time, Payload payload) {
    queue_.push(Event{time, next_seq_++, std::move(payload)});
  }

  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return queue_.size(); }
  [[nodiscard]] const Event& top() { return queue_.top(); }

  Event pop() { return queue_.pop(); }

 private:
  struct TimeOf {
    Time operator()(const Event& e) const noexcept { return e.time; }
  };
  struct Before {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time < b.time;
      return a.seq < b.seq;
    }
  };
  CalendarQueue<Event, TimeOf, Before> queue_;
  std::uint64_t next_seq_ = 0;
};

/// Callback-driven simulator. Events may schedule further events; run()
/// processes until the queue drains and returns the final clock value.
class Simulator {
 public:
  using Handler = std::function<void(Simulator&)>;

  /// Schedules `handler` at absolute time `when` (must be >= now()).
  void schedule_at(Time when, Handler handler);

  /// Schedules `handler` `delay` time units after now().
  void schedule_in(Time delay, Handler handler);

  /// Current simulation clock.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Number of events processed so far.
  [[nodiscard]] std::uint64_t events_processed() const noexcept { return processed_; }

  /// Runs to completion; returns the time of the last processed event.
  Time run();

 private:
  EventQueue<Handler> queue_;
  Time now_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace rdp
