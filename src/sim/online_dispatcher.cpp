#include "sim/online_dispatcher.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <unordered_map>

#include "core/instance.hpp"
#include "core/realization.hpp"
#include "obs/hooks.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/machine_pool.hpp"

namespace rdp {

namespace {

// FNV-1a over the machine ids of a replica set; used to bucket tasks with
// identical M_j into one shared queue.
std::uint64_t hash_set(const std::vector<MachineId>& set) {
  std::uint64_t h = 1469598103934665603ULL;
  for (MachineId i : set) {
    h ^= static_cast<std::uint64_t>(i) + 1;
    h *= 1099511628211ULL;
  }
  return h;
}

struct TaskQueue {
  std::vector<TaskId> tasks;  // sorted by priority rank, consumed from front
  std::size_t head = 0;

  [[nodiscard]] bool exhausted() const noexcept { return head >= tasks.size(); }
  [[nodiscard]] TaskId front() const { return tasks[head]; }
};

}  // namespace

DispatchResult dispatch_online(const Instance& instance, const Placement& placement,
                               const Realization& actual,
                               const std::vector<TaskId>& priority,
                               std::vector<Time> initial_ready,
                               std::vector<double> speeds) {
  const std::size_t n = instance.num_tasks();
  const MachineId m = instance.num_machines();
  if (placement.num_tasks() != n) {
    throw std::invalid_argument("dispatch_online: placement size mismatch");
  }
  if (placement.num_machines() != m) {
    throw std::invalid_argument(
        "dispatch_online: placement built for a different machine count");
  }
  if (actual.size() != n) {
    throw std::invalid_argument("dispatch_online: realization size mismatch");
  }
  if (priority.size() != n) {
    throw std::invalid_argument("dispatch_online: priority must cover every task");
  }
  if (!initial_ready.empty()) {
    if (initial_ready.size() != m) {
      throw std::invalid_argument("dispatch_online: initial_ready size mismatch");
    }
    for (Time t : initial_ready) {
      if (!(t >= 0.0) || !std::isfinite(t)) {
        throw std::invalid_argument(
            "dispatch_online: initial_ready times must be finite and non-negative");
      }
    }
  }
  if (!speeds.empty()) {
    if (speeds.size() != m) {
      throw std::invalid_argument("dispatch_online: speeds size mismatch");
    }
    for (double s : speeds) {
      if (!(s > 0.0)) {
        throw std::invalid_argument("dispatch_online: speeds must be positive");
      }
    }
  }

  // Rank of each task in the priority order (and permutation validation).
  std::vector<std::uint32_t> rank(n, UINT32_MAX);
  for (std::uint32_t r = 0; r < priority.size(); ++r) {
    const TaskId j = priority[r];
    if (j >= n || rank[j] != UINT32_MAX) {
      throw std::invalid_argument("dispatch_online: priority is not a permutation");
    }
    rank[j] = r;
  }

  // Bucket tasks by identical replica sets.
  std::vector<TaskQueue> queues;
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> buckets;
  std::vector<std::size_t> queue_of_task(n);
  for (TaskId j = 0; j < n; ++j) {
    const auto& set = placement.machines_for(j);
    const std::uint64_t h = hash_set(set);
    std::size_t q = SIZE_MAX;
    for (std::size_t candidate : buckets[h]) {
      const TaskId representative = queues[candidate].tasks.front();
      if (placement.machines_for(representative) == set) {
        q = candidate;
        break;
      }
    }
    if (q == SIZE_MAX) {
      q = queues.size();
      queues.emplace_back();
      buckets[h].push_back(q);
    }
    queues[q].tasks.push_back(j);
    queue_of_task[j] = q;
  }
  for (auto& queue : queues) {
    std::sort(queue.tasks.begin(), queue.tasks.end(),
              [&](TaskId a, TaskId b) { return rank[a] < rank[b]; });
  }

  // Which queues each machine serves (via the representative's set).
  std::vector<std::vector<std::size_t>> queues_of_machine(m);
  for (std::size_t q = 0; q < queues.size(); ++q) {
    for (MachineId i : placement.machines_for(queues[q].tasks.front())) {
      queues_of_machine[i].push_back(q);
    }
  }

  MachinePool pool = initial_ready.empty() ? MachinePool(m)
                                           : MachinePool(std::move(initial_ready));

  // Observability: null sinks reduce every hook below to a dead branch on
  // a cached pointer; nothing here influences dispatch decisions.
  obs::MetricsRegistry* const mx = obs::metrics();
  obs::Tracer* const tr = obs::tracer();
  obs::ScopedSpan span(tr, "dispatch_online", "sim");

  DispatchResult result;
  result.schedule.assignment = Assignment(n);
  result.schedule.start.assign(n, 0);
  result.schedule.finish.assign(n, 0);
  result.trace.events.reserve(n);

  std::size_t remaining = n;
  while (remaining > 0) {
    const auto idle = pool.next_idle();
    if (!idle) {
      // Unreachable for a valid placement: every remaining task has a
      // non-retired machine serving its queue.
      throw std::logic_error("dispatch_online: deadlock (all machines retired)");
    }
    const MachineId i = *idle;

    // Highest-priority front task among this machine's queues.
    std::size_t best_queue = SIZE_MAX;
    std::uint32_t best_rank = UINT32_MAX;
    for (std::size_t q : queues_of_machine[i]) {
      const TaskQueue& queue = queues[q];
      if (queue.exhausted()) continue;
      const std::uint32_t r = rank[queue.front()];
      if (r < best_rank) {
        best_rank = r;
        best_queue = q;
      }
    }
    if (best_queue == SIZE_MAX) {
      pool.retire(i);  // no eligible work now or ever
      continue;
    }

    TaskQueue& queue = queues[best_queue];
    const TaskId j = queue.front();
    ++queue.head;
    const Time duration = speeds.empty() ? actual[j] : actual[j] / speeds[i];
    const auto [start, finish] = pool.occupy(i, duration);
    result.schedule.assignment.machine_of[j] = i;
    result.schedule.start[j] = start;
    result.schedule.finish[j] = finish;
    result.trace.events.push_back(DispatchEvent{start, j, i, duration});
    --remaining;
  }

  if (mx) {
    mx->counter("sim.dispatch.calls").add(1);
    mx->counter("sim.dispatch.tasks").add(n);
    // Per-machine busy time is recovered from the finished schedule, so
    // the dispatch loop itself carries no instrumentation.
    std::vector<Time> busy(m, 0.0);
    for (TaskId j = 0; j < n; ++j) {
      busy[result.schedule.assignment.machine_of[j]] +=
          result.schedule.finish[j] - result.schedule.start[j];
    }
    const Time makespan = result.schedule.makespan();
    obs::Histogram& idle_hist = mx->histogram("sim.dispatch.machine_idle_time");
    for (MachineId i = 0; i < m; ++i) idle_hist.observe(makespan - busy[i]);
  }
  return result;
}

}  // namespace rdp
