#include "sim/online_dispatcher.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "core/instance.hpp"
#include "core/realization.hpp"
#include "obs/hooks.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "sim/ready_heap.hpp"
#include "sim/workspace.hpp"

namespace rdp {

void dispatch_online(const Instance& instance, const Placement& placement,
                     const Realization& actual, const std::vector<TaskId>& priority,
                     std::span<const Time> initial_ready,
                     std::span<const double> speeds, SimWorkspace& ws,
                     DispatchResult& out) {
  const std::size_t n = instance.num_tasks();
  const MachineId m = instance.num_machines();
  if (placement.num_tasks() != n) {
    throw std::invalid_argument("dispatch_online: placement size mismatch");
  }
  if (placement.num_machines() != m) {
    throw std::invalid_argument(
        "dispatch_online: placement built for a different machine count");
  }
  if (actual.size() != n) {
    throw std::invalid_argument("dispatch_online: realization size mismatch");
  }
  if (priority.size() != n) {
    throw std::invalid_argument("dispatch_online: priority must cover every task");
  }
  if (!initial_ready.empty()) {
    if (initial_ready.size() != m) {
      throw std::invalid_argument("dispatch_online: initial_ready size mismatch");
    }
    for (Time t : initial_ready) {
      if (!(t >= 0.0) || !std::isfinite(t)) {
        throw std::invalid_argument(
            "dispatch_online: initial_ready times must be finite and non-negative");
      }
    }
  }
  if (!speeds.empty()) {
    if (speeds.size() != m) {
      throw std::invalid_argument("dispatch_online: speeds size mismatch");
    }
    for (double s : speeds) {
      if (!(s > 0.0)) {
        throw std::invalid_argument("dispatch_online: speeds must be positive");
      }
    }
  }

  ws.begin_run(n, m);
  MonotonicArena& arena = ws.arena;

  // One dispatch queue per distinct replica set. The bucketing itself was
  // interned by Placement at construction (a placement is dispatched
  // against many realizations in a sweep), so here a queue id is a plain
  // array read instead of a per-task hash + probe.
  const std::uint32_t num_queues = placement.num_distinct_sets();

  // CSR layout of the queues (sizes precomputed by the interning).
  // Filling in priority order makes each queue's slice already
  // rank-sorted -- no comparison sort needed.
  const std::span<std::uint32_t> queue_begin =
      arena.allocate_span<std::uint32_t>(num_queues + 1);
  queue_begin[0] = 0;
  for (std::uint32_t q = 0; q < num_queues; ++q) {
    queue_begin[q + 1] = queue_begin[q] + placement.set_population(q);
  }
  const std::span<std::uint32_t> queue_head =
      arena.allocate_span<std::uint32_t>(num_queues);
  const std::span<std::uint32_t> queue_end =
      arena.allocate_span<std::uint32_t>(num_queues);
  for (std::uint32_t q = 0; q < num_queues; ++q) {
    queue_head[q] = queue_begin[q];
    queue_end[q] = queue_begin[q];  // fill cursor, becomes queue_begin[q+1]
  }

  // CSR of which queues each machine serves.
  const std::span<std::uint32_t> machine_degree =
      arena.make_span<std::uint32_t>(m, 0);
  std::uint32_t max_degree = 0;
  for (std::uint32_t q = 0; q < num_queues; ++q) {
    for (MachineId i : placement.distinct_set(q)) {
      max_degree = std::max(max_degree, ++machine_degree[i]);
    }
  }
  const std::span<std::uint32_t> machine_begin =
      arena.allocate_span<std::uint32_t>(m + 1);
  machine_begin[0] = 0;
  for (MachineId i = 0; i < m; ++i) {
    machine_begin[i + 1] = machine_begin[i] + machine_degree[i];
  }
  const std::span<std::uint32_t> machine_fill =
      arena.allocate_span<std::uint32_t>(m);
  for (MachineId i = 0; i < m; ++i) machine_fill[i] = machine_begin[i];
  const std::span<std::uint32_t> machine_queues =
      arena.allocate_span<std::uint32_t>(machine_begin[m]);
  for (std::uint32_t q = 0; q < num_queues; ++q) {
    for (MachineId i : placement.distinct_set(q)) {
      machine_queues[machine_fill[i]++] = q;
    }
  }
  // With every machine serving at most one queue (disjoint replica sets
  // -- the group-replication regime), rank comparisons are unnecessary:
  // a machine's next task is always its queue's front (read through a
  // direct machine -> queue map). queue_ranks is only materialized for
  // the overlapping-queues general path.
  const bool single_queue_machines = max_degree <= 1;
  const std::span<std::uint32_t> machine_queue_of =
      arena.allocate_span<std::uint32_t>(m);
  for (MachineId i = 0; i < m; ++i) {
    machine_queue_of[i] = machine_begin[i] < machine_begin[i + 1]
                              ? machine_queues[machine_begin[i]]
                              : UINT32_MAX;
  }

  // Single pass over the priority order: permutation validation (a seen-
  // bitset -- n bits, not an n-word rank array) fused with the queue
  // fill. queue_ranks / queue_durations are position-indexed companions
  // to queue_tasks: the dispatch loop reads the front task's rank and
  // duration at `queue_head[q]`, a streaming access per queue. Looking up
  // rank[...] / actual[...] inside the loop instead would be a serialized
  // random cache miss per event; here the misses overlap across
  // independent iterations.
  const std::size_t bit_words = (n + 63) / 64;
  const std::span<std::uint64_t> seen = arena.make_span<std::uint64_t>(bit_words, 0);
  const std::span<TaskId> queue_tasks = arena.allocate_span<TaskId>(n);
  const std::span<std::uint32_t> queue_ranks =
      single_queue_machines ? std::span<std::uint32_t>{}
                            : arena.allocate_span<std::uint32_t>(n);
  const std::span<Time> queue_durations = arena.allocate_span<Time>(n);
  for (std::uint32_t r = 0; r < n; ++r) {
    const TaskId j = priority[r];
    if (j >= n || ((seen[j / 64] >> (j % 64)) & 1u) != 0) {
      throw std::invalid_argument("dispatch_online: priority is not a permutation");
    }
    seen[j / 64] |= std::uint64_t{1} << (j % 64);
    const std::uint32_t pos = queue_end[placement.set_id(j)]++;
    queue_tasks[pos] = j;
    if (!single_queue_machines) queue_ranks[pos] = r;
    queue_durations[pos] = actual[j];
  }

  // Observability: null sinks reduce every hook below to a dead branch on
  // a cached pointer; nothing here influences dispatch decisions.
  obs::MetricsRegistry* const mx = obs::metrics();
  obs::Tracer* const tr = obs::tracer();
  obs::ScopedSpan span(tr, "dispatch_online", "sim");

  out.schedule.assignment.machine_of.resize(n);
  out.schedule.start.resize(n);
  out.schedule.finish.resize(n);
  // The chronological trace is written with raw indexed stores into a
  // pre-sized vector (exactly n events are produced -- every task is
  // dispatched once), skipping push_back's per-event capacity check.
  out.trace.events.resize(n);
  DispatchEvent* const trace_out = out.trace.events.data();
  std::size_t emitted = 0;

  ReadyHeap pool;
  pool.init(arena, m, initial_ready);
  std::size_t remaining = n;
  while (remaining > 0) {
    if (pool.empty()) {
      // Unreachable for a valid placement: every remaining task has a
      // non-retired machine serving its queue.
      throw std::logic_error("dispatch_online: deadlock (all machines retired)");
    }
    const MachineId i = pool.top();

    // The queue whose front this machine runs next.
    std::uint32_t best_queue = UINT32_MAX;
    if (single_queue_machines) {
      // Disjoint replica sets: the machine's sole queue, or none.
      const std::uint32_t q = machine_queue_of[i];
      if (q != UINT32_MAX && queue_head[q] < queue_begin[q + 1]) best_queue = q;
    } else {
      // Highest-priority front task among this machine's queues.
      std::uint32_t best_rank = UINT32_MAX;
      for (std::uint32_t k = machine_begin[i]; k < machine_begin[i + 1]; ++k) {
        const std::uint32_t q = machine_queues[k];
        if (queue_head[q] >= queue_begin[q + 1]) continue;  // exhausted
        const std::uint32_t r = queue_ranks[queue_head[q]];
        if (r < best_rank) {
          best_rank = r;
          best_queue = q;
        }
      }
    }
    if (best_queue == UINT32_MAX) {
      pool.retire_top();  // no eligible work now or ever
      continue;
    }

    const std::uint32_t pos = queue_head[best_queue]++;
    const TaskId j = queue_tasks[pos];
    const Time duration =
        speeds.empty() ? queue_durations[pos] : queue_durations[pos] / speeds[i];
    const auto [start, finish] = pool.occupy_top(duration);
    (void)finish;
    trace_out[emitted++] = DispatchEvent{start, j, i, duration};
    --remaining;
  }

  // Scatter the chronological trace into the task-indexed schedule. Every
  // task appears exactly once (the loop above runs to remaining == 0), so
  // no pre-fill is needed; finish = start + duration reproduces
  // ReadyHeap::occupy_top's arithmetic bit-for-bit. One pass per output
  // array: each pass's random stores then span one array's pages instead
  // of three, which measures ~20% faster than a fused scatter.
  for (const DispatchEvent& e : out.trace.events) {
    out.schedule.assignment.machine_of[e.task] = e.machine;
  }
  for (const DispatchEvent& e : out.trace.events) {
    out.schedule.start[e.task] = e.when;
  }
  for (const DispatchEvent& e : out.trace.events) {
    out.schedule.finish[e.task] = e.when + e.actual;
  }

  if (mx) {
    mx->counter("sim.dispatch.calls").add(1);
    mx->counter("sim.dispatch.tasks").add(n);
    // Per-machine busy time is recovered from the finished schedule, so
    // the dispatch loop itself carries no instrumentation.
    const std::span<Time> busy = arena.make_span<Time>(m, 0.0);
    for (TaskId j = 0; j < n; ++j) {
      busy[out.schedule.assignment.machine_of[j]] +=
          out.schedule.finish[j] - out.schedule.start[j];
    }
    const Time makespan = out.schedule.makespan();
    obs::Histogram& idle_hist = mx->histogram("sim.dispatch.machine_idle_time");
    for (MachineId i = 0; i < m; ++i) idle_hist.observe(makespan - busy[i]);
  }

  // Flight recorder: one bulk reserve, starts and finishes in dispatch
  // order. One-shot dispatch has no arrival process -- every task is
  // eligible at t = 0, so kStart/kFinish are the whole lifecycle.
  if (obs::TimelineRecorder* const tl = obs::timeline(); tl != nullptr) {
    const auto block = tl->reserve(2 * static_cast<std::size_t>(n));
    std::size_t cursor = 0;
    for (const DispatchEvent& e : out.trace.events) {
      if (cursor >= block.count) break;
      block.when[cursor] = e.when;
      block.task[cursor] = e.task;
      block.machine[cursor] = e.machine;
      block.kind[cursor++] =
          static_cast<std::uint8_t>(obs::TimelineEventKind::kStart);
    }
    for (const DispatchEvent& e : out.trace.events) {
      if (cursor >= block.count) break;
      block.when[cursor] = e.when + e.actual;
      block.task[cursor] = e.task;
      block.machine[cursor] = e.machine;
      block.kind[cursor++] =
          static_cast<std::uint8_t>(obs::TimelineEventKind::kFinish);
    }
  }
}

DispatchResult dispatch_online(const Instance& instance, const Placement& placement,
                               const Realization& actual,
                               const std::vector<TaskId>& priority,
                               std::vector<Time> initial_ready,
                               std::vector<double> speeds) {
  DispatchResult result;
  dispatch_online(instance, placement, actual, priority,
                  std::span<const Time>(initial_ready),
                  std::span<const double>(speeds), thread_workspace(), result);
  return result;
}

}  // namespace rdp
