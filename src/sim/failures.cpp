#include "sim/failures.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <queue>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/instance.hpp"
#include "core/realization.hpp"
#include "obs/hooks.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rdp {

namespace {

constexpr Time kNever = std::numeric_limits<Time>::infinity();

enum class EventKind : int {
  kTaskFinish = 0,  // processed first at equal times (finish beats failure)
  kFailure = 1,
  kMachineFree = 2,
};

struct Event {
  Time when;
  EventKind kind;
  MachineId machine;
  TaskId task;           // kTaskFinish only
  std::uint64_t epoch;   // kTaskFinish: guards against killed attempts
  std::uint64_t seq;     // FIFO tie-break

  bool operator<(const Event& other) const noexcept {
    if (when != other.when) return when > other.when;  // min-heap
    if (kind != other.kind) return static_cast<int>(kind) > static_cast<int>(other.kind);
    // Simultaneously freed machines grab work in id order, matching the
    // plain dispatcher's MachinePool tie-break.
    if (kind == EventKind::kMachineFree && machine != other.machine) {
      return machine > other.machine;
    }
    return seq > other.seq;
  }
};

enum class TaskStatus { kWaiting, kRunning, kDone };

/// (priority rank, task) entries, best rank on top. Entries are
/// invalidated lazily: a pop whose task is no longer kWaiting is skipped.
/// Duplicates are harmless for the same reason.
using EligibleHeap =
    std::priority_queue<std::pair<std::uint32_t, TaskId>,
                        std::vector<std::pair<std::uint32_t, TaskId>>,
                        std::greater<>>;

}  // namespace

FailureDispatchResult dispatch_with_failures(const Instance& instance,
                                             const Placement& placement,
                                             const Realization& actual,
                                             const std::vector<TaskId>& priority,
                                             const FailurePlan& plan) {
  const std::size_t n = instance.num_tasks();
  const MachineId m = instance.num_machines();
  if (placement.num_tasks() != n || actual.size() != n || priority.size() != n) {
    throw std::invalid_argument("dispatch_with_failures: size mismatch");
  }
  if (placement.num_machines() != m) {
    throw std::invalid_argument(
        "dispatch_with_failures: placement built for a different machine count");
  }
  // `penalty < 0` alone lets NaN through (every comparison with NaN is
  // false) and a NaN duration would poison the event queue ordering.
  if (!(plan.refetch_penalty >= 0) || !std::isfinite(plan.refetch_penalty)) {
    throw std::invalid_argument(
        "dispatch_with_failures: refetch penalty must be finite and >= 0");
  }

  std::vector<Time> fail_time(m, kNever);
  for (const MachineFailure& f : plan.failures) {
    if (f.machine >= m) {
      throw std::invalid_argument("dispatch_with_failures: bad failure machine");
    }
    if (!(f.when >= 0) || !std::isfinite(f.when)) {
      throw std::invalid_argument(
          "dispatch_with_failures: failure time must be finite and >= 0");
    }
    fail_time[f.machine] = std::min(fail_time[f.machine], f.when);
  }

  std::vector<std::uint32_t> rank(n, UINT32_MAX);
  for (std::uint32_t r = 0; r < n; ++r) {
    const TaskId j = priority[r];
    if (j >= n || rank[j] != UINT32_MAX) {
      throw std::invalid_argument("dispatch_with_failures: bad priority permutation");
    }
    rank[j] = r;
  }

  obs::MetricsRegistry* const mx = obs::metrics();
  obs::Tracer* const tr = obs::tracer();
  obs::ScopedSpan span(tr, "dispatch_with_failures", "sim");

  std::vector<TaskStatus> status(n, TaskStatus::kWaiting);
  std::vector<bool> refetch(n, false);
  std::vector<Time> earliest(n, 0);
  std::vector<std::uint64_t> epoch(n, 0);
  std::vector<bool> failed(m, false);
  std::vector<bool> machine_idle(m, false);
  std::vector<TaskId> running_on(m, kNoTask);

  // Per-machine candidate heaps replace the former scan over every task
  // on every kMachineFree event. A task is pushed onto the heap of each
  // machine that could run it (its replica set initially; every live
  // machine once it refetches), and entries go stale in place when the
  // task is dispatched -- pops discard entries whose task is not waiting.
  // A machine's eligibility can only grow (refetch) or the machine dies
  // (its heap is never consulted again), so a popped entry with a waiting
  // task is always currently runnable on that machine.
  std::vector<EligibleHeap> candidates(m);
  for (TaskId j = 0; j < n; ++j) {
    for (MachineId i : placement.machines_for(j)) {
      candidates[i].emplace(rank[j], j);
    }
  }
  auto push_everywhere = [&](TaskId j) {
    for (MachineId i = 0; i < m; ++i) {
      if (!failed[i]) candidates[i].emplace(rank[j], j);
    }
  };

  FailureDispatchResult result;
  result.schedule.assignment = Assignment(n);
  result.schedule.start.assign(n, 0);
  result.schedule.finish.assign(n, 0);

  std::priority_queue<Event> events;
  std::uint64_t seq = 0;
  for (MachineId i = 0; i < m; ++i) {
    events.push(Event{0, EventKind::kMachineFree, i, kNoTask, 0, seq++});
    if (fail_time[i] < kNever) {
      events.push(Event{fail_time[i], EventKind::kFailure, i, kNoTask, 0, seq++});
    }
  }

  std::size_t remaining = n;

  auto duration_of = [&](TaskId j) {
    return actual[j] + (refetch[j] ? plan.refetch_penalty : Time{0});
  };

  // Requeue-time wakeups: when tasks become waiting again (failure) or a
  // machine finds only future-eligible tasks, we push kMachineFree events.
  auto wake_idle_machines = [&](Time t) {
    for (MachineId i = 0; i < m; ++i) {
      if (machine_idle[i] && !failed[i]) {
        machine_idle[i] = false;
        events.push(Event{t, EventKind::kMachineFree, i, kNoTask, 0, seq++});
      }
    }
  };

  // Scratch for entries popped too early (earliest[j] > now); they are
  // re-pushed after each selection so no candidate is lost.
  std::vector<std::pair<std::uint32_t, TaskId>> deferred;

  while (remaining > 0) {
    if (events.empty()) {
      throw std::invalid_argument(
          "dispatch_with_failures: tasks remain but no machine can run them "
          "(every machine failed)");
    }
    const Event e = events.top();
    events.pop();

    switch (e.kind) {
      case EventKind::kTaskFinish: {
        const TaskId j = e.task;
        if (status[j] != TaskStatus::kRunning || epoch[j] != e.epoch) {
          break;  // this attempt was killed by a failure
        }
        status[j] = TaskStatus::kDone;
        running_on[e.machine] = kNoTask;
        --remaining;
        events.push(Event{e.when, EventKind::kMachineFree, e.machine, kNoTask, 0,
                          seq++});
        break;
      }
      case EventKind::kFailure: {
        const MachineId i = e.machine;
        if (failed[i]) break;
        failed[i] = true;
        machine_idle[i] = false;
        if (mx) mx->counter("sim.failures.machine_failures").add(1);
        if (tr) {
          tr->instant("machine_failure", "sim",
                      "{\"machine\":" + std::to_string(i) + "}");
        }
        // Kill the running attempt, if any.
        TaskId restarted = kNoTask;
        if (running_on[i] != kNoTask) {
          const TaskId j = running_on[i];
          running_on[i] = kNoTask;
          status[j] = TaskStatus::kWaiting;
          ++epoch[j];
          earliest[j] = e.when;
          ++result.restarts;
          restarted = j;
        }
        // Any waiting task whose every replica is gone must refetch and
        // becomes runnable on every surviving machine.
        for (TaskId j = 0; j < n; ++j) {
          if (status[j] != TaskStatus::kWaiting || refetch[j]) continue;
          bool any_alive = false;
          for (MachineId machine : placement.machines_for(j)) {
            if (!failed[machine]) {
              any_alive = true;
              break;
            }
          }
          if (!any_alive) {
            refetch[j] = true;
            ++result.refetches;
            push_everywhere(j);
          }
        }
        // Re-advertise the killed attempt. A previously-refetched task
        // must be pushed everywhere again: its old entries were consumed
        // (or lazily drained) when it was dispatched the first time.
        if (restarted != kNoTask) {
          if (refetch[restarted]) {
            push_everywhere(restarted);
          } else {
            for (MachineId machine : placement.machines_for(restarted)) {
              if (!failed[machine]) {
                candidates[machine].emplace(rank[restarted], restarted);
              }
            }
          }
        }
        wake_idle_machines(e.when);
        break;
      }
      case EventKind::kMachineFree: {
        const MachineId i = e.machine;
        if (failed[i] || running_on[i] != kNoTask) break;
        // Best-ranked waiting candidate runnable here, now or later.
        TaskId best_now = kNoTask;
        Time soonest_future = kNever;
        EligibleHeap& heap = candidates[i];
        deferred.clear();
        while (!heap.empty()) {
          const auto [r, j] = heap.top();
          if (status[j] != TaskStatus::kWaiting) {
            heap.pop();  // stale: dispatched or done since it was pushed
            continue;
          }
          if (earliest[j] > e.when) {
            soonest_future = std::min(soonest_future, earliest[j]);
            deferred.emplace_back(r, j);
            heap.pop();
            continue;
          }
          best_now = j;
          heap.pop();
          break;
        }
        for (const auto& entry : deferred) heap.push(entry);
        if (best_now != kNoTask) {
          const TaskId j = best_now;
          status[j] = TaskStatus::kRunning;
          running_on[i] = j;
          const Time dur = duration_of(j);
          result.schedule.assignment.machine_of[j] = i;
          result.schedule.start[j] = e.when;
          result.schedule.finish[j] = e.when + dur;
          result.trace.events.push_back(DispatchEvent{e.when, j, i, dur});
          events.push(Event{e.when + dur, EventKind::kTaskFinish, i, j, epoch[j],
                            seq++});
        } else if (soonest_future < kNever) {
          events.push(Event{soonest_future, EventKind::kMachineFree, i, kNoTask, 0,
                            seq++});
        } else {
          machine_idle[i] = true;  // re-woken on the next requeue
        }
        break;
      }
    }
  }

  result.makespan = result.schedule.makespan();
  if (mx) {
    mx->counter("sim.failures.calls").add(1);
    mx->counter("sim.failures.tasks").add(n);
    mx->counter("sim.failures.restarts").add(result.restarts);
    mx->counter("sim.failures.refetches").add(result.refetches);
  }
  return result;
}

}  // namespace rdp
