#include "sim/failures.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <stdexcept>
#include <utility>

#include "core/instance.hpp"
#include "core/realization.hpp"
#include "obs/hooks.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "sim/workspace.hpp"

namespace rdp {

namespace {

constexpr Time kNever = std::numeric_limits<Time>::infinity();

enum : std::uint8_t { kWaiting = 0, kRunning = 1, kDone = 2 };

// (priority rank, task) min-heaps over the workspace's vectors. Entries
// are invalidated lazily: a pop whose task is no longer kWaiting is
// skipped. Duplicates are harmless for the same reason.
inline void heap_push(std::vector<RankedTask>& heap, RankedTask entry) {
  heap.push_back(entry);
  std::push_heap(heap.begin(), heap.end(), std::greater<>{});
}

inline void heap_pop(std::vector<RankedTask>& heap) {
  std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
  heap.pop_back();
}

}  // namespace

void dispatch_with_failures(const Instance& instance, const Placement& placement,
                            const Realization& actual,
                            const std::vector<TaskId>& priority,
                            const FailurePlan& plan, SimWorkspace& ws,
                            FailureDispatchResult& out) {
  const std::size_t n = instance.num_tasks();
  const MachineId m = instance.num_machines();
  if (placement.num_tasks() != n || actual.size() != n || priority.size() != n) {
    throw std::invalid_argument("dispatch_with_failures: size mismatch");
  }
  if (placement.num_machines() != m) {
    throw std::invalid_argument(
        "dispatch_with_failures: placement built for a different machine count");
  }
  // `penalty < 0` alone lets NaN through (every comparison with NaN is
  // false) and a NaN duration would poison the event queue ordering.
  if (!(plan.refetch_penalty >= 0) || !std::isfinite(plan.refetch_penalty)) {
    throw std::invalid_argument(
        "dispatch_with_failures: refetch penalty must be finite and >= 0");
  }

  ws.begin_run(n, m);
  MonotonicArena& arena = ws.arena;

  const std::span<Time> fail_time = arena.make_span<Time>(m, kNever);
  for (const MachineFailure& f : plan.failures) {
    if (f.machine >= m) {
      throw std::invalid_argument("dispatch_with_failures: bad failure machine");
    }
    if (!(f.when >= 0) || !std::isfinite(f.when)) {
      throw std::invalid_argument(
          "dispatch_with_failures: failure time must be finite and >= 0");
    }
    fail_time[f.machine] = std::min(fail_time[f.machine], f.when);
  }

  const std::span<std::uint32_t> rank = arena.make_span<std::uint32_t>(n, UINT32_MAX);
  for (std::uint32_t r = 0; r < n; ++r) {
    const TaskId j = priority[r];
    if (j >= n || rank[j] != UINT32_MAX) {
      throw std::invalid_argument("dispatch_with_failures: bad priority permutation");
    }
    rank[j] = r;
  }

  obs::MetricsRegistry* const mx = obs::metrics();
  obs::Tracer* const tr = obs::tracer();
  obs::TimelineRecorder* const tl = obs::timeline();
  obs::ScopedSpan span(tr, "dispatch_with_failures", "sim");

  // SoA hot fields, all arena-backed.
  const std::span<std::uint8_t> status = arena.make_span<std::uint8_t>(n, kWaiting);
  const std::span<std::uint8_t> refetch = arena.make_span<std::uint8_t>(n, 0);
  const std::span<Time> earliest = arena.make_span<Time>(n, 0);
  const std::span<std::uint32_t> epoch = arena.make_span<std::uint32_t>(n, 0);
  const std::span<std::uint8_t> failed = arena.make_span<std::uint8_t>(m, 0);
  const std::span<std::uint8_t> machine_idle = arena.make_span<std::uint8_t>(m, 0);
  const std::span<TaskId> running_on = arena.make_span<TaskId>(m, kNoTask);

  // Per-task live-replica counts plus the machine->tasks CSR that keeps
  // them current: a failure decrements only the tasks hosted on the dead
  // machine (the former implementation rescanned every task's whole
  // replica set on every failure).
  const std::span<std::uint32_t> alive_replicas = arena.allocate_span<std::uint32_t>(n);
  const std::span<std::uint32_t> host_degree = arena.make_span<std::uint32_t>(m, 0);
  for (TaskId j = 0; j < n; ++j) {
    const auto& set = placement.machines_for(j);
    alive_replicas[j] = static_cast<std::uint32_t>(set.size());
    for (MachineId i : set) ++host_degree[i];
  }
  const std::span<std::uint32_t> host_begin = arena.allocate_span<std::uint32_t>(m + 1);
  host_begin[0] = 0;
  for (MachineId i = 0; i < m; ++i) host_begin[i + 1] = host_begin[i] + host_degree[i];
  const std::span<std::uint32_t> host_fill = arena.allocate_span<std::uint32_t>(m);
  for (MachineId i = 0; i < m; ++i) host_fill[i] = host_begin[i];
  const std::span<TaskId> host_tasks = arena.allocate_span<TaskId>(host_begin[m]);
  for (TaskId j = 0; j < n; ++j) {
    for (MachineId i : placement.machines_for(j)) host_tasks[host_fill[i]++] = j;
  }

  // Per-machine candidate heaps: a task is pushed onto the heap of each
  // machine that could run it (its replica set initially; every live
  // machine once it refetches), and entries go stale in place when the
  // task is dispatched -- pops discard entries whose task is not waiting.
  // A machine's eligibility can only grow (refetch) or the machine dies
  // (its heap is never consulted again), so a popped entry with a waiting
  // task is always currently runnable on that machine.
  for (TaskId j = 0; j < n; ++j) {
    for (MachineId i : placement.machines_for(j)) {
      heap_push(ws.machine_heaps[i], RankedTask{rank[j], j});
    }
  }
  auto push_everywhere = [&](TaskId j) {
    for (MachineId i = 0; i < m; ++i) {
      if (!failed[i]) heap_push(ws.machine_heaps[i], RankedTask{rank[j], j});
    }
  };

  out.schedule.assignment.machine_of.assign(n, kNoMachine);
  out.schedule.start.assign(n, 0);
  out.schedule.finish.assign(n, 0);
  out.trace.events.clear();
  out.trace.events.reserve(n);
  out.restarts = 0;
  out.refetches = 0;
  out.makespan = 0;
  out.events_processed = 0;

  SimEventQueue& events = ws.events;
  std::uint64_t seq = 0;
  for (MachineId i = 0; i < m; ++i) {
    events.push(SimEvent{0, kSimEventFree, i, kNoTask, 0, seq++});
    if (fail_time[i] < kNever) {
      events.push(SimEvent{fail_time[i], kSimEventFailure, i, kNoTask, 0, seq++});
    }
  }

  std::size_t remaining = n;

  auto duration_of = [&](TaskId j) {
    return actual[j] + (refetch[j] ? plan.refetch_penalty : Time{0});
  };

  // Requeue-time wakeups: when tasks become waiting again (failure) or a
  // machine finds only future-eligible tasks, we push machine-free events.
  auto wake_idle_machines = [&](Time t) {
    for (MachineId i = 0; i < m; ++i) {
      if (machine_idle[i] && !failed[i]) {
        machine_idle[i] = 0;
        events.push(SimEvent{t, kSimEventFree, i, kNoTask, 0, seq++});
      }
    }
  };

  while (remaining > 0) {
    if (events.empty()) {
      throw std::invalid_argument(
          "dispatch_with_failures: tasks remain but no machine can run them "
          "(every machine failed)");
    }
    const SimEvent e = events.pop();
    ++out.events_processed;

    switch (e.kind) {
      case kSimEventFinish: {
        const TaskId j = e.task;
        if (status[j] != kRunning || epoch[j] != e.aux) {
          break;  // this attempt was killed by a failure
        }
        status[j] = kDone;
        running_on[e.machine] = kNoTask;
        --remaining;
        events.push(SimEvent{e.when, kSimEventFree, e.machine, kNoTask, 0, seq++});
        break;
      }
      case kSimEventFailure: {
        const MachineId i = e.machine;
        if (failed[i]) break;
        failed[i] = 1;
        machine_idle[i] = 0;
        if (mx) mx->counter("sim.failures.machine_failures").add(1);
        if (tr) {
          tr->instant("machine_failure", "sim",
                      "{\"machine\":" + std::to_string(i) + "}");
        }
        if (tl) tl->record(e.when, obs::TimelineEventKind::kFailure,
                           obs::kTimelineNone, i);
        // Kill the running attempt, if any.
        TaskId restarted = kNoTask;
        if (running_on[i] != kNoTask) {
          const TaskId j = running_on[i];
          running_on[i] = kNoTask;
          status[j] = kWaiting;
          ++epoch[j];
          earliest[j] = e.when;
          ++out.restarts;
          restarted = j;
        }
        // A waiting task losing its last replica must refetch and becomes
        // runnable on every surviving machine. Counts make this exact: a
        // non-refetched task can only hit zero live replicas while
        // waiting (running implies a live replica hosts it), so the
        // transition moment is the marking moment.
        for (std::uint32_t k = host_begin[i]; k < host_begin[i + 1]; ++k) {
          const TaskId j = host_tasks[k];
          if (--alive_replicas[j] == 0 && status[j] == kWaiting && !refetch[j]) {
            refetch[j] = 1;
            ++out.refetches;
            if (tl) tl->record(e.when, obs::TimelineEventKind::kRefetch, j);
            push_everywhere(j);
          }
        }
        // Re-advertise the killed attempt. A previously-refetched task
        // must be pushed everywhere again: its old entries were consumed
        // (or lazily drained) when it was dispatched the first time.
        if (restarted != kNoTask) {
          if (refetch[restarted]) {
            push_everywhere(restarted);
          } else {
            for (MachineId machine : placement.machines_for(restarted)) {
              if (!failed[machine]) {
                heap_push(ws.machine_heaps[machine],
                          RankedTask{rank[restarted], restarted});
              }
            }
          }
        }
        wake_idle_machines(e.when);
        break;
      }
      case kSimEventFree: {
        const MachineId i = e.machine;
        if (failed[i] || running_on[i] != kNoTask) break;
        // Best-ranked waiting candidate runnable here, now or later.
        TaskId best_now = kNoTask;
        Time soonest_future = kNever;
        std::vector<RankedTask>& heap = ws.machine_heaps[i];
        ws.deferred.clear();
        while (!heap.empty()) {
          const auto [r, j] = heap.front();
          if (status[j] != kWaiting) {
            heap_pop(heap);  // stale: dispatched or done since it was pushed
            continue;
          }
          if (earliest[j] > e.when) {
            soonest_future = std::min(soonest_future, earliest[j]);
            ws.deferred.push_back(RankedTask{r, j});
            heap_pop(heap);
            continue;
          }
          best_now = j;
          heap_pop(heap);
          break;
        }
        for (const RankedTask& entry : ws.deferred) heap_push(heap, entry);
        if (best_now != kNoTask) {
          const TaskId j = best_now;
          status[j] = kRunning;
          running_on[i] = j;
          const Time dur = duration_of(j);
          out.schedule.assignment.machine_of[j] = i;
          out.schedule.start[j] = e.when;
          out.schedule.finish[j] = e.when + dur;
          out.trace.events.push_back(DispatchEvent{e.when, j, i, dur});
          events.push(SimEvent{e.when + dur, kSimEventFinish, i, j, epoch[j], seq++});
        } else if (soonest_future < kNever) {
          events.push(
              SimEvent{soonest_future, kSimEventFree, i, kNoTask, 0, seq++});
        } else {
          machine_idle[i] = 1;  // re-woken on the next requeue
        }
        break;
      }
    }
  }

  out.makespan = out.schedule.makespan();
  if (mx) {
    mx->counter("sim.failures.calls").add(1);
    mx->counter("sim.failures.tasks").add(n);
    mx->counter("sim.failures.restarts").add(out.restarts);
    mx->counter("sim.failures.refetches").add(out.refetches);
  }

  // Flight recorder: failures/refetches were recorded inline at their
  // event times (low-rate); the surviving attempt of every task comes
  // from the final schedule in one bulk block. Killed attempts appear in
  // out.trace but not here -- the timeline answers "when did task j
  // actually run", the kFailure markers explain the gaps.
  if (tl != nullptr) {
    const auto block = tl->reserve(2 * static_cast<std::size_t>(n));
    std::size_t cursor = 0;
    for (TaskId j = 0; j < n && cursor < block.count; ++j, ++cursor) {
      block.when[cursor] = out.schedule.start[j];
      block.task[cursor] = j;
      block.machine[cursor] = out.schedule.assignment.machine_of[j];
      block.kind[cursor] =
          static_cast<std::uint8_t>(obs::TimelineEventKind::kStart);
    }
    for (TaskId j = 0; j < n && cursor < block.count; ++j, ++cursor) {
      block.when[cursor] = out.schedule.finish[j];
      block.task[cursor] = j;
      block.machine[cursor] = out.schedule.assignment.machine_of[j];
      block.kind[cursor] =
          static_cast<std::uint8_t>(obs::TimelineEventKind::kFinish);
    }
  }
}

FailureDispatchResult dispatch_with_failures(const Instance& instance,
                                             const Placement& placement,
                                             const Realization& actual,
                                             const std::vector<TaskId>& priority,
                                             const FailurePlan& plan) {
  FailureDispatchResult result;
  dispatch_with_failures(instance, placement, actual, priority, plan,
                         thread_workspace(), result);
  return result;
}

}  // namespace rdp
