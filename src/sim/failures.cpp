#include "sim/failures.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>
#include <vector>

#include "core/instance.hpp"
#include "core/realization.hpp"
#include "obs/hooks.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rdp {

namespace {

constexpr Time kNever = std::numeric_limits<Time>::infinity();

enum class EventKind : int {
  kTaskFinish = 0,  // processed first at equal times (finish beats failure)
  kFailure = 1,
  kMachineFree = 2,
};

struct Event {
  Time when;
  EventKind kind;
  MachineId machine;
  TaskId task;           // kTaskFinish only
  std::uint64_t epoch;   // kTaskFinish: guards against killed attempts
  std::uint64_t seq;     // FIFO tie-break

  bool operator<(const Event& other) const noexcept {
    if (when != other.when) return when > other.when;  // min-heap
    if (kind != other.kind) return static_cast<int>(kind) > static_cast<int>(other.kind);
    // Simultaneously freed machines grab work in id order, matching the
    // plain dispatcher's MachinePool tie-break.
    if (kind == EventKind::kMachineFree && machine != other.machine) {
      return machine > other.machine;
    }
    return seq > other.seq;
  }
};

enum class TaskStatus { kWaiting, kRunning, kDone };

}  // namespace

FailureDispatchResult dispatch_with_failures(const Instance& instance,
                                             const Placement& placement,
                                             const Realization& actual,
                                             const std::vector<TaskId>& priority,
                                             const FailurePlan& plan) {
  const std::size_t n = instance.num_tasks();
  const MachineId m = instance.num_machines();
  if (placement.num_tasks() != n || actual.size() != n || priority.size() != n) {
    throw std::invalid_argument("dispatch_with_failures: size mismatch");
  }
  if (placement.num_machines() != m) {
    throw std::invalid_argument(
        "dispatch_with_failures: placement built for a different machine count");
  }
  if (plan.refetch_penalty < 0) {
    throw std::invalid_argument("dispatch_with_failures: negative refetch penalty");
  }

  std::vector<Time> fail_time(m, kNever);
  for (const MachineFailure& f : plan.failures) {
    if (f.machine >= m) {
      throw std::invalid_argument("dispatch_with_failures: bad failure machine");
    }
    if (f.when < 0) {
      throw std::invalid_argument("dispatch_with_failures: negative failure time");
    }
    fail_time[f.machine] = std::min(fail_time[f.machine], f.when);
  }

  std::vector<std::uint32_t> rank(n, UINT32_MAX);
  for (std::uint32_t r = 0; r < n; ++r) {
    const TaskId j = priority[r];
    if (j >= n || rank[j] != UINT32_MAX) {
      throw std::invalid_argument("dispatch_with_failures: bad priority permutation");
    }
    rank[j] = r;
  }

  obs::MetricsRegistry* const mx = obs::metrics();
  obs::Tracer* const tr = obs::tracer();
  obs::ScopedSpan span(tr, "dispatch_with_failures", "sim");

  std::vector<TaskStatus> status(n, TaskStatus::kWaiting);
  std::vector<bool> refetch(n, false);
  std::vector<Time> earliest(n, 0);
  std::vector<std::uint64_t> epoch(n, 0);
  std::vector<bool> failed(m, false);
  std::vector<bool> machine_idle(m, false);
  std::vector<TaskId> running_on(m, kNoTask);

  FailureDispatchResult result;
  result.schedule.assignment = Assignment(n);
  result.schedule.start.assign(n, 0);
  result.schedule.finish.assign(n, 0);

  std::priority_queue<Event> events;
  std::uint64_t seq = 0;
  for (MachineId i = 0; i < m; ++i) {
    events.push(Event{0, EventKind::kMachineFree, i, kNoTask, 0, seq++});
    if (fail_time[i] < kNever) {
      events.push(Event{fail_time[i], EventKind::kFailure, i, kNoTask, 0, seq++});
    }
  }

  std::size_t remaining = n;

  auto eligible = [&](TaskId j, MachineId i) {
    if (failed[i]) return false;
    return refetch[j] ? true : placement.allows(j, i);
  };

  auto duration_of = [&](TaskId j) {
    return actual[j] + (refetch[j] ? plan.refetch_penalty : Time{0});
  };

  // Requeue-time wakeups: when tasks become waiting again (failure) or a
  // machine finds only future-eligible tasks, we push kMachineFree events.
  auto wake_idle_machines = [&](Time t) {
    for (MachineId i = 0; i < m; ++i) {
      if (machine_idle[i] && !failed[i]) {
        machine_idle[i] = false;
        events.push(Event{t, EventKind::kMachineFree, i, kNoTask, 0, seq++});
      }
    }
  };

  while (remaining > 0) {
    if (events.empty()) {
      throw std::invalid_argument(
          "dispatch_with_failures: tasks remain but no machine can run them "
          "(every machine failed)");
    }
    const Event e = events.top();
    events.pop();

    switch (e.kind) {
      case EventKind::kTaskFinish: {
        const TaskId j = e.task;
        if (status[j] != TaskStatus::kRunning || epoch[j] != e.epoch) {
          break;  // this attempt was killed by a failure
        }
        status[j] = TaskStatus::kDone;
        running_on[e.machine] = kNoTask;
        --remaining;
        events.push(Event{e.when, EventKind::kMachineFree, e.machine, kNoTask, 0,
                          seq++});
        break;
      }
      case EventKind::kFailure: {
        const MachineId i = e.machine;
        if (failed[i]) break;
        failed[i] = true;
        machine_idle[i] = false;
        if (mx) mx->counter("sim.failures.machine_failures").add(1);
        if (tr) {
          tr->instant("machine_failure", "sim",
                      "{\"machine\":" + std::to_string(i) + "}");
        }
        // Kill the running attempt, if any.
        if (running_on[i] != kNoTask) {
          const TaskId j = running_on[i];
          running_on[i] = kNoTask;
          status[j] = TaskStatus::kWaiting;
          ++epoch[j];
          earliest[j] = e.when;
          ++result.restarts;
        }
        // Any waiting task whose every replica is gone must refetch.
        for (TaskId j = 0; j < n; ++j) {
          if (status[j] != TaskStatus::kWaiting || refetch[j]) continue;
          bool any_alive = false;
          for (MachineId machine : placement.machines_for(j)) {
            if (!failed[machine]) {
              any_alive = true;
              break;
            }
          }
          if (!any_alive) {
            refetch[j] = true;
            ++result.refetches;
          }
        }
        wake_idle_machines(e.when);
        break;
      }
      case EventKind::kMachineFree: {
        const MachineId i = e.machine;
        if (failed[i] || running_on[i] != kNoTask) break;
        // Highest-priority waiting task runnable here, now or later.
        TaskId best_now = kNoTask;
        std::uint32_t best_now_rank = UINT32_MAX;
        Time soonest_future = kNever;
        for (TaskId j = 0; j < n; ++j) {
          if (status[j] != TaskStatus::kWaiting || !eligible(j, i)) continue;
          if (earliest[j] <= e.when) {
            if (rank[j] < best_now_rank) {
              best_now_rank = rank[j];
              best_now = j;
            }
          } else {
            soonest_future = std::min(soonest_future, earliest[j]);
          }
        }
        if (best_now != kNoTask) {
          const TaskId j = best_now;
          status[j] = TaskStatus::kRunning;
          running_on[i] = j;
          const Time dur = duration_of(j);
          result.schedule.assignment.machine_of[j] = i;
          result.schedule.start[j] = e.when;
          result.schedule.finish[j] = e.when + dur;
          result.trace.events.push_back(DispatchEvent{e.when, j, i, dur});
          events.push(Event{e.when + dur, EventKind::kTaskFinish, i, j, epoch[j],
                            seq++});
        } else if (soonest_future < kNever) {
          events.push(Event{soonest_future, EventKind::kMachineFree, i, kNoTask, 0,
                            seq++});
        } else {
          machine_idle[i] = true;  // re-woken on the next requeue
        }
        break;
      }
    }
  }

  result.makespan = result.schedule.makespan();
  if (mx) {
    mx->counter("sim.failures.calls").add(1);
    mx->counter("sim.failures.tasks").add(n);
    mx->counter("sim.failures.restarts").add(result.restarts);
    mx->counter("sim.failures.refetches").add(result.refetches);
  }
  return result;
}

}  // namespace rdp
