#include "workload/trace.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "io/csv.hpp"
#include "perturb/alpha_fit.hpp"

namespace rdp {

void write_trace(std::ostream& out, const Trace& trace) {
  const bool streaming = trace.has_arrivals();
  out << "# rdp trace: one record per task (estimate,actual,size"
      << (streaming ? ",arrival" : "") << ")\n";
  CsvWriter csv(out);
  csv.typed_row("trace", trace.size());
  for (const TraceRecord& r : trace.records) {
    if (streaming) {
      csv.typed_row(r.estimate, r.actual, r.size, r.arrival);
    } else {
      csv.typed_row(r.estimate, r.actual, r.size);
    }
  }
}

std::string trace_to_string(const Trace& trace) {
  std::ostringstream os;
  write_trace(os, trace);
  return os.str();
}

namespace {

double parse_cell(const std::string& cell, const char* what) {
  std::size_t consumed = 0;
  double value = 0;
  try {
    value = std::stod(cell, &consumed);
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string("parse_trace: bad ") + what + " '" +
                                cell + "'");
  }
  if (consumed != cell.size()) {
    throw std::invalid_argument(std::string("parse_trace: trailing junk in ") +
                                what);
  }
  return value;
}

}  // namespace

Trace parse_trace(const std::string& text) {
  std::string cleaned;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (!line.empty() && line[0] == '#') continue;
    cleaned += line;
    cleaned += '\n';
  }
  const auto rows = parse_csv(cleaned);
  if (rows.empty() || rows.front().size() != 2 || rows.front()[0] != "trace") {
    throw std::invalid_argument("parse_trace: missing 'trace,<count>' header");
  }
  const auto declared = static_cast<std::size_t>(parse_cell(rows[0][1], "count"));
  Trace trace;
  std::size_t width = 0;  // 3 or 4, locked in by the first record
  for (std::size_t r = 1; r < rows.size(); ++r) {
    if (rows[r].size() != 3 && rows[r].size() != 4) {
      throw std::invalid_argument(
          "parse_trace: records need estimate,actual,size[,arrival]");
    }
    if (width == 0) {
      width = rows[r].size();
    } else if (rows[r].size() != width) {
      throw std::invalid_argument(
          "parse_trace: mixed 3- and 4-column records (arrival column must "
          "cover every task or none)");
    }
    TraceRecord record;
    record.estimate = parse_cell(rows[r][0], "estimate");
    record.actual = parse_cell(rows[r][1], "actual");
    record.size = parse_cell(rows[r][2], "size");
    if (!(record.estimate > 0.0) || !(record.actual > 0.0) || record.size < 0.0) {
      throw std::invalid_argument("parse_trace: non-positive time or negative size");
    }
    if (width == 4) {
      record.arrival = parse_cell(rows[r][3], "arrival");
      if (!(record.arrival >= 0.0)) {
        throw std::invalid_argument("parse_trace: negative arrival time");
      }
    }
    trace.records.push_back(record);
  }
  if (trace.size() != declared) {
    throw std::invalid_argument("parse_trace: record count does not match header");
  }
  return trace;
}

void save_trace(const std::string& path, const Trace& trace) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_trace: cannot open " + path);
  write_trace(out, trace);
  if (!out) throw std::runtime_error("save_trace: write failed for " + path);
}

Trace load_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_trace: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_trace(buffer.str());
}

ReplayableWorkload workload_from_trace(const Trace& trace, MachineId num_machines,
                                       double alpha_override) {
  std::vector<Observation> history;
  history.reserve(trace.size());
  for (const TraceRecord& r : trace.records) {
    history.push_back({r.estimate, r.actual});
  }
  const double fitted = fit_alpha_max(history);
  double alpha = fitted;
  if (alpha_override > 0.0) {
    if (alpha_override < fitted * (1.0 - 1e-12)) {
      throw std::invalid_argument(
          "workload_from_trace: alpha override below the trace's misprediction "
          "factor");
    }
    alpha = alpha_override;
  }

  std::vector<Task> tasks;
  tasks.reserve(trace.size());
  ReplayableWorkload out;
  for (const TraceRecord& r : trace.records) {
    tasks.push_back(Task{r.estimate, r.size});
    out.actual.actual.push_back(r.actual);
  }
  out.instance = Instance(std::move(tasks), num_machines, alpha);
  return out;
}

Trace make_synthetic_trace(const Instance& instance, const Realization& actual,
                           const std::vector<Time>& arrivals) {
  if (actual.size() != instance.num_tasks()) {
    throw std::invalid_argument("make_synthetic_trace: size mismatch");
  }
  if (!arrivals.empty() && arrivals.size() != instance.num_tasks()) {
    throw std::invalid_argument("make_synthetic_trace: arrivals size mismatch");
  }
  Trace trace;
  trace.records.reserve(instance.num_tasks());
  for (TaskId j = 0; j < instance.num_tasks(); ++j) {
    TraceRecord record{instance.estimate(j), actual[j], instance.size(j)};
    if (!arrivals.empty()) {
      if (!(arrivals[j] >= 0.0)) {
        throw std::invalid_argument("make_synthetic_trace: negative arrival");
      }
      record.arrival = arrivals[j];
    }
    trace.records.push_back(record);
  }
  return trace;
}

}  // namespace rdp
