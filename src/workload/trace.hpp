// Trace-driven workloads: a minimal execution-trace format (CSV) holding
// per-task estimate, actual runtime, and data size -- the shape of
// historical cluster logs. A trace yields (a) an Instance whose alpha is
// calibrated from the trace itself and (b) the recorded Realization, so
// algorithms can be replayed against exactly what happened.
//
// Format (after optional '#' comment lines):
//   header row: trace,<num_records>
//   one row per record: estimate,actual,size
//   or, with release times: estimate,actual,size,arrival
//
// The 4-column form records when each task entered the system (seconds,
// >= 0) and feeds the streaming dispatcher (serve/). A trace is either
// all 3-column or all 4-column; mixing widths is a parse error. Traces
// without the column replay as batch workloads (every task at t = 0).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/instance.hpp"
#include "core/realization.hpp"
#include "core/types.hpp"

namespace rdp {

struct TraceRecord {
  Time estimate = 0;
  Time actual = 0;
  double size = 1.0;
  Time arrival = -1;  ///< release time; < 0 = not recorded (batch trace)
};

struct Trace {
  std::vector<TraceRecord> records;

  [[nodiscard]] std::size_t size() const noexcept { return records.size(); }

  /// True when the trace was written in the 4-column streaming format
  /// (parse enforces all-or-nothing, so checking one record suffices).
  [[nodiscard]] bool has_arrivals() const noexcept {
    return !records.empty() && records.front().arrival >= 0;
  }
};

/// Serializes a trace to the CSV dialect above.
void write_trace(std::ostream& out, const Trace& trace);
[[nodiscard]] std::string trace_to_string(const Trace& trace);

/// Parses a serialized trace; throws std::invalid_argument on malformed
/// input (bad header, non-numeric cells, non-positive times).
[[nodiscard]] Trace parse_trace(const std::string& text);

/// File convenience wrappers (std::runtime_error on I/O failure).
void save_trace(const std::string& path, const Trace& trace);
[[nodiscard]] Trace load_trace(const std::string& path);

/// The replayable pair: instance + the realization that actually
/// happened. `alpha` is fitted from the trace (max misprediction factor)
/// unless `alpha_override >= 1` is given; an override smaller than the
/// fitted value throws (the recorded actuals would violate the band).
struct ReplayableWorkload {
  Instance instance;
  Realization actual;
};

[[nodiscard]] ReplayableWorkload workload_from_trace(const Trace& trace,
                                                     MachineId num_machines,
                                                     double alpha_override = 0.0);

/// Synthesizes a trace by pairing a generated instance with a noise-model
/// realization -- useful for producing shareable test fixtures. Pass
/// `arrivals` (one release time per task) to emit the 4-column streaming
/// format; empty emits the batch 3-column form.
[[nodiscard]] Trace make_synthetic_trace(const Instance& instance,
                                         const Realization& actual,
                                         const std::vector<Time>& arrivals = {});

}  // namespace rdp
