#include "workload/profiles.hpp"

#include <stdexcept>

#include "workload/generators.hpp"
#include "workload/matrix_block.hpp"

namespace rdp {

namespace {

WorkloadParams params_for(std::size_t n, MachineId m, double alpha,
                          std::uint64_t seed) {
  WorkloadParams p;
  p.num_tasks = n;
  p.num_machines = m;
  p.alpha = alpha;
  p.seed = seed;
  return p;
}

Instance build_out_of_core(std::size_t n, MachineId m, double alpha,
                           std::uint64_t seed) {
  MatrixBlockParams p;
  p.num_blocks = n;
  p.rows_per_block = 48;  // coarse blocks keep the row-degree tail visible
  p.degree_zipf_exponent = 1.05;
  p.num_machines = m;
  p.alpha = alpha;
  p.seed = seed;
  return make_matrix_block_workload(p).instance;
}

Instance build_mapreduce(std::size_t n, MachineId m, double alpha,
                         std::uint64_t seed) {
  return bimodal_workload(params_for(n, m, alpha, seed), 1.0, 8.0, 0.15);
}

Instance build_web(std::size_t n, MachineId m, double alpha, std::uint64_t seed) {
  return lognormal_workload(params_for(n, m, alpha, seed), 0.0, 0.6);
}

Instance build_batch(std::size_t n, MachineId m, double alpha, std::uint64_t seed) {
  return uniform_workload(params_for(n, m, alpha, seed), 5.0, 15.0);
}

Instance build_ml(std::size_t n, MachineId m, double alpha, std::uint64_t seed) {
  return bimodal_workload(params_for(n, m, alpha, seed), 4.0, 12.0, 0.05);
}

}  // namespace

const std::vector<WorkloadProfile>& builtin_profiles() {
  static const std::vector<WorkloadProfile> kProfiles = {
      {"out-of-core-solver",
       "heavy-tailed sparse matrix block sweeps, analytic time model",
       NoiseModel::kLogUniform, 1.6, &build_out_of_core},
      {"mapreduce-stragglers", "bimodal map tasks with straggler noise",
       NoiseModel::kTwoPoint, 2.0, &build_mapreduce},
      {"web-requests", "lognormal service times, well-calibrated predictions",
       NoiseModel::kBetaCentered, 1.3, &build_web},
      {"batch-analytics", "uniform scan costs, moderate noise",
       NoiseModel::kUniform, 1.4, &build_batch},
      {"ml-training", "near-uniform step times with rare stragglers",
       NoiseModel::kTwoPoint, 1.5, &build_ml},
  };
  return kProfiles;
}

const WorkloadProfile& profile_by_name(const std::string& name) {
  for (const WorkloadProfile& p : builtin_profiles()) {
    if (p.name == name) return p;
  }
  throw std::invalid_argument("profile_by_name: unknown profile '" + name + "'");
}

ProfiledWorkload make_profiled_workload(const std::string& name, std::size_t n,
                                        MachineId m, std::uint64_t seed) {
  const WorkloadProfile& profile = profile_by_name(name);
  ProfiledWorkload out{profile.build(n, m, profile.alpha, seed), {}};
  out.actual = realize(out.instance, profile.typical_noise, seed + 1);
  return out;
}

}  // namespace rdp
