#include "workload/matrix_block.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "rng/distributions.hpp"
#include "rng/rng.hpp"

namespace rdp {

MatrixBlockWorkload make_matrix_block_workload(const MatrixBlockParams& params) {
  if (params.num_blocks == 0 || params.rows_per_block == 0) {
    throw std::invalid_argument("matrix_block: need blocks and rows");
  }
  Xoshiro256 rng(params.seed);

  // Heavy-tailed per-row degree: a Zipf rank picks a degree scale so a few
  // rows are very dense (hub rows of a power-law graph).
  MatrixBlockWorkload out{Instance{}, {}};
  out.nnz.reserve(params.num_blocks);
  std::vector<Task> tasks;
  tasks.reserve(params.num_blocks);

  for (std::size_t b = 0; b < params.num_blocks; ++b) {
    std::uint64_t block_nnz = 0;
    for (std::size_t r = 0; r < params.rows_per_block; ++r) {
      const std::size_t rank = sample_zipf(rng, 64, params.degree_zipf_exponent);
      // rank 0 (most likely) = light row, higher ranks = denser rows.
      const double degree =
          params.mean_nnz_per_row * (0.25 + static_cast<double>(rank));
      block_nnz += static_cast<std::uint64_t>(std::llround(degree));
    }
    out.nnz.push_back(block_nnz);
    const double estimate =
        std::max(1e-9, params.seconds_per_nnz * static_cast<double>(block_nnz));
    const double size = params.bytes_per_nnz * static_cast<double>(block_nnz);
    tasks.push_back(Task{estimate, size});
  }
  out.instance = Instance(std::move(tasks), params.num_machines, params.alpha);
  return out;
}

}  // namespace rdp
