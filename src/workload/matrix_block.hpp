// Out-of-core sparse linear algebra workload (the paper's motivating
// application): a sparse matrix is split into block rows; one task per
// block performs an SpMV sweep over it. Estimated time scales with the
// block's nonzero count (an analytic model, as in the Erlebacher et al.
// citation); size is the block's storage footprint. Nonzeros per block
// follow a heavy-tailed row-degree distribution, which is what makes load
// balancing under uncertainty interesting.
#pragma once

#include <cstdint>
#include <vector>

#include "core/instance.hpp"
#include "core/types.hpp"

namespace rdp {

struct MatrixBlockParams {
  std::size_t num_blocks = 64;       ///< one task per block row
  std::size_t rows_per_block = 1024;
  double mean_nnz_per_row = 16.0;
  double degree_zipf_exponent = 1.2; ///< heavy tail of row degrees
  double seconds_per_nnz = 1e-6;     ///< analytic time model
  double bytes_per_nnz = 12.0;       ///< CSR: value + column index
  MachineId num_machines = 8;
  double alpha = 1.5;                ///< model error of the time estimate
  std::uint64_t seed = 1;
};

struct MatrixBlockWorkload {
  Instance instance;                 ///< task = one block sweep
  std::vector<std::uint64_t> nnz;    ///< nonzeros per block (ground truth)
};

/// Generates the synthetic matrix and its block-task instance.
[[nodiscard]] MatrixBlockWorkload make_matrix_block_workload(
    const MatrixBlockParams& params);

}  // namespace rdp
