// Synthetic instance generators. Every generator is deterministic in its
// seed (library RNG, fully specified sampling), so experiments are
// reproducible bit-for-bit.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/instance.hpp"
#include "core/types.hpp"

namespace rdp {

/// Common knobs shared by the generators.
struct WorkloadParams {
  std::size_t num_tasks = 100;
  MachineId num_machines = 8;
  double alpha = 1.5;
  std::uint64_t seed = 1;
};

/// n tasks of unit estimate (the adversary's favourite instance).
[[nodiscard]] Instance unit_tasks(std::size_t num_tasks, MachineId num_machines,
                                  double alpha);

/// Estimates uniform in [lo, hi); unit sizes.
[[nodiscard]] Instance uniform_workload(const WorkloadParams& params, double lo = 1.0,
                                        double hi = 100.0);

/// Heavy-tailed estimates: Pareto(x_m = lo, shape) truncated at `cap`
/// (sparse-matrix block costs behave like this); unit sizes.
[[nodiscard]] Instance heavy_tailed_workload(const WorkloadParams& params,
                                             double lo = 1.0, double shape = 1.5,
                                             double cap = 1e4);

/// Two task populations: short (around `short_mean`) and long (around
/// `long_mean`), mixed with `long_fraction`; unit sizes.
[[nodiscard]] Instance bimodal_workload(const WorkloadParams& params,
                                        double short_mean = 1.0,
                                        double long_mean = 50.0,
                                        double long_fraction = 0.1);

/// Lognormal estimates (mu, sigma in log space); unit sizes.
[[nodiscard]] Instance lognormal_workload(const WorkloadParams& params, double mu = 2.0,
                                          double sigma = 1.0);

/// Memory model: estimates uniform; size = estimate * rate + uniform
/// noise, so time and memory are positively correlated (streaming codes).
[[nodiscard]] Instance correlated_sizes_workload(const WorkloadParams& params,
                                                 double rate = 1.0,
                                                 double noise = 0.25);

/// Memory model: sizes anti-correlated with estimates (compute-bound
/// small-data tasks vs data-heavy cheap tasks) -- the regime where the
/// bi-objective tension is maximal.
[[nodiscard]] Instance anti_correlated_sizes_workload(const WorkloadParams& params);

/// Memory model: time and size drawn independently (log-uniform).
[[nodiscard]] Instance independent_sizes_workload(const WorkloadParams& params);

}  // namespace rdp
