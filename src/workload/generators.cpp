#include "workload/generators.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "rng/distributions.hpp"
#include "rng/rng.hpp"

namespace rdp {

namespace {
Xoshiro256 make_rng(const WorkloadParams& params) { return Xoshiro256(params.seed); }
}  // namespace

Instance unit_tasks(std::size_t num_tasks, MachineId num_machines, double alpha) {
  std::vector<Task> tasks(num_tasks, Task{1.0, 1.0});
  return Instance(std::move(tasks), num_machines, alpha);
}

Instance uniform_workload(const WorkloadParams& params, double lo, double hi) {
  if (!(lo > 0.0) || lo > hi) {
    throw std::invalid_argument("uniform_workload: need 0 < lo <= hi");
  }
  Xoshiro256 rng = make_rng(params);
  std::vector<Task> tasks;
  tasks.reserve(params.num_tasks);
  for (std::size_t j = 0; j < params.num_tasks; ++j) {
    tasks.push_back(Task{sample_uniform(rng, lo, hi), 1.0});
  }
  return Instance(std::move(tasks), params.num_machines, params.alpha);
}

Instance heavy_tailed_workload(const WorkloadParams& params, double lo, double shape,
                               double cap) {
  Xoshiro256 rng = make_rng(params);
  std::vector<Task> tasks;
  tasks.reserve(params.num_tasks);
  for (std::size_t j = 0; j < params.num_tasks; ++j) {
    const double p = std::min(sample_pareto(rng, lo, shape), cap);
    tasks.push_back(Task{p, 1.0});
  }
  return Instance(std::move(tasks), params.num_machines, params.alpha);
}

Instance bimodal_workload(const WorkloadParams& params, double short_mean,
                          double long_mean, double long_fraction) {
  if (long_fraction < 0.0 || long_fraction > 1.0) {
    throw std::invalid_argument("bimodal_workload: long_fraction out of [0,1]");
  }
  Xoshiro256 rng = make_rng(params);
  std::vector<Task> tasks;
  tasks.reserve(params.num_tasks);
  for (std::size_t j = 0; j < params.num_tasks; ++j) {
    const bool is_long = rng.next_double() < long_fraction;
    const double mean = is_long ? long_mean : short_mean;
    // +/-25% spread around the mode mean keeps estimates positive.
    tasks.push_back(Task{sample_uniform(rng, 0.75 * mean, 1.25 * mean), 1.0});
  }
  return Instance(std::move(tasks), params.num_machines, params.alpha);
}

Instance lognormal_workload(const WorkloadParams& params, double mu, double sigma) {
  Xoshiro256 rng = make_rng(params);
  std::vector<Task> tasks;
  tasks.reserve(params.num_tasks);
  for (std::size_t j = 0; j < params.num_tasks; ++j) {
    tasks.push_back(Task{sample_lognormal(rng, mu, sigma), 1.0});
  }
  return Instance(std::move(tasks), params.num_machines, params.alpha);
}

Instance correlated_sizes_workload(const WorkloadParams& params, double rate,
                                   double noise) {
  Xoshiro256 rng = make_rng(params);
  std::vector<Task> tasks;
  tasks.reserve(params.num_tasks);
  for (std::size_t j = 0; j < params.num_tasks; ++j) {
    const double p = sample_uniform(rng, 1.0, 100.0);
    const double s = std::max(1e-6, p * rate * (1.0 + sample_uniform(rng, -noise, noise)));
    tasks.push_back(Task{p, s});
  }
  return Instance(std::move(tasks), params.num_machines, params.alpha);
}

Instance anti_correlated_sizes_workload(const WorkloadParams& params) {
  Xoshiro256 rng = make_rng(params);
  std::vector<Task> tasks;
  tasks.reserve(params.num_tasks);
  for (std::size_t j = 0; j < params.num_tasks; ++j) {
    const double p = sample_uniform(rng, 1.0, 100.0);
    // Size inversely proportional to time, same dynamic range.
    const double s = 100.0 / p;
    tasks.push_back(Task{p, s});
  }
  return Instance(std::move(tasks), params.num_machines, params.alpha);
}

Instance independent_sizes_workload(const WorkloadParams& params) {
  Xoshiro256 rng = make_rng(params);
  std::vector<Task> tasks;
  tasks.reserve(params.num_tasks);
  for (std::size_t j = 0; j < params.num_tasks; ++j) {
    const double p = sample_log_uniform(rng, 1.0, 100.0);
    const double s = sample_log_uniform(rng, 1.0, 100.0);
    tasks.push_back(Task{p, s});
  }
  return Instance(std::move(tasks), params.num_machines, params.alpha);
}

}  // namespace rdp
