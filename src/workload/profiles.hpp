// Named workload profiles: parameter presets that bundle a generator, an
// uncertainty level, and a noise model into the recognizable shapes the
// paper's motivating applications have. Keeps examples, benches, and
// downstream experiments talking about the same "kinds" of workloads.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/instance.hpp"
#include "core/types.hpp"
#include "perturb/stochastic.hpp"

namespace rdp {

struct WorkloadProfile {
  std::string name;
  std::string description;
  NoiseModel typical_noise = NoiseModel::kUniform;
  double alpha = 1.5;

  /// Builds an instance of this profile.
  Instance (*build)(std::size_t n, MachineId m, double alpha,
                    std::uint64_t seed) = nullptr;
};

/// The built-in profiles:
///  - "out-of-core-solver": heavy-tailed matrix-block costs, analytic
///    model error (log-uniform), alpha 1.6.
///  - "mapreduce-stragglers": bimodal map tasks, two-point straggler
///    noise, alpha 2.0.
///  - "web-requests": lognormal service times, centered noise, alpha 1.3.
///  - "batch-analytics": uniform scan costs, uniform noise, alpha 1.4.
///  - "ml-training": near-uniform step times with rare stragglers
///    (bimodal, small long fraction), two-point noise, alpha 1.5.
[[nodiscard]] const std::vector<WorkloadProfile>& builtin_profiles();

/// Profile lookup by name; throws std::invalid_argument when unknown.
[[nodiscard]] const WorkloadProfile& profile_by_name(const std::string& name);

/// Convenience: build instance + typical realization for a profile.
struct ProfiledWorkload {
  Instance instance;
  Realization actual;
};
[[nodiscard]] ProfiledWorkload make_profiled_workload(const std::string& name,
                                                      std::size_t n, MachineId m,
                                                      std::uint64_t seed);

}  // namespace rdp
