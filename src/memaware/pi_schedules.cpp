#include "memaware/pi_schedules.hpp"

#include <stdexcept>

#include "algo/lpt.hpp"
#include "core/instance.hpp"

namespace rdp {

PiSchedules build_pi_schedules(const Instance& instance) {
  if (instance.num_tasks() == 0) {
    throw std::invalid_argument("build_pi_schedules: empty instance");
  }
  PiSchedules out;

  const auto estimates = instance.estimates();
  const GreedyScheduleResult pi1 = lpt_schedule(estimates, instance.num_machines());
  out.pi1 = pi1.assignment;
  out.pi1_makespan = pi1.makespan;
  out.rho1 = lpt_guarantee(instance.num_machines());

  const auto sizes = instance.sizes();
  const GreedyScheduleResult pi2 = lpt_schedule(sizes, instance.num_machines());
  out.pi2 = pi2.assignment;
  out.pi2_memory = pi2.makespan;  // max "load" over sizes == Mem_max
  out.rho2 = lpt_guarantee(instance.num_machines());

  return out;
}

}  // namespace rdp
