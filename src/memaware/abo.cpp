#include "memaware/abo.hpp"

#include <utility>
#include <vector>

#include "core/instance.hpp"
#include "core/metrics.hpp"
#include "core/realization.hpp"

namespace rdp {

namespace {

Placement build_placement(const Instance& instance, const SboResult& sbo) {
  std::vector<std::vector<MachineId>> sets(instance.num_tasks());
  std::vector<MachineId> all(instance.num_machines());
  for (MachineId i = 0; i < instance.num_machines(); ++i) all[i] = i;
  for (TaskId j = 0; j < instance.num_tasks(); ++j) {
    if (sbo.in_s2[j]) {
      sets[j] = {sbo.pi.pi2[j]};
    } else {
      sets[j] = all;
    }
  }
  return Placement(std::move(sets), instance.num_machines());
}

// Priority: pinned memory-intensive tasks first (each machine drains its
// S2 queue before competing for replicated work), then S1 in input order
// (Graham's LS).
std::vector<TaskId> build_priority(const Instance& instance,
                                   const std::vector<bool>& in_s2) {
  std::vector<TaskId> priority;
  priority.reserve(instance.num_tasks());
  for (TaskId j = 0; j < instance.num_tasks(); ++j) {
    if (in_s2[j]) priority.push_back(j);
  }
  for (TaskId j = 0; j < instance.num_tasks(); ++j) {
    if (!in_s2[j]) priority.push_back(j);
  }
  return priority;
}

}  // namespace

Placement abo_placement(const Instance& instance, double delta) {
  return build_placement(instance, run_sbo(instance, delta));
}

AboResult run_abo(const Instance& instance, const Realization& actual, double delta) {
  const SboResult sbo = run_sbo(instance, delta);

  AboResult result;
  result.delta = delta;
  result.in_s2 = sbo.in_s2;
  result.pi = sbo.pi;
  result.placement = build_placement(instance, sbo);
  result.max_memory = max_memory(result.placement, instance);

  DispatchResult dispatched = dispatch_online(
      instance, result.placement, actual, build_priority(instance, sbo.in_s2));
  result.schedule = std::move(dispatched.schedule);
  result.trace = std::move(dispatched.trace);
  result.makespan = result.schedule.makespan();
  return result;
}

}  // namespace rdp
