// SABO_Delta (paper, Theorems 5-6): the static asymmetric bi-objective
// algorithm. Phase 1 is exactly the SBO split over estimates; phase 2
// loads every task onto its phase-1 machine (no replication, so the
// uncertainty costs a factor alpha^2 on makespan):
//   makespan <= (1+Delta) alpha^2 rho1 * OPT_Cmax
//   memory   <= (1+1/Delta) rho2      * OPT_Mem.
#pragma once

#include <vector>

#include "core/placement.hpp"
#include "core/schedule.hpp"
#include "core/types.hpp"
#include "memaware/sbo.hpp"

namespace rdp {

class Instance;
struct Realization;

struct SaboResult {
  Placement placement;      ///< singleton placement (|M_j| = 1)
  Assignment assignment;    ///< == the placement, as a task->machine map
  std::vector<bool> in_s2;  ///< classification used
  double max_memory = 0;    ///< Mem_max (no replication)
  double delta = 0;
  PiSchedules pi;
};

/// Runs SABO_Delta phase 1 (placement + assignment; phase 2 is static).
[[nodiscard]] SaboResult run_sabo(const Instance& instance, double delta);

/// Makespan of a SABO result under a realization of the actual times.
[[nodiscard]] Time sabo_makespan(const SaboResult& result, const Instance& instance,
                                 const Realization& actual);

}  // namespace rdp
