// ABO_Delta (paper, Theorems 7-8): the asymmetric bi-objective algorithm.
// Memory-intensive tasks (S2) are pinned to their pi2 machines;
// processing-time-intensive tasks (S1) are replicated *everywhere* and
// dispatched online with Graham's List Scheduling after the pinned load:
//   makespan <= (2 - 1/m + Delta alpha^2 rho1) * OPT_Cmax
//   memory   <= (1 + m/Delta) rho2             * OPT_Mem.
#pragma once

#include <vector>

#include "core/placement.hpp"
#include "core/schedule.hpp"
#include "core/types.hpp"
#include "memaware/sbo.hpp"
#include "sim/online_dispatcher.hpp"

namespace rdp {

class Instance;
struct Realization;

struct AboResult {
  Placement placement;      ///< S2 singleton + S1 everywhere
  Schedule schedule;        ///< timed phase-2 schedule
  DispatchTrace trace;
  std::vector<bool> in_s2;
  Time makespan = 0;        ///< C_max under the realization
  double max_memory = 0;    ///< Mem_max including every S1 replica
  double delta = 0;
  PiSchedules pi;
};

/// Runs both ABO phases against a realization.
[[nodiscard]] AboResult run_abo(const Instance& instance, const Realization& actual,
                                double delta);

/// Phase 1 only: the ABO placement (for memory accounting without a
/// realization).
[[nodiscard]] Placement abo_placement(const Instance& instance, double delta);

}  // namespace rdp
