#include "memaware/sbo.hpp"

#include <stdexcept>

#include "core/instance.hpp"
#include "core/metrics.hpp"

namespace rdp {

std::vector<bool> split_memory_intensive(const Instance& instance,
                                         const PiSchedules& pi, double delta) {
  if (!(delta > 0.0)) {
    throw std::invalid_argument("split_memory_intensive: Delta must be > 0");
  }
  std::vector<bool> in_s2(instance.num_tasks(), false);
  // Degenerate guards: with a single task pi1_makespan > 0 always; a zero
  // total size makes every task time-intensive.
  const double mem = pi.pi2_memory;
  const Time cmax = pi.pi1_makespan;
  for (TaskId j = 0; j < instance.num_tasks(); ++j) {
    const double time_share = instance.estimate(j) / cmax;
    const double mem_share = mem > 0.0 ? instance.size(j) / mem : 0.0;
    in_s2[j] = time_share <= delta * mem_share;
  }
  return in_s2;
}

SboResult run_sbo(const Instance& instance, double delta) {
  SboResult result;
  result.pi = build_pi_schedules(instance);
  result.delta = delta;
  result.in_s2 = split_memory_intensive(instance, result.pi, delta);

  result.assignment = Assignment(instance.num_tasks());
  for (TaskId j = 0; j < instance.num_tasks(); ++j) {
    result.assignment.machine_of[j] =
        result.in_s2[j] ? result.pi.pi2[j] : result.pi.pi1[j];
  }
  result.estimated_makespan = estimated_makespan(result.assignment, instance);
  result.max_memory = max_memory(result.assignment, instance);
  return result;
}

}  // namespace rdp
