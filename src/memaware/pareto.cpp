#include "memaware/pareto.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/instance.hpp"
#include "core/realization.hpp"
#include "memaware/abo.hpp"
#include "memaware/sabo.hpp"

namespace rdp {

bool dominates(const ParetoPoint& a, const ParetoPoint& b) {
  const bool no_worse = a.makespan <= b.makespan && a.memory <= b.memory;
  const bool better = a.makespan < b.makespan || a.memory < b.memory;
  return no_worse && better;
}

std::vector<ParetoPoint> pareto_filter(std::vector<ParetoPoint> points) {
  std::vector<ParetoPoint> front;
  for (const ParetoPoint& candidate : points) {
    bool dominated = false;
    for (const ParetoPoint& other : points) {
      if (dominates(other, candidate)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) front.push_back(candidate);
  }
  std::sort(front.begin(), front.end(), [](const ParetoPoint& a, const ParetoPoint& b) {
    if (a.makespan != b.makespan) return a.makespan < b.makespan;
    return a.memory < b.memory;
  });
  // Drop duplicate (makespan, memory) pairs that survive mutual
  // non-domination.
  front.erase(std::unique(front.begin(), front.end(),
                          [](const ParetoPoint& a, const ParetoPoint& b) {
                            return a.makespan == b.makespan &&
                                   a.memory == b.memory;
                          }),
              front.end());
  return front;
}

std::vector<ParetoPoint> measure_tradeoff_sweep(const Instance& instance,
                                                const Realization& actual,
                                                double delta_min, double delta_max,
                                                int points_per_algorithm) {
  if (!(delta_min > 0.0) || delta_min > delta_max || points_per_algorithm < 2) {
    throw std::invalid_argument("measure_tradeoff_sweep: bad sweep parameters");
  }
  std::vector<ParetoPoint> points;
  const double log_lo = std::log(delta_min);
  const double log_hi = std::log(delta_max);
  for (int i = 0; i < points_per_algorithm; ++i) {
    const double t =
        static_cast<double>(i) / static_cast<double>(points_per_algorithm - 1);
    const double delta = std::exp(log_lo + t * (log_hi - log_lo));

    const SaboResult sabo = run_sabo(instance, delta);
    points.push_back(ParetoPoint{delta, "SABO",
                                 sabo_makespan(sabo, instance, actual),
                                 sabo.max_memory});

    const AboResult abo = run_abo(instance, actual, delta);
    points.push_back(ParetoPoint{delta, "ABO", abo.makespan, abo.max_memory});
  }
  return points;
}

std::vector<ParetoPoint> empirical_pareto_front(const Instance& instance,
                                                const Realization& actual,
                                                double delta_min, double delta_max,
                                                int points_per_algorithm) {
  return pareto_filter(
      measure_tradeoff_sweep(instance, actual, delta_min, delta_max,
                             points_per_algorithm));
}

}  // namespace rdp
