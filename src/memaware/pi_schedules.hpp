// The two single-objective reference schedules every memory-aware
// algorithm combines: pi1 minimizes (approximately) the estimated
// makespan, pi2 minimizes (approximately) the maximum memory occupation.
// Both are built with LPT on the respective weight, so
// rho1 = rho2 = 4/3 - 1/(3m).
#pragma once

#include "core/schedule.hpp"
#include "core/types.hpp"

namespace rdp {

class Instance;

struct PiSchedules {
  Assignment pi1;        ///< makespan-oriented schedule (LPT on estimates)
  Time pi1_makespan = 0; ///< \f$\tilde C^{\pi_1}_{max}\f$ (on estimates)
  double rho1 = 1;       ///< approximation factor of the pi1 builder

  Assignment pi2;        ///< memory-oriented schedule (LPT on sizes)
  double pi2_memory = 0; ///< \f$Mem^{\pi_2}_{max}\f$
  double rho2 = 1;       ///< approximation factor of the pi2 builder
};

/// Builds pi1/pi2 with LPT. Throws if the instance has zero tasks.
[[nodiscard]] PiSchedules build_pi_schedules(const Instance& instance);

}  // namespace rdp
