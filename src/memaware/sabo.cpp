#include "memaware/sabo.hpp"

#include "core/instance.hpp"
#include "core/metrics.hpp"
#include "core/realization.hpp"

namespace rdp {

SaboResult run_sabo(const Instance& instance, double delta) {
  const SboResult sbo = run_sbo(instance, delta);
  SaboResult result;
  result.assignment = sbo.assignment;
  result.in_s2 = sbo.in_s2;
  result.delta = delta;
  result.pi = sbo.pi;
  result.placement =
      Placement::singleton(result.assignment.machine_of, instance.num_machines());
  result.max_memory = max_memory(result.assignment, instance);
  return result;
}

Time sabo_makespan(const SaboResult& result, const Instance& instance,
                   const Realization& actual) {
  return makespan(result.assignment, actual, instance.num_machines());
}

}  // namespace rdp
