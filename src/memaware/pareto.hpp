// Empirical Pareto fronts for the memory-aware algorithms: sweep Delta,
// measure (makespan, memory) under a realization, and keep the
// non-dominated points -- the measured counterpart of the paper's
// Figure 6 guarantee curves.
#pragma once

#include <string>
#include <vector>

#include "core/types.hpp"

namespace rdp {

class Instance;
struct Realization;

struct ParetoPoint {
  double delta = 0;
  std::string algorithm;  ///< "SABO" or "ABO"
  Time makespan = 0;
  double memory = 0;
};

/// True iff `a` dominates `b` (<= in both objectives, < in at least one).
[[nodiscard]] bool dominates(const ParetoPoint& a, const ParetoPoint& b);

/// Filters to the non-dominated subset, sorted by ascending makespan.
[[nodiscard]] std::vector<ParetoPoint> pareto_filter(std::vector<ParetoPoint> points);

/// Runs SABO and ABO over a log-spaced Delta sweep against one
/// realization and returns all measured points (unfiltered).
[[nodiscard]] std::vector<ParetoPoint> measure_tradeoff_sweep(
    const Instance& instance, const Realization& actual, double delta_min,
    double delta_max, int points_per_algorithm);

/// The measured front: measure_tradeoff_sweep + pareto_filter.
[[nodiscard]] std::vector<ParetoPoint> empirical_pareto_front(
    const Instance& instance, const Realization& actual, double delta_min = 0.05,
    double delta_max = 20.0, int points_per_algorithm = 17);

}  // namespace rdp
