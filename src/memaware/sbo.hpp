// SBO_Delta (cited substrate, IPDPS 2008): combines pi1 and pi2 by
// classifying each task as processing-time intensive (S1, follows pi1) or
// memory intensive (S2, follows pi2) via the threshold test
//   estimate_j / pi1_makespan <= Delta * size_j / pi2_memory.
// Guarantees [(1+Delta) rho1, (1+1/Delta) rho2] under certain times.
#pragma once

#include <vector>

#include "core/schedule.hpp"
#include "core/types.hpp"
#include "memaware/pi_schedules.hpp"

namespace rdp {

class Instance;

/// Task classification shared by SBO / SABO / ABO: in_s2[j] is true when
/// task j is memory-intensive under the Delta threshold.
[[nodiscard]] std::vector<bool> split_memory_intensive(const Instance& instance,
                                                       const PiSchedules& pi,
                                                       double delta);

struct SboResult {
  Assignment assignment;       ///< merged schedule (each task on one machine)
  std::vector<bool> in_s2;     ///< classification used
  Time estimated_makespan = 0; ///< makespan of `assignment` on estimates
  double max_memory = 0;       ///< Mem_max of `assignment`
  PiSchedules pi;              ///< the reference schedules
  double delta = 0;
};

/// Runs SBO_Delta.
[[nodiscard]] SboResult run_sbo(const Instance& instance, double delta);

}  // namespace rdp
