// Analytic lower bounds on the optimal makespan of P||Cmax. These are
// valid for *known* processing times; experiments apply them to actual
// (realized) times to get a certified denominator for competitive ratios.
#pragma once

#include <span>

#include "core/types.hpp"

namespace rdp {

/// Average-load bound: sum(p) / m.
[[nodiscard]] Time avg_load_bound(std::span<const Time> p, MachineId m);

/// Longest-task bound: max(p).
[[nodiscard]] Time longest_task_bound(std::span<const Time> p);

/// Pairing bound: when n > m, some machine runs two tasks, so OPT is at
/// least the sum of the two smallest among the m+1 largest tasks.
[[nodiscard]] Time pairing_bound(std::span<const Time> p, MachineId m);

/// Best of the above three.
[[nodiscard]] Time makespan_lower_bound(std::span<const Time> p, MachineId m);

}  // namespace rdp
