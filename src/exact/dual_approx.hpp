// MULTIFIT (Coffman, Garey & Johnson 1978): binary search on a makespan
// target with a First-Fit-Decreasing packing check. Worst-case ratio
// 13/11 on P||Cmax -- the "arbitrarily good approximation ... with a dual
// approximation algorithm" family the paper cites (Hochbaum & Shmoys); we
// implement the classical practical member of the family and expose the
// FFD feasibility check itself for dual-approximation use.
//
// The dual reading also yields a *certified lower bound*: if FFD fails to
// pack into m bins of capacity C, then C < (13/11)*OPT (contrapositive of
// the MULTIFIT guarantee), i.e. OPT > (11/13)*C. `multifit_cmax` records
// the highest failed capacity and reports that certificate alongside the
// schedule -- the cheap middle rung of the certification ladder between
// the analytic bounds and the Hochbaum-Shmoys PTAS (exact/certify_scale).
#pragma once

#include <span>
#include <vector>

#include "core/schedule.hpp"
#include "core/types.hpp"
#include "exact/first_fit_tree.hpp"

namespace rdp {

/// Relative slack applied to the FFD capacity test: an item fits in a bin
/// when `load + p <= cap * (1 + kFfdRelativeSlack)`. The slack absorbs
/// accumulation error from summing loads, so a capacity obtained from the
/// very sums it is compared against does not flip feasibility on the last
/// ulp.
///
/// Contract: the slack is *relative*, so it scales with `cap` and
/// vanishes at `cap == 0` -- the test degenerates to the exact comparison
/// `load + p <= 0`. That is deliberate: zero-size tasks still pack into
/// zero-capacity bins (0 + 0 <= 0), any positive task correctly fails,
/// and no absolute epsilon leaks spurious capacity into degenerate
/// all-zero instances. `cap` must be non-negative and not NaN; anything
/// else is a caller bug and throws.
inline constexpr double kFfdRelativeSlack = 1e-12;

/// First-Fit-Decreasing feasibility: can `p` be packed into m bins of
/// capacity `cap` when placed in non-increasing order, each into the
/// first bin that fits? On success, `out` (if non-null) receives the
/// task -> bin assignment.
[[nodiscard]] bool ffd_fits(std::span<const Time> p, MachineId m, Time cap,
                            Assignment* out = nullptr);

/// Hot-path FFD: the caller supplies the non-increasing `order` (computed
/// once, reused across every bisection iteration) and a FirstFitTree used
/// as scratch, making the check O(n log m) with no allocation in the
/// steady state. Bin selection is bit-identical to the linear-scan
/// `ffd_fits`. On failure the contents of `out` are unspecified.
[[nodiscard]] bool ffd_fits_ordered(std::span<const Time> p,
                                    std::span<const TaskId> order, MachineId m,
                                    Time cap, FirstFitTree& bins,
                                    Assignment* out = nullptr);

struct MultifitResult {
  Time makespan = 0;
  Assignment assignment;
  int iterations = 0;
  /// Sound lower bound on OPT: the max of the analytic bound and
  /// (11/13) * (highest capacity FFD failed at). Always <= makespan.
  Time certified_lower = 0;
};

/// MULTIFIT with `iterations` bisection steps (7 suffices for the classic
/// guarantee; more sharpens the numeric target). Sorts once up front and
/// reuses the order across iterations.
[[nodiscard]] MultifitResult multifit_cmax(std::span<const Time> p, MachineId m,
                                           int iterations = 24);

/// MULTIFIT's worst-case approximation guarantee (13/11).
[[nodiscard]] constexpr double multifit_guarantee() { return 13.0 / 11.0; }

/// FFD failure at capacity C certifies OPT > (11/13) * C.
[[nodiscard]] constexpr double multifit_certified_lower_factor() {
  return 11.0 / 13.0;
}

}  // namespace rdp
