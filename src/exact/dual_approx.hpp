// MULTIFIT (Coffman, Garey & Johnson 1978): binary search on a makespan
// target with a First-Fit-Decreasing packing check. Worst-case ratio
// 13/11 on P||Cmax -- the "arbitrarily good approximation ... with a dual
// approximation algorithm" family the paper cites (Hochbaum & Shmoys); we
// implement the classical practical member of the family and expose the
// FFD feasibility check itself for dual-approximation use.
#pragma once

#include <span>
#include <vector>

#include "core/schedule.hpp"
#include "core/types.hpp"

namespace rdp {

/// First-Fit-Decreasing feasibility: can `p` be packed into m bins of
/// capacity `cap` when placed in non-increasing order, each into the
/// first bin that fits? On success, `out` (if non-null) receives the
/// task -> bin assignment.
[[nodiscard]] bool ffd_fits(std::span<const Time> p, MachineId m, Time cap,
                            Assignment* out = nullptr);

struct MultifitResult {
  Time makespan = 0;
  Assignment assignment;
  int iterations = 0;
};

/// MULTIFIT with `iterations` bisection steps (7 suffices for the classic
/// guarantee; more sharpens the numeric target).
[[nodiscard]] MultifitResult multifit_cmax(std::span<const Time> p, MachineId m,
                                           int iterations = 24);

/// MULTIFIT's worst-case approximation guarantee (13/11).
[[nodiscard]] constexpr double multifit_guarantee() { return 13.0 / 11.0; }

}  // namespace rdp
