#include "exact/partition_dp.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace rdp {

namespace {

// Word-parallel subset-sum bitset.
class SumSet {
 public:
  explicit SumSet(std::size_t max_sum) : bits_((max_sum >> 6) + 1, 0) {
    set(0);
  }

  void set(std::size_t v) { bits_[v >> 6] |= std::uint64_t{1} << (v & 63); }

  [[nodiscard]] bool test(std::size_t v) const {
    return (bits_[v >> 6] >> (v & 63)) & 1U;
  }

  /// bits |= bits << shift.
  void shift_or(std::size_t shift) {
    const std::size_t words = shift >> 6;
    const unsigned rem = static_cast<unsigned>(shift & 63);
    for (std::size_t w = bits_.size(); w-- > 0;) {
      std::uint64_t value = 0;
      if (w >= words) {
        value = bits_[w - words] << rem;
        if (rem != 0 && w > words) {
          value |= bits_[w - words - 1] >> (64 - rem);
        }
      }
      bits_[w] |= value;
    }
  }

 private:
  std::vector<std::uint64_t> bits_;
};

}  // namespace

PartitionResult partition_cmax(std::span<const Time> p, double resolution,
                               std::size_t max_cells) {
  if (!(resolution > 0.0)) {
    throw std::invalid_argument("partition_cmax: resolution must be positive");
  }
  PartitionResult result;
  result.assignment = Assignment(p.size());
  if (p.empty()) {
    result.exact = true;
    return result;
  }

  std::vector<std::size_t> units(p.size());
  std::size_t total_units = 0;
  bool lossless = true;  // every time is an exact multiple of the resolution
  for (std::size_t j = 0; j < p.size(); ++j) {
    if (p[j] < 0) throw std::invalid_argument("partition_cmax: negative time");
    units[j] = static_cast<std::size_t>(std::llround(p[j] / resolution));
    total_units += units[j];
    const double back = static_cast<double>(units[j]) * resolution;
    if (std::abs(back - p[j]) > 1e-9 * std::max(1.0, p[j])) lossless = false;
  }
  if (total_units + 1 > max_cells) {
    throw std::invalid_argument(
        "partition_cmax: discretized total exceeds max_cells; raise the "
        "resolution");
  }

  // Forward pass with snapshots for reconstruction.
  std::vector<SumSet> snapshots;
  snapshots.reserve(p.size() + 1);
  snapshots.emplace_back(total_units);
  for (std::size_t j = 0; j < p.size(); ++j) {
    SumSet next = snapshots.back();
    next.shift_or(units[j]);
    snapshots.push_back(std::move(next));
  }

  // Smallest reachable sum >= ceil(total/2) minimizes max(s, total-s).
  const std::size_t half = (total_units + 1) / 2;
  std::size_t best_sum = total_units;  // everything on machine 0 is reachable
  for (std::size_t s = half; s <= total_units; ++s) {
    if (snapshots.back().test(s)) {
      best_sum = s;
      break;
    }
  }

  // Reconstruct: walk tasks backwards, keeping the target reachable.
  std::size_t target = best_sum;
  for (std::size_t j = p.size(); j-- > 0;) {
    if (target >= units[j] && snapshots[j].test(target - units[j])) {
      result.assignment.machine_of[j] = 0;
      target -= units[j];
    } else {
      result.assignment.machine_of[j] = 1;
    }
  }

  // Evaluate with the *true* times.
  Time load0 = 0, load1 = 0;
  for (std::size_t j = 0; j < p.size(); ++j) {
    (result.assignment[static_cast<TaskId>(j)] == 0 ? load0 : load1) += p[j];
  }
  result.makespan = std::max(load0, load1);

  if (lossless) {
    // The scaled problem *is* the true problem: the DP optimum is exact.
    result.lower_bound = result.makespan;
    result.exact = true;
    return result;
  }

  // Certified bound: the scaled optimum is exact for the scaled times;
  // de-scaling can shift each task by at most resolution/2.
  const double slack = 0.5 * resolution * static_cast<double>(p.size());
  const Time scaled_opt = static_cast<double>(best_sum) * resolution;
  Time true_total = 0;
  for (Time v : p) true_total += v;
  result.lower_bound =
      std::max({scaled_opt - slack, true_total / 2.0,
                *std::max_element(p.begin(), p.end())});
  result.lower_bound = std::min(result.lower_bound, result.makespan);
  constexpr double kEps = 1e-9;
  result.exact = result.makespan <= result.lower_bound * (1.0 + kEps);
  return result;
}

}  // namespace rdp
