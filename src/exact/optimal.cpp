#include "exact/optimal.hpp"

#include <cmath>

#include <algorithm>

#include "algo/lpt.hpp"
#include "exact/branch_and_bound.hpp"
#include "exact/dual_approx.hpp"
#include "exact/lower_bounds.hpp"
#include "exact/partition_dp.hpp"

namespace rdp {

CertifiedCmax certified_cmax(std::span<const Time> p, MachineId m,
                             std::uint64_t node_budget, const BnbWarmStart& warm) {
  CertifiedCmax result;
  result.assignment = Assignment(p.size());
  if (p.empty()) {
    result.exact = true;
    return result;
  }

  result.lower = makespan_lower_bound(p, m);

  if (m == 2) {
    // Pseudo-polynomial fast path: subset-sum DP at a resolution that
    // keeps the bitset around half a million cells.
    Time total = 0;
    for (Time v : p) total += v;
    const double resolution = std::max(total / 4.0e6, 1e-9);
    const PartitionResult dp = partition_cmax(p, resolution);
    result.upper = dp.makespan;
    result.assignment = dp.assignment;
    result.lower = std::max(result.lower, dp.lower_bound);
    if (dp.exact) {
      result.exact = true;
      result.lower = result.upper = dp.makespan;
      return result;
    }
  }

  const MultifitResult mf = multifit_cmax(p, m);
  if (result.upper == 0 || mf.makespan < result.upper) {
    result.upper = mf.makespan;
    result.assignment = mf.assignment;
  }

  constexpr double kEps = 1e-9;
  if (result.upper <= result.lower * (1.0 + kEps)) {
    result.exact = true;
    result.lower = result.upper;
    return result;
  }

  if (node_budget > 0) {
    const BnbResult bnb = branch_and_bound_cmax(p, m, node_budget, warm);
    if (bnb.best < result.upper) {
      result.upper = bnb.best;
      result.assignment = bnb.assignment;
    }
    if (bnb.proven) {
      result.exact = true;
      result.lower = result.upper = bnb.best;
      result.assignment = bnb.assignment;
    } else {
      result.lower = std::max(result.lower, bnb.lower_bound);
    }
  }
  return result;
}

}  // namespace rdp
