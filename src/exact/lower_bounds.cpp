#include "exact/lower_bounds.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "core/scan.hpp"

namespace rdp {

Time avg_load_bound(std::span<const Time> p, MachineId m) {
  if (m == 0) throw std::invalid_argument("avg_load_bound: m must be >= 1");
  return sum_scan(p) / static_cast<double>(m);
}

Time longest_task_bound(std::span<const Time> p) { return max_scan(p); }

Time pairing_bound(std::span<const Time> p, MachineId m) {
  if (m == 0) throw std::invalid_argument("pairing_bound: m must be >= 1");
  if (p.size() <= m) return 0;
  // The m+1 largest tasks: two of them share a machine in any schedule,
  // and the cheapest such pair is the two smallest of those m+1.
  std::vector<Time> top(p.begin(), p.end());
  std::nth_element(top.begin(), top.begin() + static_cast<std::ptrdiff_t>(m),
                   top.end(), std::greater<>());
  top.resize(m + 1);
  std::sort(top.begin(), top.end());
  return top[0] + top[1];
}

Time makespan_lower_bound(std::span<const Time> p, MachineId m) {
  return std::max({avg_load_bound(p, m), longest_task_bound(p), pairing_bound(p, m)});
}

}  // namespace rdp
