#include "exact/ptas.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <vector>

#include "algo/lpt.hpp"
#include "exact/dual_approx.hpp"
#include "exact/lower_bounds.hpp"

namespace rdp {

namespace {

// Thrown internally when the config-DP memo exceeds its budget.
struct StateBudgetExhausted {};

// One machine's multiset of rounded big-job values, as counts per value.
using CountVector = std::vector<std::uint16_t>;

struct Decision {
  bool feasible = false;
  Assignment assignment;  // only meaningful when feasible
  Time achieved = 0;      // max load of the built schedule
};

// Enumerates every machine configuration: count vectors c with
// sum(c) <= k and sum(c_i * value_i) <= capacity.
void enumerate_configs(const std::vector<Time>& values, Time capacity, unsigned k,
                       std::size_t index, CountVector& current, Time load,
                       unsigned used, std::vector<CountVector>& out) {
  if (index == values.size()) {
    // Skip the empty configuration; it packs nothing.
    if (used > 0) out.push_back(current);
    return;
  }
  for (std::uint16_t c = 0;; ++c) {
    const Time extra = static_cast<double>(c) * values[index];
    if (used + c > k || load + extra > capacity * (1.0 + 1e-12)) break;
    current[index] = c;
    enumerate_configs(values, capacity, k, index + 1, current, load + extra,
                      used + c, out);
  }
  current[index] = 0;
}

// Exact minimum number of bins (capacity T, <= k items each) for the
// rounded big jobs, via memoized recursion over remaining counts.
class BinPackDp {
 public:
  BinPackDp(std::vector<CountVector> configs, std::size_t budget)
      : configs_(std::move(configs)), budget_(budget) {}

  int solve(const CountVector& remaining) {
    if (std::all_of(remaining.begin(), remaining.end(),
                    [](std::uint16_t c) { return c == 0; })) {
      return 0;
    }
    const auto it = memo_.find(remaining);
    if (it != memo_.end()) return it->second;
    if (memo_.size() >= budget_) throw StateBudgetExhausted{};

    int best = kInfinity;
    CountVector next(remaining.size());
    for (const CountVector& config : configs_) {
      bool fits = true;
      for (std::size_t i = 0; i < remaining.size(); ++i) {
        if (config[i] > remaining[i]) {
          fits = false;
          break;
        }
        next[i] = static_cast<std::uint16_t>(remaining[i] - config[i]);
      }
      if (!fits) continue;
      const int sub = solve(next);
      if (sub + 1 < best) best = sub + 1;
    }
    memo_.emplace(remaining, best);
    return best;
  }

  /// Reconstructs one optimal packing as a list of configs.
  std::vector<CountVector> reconstruct(CountVector remaining) {
    std::vector<CountVector> bins;
    while (!std::all_of(remaining.begin(), remaining.end(),
                        [](std::uint16_t c) { return c == 0; })) {
      const int total = solve(remaining);
      bool advanced = false;
      CountVector next(remaining.size());
      for (const CountVector& config : configs_) {
        bool fits = true;
        for (std::size_t i = 0; i < remaining.size(); ++i) {
          if (config[i] > remaining[i]) {
            fits = false;
            break;
          }
          next[i] = static_cast<std::uint16_t>(remaining[i] - config[i]);
        }
        if (!fits) continue;
        if (solve(next) + 1 == total) {
          bins.push_back(config);
          remaining = next;
          advanced = true;
          break;
        }
      }
      if (!advanced) {
        throw std::logic_error("ptas: packing reconstruction failed");
      }
    }
    return bins;
  }

  static constexpr int kInfinity = 1 << 28;

 private:
  std::vector<CountVector> configs_;
  std::size_t budget_;
  std::map<CountVector, int> memo_;
};

// The dual-approximation decision procedure at target T.
Decision decide(std::span<const Time> p, MachineId m, Time target, unsigned k,
                std::size_t state_budget) {
  Decision result;
  const std::size_t n = p.size();
  const Time small_threshold = target / static_cast<double>(k);
  const Time grain = target / static_cast<double>(k * k);

  // Any single job above T rules out makespan <= T immediately.
  for (Time v : p) {
    if (v > target * (1.0 + 1e-12)) return result;  // infeasible
  }
  // Average-load necessary condition.
  Time total = 0;
  for (Time v : p) total += v;
  if (total > target * static_cast<double>(m) * (1.0 + 1e-12)) {
    return result;  // infeasible: total load exceeds m*T
  }

  // Partition into big and small; round big jobs down to the grain.
  std::vector<TaskId> big, small;
  for (TaskId j = 0; j < n; ++j) {
    (p[j] > small_threshold ? big : small).push_back(j);
  }

  std::vector<Time> values;          // distinct rounded values
  std::vector<std::vector<TaskId>> members;  // big tasks per value
  {
    std::vector<std::pair<std::int64_t, TaskId>> rounded;
    rounded.reserve(big.size());
    for (TaskId j : big) {
      rounded.emplace_back(static_cast<std::int64_t>(std::floor(p[j] / grain)), j);
    }
    std::sort(rounded.begin(), rounded.end());
    for (const auto& [units, j] : rounded) {
      const Time v = static_cast<double>(units) * grain;
      if (values.empty() || std::abs(values.back() - v) > 1e-12 * target) {
        values.push_back(v);
        members.emplace_back();
      }
      members.back().push_back(j);
    }
  }

  CountVector counts(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (members[i].size() > 0xFFFF) return result;  // out of CountVector range
    counts[i] = static_cast<std::uint16_t>(members[i].size());
  }

  std::vector<CountVector> bin_configs;  // one per machine that holds big jobs
  if (!values.empty()) {
    std::vector<CountVector> configs;
    CountVector scratch(values.size());
    enumerate_configs(values, target, k, 0, scratch, 0, 0, configs);
    BinPackDp dp(std::move(configs), state_budget);
    if (dp.solve(counts) > static_cast<int>(m)) {
      return result;  // certified: no schedule with makespan <= T
    }
    bin_configs = dp.reconstruct(counts);
  }

  // Materialize the big-job packing (true sizes, <= T + k*grain = T(1+1/k)).
  result.assignment = Assignment(n);
  std::vector<Time> load(m, 0);
  std::vector<std::size_t> cursor(values.size(), 0);
  for (std::size_t bin = 0; bin < bin_configs.size(); ++bin) {
    const auto machine = static_cast<MachineId>(bin);
    for (std::size_t i = 0; i < values.size(); ++i) {
      for (std::uint16_t c = 0; c < bin_configs[bin][i]; ++c) {
        const TaskId j = members[i][cursor[i]++];
        result.assignment.machine_of[j] = machine;
        load[machine] += p[j];
      }
    }
  }

  // Pour small jobs into any machine still below T.
  MachineId probe = 0;
  for (TaskId j : small) {
    while (probe < m && load[probe] >= target * (1.0 - 1e-12)) ++probe;
    if (probe >= m) {
      // All machines at >= T with work left: total > mT, contradiction
      // with the average-load check unless rounding noise -- declare
      // infeasible (the caller raises T).
      return Decision{};
    }
    result.assignment.machine_of[j] = probe;
    load[probe] += p[j];
  }

  result.feasible = true;
  result.achieved = load.empty() ? 0 : *std::max_element(load.begin(), load.end());
  return result;
}

}  // namespace

PtasResult ptas_cmax(std::span<const Time> p, MachineId m, unsigned precision_k,
                     std::size_t state_budget) {
  if (m == 0) throw std::invalid_argument("ptas_cmax: m must be >= 1");
  if (precision_k < 2) throw std::invalid_argument("ptas_cmax: k must be >= 2");

  PtasResult result;
  result.assignment = Assignment(p.size());
  if (p.empty()) {
    result.guarantee = 1.0;
    return result;
  }

  const GreedyScheduleResult lpt = lpt_schedule(p, m);
  result.makespan = lpt.makespan;
  result.assignment = lpt.assignment;

  Time lo = makespan_lower_bound(p, m);
  Time hi = lpt.makespan;

  try {
    for (int iteration = 0; iteration < 40 && lo < hi * (1.0 - 1e-9); ++iteration) {
      const Time target = 0.5 * (lo + hi);
      const Decision d = decide(p, m, target, precision_k, state_budget);
      ++result.search_iterations;
      if (d.feasible) {
        hi = target;
        if (d.achieved < result.makespan) {
          result.makespan = d.achieved;
          result.assignment = d.assignment;
        }
      } else {
        lo = target;  // certified OPT > target
      }
    }
  } catch (const StateBudgetExhausted&) {
    // Degrade gracefully: keep the best schedule found so far, or
    // MULTIFIT if the search never improved on LPT.
    result.exact_decision = false;
    const MultifitResult mf = multifit_cmax(p, m);
    if (mf.makespan < result.makespan) {
      result.makespan = mf.makespan;
      result.assignment = mf.assignment;
    }
    result.guarantee = multifit_guarantee();
    return result;
  }

  // OPT > lo was certified; the schedule achieves `makespan`, so the
  // realized guarantee is makespan/lo, itself <= (1+1/k) + search slack.
  result.guarantee =
      lo > 0 ? result.makespan / lo
             : 1.0 + 1.0 / static_cast<double>(precision_k);
  return result;
}

}  // namespace rdp
