#include "exact/dual_approx.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "algo/lpt.hpp"
#include "exact/first_fit_tree.hpp"
#include "exact/lower_bounds.hpp"

namespace rdp {

bool ffd_fits_ordered(std::span<const Time> p, std::span<const TaskId> order,
                      MachineId m, Time cap, FirstFitTree& bins,
                      Assignment* out) {
  if (m == 0) throw std::invalid_argument("ffd_fits: m must be >= 1");
  // Relative slack collapses to an exact comparison at cap == 0 by design
  // (see kFfdRelativeSlack); only negative / NaN capacities are rejected.
  if (!(cap >= 0)) {
    throw std::invalid_argument("ffd_fits: cap must be >= 0 and not NaN");
  }
  bins.reset(m);
  if (out != nullptr) out->machine_of.assign(p.size(), kNoMachine);
  const Time cap_eff = cap * (1.0 + kFfdRelativeSlack);
  for (TaskId j : order) {
    const MachineId bin = bins.place(p[j], cap_eff);
    if (bin == kNoMachine) return false;
    if (out != nullptr) out->machine_of[j] = bin;
  }
  return true;
}

bool ffd_fits(std::span<const Time> p, MachineId m, Time cap, Assignment* out) {
  const std::vector<TaskId> order = lpt_order(p);
  FirstFitTree bins;
  return ffd_fits_ordered(p, order, m, cap, bins, out);
}

MultifitResult multifit_cmax(std::span<const Time> p, MachineId m,
                             int iterations) {
  if (m == 0) throw std::invalid_argument("multifit_cmax: m must be >= 1");
  MultifitResult result;
  result.assignment = Assignment(p.size());
  if (p.empty()) return result;

  Time lo = makespan_lower_bound(p, m);
  result.certified_lower = lo;
  const GreedyScheduleResult lpt = lpt_schedule(p, m);
  Time hi = lpt.makespan;
  result.assignment = lpt.assignment;

  // Sorted once here; every bisection iteration reuses the order and the
  // first-fit tree, so an iteration costs O(n log m) with no allocation.
  const std::vector<TaskId> order = lpt_order(p);
  FirstFitTree bins;
  Assignment candidate(p.size());
  Time highest_failed_cap = 0;
  for (int it = 0; it < iterations && lo < hi; ++it) {
    const Time cap = 0.5 * (lo + hi);
    if (ffd_fits_ordered(p, order, m, cap, bins, &candidate)) {
      // Feasible at cap: the realized bin loads may even be below cap.
      hi = cap;
      std::swap(result.assignment, candidate);
    } else {
      lo = cap;
      highest_failed_cap = std::max(highest_failed_cap, cap);
    }
    ++result.iterations;
  }

  // FFD failure at C certifies OPT > (11/13) * C (MULTIFIT lemma).
  if (highest_failed_cap > 0) {
    result.certified_lower =
        std::max(result.certified_lower,
                 highest_failed_cap * multifit_certified_lower_factor());
  }

  // Report the true max load of the final packing, not the capacity.
  std::vector<Time> loads(m, 0);
  for (TaskId j = 0; j < p.size(); ++j) {
    loads[result.assignment.machine_of[j]] += p[j];
  }
  result.makespan = *std::max_element(loads.begin(), loads.end());
  result.certified_lower = std::min(result.certified_lower, result.makespan);
  return result;
}

}  // namespace rdp
