#include "exact/dual_approx.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "algo/lpt.hpp"
#include "exact/lower_bounds.hpp"

namespace rdp {

bool ffd_fits(std::span<const Time> p, MachineId m, Time cap, Assignment* out) {
  if (m == 0) throw std::invalid_argument("ffd_fits: m must be >= 1");
  const std::vector<TaskId> order = lpt_order(p);
  std::vector<Time> bins(m, 0);
  Assignment assignment(p.size());
  constexpr double kSlack = 1e-12;
  for (TaskId j : order) {
    bool placed = false;
    for (MachineId i = 0; i < m; ++i) {
      if (bins[i] + p[j] <= cap * (1.0 + kSlack)) {
        bins[i] += p[j];
        assignment.machine_of[j] = i;
        placed = true;
        break;
      }
    }
    if (!placed) return false;
  }
  if (out != nullptr) *out = std::move(assignment);
  return true;
}

MultifitResult multifit_cmax(std::span<const Time> p, MachineId m, int iterations) {
  if (m == 0) throw std::invalid_argument("multifit_cmax: m must be >= 1");
  MultifitResult result;
  result.assignment = Assignment(p.size());
  if (p.empty()) return result;

  Time lo = makespan_lower_bound(p, m);
  const GreedyScheduleResult lpt = lpt_schedule(p, m);
  Time hi = lpt.makespan;
  result.makespan = hi;
  result.assignment = lpt.assignment;

  for (int it = 0; it < iterations && lo < hi; ++it) {
    const Time cap = 0.5 * (lo + hi);
    Assignment packed;
    if (ffd_fits(p, m, cap, &packed)) {
      // Feasible at cap: the realized bin loads may even be below cap.
      hi = cap;
      result.assignment = std::move(packed);
      result.makespan = cap;
    } else {
      lo = cap;
    }
    ++result.iterations;
  }

  // Report the true max load of the final packing, not the capacity.
  std::vector<Time> loads(m, 0);
  for (TaskId j = 0; j < p.size(); ++j) {
    loads[result.assignment.machine_of[j]] += p[j];
  }
  result.makespan = *std::max_element(loads.begin(), loads.end());
  return result;
}

}  // namespace rdp
