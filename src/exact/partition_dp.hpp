// Pseudo-polynomial exact solver for the two-machine case (P2||Cmax ==
// PARTITION): subset-sum reachability over a bitset. Orders of magnitude
// faster than branch-and-bound for m=2, which the experiment harness hits
// constantly (the smallest interesting machine count).
//
// Times are discretized at `resolution`; for inputs that are exact
// multiples of the resolution the result is exact, otherwise the result
// carries a certified error interval of n*resolution/2 per side.
#pragma once

#include <span>

#include "core/schedule.hpp"
#include "core/types.hpp"

namespace rdp {

struct PartitionResult {
  Time makespan = 0;       ///< true makespan of the returned assignment
  Time lower_bound = 0;    ///< certified LB on the true optimum
  bool exact = false;      ///< lower_bound == makespan (within epsilon)
  Assignment assignment;   ///< two-machine assignment achieving `makespan`
};

/// Solves min-makespan on exactly two machines. Throws
/// std::invalid_argument on non-positive resolution, negative times, or
/// a discretized total exceeding `max_cells` (guards memory).
[[nodiscard]] PartitionResult partition_cmax(std::span<const Time> p,
                                             double resolution = 1e-3,
                                             std::size_t max_cells = 1 << 26);

}  // namespace rdp
