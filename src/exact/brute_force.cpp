#include "exact/brute_force.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

namespace rdp {

namespace {

void recurse(std::span<const Time> p, MachineId m, TaskId j,
             std::vector<Time>& loads, std::vector<MachineId>& current,
             Time& best, std::vector<MachineId>& best_assignment) {
  if (j == p.size()) {
    const Time cmax = *std::max_element(loads.begin(), loads.end());
    if (cmax < best) {
      best = cmax;
      best_assignment = current;
    }
    return;
  }
  // Symmetry pinning: the first task goes to machine 0 only.
  const MachineId limit = (j == 0) ? 1 : m;
  for (MachineId i = 0; i < limit; ++i) {
    if (loads[i] + p[j] >= best) continue;  // cannot improve
    loads[i] += p[j];
    current[j] = i;
    recurse(p, m, j + 1, loads, current, best, best_assignment);
    loads[i] -= p[j];
  }
}

}  // namespace

BruteForceResult brute_force_cmax(std::span<const Time> p, MachineId m,
                                  std::size_t max_tasks) {
  if (m == 0) throw std::invalid_argument("brute_force_cmax: m must be >= 1");
  if (p.size() > max_tasks) {
    throw std::invalid_argument("brute_force_cmax: instance too large (n=" +
                                std::to_string(p.size()) + ")");
  }
  BruteForceResult result;
  if (p.empty()) {
    result.assignment = Assignment(0);
    return result;
  }
  std::vector<Time> loads(m, 0);
  std::vector<MachineId> current(p.size(), kNoMachine);
  std::vector<MachineId> best_assignment(p.size(), 0);
  Time best = std::numeric_limits<Time>::infinity();
  recurse(p, m, 0, loads, current, best, best_assignment);
  result.optimal = best;
  result.assignment.machine_of = best_assignment;
  return result;
}

}  // namespace rdp
