// Hochbaum & Shmoys (1987) dual-approximation scheme for P||Cmax -- the
// "arbitrarily good approximation algorithm ... with a dual approximation
// algorithm" the paper cites. For a precision parameter k the scheme
// binary-searches a makespan target T with a decision procedure that
// either certifies "no schedule of makespan <= T exists" or builds one of
// makespan <= (1 + 1/k) T:
//
//   * jobs > T/k are "big"; their sizes are rounded down to multiples of
//     T/k^2 (at most k^2 - k + 1 distinct values, <= k big jobs per
//     machine), and the rounded instance is bin-packed *exactly* by a
//     dynamic program over machine configurations;
//   * small jobs are poured greedily into residual capacity.
//
// The config DP is exponential in the worst case; a state budget guards
// it, and exhaustion falls back to MULTIFIT (reported via `exact_decision`).
#pragma once

#include <cstdint>
#include <span>

#include "core/schedule.hpp"
#include "core/types.hpp"

namespace rdp {

struct PtasResult {
  Time makespan = 0;
  Assignment assignment;
  /// (1 + 1/k) plus the binary-search slack actually achieved.
  double guarantee = 0;
  /// False when the config-DP state budget was exhausted and the result
  /// degraded to the MULTIFIT fallback.
  bool exact_decision = true;
  int search_iterations = 0;
};

/// Runs the scheme with precision k >= 2 (guarantee 1 + 1/k).
/// `state_budget` caps the config-DP memo size per decision call.
[[nodiscard]] PtasResult ptas_cmax(std::span<const Time> p, MachineId m,
                                   unsigned precision_k = 3,
                                   std::size_t state_budget = 2'000'000);

}  // namespace rdp
