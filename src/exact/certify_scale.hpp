// Certified optimum brackets at 10^5..10^6 tasks: the Hochbaum-Shmoys
// (1987) dual-approximation decision procedure driving a bisection whose
// verdicts are *one-sided sound*. Every "no schedule <= T exists" answer
// is a proof (so the final `lo` is a certified lower bound on OPT), while
// "feasible" answers come with a constructible schedule whose true
// makespan is measured, never asserted. Together they bracket OPT within
// a (1 + 1/k) factor -- the large-n backend behind CertifyEngine's
// `CertifiedCmax{lower, upper}` contract (see exact/certify.hpp routing).
//
// Infeasibility proofs, in increasing cost (all exact-arithmetic sound):
//   1. max_j p_j > T                      -> OPT > T        O(1)
//   2. sum_j p_j > m*T*(1+eps)            -> OPT > T        O(1)
//   3. #{p_j > T/kr} > m*kr               -> OPT > T        O(log n)
//   4. rounded big jobs need > m bins     -> OPT > T        config DP
// where kr = k+1 is the internal rounding parameter; big jobs are rounded
// *down* to multiples of T/kr^2 (at most kr^2-kr+1 distinct classes), so
// check 4's bin-packing infeasibility transfers to the true instance.
// Feasible verdicts construct: FFD on the rounded bigs (or an exact
// config-DP packing when FFD fails), then small jobs poured in bulk via
// prefix-sum binary search. A DP that exhausts its state budget is
// "feasible-unproven": it may lower `hi` but never raises `lo`, so budget
// pressure degrades tightness, never soundness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "core/types.hpp"
#include "exact/optimal.hpp"

namespace rdp {

struct HsCertifyOptions {
  /// Guarantee parameter: upper <= (1 + 1/precision_k) * lower when the
  /// bisection converges without DP budget exhaustion. Must be >= 2.
  unsigned precision_k = 8;
  /// Bisection stops when hi <= lo * (1 + rel_epsilon).
  double rel_epsilon = 1e-7;
  /// Hard cap on bisection iterations.
  int max_iterations = 64;
  /// Memoized-state budget for the exact config DP (check 4). Exhaustion
  /// degrades that probe to feasible-unproven.
  std::size_t dp_state_budget = 200'000;
  /// Cap on enumerated bin configurations before the DP gives up.
  std::size_t config_budget = 50'000;
  /// Set when `p` is already sorted non-increasing (e.g. CertifyEngine's
  /// canonical values); skips the O(n log n) internal sort.
  bool assume_sorted = false;
};

struct HsCertifyStats {
  int iterations = 0;         ///< decision probes evaluated
  int infeasible_proofs = 0;  ///< sound "OPT > T" verdicts
  int dp_decisions = 0;       ///< probes that reached the config DP
  int dp_exhaustions = 0;     ///< probes degraded by budget exhaustion
  std::size_t big_jobs = 0;   ///< big-job count at the constructed target
};

/// (1 + 1/k), the bracket width hs_certified_cmax aims for.
[[nodiscard]] constexpr double hs_guarantee(unsigned precision_k) {
  return 1.0 + 1.0 / static_cast<double>(precision_k);
}

/// Certified P||Cmax bracket via Hochbaum-Shmoys dual approximation.
/// `lower` is a sound lower bound on OPT, `upper` the measured makespan
/// of a fully materialized schedule, `backend` = CertifyBackend::kPtas.
/// O(n log n) once (sort + prefix sums) plus O(log(1/eps)) cheap probes;
/// a probe allocates nothing unless it reaches the config DP.
[[nodiscard]] CertifiedCmax hs_certified_cmax(std::span<const Time> p,
                                              MachineId m,
                                              const HsCertifyOptions& options = {},
                                              HsCertifyStats* stats = nullptr);

}  // namespace rdp
