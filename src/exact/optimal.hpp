// Certified optimum (or bracket) for P||Cmax, combining the analytic
// bounds, LPT, MULTIFIT, and branch-and-bound. This is what experiments
// divide by when reporting competitive ratios: when `exact` is false the
// ratio computed against `lower` is an over-estimate, so "measured ratio
// <= theorem bound" checks remain sound.
#pragma once

#include <cstdint>
#include <span>

#include "core/schedule.hpp"
#include "core/types.hpp"
#include "exact/branch_and_bound.hpp"

namespace rdp {

/// Which solver family produced a CertifiedCmax bracket. The small-n path
/// stacks analytic bounds, the m==2 partition DP, MULTIFIT, and
/// branch-and-bound; the large-n path is the Hochbaum-Shmoys
/// dual-approximation bisection (exact/certify_scale.hpp). The tag lets
/// reports and counters distinguish the two without changing the
/// {lower, upper} contract.
enum class CertifyBackend : std::uint8_t {
  kBnb = 0,
  kPtas = 1,
};

[[nodiscard]] constexpr const char* to_string(CertifyBackend backend) {
  return backend == CertifyBackend::kPtas ? "ptas" : "bnb";
}

struct CertifiedCmax {
  Time lower = 0;   ///< certified lower bound on OPT
  Time upper = 0;   ///< makespan of the best schedule found
  bool exact = false;  ///< lower == upper == OPT
  Assignment assignment;  ///< schedule achieving `upper`
  CertifyBackend backend = CertifyBackend::kBnb;  ///< solver that produced this

  /// Midpoint-free conservative value to divide by for ratios.
  [[nodiscard]] Time ratio_denominator() const noexcept { return lower; }
};

/// Computes a certified optimum bracket. `node_budget` bounds the
/// branch-and-bound effort (0 disables B&B entirely and returns the
/// heuristic bracket). `warm` optionally seeds the branch-and-bound
/// incumbent (see BnbWarmStart); it can only tighten the result.
[[nodiscard]] CertifiedCmax certified_cmax(std::span<const Time> p, MachineId m,
                                           std::uint64_t node_budget = 5'000'000,
                                           const BnbWarmStart& warm = {});

}  // namespace rdp
