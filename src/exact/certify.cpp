#include "exact/certify.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstring>
#include <list>
#include <map>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "exact/certify_scale.hpp"
#include "obs/hooks.hpp"
#include "obs/metrics.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"

namespace rdp {

namespace {

// ------------------------------------------------------- canonical form --

// Canonical form of a processing-time vector: entries sorted
// non-increasing (ties toward the smaller original index, so the rank ->
// original-index map is deterministic) and divided by the largest entry.
// Permutations of one multiset canonicalize identically; uniform
// rescalings usually do too (exact when the divisions round alike).
struct Canonical {
  std::vector<Time> values;    // sorted non-increasing, values[0] == 1
  std::vector<TaskId> order;   // order[rank] = original index
  Time scale = 1.0;            // the divisor (largest original entry)
  bool trivial = false;        // empty / all-zero / invalid: solve directly
};

Canonical canonicalize(std::span<const Time> p) {
  Canonical c;
  c.order.resize(p.size());
  std::iota(c.order.begin(), c.order.end(), TaskId{0});
  std::sort(c.order.begin(), c.order.end(), [&](TaskId a, TaskId b) {
    return p[a] != p[b] ? p[a] > p[b] : a < b;
  });
  if (p.empty()) {
    c.trivial = true;
    return c;
  }
  c.scale = p[c.order.front()];
  if (!(c.scale > 0)) {
    // All-zero (degenerate) or negative (domain violation) inputs bypass
    // the cache and keep certified_cmax's own behaviour.
    c.trivial = true;
    return c;
  }
  c.values.resize(p.size());
  for (std::size_t r = 0; r < p.size(); ++r) c.values[r] = p[c.order[r]] / c.scale;
  return c;
}

// ------------------------------------------------------------ cache key --

struct CacheKey {
  MachineId m = 0;
  std::vector<Time> values;

  bool operator==(const CacheKey& other) const {
    return m == other.m && values == other.values;
  }
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& key) const noexcept {
    // FNV-1a over the machine count and the exact bit patterns.
    std::uint64_t h = 14695981039346656037ull;
    const auto mix = [&h](std::uint64_t v) {
      for (int byte = 0; byte < 8; ++byte) {
        h ^= (v >> (8 * byte)) & 0xffull;
        h *= 1099511628211ull;
      }
    };
    mix(key.m);
    mix(key.values.size());
    for (const Time v : key.values) mix(std::bit_cast<std::uint64_t>(v));
    return static_cast<std::size_t>(h);
  }
};

// Maps a canonical-space result back to the caller's index space and
// scale. The upper bound is re-derived from the assignment's loads under
// the original times, so `upper` always equals the recomputed makespan;
// the lower bound is clamped so `lower <= upper` survives rounding.
CertifiedCmax denormalize(const CertifiedCmax& canon, const Canonical& c,
                          std::span<const Time> p, MachineId m) {
  CertifiedCmax out;
  out.exact = canon.exact;
  out.backend = canon.backend;
  out.assignment = Assignment(p.size());
  for (std::size_t r = 0; r < p.size(); ++r) {
    out.assignment.machine_of[c.order[r]] = canon.assignment.machine_of[r];
  }
  std::vector<Time> loads(m, 0);
  for (std::size_t j = 0; j < p.size(); ++j) {
    loads[out.assignment.machine_of[j]] += p[j];
  }
  out.upper = *std::max_element(loads.begin(), loads.end());
  out.lower = canon.exact ? out.upper : std::min(canon.lower * c.scale, out.upper);
  return out;
}

bool assignment_complete_for(const CertifiedCmax& result, std::size_t n,
                             MachineId m) {
  if (result.assignment.machine_of.size() != n) return false;
  for (const MachineId i : result.assignment.machine_of) {
    if (i >= m) return false;
  }
  return true;
}

}  // namespace

// ------------------------------------------------------------ the cache --

struct CertifyEngine::Impl {
  using LruList = std::list<std::pair<CacheKey, CertifiedCmax>>;

  mutable std::mutex mutex;
  std::size_t capacity;
  LruList lru;  // front = most recently used
  std::unordered_map<CacheKey, LruList::iterator, CacheKeyHash> index;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;

  explicit Impl(std::size_t cap) : capacity(cap) {}

  // Looks up `key`, refreshing recency. Does not touch the counters --
  // the batch layer attributes hits/misses per request.
  bool lookup(const CacheKey& key, CertifiedCmax* out) {
    std::lock_guard lock(mutex);
    const auto it = index.find(key);
    if (it == index.end()) return false;
    lru.splice(lru.begin(), lru, it->second);
    *out = it->second->second;
    return true;
  }

  // Inserts a solved entry; first writer wins when two batches race.
  void insert(const CacheKey& key, const CertifiedCmax& value) {
    if (capacity == 0) return;
    std::lock_guard lock(mutex);
    if (index.contains(key)) return;
    lru.emplace_front(key, value);
    index.emplace(key, lru.begin());
    while (index.size() > capacity) {
      index.erase(lru.back().first);
      lru.pop_back();
      ++evictions;
    }
  }

  void count(std::uint64_t batch_hits, std::uint64_t batch_misses) {
    std::lock_guard lock(mutex);
    hits += batch_hits;
    misses += batch_misses;
  }
};

CertifyEngine::CertifyEngine(std::size_t cache_capacity)
    : impl_(std::make_unique<Impl>(cache_capacity)) {}

CertifyEngine::~CertifyEngine() = default;

CertifiedCmax CertifyEngine::certify(std::span<const Time> p, MachineId m,
                                     const CertifyOptions& options) {
  const CertifyRequest request{p, m};
  return certify_batch({&request, 1}, options)[0];
}

std::vector<CertifiedCmax> CertifyEngine::certify_batch(
    std::span<const CertifyRequest> batch, const CertifyOptions& options) {
  const std::size_t count = batch.size();
  std::vector<CertifiedCmax> results(count);

  // Canonicalize every request; trivial ones bypass the cache entirely.
  std::vector<Canonical> canons(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (batch[i].m == 0) {
      throw std::invalid_argument("certify_batch: m must be >= 1");
    }
    canons[i] = canonicalize(batch[i].p);
    if (canons[i].trivial) {
      results[i] = certified_cmax(batch[i].p, batch[i].m, options.node_budget);
    }
  }

  // Dedup the remainder: one slot per distinct (m, canonical values).
  struct Slot {
    CacheKey key;
    std::vector<std::size_t> requests;  // batch indices sharing this slot
    CertifiedCmax result;               // canonical-space result
    bool resolved = false;              // cache hit or already solved
  };
  std::vector<Slot> slots;
  std::unordered_map<CacheKey, std::size_t, CacheKeyHash> slot_of;
  for (std::size_t i = 0; i < count; ++i) {
    if (canons[i].trivial) continue;
    CacheKey key{batch[i].m, canons[i].values};
    const auto [it, inserted] = slot_of.try_emplace(std::move(key), slots.size());
    if (inserted) {
      slots.push_back(Slot{it->first, {}, {}, false});
    }
    slots[it->second].requests.push_back(i);
  }

  // Resolve from the cache (sequentially, so LRU recency stays
  // deterministic for a deterministic call sequence).
  std::uint64_t solves = 0;
  for (Slot& slot : slots) {
    slot.resolved = impl_->lookup(slot.key, &slot.result);
  }

  // Warm-start seeds: per (n, m) shape, the first slot of that shape in
  // first-occurrence order. A seed that is a miss is solved inline (cold)
  // before the fan-out, so every remaining solve has a deterministic seed
  // regardless of thread count.
  std::map<std::pair<std::size_t, MachineId>, std::size_t> seed_slot;
  for (std::size_t s = 0; s < slots.size(); ++s) {
    seed_slot.try_emplace({slots[s].key.values.size(), slots[s].key.m}, s);
  }
  // Size routing: instances past the PTAS threshold go to the
  // Hochbaum-Shmoys dual-approximation backend, which is a pure function
  // of (values, m, options) -- no warm start needed, and batch results
  // stay bit-identical across thread counts by construction.
  const auto routes_to_ptas = [&](const Slot& slot) {
    return options.ptas_threshold > 0 &&
           slot.key.values.size() > options.ptas_threshold;
  };
  std::atomic<std::uint64_t> bnb_solves{0};
  std::atomic<std::uint64_t> ptas_solves{0};
  const auto solve_slot = [&](std::size_t s) {
    Slot& slot = slots[s];
    if (routes_to_ptas(slot)) {
      HsCertifyOptions hs;
      hs.precision_k = options.ptas_precision;
      hs.dp_state_budget = options.ptas_state_budget;
      hs.assume_sorted = true;  // canonical values are sorted non-increasing
      slot.result = hs_certified_cmax(slot.key.values, slot.key.m, hs);
      ptas_solves.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    BnbWarmStart warm;
    if (options.warm_start) {
      const std::size_t seed =
          seed_slot.at({slot.key.values.size(), slot.key.m});
      if (seed != s && slots[seed].resolved) {
        warm.assignment = &slots[seed].result.assignment;
      }
    }
    slot.result =
        certified_cmax(slot.key.values, slot.key.m, options.node_budget, warm);
    bnb_solves.fetch_add(1, std::memory_order_relaxed);
  };
  std::vector<std::size_t> pending;
  for (std::size_t s = 0; s < slots.size(); ++s) {
    if (slots[s].resolved) continue;
    ++solves;
    const auto shape = std::make_pair(slots[s].key.values.size(), slots[s].key.m);
    if (seed_slot.at(shape) == s) {
      solve_slot(s);
      slots[s].resolved = true;
    } else {
      pending.push_back(s);
    }
  }
  if (options.pool != nullptr && pending.size() > 1) {
    parallel_for_each_index(*options.pool, pending.size(),
                            [&](std::size_t k) { solve_slot(pending[k]); });
  } else {
    for (const std::size_t s : pending) solve_slot(s);
  }
  for (const std::size_t s : pending) slots[s].resolved = true;

  // Publish the new solves (slot order keeps insertion deterministic).
  for (const Slot& slot : slots) {
    impl_->insert(slot.key, slot.result);
  }

  // Map every request back through its own permutation and scale.
  std::uint64_t served = 0;
  for (const Slot& slot : slots) {
    for (const std::size_t i : slot.requests) {
      ++served;
      if (assignment_complete_for(slot.result, batch[i].p.size(), batch[i].m)) {
        results[i] = denormalize(slot.result, canons[i], batch[i].p, batch[i].m);
      } else {
        // Defensive: an unexpected partial assignment falls back to a
        // direct solve rather than producing an invalid result.
        results[i] = certified_cmax(batch[i].p, batch[i].m, options.node_budget);
      }
    }
  }

  const std::uint64_t batch_hits = served - solves;
  impl_->count(batch_hits, solves);
  if (obs::MetricsRegistry* const mx = obs::metrics()) {
    // Unconditional adds so both counters appear in --metrics-out
    // snapshots even when one side is zero for the whole run.
    mx->counter("exp.certify.cache_hits").add(batch_hits);
    mx->counter("exp.certify.cache_misses").add(solves);
    mx->counter("exp.certify.backend.bnb")
        .add(bnb_solves.load(std::memory_order_relaxed));
    mx->counter("exp.certify.backend.ptas")
        .add(ptas_solves.load(std::memory_order_relaxed));
    mx->gauge("exp.certify.cache_size")
        .set(static_cast<double>(cache_stats().size));
  }
  return results;
}

CertifyCacheStats CertifyEngine::cache_stats() const {
  std::lock_guard lock(impl_->mutex);
  CertifyCacheStats stats;
  stats.hits = impl_->hits;
  stats.misses = impl_->misses;
  stats.evictions = impl_->evictions;
  stats.size = impl_->index.size();
  stats.capacity = impl_->capacity;
  return stats;
}

void CertifyEngine::clear() {
  std::lock_guard lock(impl_->mutex);
  impl_->lru.clear();
  impl_->index.clear();
}

CertifyEngine& default_certify_engine() {
  static CertifyEngine engine;
  return engine;
}

std::vector<CertifiedCmax> certified_cmax_batch(
    std::span<const CertifyRequest> batch, const CertifyOptions& options) {
  return default_certify_engine().certify_batch(batch, options);
}

}  // namespace rdp
