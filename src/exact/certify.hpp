// Batched, cached, warm-started certification of P||Cmax optima -- the
// engine behind every competitive-ratio denominator. Experiments certify
// the same (or near-identical) processing-time multisets over and over:
// different strategies replay the same realizations, memory experiments
// re-certify the (fixed) size vector each trial, and realizations of one
// instance collide after canonicalization. The engine exploits that:
//
//  - every vector is canonicalized (sorted non-increasing, scale-divided
//    by the largest entry) so permutations and uniform rescalings of one
//    multiset share a single solve;
//  - solved canonical instances live in a thread-safe, LRU-bounded memo
//    cache (hit/miss counters surface through obs::MetricsRegistry as
//    exp.certify.cache_hits / exp.certify.cache_misses);
//  - a batch call dedups its requests, solves the unique remainder --
//    optionally in parallel on a ThreadPool -- and warm-starts each solve
//    from the batch's first result of the same shape (see
//    docs/PERFORMANCE.md for the determinism contract).
//
// Results are deterministic per request vector and bitwise reproducible:
// a cache hit returns exactly the bytes the original solve produced, and
// batch results are independent of thread count.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/types.hpp"
#include "exact/optimal.hpp"

namespace rdp {

class ThreadPool;

/// Tuning for certify calls. `pool` and `warm_start` only affect batch
/// calls; single certifies are always solved inline.
struct CertifyOptions {
  /// Branch-and-bound node budget per solve (0 = analytic bracket only).
  std::uint64_t node_budget = 5'000'000;
  /// When non-null, unique cache misses of a batch are solved on this
  /// pool (results are per-index deterministic regardless of threads).
  ThreadPool* pool = nullptr;
  /// Seed each batch solve with the batch's first same-shape result.
  bool warm_start = true;
  /// Instances with more than this many tasks route to the
  /// Hochbaum-Shmoys dual-approximation backend (exact/certify_scale.hpp)
  /// instead of branch-and-bound; results carry backend ==
  /// CertifyBackend::kPtas. 0 disables PTAS routing entirely.
  std::size_t ptas_threshold = 512;
  /// PTAS guarantee parameter: the large-n bracket targets
  /// upper <= (1 + 1/ptas_precision) * lower.
  unsigned ptas_precision = 8;
  /// Config-DP state budget for the PTAS decision procedure; exhaustion
  /// widens the bracket but never breaks soundness.
  std::size_t ptas_state_budget = 200'000;
};

/// Point-in-time cache statistics.
struct CertifyCacheStats {
  std::uint64_t hits = 0;        ///< requests served without a new solve
  std::uint64_t misses = 0;      ///< solves performed
  std::uint64_t evictions = 0;   ///< entries dropped by the LRU bound
  std::size_t size = 0;          ///< entries currently cached
  std::size_t capacity = 0;      ///< LRU bound (0 = caching disabled)

  [[nodiscard]] double hit_rate() const noexcept {
    const double total = static_cast<double>(hits + misses);
    return total > 0 ? static_cast<double>(hits) / total : 0.0;
  }
};

/// One certification request: processing times and machine count. The
/// span must stay valid for the duration of the call.
struct CertifyRequest {
  std::span<const Time> p;
  MachineId m = 1;
};

/// The certification engine: canonicalizing memo cache + batch solver.
/// All public methods are thread-safe; concurrent batches share the cache.
class CertifyEngine {
 public:
  /// `cache_capacity` bounds the LRU cache (0 disables caching; every
  /// request is then a fresh solve).
  explicit CertifyEngine(std::size_t cache_capacity = kDefaultCacheCapacity);
  ~CertifyEngine();

  CertifyEngine(const CertifyEngine&) = delete;
  CertifyEngine& operator=(const CertifyEngine&) = delete;

  /// Certifies one instance through the cache. Equivalent to a 1-element
  /// certify_batch.
  [[nodiscard]] CertifiedCmax certify(std::span<const Time> p, MachineId m,
                                      const CertifyOptions& options = {});

  /// Certifies a batch: canonicalizes, dedups against the cache and
  /// within the batch, solves the unique remainder (in parallel when
  /// `options.pool` is set), and returns one result per request, in
  /// request order. Throws std::invalid_argument on a request with m == 0.
  [[nodiscard]] std::vector<CertifiedCmax> certify_batch(
      std::span<const CertifyRequest> batch, const CertifyOptions& options = {});

  [[nodiscard]] CertifyCacheStats cache_stats() const;

  /// Drops every cached entry (counters are kept).
  void clear();

  static constexpr std::size_t kDefaultCacheCapacity = 4096;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// The process-wide engine used when an experiment config does not carry
/// its own (lazily constructed, default capacity).
[[nodiscard]] CertifyEngine& default_certify_engine();

/// Batch certification through the process-default engine.
[[nodiscard]] std::vector<CertifiedCmax> certified_cmax_batch(
    std::span<const CertifyRequest> batch, const CertifyOptions& options = {});

}  // namespace rdp
