// Exhaustive P||Cmax solver for tiny instances; the ground truth that the
// branch-and-bound solver is tested against.
#pragma once

#include <span>

#include "core/schedule.hpp"
#include "core/types.hpp"

namespace rdp {

struct BruteForceResult {
  Time optimal = 0;
  Assignment assignment;
};

/// Enumerates all m^n assignments (with first-task symmetry pinning).
/// Throws std::invalid_argument when n > max_tasks (guard against
/// accidental exponential blowups in tests).
[[nodiscard]] BruteForceResult brute_force_cmax(std::span<const Time> p, MachineId m,
                                                std::size_t max_tasks = 14);

}  // namespace rdp
