// Exact P||Cmax via depth-first branch-and-bound: LPT incumbent, analytic
// lower bounds, dominance pruning, and machine-symmetry breaking. Solves
// instances of a few dozen tasks in well under a second; a node budget
// caps the worst case and downgrades the result to certified bounds.
#pragma once

#include <cstdint>
#include <span>

#include "core/schedule.hpp"
#include "core/types.hpp"

namespace rdp {

struct BnbResult {
  Time best = 0;           ///< best makespan found (upper bound on OPT)
  Time lower_bound = 0;    ///< certified lower bound on OPT
  bool proven = false;     ///< true when best == OPT is certified
  std::uint64_t nodes = 0; ///< search nodes expanded
  Assignment assignment;   ///< assignment achieving `best`
};

/// Optional warm start for the search: an assignment (task -> machine, in
/// the caller's task index space) whose makespan under `p` seeds the
/// incumbent when it beats LPT. Typical source: the solution of a similar
/// instance (e.g. another realization of the same workload); any complete
/// assignment is a valid upper bound, so warm starting never changes
/// which bounds are certified -- it only prunes the search earlier.
struct BnbWarmStart {
  const Assignment* assignment = nullptr;  ///< nullptr = no warm start
};

/// Solves (or bounds) min-makespan scheduling of `p` on `m` machines.
/// `node_budget` caps the search; on exhaustion `proven` is false and
/// [lower_bound, best] brackets the optimum.
[[nodiscard]] BnbResult branch_and_bound_cmax(std::span<const Time> p, MachineId m,
                                              std::uint64_t node_budget = 20'000'000,
                                              const BnbWarmStart& warm = {});

}  // namespace rdp
