#include "exact/branch_and_bound.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "algo/lpt.hpp"
#include "exact/lower_bounds.hpp"

namespace rdp {

namespace {

constexpr double kEps = 1e-12;

struct SearchState {
  std::span<const Time> p;       // sorted non-increasing
  MachineId m;
  std::uint64_t node_budget;
  std::uint64_t nodes = 0;
  bool budget_exhausted = false;
  Time incumbent = std::numeric_limits<Time>::infinity();
  Time root_lb = 0;
  Time avg_bound = 0;            // sum(p)/m -- constant over the whole search
  std::vector<Time> loads;
  std::vector<Time> suffix_sum;  // suffix_sum[j] = sum of p[j..n)
  std::vector<MachineId> current;
  std::vector<MachineId> best;
  // Per-depth scratch for the sorted-load machine order (recursion would
  // clobber a single shared buffer).
  std::vector<std::vector<MachineId>> machine_order;
};

// `max_load` is threaded down the recursion instead of recomputed with a
// per-node max_element scan; it always equals max(st.loads).
void dfs(SearchState& st, TaskId j, Time max_load) {
  if (st.budget_exhausted) return;
  if (++st.nodes > st.node_budget) {
    st.budget_exhausted = true;
    return;
  }
  if (j == st.p.size()) {
    if (max_load < st.incumbent - kEps) {
      st.incumbent = max_load;
      st.best = st.current;
    }
    return;
  }
  // Node lower bound: the completed schedule can be no better than
  //  - the largest load already committed,
  //  - the average load over all machines (constant: every task is placed),
  //  - the "two largest remaining tasks" bin argument: task j lands on some
  //    machine (>= min_load + p[j]); if j+1 exists, either it shares that
  //    bin (>= min_load + p[j] + p[j+1]) or it lands on a second machine
  //    whose load is at least the second-smallest (>= min2 + p[j+1]).
  Time min1 = std::numeric_limits<Time>::infinity();
  Time min2 = std::numeric_limits<Time>::infinity();
  for (const Time l : st.loads) {
    if (l < min1) {
      min2 = min1;
      min1 = l;
    } else if (l < min2) {
      min2 = l;
    }
  }
  const Time pj = st.p[j];
  Time lb = std::max(max_load, st.avg_bound);
  if (j + 1 < st.p.size() && st.m >= 2) {
    const Time same_bin = min1 + pj + st.p[j + 1];
    const Time diff_bins = std::max(min1 + pj, min2 + st.p[j + 1]);
    lb = std::max(lb, std::min(same_bin, diff_bins));
  } else {
    lb = std::max(lb, min1 + pj);
  }
  if (lb >= st.incumbent - kEps) return;

  // Branch: machines in non-decreasing load order (ties toward the smaller
  // index), skipping adjacent equal loads -- assigning the next task to
  // either of two equally loaded machines yields symmetric subtrees. The
  // sorted order makes the dedup complete for any m (the former fixed-size
  // seen-loads array stopped deduplicating past 64 distinct loads) and
  // lets the loop stop at the first load that cannot beat the incumbent.
  std::vector<MachineId>& order = st.machine_order[j];
  order.resize(st.m);
  std::iota(order.begin(), order.end(), MachineId{0});
  std::sort(order.begin(), order.end(), [&](MachineId a, MachineId b) {
    return st.loads[a] != st.loads[b] ? st.loads[a] < st.loads[b] : a < b;
  });
  bool have_prev = false;
  Time prev_load = 0;
  for (const MachineId i : order) {
    const Time load = st.loads[i];
    if (have_prev && load == prev_load) continue;
    have_prev = true;
    prev_load = load;
    // Loads only grow along `order`, so once one fails they all do.
    if (load + pj >= st.incumbent - kEps) break;
    st.loads[i] = load + pj;
    st.current[j] = i;
    dfs(st, j + 1, std::max(max_load, load + pj));
    st.loads[i] = load;
    if (st.budget_exhausted) return;
    // Optimality fathoming: nothing can beat the root lower bound.
    if (st.incumbent <= st.root_lb + kEps) return;
  }
}

}  // namespace

BnbResult branch_and_bound_cmax(std::span<const Time> p, MachineId m,
                                std::uint64_t node_budget,
                                const BnbWarmStart& warm) {
  if (m == 0) throw std::invalid_argument("branch_and_bound_cmax: m must be >= 1");
  BnbResult result;
  result.assignment = Assignment(p.size());
  if (p.empty()) {
    result.proven = true;
    return result;
  }

  // Work on tasks sorted by non-increasing time; map back at the end.
  const std::vector<TaskId> order = lpt_order(p);
  std::vector<Time> sorted(p.size());
  for (std::size_t r = 0; r < order.size(); ++r) sorted[r] = p[order[r]];

  SearchState st;
  st.p = sorted;
  st.m = m;
  st.node_budget = node_budget;
  st.loads.assign(m, 0);
  st.current.assign(p.size(), 0);
  st.best.assign(p.size(), 0);
  st.machine_order.resize(p.size());
  st.suffix_sum.assign(p.size() + 1, 0);
  for (std::size_t j = p.size(); j-- > 0;) {
    st.suffix_sum[j] = st.suffix_sum[j + 1] + sorted[j];
  }
  st.avg_bound = st.suffix_sum[0] / static_cast<double>(m);
  st.root_lb = makespan_lower_bound(sorted, m);

  // LPT incumbent (indices in sorted space are just 0..n-1 in order).
  const GreedyScheduleResult lpt = lpt_schedule(sorted, m);
  st.incumbent = lpt.makespan;
  for (std::size_t r = 0; r < sorted.size(); ++r) {
    st.best[r] = lpt.assignment.machine_of[r];
  }

  // Warm start: adopt the seed assignment when its makespan under `p`
  // beats LPT. Evaluated fresh here, so any complete assignment (e.g. the
  // optimum of a nearby instance) is a sound incumbent.
  if (warm.assignment != nullptr &&
      warm.assignment->machine_of.size() == p.size()) {
    std::vector<Time> warm_loads(m, 0);
    bool valid = true;
    for (std::size_t j = 0; j < p.size(); ++j) {
      const MachineId i = warm.assignment->machine_of[j];
      if (i >= m) {
        valid = false;
        break;
      }
      warm_loads[i] += p[j];
    }
    if (valid) {
      const Time warm_cmax =
          *std::max_element(warm_loads.begin(), warm_loads.end());
      if (warm_cmax < st.incumbent - kEps) {
        st.incumbent = warm_cmax;
        for (std::size_t r = 0; r < order.size(); ++r) {
          st.best[r] = warm.assignment->machine_of[order[r]];
        }
      }
    }
  }

  if (st.incumbent > st.root_lb + kEps) {
    dfs(st, 0, 0);
  }

  result.best = st.incumbent;
  result.nodes = st.nodes;
  result.proven = !st.budget_exhausted;
  result.lower_bound = result.proven ? st.incumbent : st.root_lb;
  for (std::size_t r = 0; r < order.size(); ++r) {
    result.assignment.machine_of[order[r]] = st.best[r];
  }
  return result;
}

}  // namespace rdp
