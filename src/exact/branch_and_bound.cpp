#include "exact/branch_and_bound.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "algo/lpt.hpp"
#include "exact/lower_bounds.hpp"

namespace rdp {

namespace {

constexpr double kEps = 1e-12;

struct SearchState {
  std::span<const Time> p;       // sorted non-increasing
  MachineId m;
  std::uint64_t node_budget;
  std::uint64_t nodes = 0;
  bool budget_exhausted = false;
  Time incumbent = std::numeric_limits<Time>::infinity();
  Time root_lb = 0;
  std::vector<Time> loads;
  std::vector<Time> suffix_sum;  // suffix_sum[j] = sum of p[j..n)
  std::vector<MachineId> current;
  std::vector<MachineId> best;
};

void dfs(SearchState& st, TaskId j) {
  if (st.budget_exhausted) return;
  if (++st.nodes > st.node_budget) {
    st.budget_exhausted = true;
    return;
  }
  if (j == st.p.size()) {
    const Time cmax = *std::max_element(st.loads.begin(), st.loads.end());
    if (cmax < st.incumbent - kEps) {
      st.incumbent = cmax;
      st.best = st.current;
    }
    return;
  }
  // Node lower bound: max load so far vs average over remaining capacity.
  const Time max_load = *std::max_element(st.loads.begin(), st.loads.end());
  Time total = st.suffix_sum[j];
  for (Time l : st.loads) total += l;
  const Time avg = total / static_cast<double>(st.m);
  if (std::max(max_load, avg) >= st.incumbent - kEps) return;

  // Branch: try machines in load order, skipping equal-load duplicates
  // (assigning the next task to either of two equally loaded machines
  // yields symmetric subtrees).
  Time tried_loads[64];
  std::size_t num_tried = 0;
  for (MachineId i = 0; i < st.m; ++i) {
    const Time load = st.loads[i];
    const bool seen =
        std::find(tried_loads, tried_loads + num_tried, load) != tried_loads + num_tried;
    if (seen) continue;
    if (num_tried < 64) tried_loads[num_tried++] = load;
    if (load + st.p[j] >= st.incumbent - kEps) continue;
    st.loads[i] = load + st.p[j];
    st.current[j] = i;
    dfs(st, j + 1);
    st.loads[i] = load;
    if (st.budget_exhausted) return;
    // Optimality fathoming: nothing can beat the root lower bound.
    if (st.incumbent <= st.root_lb + kEps) return;
  }
}

}  // namespace

BnbResult branch_and_bound_cmax(std::span<const Time> p, MachineId m,
                                std::uint64_t node_budget) {
  if (m == 0) throw std::invalid_argument("branch_and_bound_cmax: m must be >= 1");
  BnbResult result;
  result.assignment = Assignment(p.size());
  if (p.empty()) {
    result.proven = true;
    return result;
  }

  // Work on tasks sorted by non-increasing time; map back at the end.
  const std::vector<TaskId> order = lpt_order(p);
  std::vector<Time> sorted(p.size());
  for (std::size_t r = 0; r < order.size(); ++r) sorted[r] = p[order[r]];

  SearchState st;
  st.p = sorted;
  st.m = m;
  st.node_budget = node_budget;
  st.loads.assign(m, 0);
  st.current.assign(p.size(), 0);
  st.best.assign(p.size(), 0);
  st.suffix_sum.assign(p.size() + 1, 0);
  for (std::size_t j = p.size(); j-- > 0;) {
    st.suffix_sum[j] = st.suffix_sum[j + 1] + sorted[j];
  }
  st.root_lb = makespan_lower_bound(sorted, m);

  // LPT incumbent (indices in sorted space are just 0..n-1 in order).
  const GreedyScheduleResult lpt = lpt_schedule(sorted, m);
  st.incumbent = lpt.makespan;
  for (std::size_t r = 0; r < sorted.size(); ++r) {
    st.best[r] = lpt.assignment.machine_of[r];
  }

  if (st.incumbent > st.root_lb + kEps) {
    dfs(st, 0);
  }

  result.best = st.incumbent;
  result.nodes = st.nodes;
  result.proven = !st.budget_exhausted;
  result.lower_bound = result.proven ? st.incumbent : st.root_lb;
  for (std::size_t r = 0; r < order.size(); ++r) {
    result.assignment.machine_of[order[r]] = st.best[r];
  }
  return result;
}

}  // namespace rdp
