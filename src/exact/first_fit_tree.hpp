// First-Fit bin selection in O(log m): a segment tree over machine loads
// whose internal nodes hold the *minimum* load of their subtree. The
// first-fit query ("leftmost bin i with load[i] + item <= cap") descends
// left-first into any subtree whose minimum qualifies, so it lands on
// exactly the bin a linear scan would pick -- and because the leaf test
// is the same floating-point expression (`load + item <= cap`) the
// selection is bit-identical to the linear loop, not merely equivalent.
//
// This turns FFD's O(n*m) inner scan into O(n log m), which is what makes
// a MULTIFIT / Hochbaum-Shmoys bisection step affordable at 10^5..10^6
// tasks (exact/dual_approx.cpp, exact/certify_scale.cpp). `reset()`
// rewinds without freeing, so a bisection loop reuses one tree with zero
// steady-state allocation.
#pragma once

#include <bit>
#include <cstddef>
#include <limits>
#include <span>
#include <vector>

#include "core/types.hpp"

namespace rdp {

class FirstFitTree {
 public:
  FirstFitTree() = default;
  explicit FirstFitTree(MachineId num_bins) { reset(num_bins); }

  /// Rewinds to `num_bins` empty bins, reusing storage when the padded
  /// tree size is unchanged.
  void reset(MachineId num_bins) {
    bins_ = num_bins;
    base_ = num_bins <= 1 ? 1 : std::bit_ceil(static_cast<std::size_t>(num_bins));
    tree_.assign(2 * base_, kUnusable);
    for (std::size_t i = 0; i < bins_; ++i) tree_[base_ + i] = 0;
    for (std::size_t node = base_ - 1; node >= 1; --node) {
      tree_[node] = std::min(tree_[2 * node], tree_[2 * node + 1]);
    }
  }

  [[nodiscard]] MachineId num_bins() const noexcept {
    return static_cast<MachineId>(bins_);
  }

  /// Load currently in bin `i`.
  [[nodiscard]] Time load(MachineId i) const { return tree_[base_ + i]; }

  /// The leftmost bin whose load satisfies `load + item <= cap`, or
  /// kNoMachine when none does. Does not modify the tree.
  [[nodiscard]] MachineId find_first_fit(Time item, Time cap) const {
    if (bins_ == 0 || !(tree_[1] + item <= cap)) return kNoMachine;
    std::size_t node = 1;
    while (node < base_) {
      const std::size_t left = 2 * node;
      node = tree_[left] + item <= cap ? left : left + 1;
    }
    return static_cast<MachineId>(node - base_);
  }

  /// First-fit placement: finds the leftmost qualifying bin, commits the
  /// item into it, and returns its index (kNoMachine = item placed
  /// nowhere, tree unchanged).
  MachineId place(Time item, Time cap) {
    const MachineId bin = find_first_fit(item, cap);
    if (bin == kNoMachine) return kNoMachine;
    add(bin, item);
    return bin;
  }

  /// Adds `item` to bin `i` unconditionally (used to preload bins that
  /// were filled outside the tree, e.g. the big-job packing).
  void add(MachineId i, Time item) {
    std::size_t node = base_ + i;
    tree_[node] += item;
    for (node /= 2; node >= 1; node /= 2) {
      tree_[node] = std::min(tree_[2 * node], tree_[2 * node + 1]);
    }
  }

  /// The minimum load over all bins (the root reduction).
  [[nodiscard]] Time min_load() const {
    return bins_ == 0 ? 0 : tree_[1];
  }

 private:
  // Padding leaves must never win a first-fit query; +infinity loads keep
  // every `load + item <= cap` test false for them.
  static constexpr Time kUnusable = std::numeric_limits<Time>::infinity();

  std::size_t bins_ = 0;
  std::size_t base_ = 1;
  std::vector<Time> tree_;
};

}  // namespace rdp
