#include "exact/certify_scale.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <numeric>
#include <stdexcept>
#include <utility>
#include <vector>

#include "algo/lpt.hpp"
#include "core/scan.hpp"
#include "exact/dual_approx.hpp"
#include "exact/first_fit_tree.hpp"

namespace rdp {

namespace {

// Feasibility-side comparisons get a relative slack (enlarging a bin cap
// can only ease packing, so this never weakens an infeasibility proof);
// the total-load infeasibility proof gets a larger margin that absorbs
// the O(n * ulp) accumulation error of the prefix sums.
constexpr double kRelSlack = 1e-12;
constexpr double kInfeasibleMargin = 1e-9;
constexpr int kInfinity = std::numeric_limits<int>::max() / 2;

using CountVector = std::vector<std::uint32_t>;

// Distinct rounded big-job values at one probe target, non-increasing.
// Equal rounded values are contiguous runs of the sorted prefix (floor is
// monotone), so `first_pos` pins each class to its run of task positions.
struct BigClasses {
  std::vector<Time> value;
  CountVector count;
  std::vector<std::size_t> first_pos;

  void clear() {
    value.clear();
    count.clear();
    first_pos.clear();
  }
  [[nodiscard]] std::size_t size() const { return value.size(); }
};

void build_classes(std::span<const Time> sorted, std::size_t num_big,
                   Time grain, BigClasses& cls) {
  cls.clear();
  for (std::size_t pos = 0; pos < num_big; ++pos) {
    const Time rounded = std::floor(sorted[pos] / grain) * grain;
    if (!cls.value.empty() && cls.value.back() == rounded) {
      ++cls.count.back();
    } else {
      cls.value.push_back(rounded);
      cls.count.push_back(1);
      cls.first_pos.push_back(pos);
    }
  }
}

// Enumerates every bin configuration (multiset of big classes with total
// rounded size <= cap and at most max_items items) into `flat`, stride =
// cls.size(). Returns false when the count exceeds `config_budget`.
bool enumerate_configs(const BigClasses& cls, Time cap, unsigned max_items,
                       std::size_t config_budget,
                       std::vector<std::uint32_t>& flat) {
  flat.clear();
  const std::size_t num_classes = cls.size();
  std::vector<std::uint32_t> current(num_classes, 0);
  std::size_t num_configs = 0;
  bool within_budget = true;
  const std::function<void(std::size_t, Time, unsigned)> recurse =
      [&](std::size_t idx, Time remaining, unsigned items) {
        if (!within_budget) return;
        if (idx == num_classes) {
          if (items == 0) return;
          if (num_configs >= config_budget) {
            within_budget = false;
            return;
          }
          flat.insert(flat.end(), current.begin(), current.end());
          ++num_configs;
          return;
        }
        const Time val = cls.value[idx];
        std::uint32_t max_c = cls.count[idx];
        if (items + max_c > max_items) max_c = max_items - items;
        for (std::uint32_t c = 0; c <= max_c; ++c) {
          const Time used = static_cast<Time>(c) * val;
          if (used > remaining) break;
          current[idx] = c;
          recurse(idx + 1, remaining - used, items + c);
          if (!within_budget) break;
        }
        current[idx] = 0;
      };
  recurse(0, cap, 0);
  return within_budget;
}

// Exact min-bins over class-count states, memoized. The state budget caps
// memo entries and a work budget caps config trials, so a blow-up
// surfaces as `exhausted()` (feasible-unproven) instead of a stall.
class BinPackDp {
 public:
  BinPackDp(const std::vector<std::uint32_t>& configs_flat, std::size_t stride,
            std::size_t state_budget)
      : flat_(configs_flat),
        stride_(stride),
        state_budget_(state_budget),
        work_budget_(state_budget * 10) {}

  [[nodiscard]] int min_bins(const CountVector& demand) {
    CountVector state = demand;
    return solve(state);
  }

  [[nodiscard]] bool exhausted() const { return exhausted_; }

  // Peels off one minimal packing: bins_flat receives min_bins * stride
  // class counts. Requires a prior successful min_bins (memo warm).
  bool reconstruct(const CountVector& demand,
                   std::vector<std::uint32_t>& bins_flat) {
    bins_flat.clear();
    CountVector state = demand;
    int remaining = solve(state);
    if (exhausted_ || remaining >= kInfinity) return false;
    const std::size_t num_configs = stride_ == 0 ? 0 : flat_.size() / stride_;
    while (remaining > 0) {
      bool advanced = false;
      for (std::size_t ci = 0; ci < num_configs && !advanced; ++ci) {
        const std::uint32_t* cfg = flat_.data() + ci * stride_;
        if (!fits(cfg, state)) continue;
        apply(cfg, state, -1);
        const int sub = solve(state);
        if (!exhausted_ && sub + 1 == remaining) {
          bins_flat.insert(bins_flat.end(), cfg, cfg + stride_);
          remaining = sub;
          advanced = true;
        } else {
          apply(cfg, state, +1);
        }
      }
      if (!advanced) return false;
    }
    return true;
  }

 private:
  static bool fits(const std::uint32_t* cfg, const CountVector& state) {
    for (std::size_t v = 0; v < state.size(); ++v) {
      if (cfg[v] > state[v]) return false;
    }
    return true;
  }

  static void apply(const std::uint32_t* cfg, CountVector& state, int sign) {
    for (std::size_t v = 0; v < state.size(); ++v) {
      state[v] = sign > 0 ? state[v] + cfg[v] : state[v] - cfg[v];
    }
  }

  int solve(CountVector& state) {
    if (exhausted_) return kInfinity;
    if (std::all_of(state.begin(), state.end(),
                    [](std::uint32_t c) { return c == 0; })) {
      return 0;
    }
    const auto it = memo_.find(state);
    if (it != memo_.end()) return it->second;
    if (memo_.size() >= state_budget_) {
      exhausted_ = true;
      return kInfinity;
    }
    int best = kInfinity;
    const std::size_t num_configs = stride_ == 0 ? 0 : flat_.size() / stride_;
    for (std::size_t ci = 0; ci < num_configs; ++ci) {
      if (++work_ > work_budget_) {
        exhausted_ = true;
        return kInfinity;
      }
      const std::uint32_t* cfg = flat_.data() + ci * stride_;
      if (!fits(cfg, state)) continue;
      apply(cfg, state, -1);
      const int sub = solve(state);
      apply(cfg, state, +1);
      if (exhausted_) return kInfinity;
      if (sub < kInfinity && sub + 1 < best) best = sub + 1;
    }
    memo_.emplace(state, best);
    return best;
  }

  const std::vector<std::uint32_t>& flat_;
  std::size_t stride_;
  std::size_t state_budget_;
  std::size_t work_budget_;
  std::size_t work_ = 0;
  bool exhausted_ = false;
  std::map<CountVector, int> memo_;
};

enum class Verdict {
  kInfeasible,     // sound proof: OPT > target
  kFeasibleNoBig,  // constructible: pure pour, no big jobs
  kFeasibleFfd,    // constructible: FFD packed the rounded bigs
  kFeasibleDp,     // constructible: exact config DP packed them
  kUnproven,       // budget exhausted: may lower hi, never raises lo
};

[[nodiscard]] bool constructible(Verdict v) {
  return v == Verdict::kFeasibleNoBig || v == Verdict::kFeasibleFfd ||
         v == Verdict::kFeasibleDp;
}

struct DecideScratch {
  BigClasses cls;
  FirstFitTree tree;
  std::vector<std::uint32_t> configs;
};

// Number of jobs strictly larger than `threshold` in the sorted prefix.
[[nodiscard]] std::size_t count_big(std::span<const Time> sorted,
                                    Time threshold) {
  const auto split =
      std::partition_point(sorted.begin(), sorted.end(),
                           [&](Time v) { return v > threshold; });
  return static_cast<std::size_t>(split - sorted.begin());
}

// Runs the rounded-big FFD check shared by decide() and materialize():
// identical item sequence (classes expand in sorted order), identical
// capacity, so a decide()-time success replays verbatim.
bool pack_bigs_ffd(const BigClasses& cls, MachineId m, Time cap_eff,
                   FirstFitTree& tree) {
  tree.reset(m);
  for (std::size_t v = 0; v < cls.size(); ++v) {
    for (std::uint32_t c = 0; c < cls.count[v]; ++c) {
      if (tree.place(cls.value[v], cap_eff) == kNoMachine) return false;
    }
  }
  return true;
}

Verdict decide(std::span<const Time> sorted, Time total, MachineId m,
               unsigned kr, Time target, const HsCertifyOptions& options,
               DecideScratch& scratch, HsCertifyStats* stats) {
  // Proof 1: a single job exceeds the target (input values are exact).
  if (sorted.front() > target) return Verdict::kInfeasible;
  // Proof 2: average load exceeds the target beyond fp accumulation error.
  if (total > static_cast<Time>(m) * target * (1.0 + kInfeasibleMargin)) {
    return Verdict::kInfeasible;
  }
  const Time big_threshold = target / static_cast<Time>(kr);
  const std::size_t num_big = count_big(sorted, big_threshold);
  if (num_big == 0) return Verdict::kFeasibleNoBig;
  // Proof 3: a makespan-<=target machine holds at most kr jobs > target/kr.
  if (num_big > static_cast<std::size_t>(m) * kr) return Verdict::kInfeasible;

  const Time grain = target / static_cast<Time>(kr * kr);
  build_classes(sorted, num_big, grain, scratch.cls);
  const Time cap_eff = target * (1.0 + kRelSlack);
  if (pack_bigs_ffd(scratch.cls, m, cap_eff, scratch.tree)) {
    return Verdict::kFeasibleFfd;
  }

  // Proof 4: exact bin packing of the rounded instance needs > m bins.
  // Rounding down only eases packing, so infeasibility transfers.
  if (stats != nullptr) ++stats->dp_decisions;
  if (!enumerate_configs(scratch.cls, cap_eff, kr, options.config_budget,
                         scratch.configs)) {
    if (stats != nullptr) ++stats->dp_exhaustions;
    return Verdict::kUnproven;
  }
  BinPackDp dp(scratch.configs, scratch.cls.size(), options.dp_state_budget);
  const int bins = dp.min_bins(scratch.cls.count);
  if (dp.exhausted()) {
    if (stats != nullptr) ++stats->dp_exhaustions;
    return Verdict::kUnproven;
  }
  return bins > static_cast<int>(m) ? Verdict::kInfeasible
                                    : Verdict::kFeasibleDp;
}

}  // namespace

CertifiedCmax hs_certified_cmax(std::span<const Time> p, MachineId m,
                                const HsCertifyOptions& options,
                                HsCertifyStats* stats) {
  if (m == 0) throw std::invalid_argument("hs_certified_cmax: m must be >= 1");
  if (options.precision_k < 2) {
    throw std::invalid_argument("hs_certified_cmax: precision_k must be >= 2");
  }
  CertifiedCmax result;
  result.backend = CertifyBackend::kPtas;
  result.assignment = Assignment(p.size());
  if (p.empty()) {
    result.exact = true;
    return result;
  }

  // Sorted non-increasing view; `order` maps sorted position -> original
  // index (empty = identity). assume_sorted is verified, not trusted: a
  // violation silently falls back to sorting so the bounds stay sound.
  std::vector<Time> sorted_storage;
  std::vector<TaskId> order;
  std::span<const Time> sorted = p;
  const bool presorted =
      options.assume_sorted &&
      std::is_sorted(p.begin(), p.end(), std::greater<Time>());
  if (!presorted) {
    order.resize(p.size());
    std::iota(order.begin(), order.end(), TaskId{0});
    std::sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
      return p[a] != p[b] ? p[a] > p[b] : a < b;
    });
    sorted_storage.resize(p.size());
    for (std::size_t r = 0; r < p.size(); ++r) sorted_storage[r] = p[order[r]];
    sorted = sorted_storage;
  }
  const auto original_index = [&](std::size_t pos) {
    return order.empty() ? static_cast<TaskId>(pos) : order[pos];
  };

  if (!(sorted.front() > 0)) {
    // All-zero (or degenerate non-positive) instance: OPT is 0 and any
    // complete assignment achieves it.
    std::fill(result.assignment.machine_of.begin(),
              result.assignment.machine_of.end(), MachineId{0});
    result.exact = true;
    return result;
  }

  const std::size_t n = sorted.size();
  std::vector<Time> prefix(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + sorted[i];
  const Time total = prefix[n];
  const Time avg = total / static_cast<Time>(m);

  // Analytic bracket: lower = max(avg, max, pairing); upper = Graham's
  // list-scheduling bound avg + max >= OPT.
  Time lo = std::max(avg, sorted.front());
  if (n > m) lo = std::max(lo, sorted[m - 1] + sorted[m]);
  Time hi = std::max(avg + sorted.front(), lo);

  const unsigned kr = options.precision_k + 1;
  DecideScratch scratch;
  Time t_construct = 0;
  Verdict construct_kind = Verdict::kUnproven;
  bool have_construct = false;
  for (int iter = 0; iter < options.max_iterations &&
                     hi > lo * (1.0 + options.rel_epsilon);
       ++iter) {
    const Time target = 0.5 * (lo + hi);
    const Verdict verdict =
        decide(sorted, total, m, kr, target, options, scratch, stats);
    if (stats != nullptr) ++stats->iterations;
    if (verdict == Verdict::kInfeasible) {
      lo = target;
      if (stats != nullptr) ++stats->infeasible_proofs;
    } else {
      hi = target;
      if (constructible(verdict)) {
        // hi only decreases, so the last constructible probe is the
        // smallest target we know how to schedule.
        t_construct = target;
        construct_kind = verdict;
        have_construct = true;
      }
    }
  }

  bool materialized = false;
  std::vector<Time> loads(m, 0);
  if (have_construct) {
    const Time target = t_construct;
    const Time big_threshold = target / static_cast<Time>(kr);
    const std::size_t num_big =
        construct_kind == Verdict::kFeasibleNoBig ? 0
                                                  : count_big(sorted, big_threshold);
    if (stats != nullptr) stats->big_jobs = num_big;
    const Time cap_eff = target * (1.0 + kRelSlack);
    materialized = true;
    if (num_big > 0) {
      const Time grain = target / static_cast<Time>(kr * kr);
      build_classes(sorted, num_big, grain, scratch.cls);
      if (construct_kind == Verdict::kFeasibleFfd) {
        // Replay of the decide()-time FFD: same items, same capacity,
        // same tree, so every placement succeeds.
        scratch.tree.reset(m);
        for (std::size_t pos = 0; pos < num_big && materialized; ++pos) {
          const Time rounded = std::floor(sorted[pos] / grain) * grain;
          const MachineId bin = scratch.tree.place(rounded, cap_eff);
          if (bin == kNoMachine) {
            materialized = false;
            break;
          }
          result.assignment.machine_of[original_index(pos)] = bin;
          loads[bin] += sorted[pos];
        }
      } else {  // Verdict::kFeasibleDp
        std::vector<std::uint32_t> bins_flat;
        materialized =
            enumerate_configs(scratch.cls, cap_eff, kr, options.config_budget,
                              scratch.configs);
        if (materialized) {
          BinPackDp dp(scratch.configs, scratch.cls.size(),
                       options.dp_state_budget);
          const int bins = dp.min_bins(scratch.cls.count);
          materialized = !dp.exhausted() && bins <= static_cast<int>(m) &&
                         dp.reconstruct(scratch.cls.count, bins_flat);
        }
        if (materialized) {
          const std::size_t stride = scratch.cls.size();
          std::vector<std::size_t> cursor(scratch.cls.first_pos);
          const std::size_t num_bins = stride == 0 ? 0 : bins_flat.size() / stride;
          for (std::size_t bin = 0; bin < num_bins; ++bin) {
            const std::uint32_t* cfg = bins_flat.data() + bin * stride;
            const MachineId machine = static_cast<MachineId>(bin);
            for (std::size_t v = 0; v < stride; ++v) {
              for (std::uint32_t c = 0; c < cfg[v]; ++c) {
                const std::size_t pos = cursor[v]++;
                result.assignment.machine_of[original_index(pos)] = machine;
                loads[machine] += sorted[pos];
              }
            }
          }
        }
      }
    }
    if (materialized) {
      // Bulk pour: machine i drinks the longest run of remaining small
      // jobs whose cumulative size lifts it to the target -- one
      // prefix-sum binary search per machine instead of one comparison
      // per job.
      std::size_t pos = num_big;
      for (MachineId i = 0; i < m && pos < n; ++i) {
        if (loads[i] >= target) continue;
        const Time want = prefix[pos] + (target - loads[i]);
        const auto it =
            std::lower_bound(prefix.begin() + static_cast<std::ptrdiff_t>(pos) + 1,
                             prefix.end(), want);
        const std::size_t stop =
            it == prefix.end() ? n
                               : static_cast<std::size_t>(it - prefix.begin());
        for (std::size_t q = pos; q < stop; ++q) {
          result.assignment.machine_of[original_index(q)] = i;
        }
        loads[i] += prefix[stop] - prefix[pos];
        pos = stop;
      }
      if (pos < n) {
        // Only reachable with (near-)zero leftover mass: every machine
        // is at the target yet jobs remain, so their total is within fp
        // noise of zero. Park them on the lightest machine.
        MachineId lightest = 0;
        for (MachineId i = 1; i < m; ++i) {
          if (loads[i] < loads[lightest]) lightest = i;
        }
        for (; pos < n; ++pos) {
          result.assignment.machine_of[original_index(pos)] = lightest;
          loads[lightest] += sorted[pos];
        }
      }
    }
  }
  if (!materialized) {
    // No constructible probe (every feasible verdict was budget-starved)
    // or a replay mismatch: fall back to LPT, which is always complete.
    const GreedyScheduleResult lpt = lpt_schedule(p, m);
    result.assignment = lpt.assignment;
  }

  // Measure the makespan from the assignment in task order. The
  // construction above tracks loads in sorted order (and the bulk pour
  // adds prefix-sum differences), which can differ from a caller's
  // task-order recomputation by an ulp; re-summing here makes `upper`
  // exactly reproducible from (assignment, p).
  std::fill(loads.begin(), loads.end(), Time{0});
  for (std::size_t j = 0; j < p.size(); ++j) {
    loads[result.assignment.machine_of[j]] += p[j];
  }
  result.upper = max_scan(loads);
  result.lower = std::min(lo, result.upper);
  if (result.upper <= result.lower * (1.0 + kRelSlack)) {
    result.exact = true;
    result.lower = result.upper;
  }
  return result;
}

}  // namespace rdp
