#include "check/fuzz.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <ostream>
#include <queue>
#include <stdexcept>

#include "adapt/adaptive_strategy.hpp"
#include "check/invariants.hpp"
#include "check/reference_dispatcher.hpp"
#include "exact/certify_scale.hpp"
#include "exact/optimal.hpp"
#include "hetero/uniform_machines.hpp"
#include "io/json.hpp"
#include "obs/hooks.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "rng/distributions.hpp"
#include "rng/rng.hpp"
#include "serve/streaming_dispatcher.hpp"
#include "sim/online_dispatcher.hpp"
#include "sim/speculative.hpp"
#include "sim/trace.hpp"

namespace rdp::check {

namespace {

constexpr Time kNever = std::numeric_limits<Time>::infinity();

// ---------------------------------------------------------------------
// Naive reference for the failure-aware dispatcher. This is deliberately
// the textbook O(n) rescan-per-event algorithm (the shape the production
// dispatcher had before it grew per-machine eligibility heaps), kept as
// an independent oracle: the optimized dispatcher must reproduce it
// bit-for-bit on every fuzzed failure plan.

enum class RefEventKind : int { kTaskFinish = 0, kFailure = 1, kMachineFree = 2 };

struct RefEvent {
  Time when;
  RefEventKind kind;
  MachineId machine;
  TaskId task;
  std::uint64_t epoch;
  std::uint64_t seq;

  bool operator<(const RefEvent& other) const noexcept {
    if (when != other.when) return when > other.when;
    if (kind != other.kind) return static_cast<int>(kind) > static_cast<int>(other.kind);
    if (kind == RefEventKind::kMachineFree && machine != other.machine) {
      return machine > other.machine;
    }
    return seq > other.seq;
  }
};

enum class RefStatus { kWaiting, kRunning, kDone };

FailureDispatchResult reference_dispatch_with_failures(
    const Instance& instance, const Placement& placement, const Realization& actual,
    const std::vector<TaskId>& priority, const FailurePlan& plan) {
  const std::size_t n = instance.num_tasks();
  const MachineId m = instance.num_machines();

  std::vector<Time> fail_time(m, kNever);
  for (const MachineFailure& f : plan.failures) {
    fail_time[f.machine] = std::min(fail_time[f.machine], f.when);
  }
  std::vector<std::uint32_t> rank(n, UINT32_MAX);
  for (std::uint32_t r = 0; r < n; ++r) rank[priority[r]] = r;

  std::vector<RefStatus> status(n, RefStatus::kWaiting);
  std::vector<bool> refetch(n, false);
  std::vector<Time> earliest(n, 0);
  std::vector<std::uint64_t> epoch(n, 0);
  std::vector<bool> failed(m, false);
  std::vector<bool> machine_idle(m, false);
  std::vector<TaskId> running_on(m, kNoTask);

  FailureDispatchResult result;
  result.schedule.assignment = Assignment(n);
  result.schedule.start.assign(n, 0);
  result.schedule.finish.assign(n, 0);

  std::priority_queue<RefEvent> events;
  std::uint64_t seq = 0;
  for (MachineId i = 0; i < m; ++i) {
    events.push(RefEvent{0, RefEventKind::kMachineFree, i, kNoTask, 0, seq++});
    if (fail_time[i] < kNever) {
      events.push(RefEvent{fail_time[i], RefEventKind::kFailure, i, kNoTask, 0,
                           seq++});
    }
  }

  std::size_t remaining = n;
  auto eligible = [&](TaskId j, MachineId i) {
    if (failed[i]) return false;
    return refetch[j] ? true : placement.allows(j, i);
  };
  auto duration_of = [&](TaskId j) {
    return actual[j] + (refetch[j] ? plan.refetch_penalty : Time{0});
  };
  auto wake_idle_machines = [&](Time t) {
    for (MachineId i = 0; i < m; ++i) {
      if (machine_idle[i] && !failed[i]) {
        machine_idle[i] = false;
        events.push(RefEvent{t, RefEventKind::kMachineFree, i, kNoTask, 0, seq++});
      }
    }
  };

  while (remaining > 0) {
    if (events.empty()) {
      throw std::invalid_argument("reference_dispatch_with_failures: deadlock");
    }
    const RefEvent e = events.top();
    events.pop();
    switch (e.kind) {
      case RefEventKind::kTaskFinish: {
        const TaskId j = e.task;
        if (status[j] != RefStatus::kRunning || epoch[j] != e.epoch) break;
        status[j] = RefStatus::kDone;
        running_on[e.machine] = kNoTask;
        --remaining;
        events.push(RefEvent{e.when, RefEventKind::kMachineFree, e.machine, kNoTask,
                             0, seq++});
        break;
      }
      case RefEventKind::kFailure: {
        const MachineId i = e.machine;
        if (failed[i]) break;
        failed[i] = true;
        machine_idle[i] = false;
        if (running_on[i] != kNoTask) {
          const TaskId j = running_on[i];
          running_on[i] = kNoTask;
          status[j] = RefStatus::kWaiting;
          ++epoch[j];
          earliest[j] = e.when;
          ++result.restarts;
        }
        for (TaskId j = 0; j < n; ++j) {
          if (status[j] != RefStatus::kWaiting || refetch[j]) continue;
          bool any_alive = false;
          for (MachineId machine : placement.machines_for(j)) {
            if (!failed[machine]) {
              any_alive = true;
              break;
            }
          }
          if (!any_alive) {
            refetch[j] = true;
            ++result.refetches;
          }
        }
        wake_idle_machines(e.when);
        break;
      }
      case RefEventKind::kMachineFree: {
        const MachineId i = e.machine;
        if (failed[i] || running_on[i] != kNoTask) break;
        TaskId best_now = kNoTask;
        std::uint32_t best_now_rank = UINT32_MAX;
        Time soonest_future = kNever;
        for (TaskId j = 0; j < n; ++j) {
          if (status[j] != RefStatus::kWaiting || !eligible(j, i)) continue;
          if (earliest[j] <= e.when) {
            if (rank[j] < best_now_rank) {
              best_now_rank = rank[j];
              best_now = j;
            }
          } else {
            soonest_future = std::min(soonest_future, earliest[j]);
          }
        }
        if (best_now != kNoTask) {
          const TaskId j = best_now;
          status[j] = RefStatus::kRunning;
          running_on[i] = j;
          const Time dur = duration_of(j);
          result.schedule.assignment.machine_of[j] = i;
          result.schedule.start[j] = e.when;
          result.schedule.finish[j] = e.when + dur;
          result.trace.events.push_back(DispatchEvent{e.when, j, i, dur});
          events.push(RefEvent{e.when + dur, RefEventKind::kTaskFinish, i, j,
                               epoch[j], seq++});
        } else if (soonest_future < kNever) {
          events.push(RefEvent{soonest_future, RefEventKind::kMachineFree, i,
                               kNoTask, 0, seq++});
        } else {
          machine_idle[i] = true;
        }
        break;
      }
    }
  }
  result.makespan = result.schedule.makespan();
  return result;
}

// ---------------------------------------------------------------------
// Case generation.

std::vector<TaskId> identity_priority(std::size_t n) {
  std::vector<TaskId> priority(n);
  for (TaskId j = 0; j < n; ++j) priority[j] = j;
  return priority;
}

}  // namespace

FuzzCase make_fuzz_case(std::uint64_t seed, const FuzzCaseConfig& config) {
  if (config.min_tasks == 0 || config.min_tasks > config.max_tasks ||
      config.min_machines == 0 || config.min_machines > config.max_machines) {
    throw std::invalid_argument("make_fuzz_case: bad generator bounds");
  }
  Xoshiro256 rng(seed);
  FuzzCase out;
  out.seed = seed;

  const std::size_t n =
      config.min_tasks + static_cast<std::size_t>(
                             rng.next_below(config.max_tasks - config.min_tasks + 1));
  const MachineId m =
      config.min_machines +
      static_cast<MachineId>(rng.next_below(config.max_machines -
                                            config.min_machines + 1));
  const double alpha = sample_uniform(rng, 1.1, 3.0);

  std::vector<Task> tasks(n);
  for (Task& task : tasks) {
    task.estimate = sample_uniform(rng, 1.0, 10.0);
    task.size = sample_uniform(rng, 0.5, 4.0);
  }
  out.instance = Instance(std::move(tasks), m, alpha);

  // Random replica sets with degree uniform in [1, m].
  std::vector<std::vector<MachineId>> sets(n);
  std::vector<MachineId> pool(m);
  for (MachineId i = 0; i < m; ++i) pool[i] = i;
  for (auto& set : sets) {
    const auto degree = 1 + static_cast<MachineId>(rng.next_below(m));
    shuffle(rng, pool);
    set.assign(pool.begin(), pool.begin() + degree);
  }
  out.placement = Placement(std::move(sets), m);

  out.priority = identity_priority(n);
  shuffle(rng, out.priority);

  out.actual.actual.resize(n);
  for (TaskId j = 0; j < n; ++j) {
    // Drifting scenario: the band a task's factor is drawn from widens
    // across the task index, from no uncertainty up to 1.5x the declared
    // alpha -- so late tasks can violate the declared band.
    double band = alpha;
    if (config.scenario == FuzzScenario::kDriftingAlpha && n > 1) {
      const double t = static_cast<double>(j) / static_cast<double>(n - 1);
      band = 1.0 + (1.5 * alpha - 1.0) * t;
    }
    out.actual.actual[j] =
        out.instance.estimate(j) * sample_uniform(rng, 1.0 / band, band);
  }

  // Fail-stop plan: each machine fails with probability ~40%, but at
  // least one machine always survives (otherwise the model is infeasible
  // once a task refetches). Failure times span the plausible horizon.
  const Time horizon =
      out.instance.total_estimate() / static_cast<double>(m) * 1.5 +
      out.instance.max_estimate();
  std::vector<MachineId> failing;
  for (MachineId i = 0; i < m; ++i) {
    if (rng.next_double() < 0.4) failing.push_back(i);
  }
  if (failing.size() == m) {
    failing.erase(failing.begin() +
                  static_cast<std::ptrdiff_t>(rng.next_below(failing.size())));
  }
  for (MachineId i : failing) {
    out.plan.failures.push_back(MachineFailure{i, sample_uniform(rng, 0.0, horizon)});
  }
  out.plan.refetch_penalty = sample_uniform(rng, 0.0, 5.0);

  out.transfer.bandwidth = sample_log_uniform(rng, 0.25, 8.0);
  out.transfer.latency = sample_uniform(rng, 0.0, 2.0);

  out.speeds.resize(m);
  for (MachineId i = 0; i < m; ++i) out.speeds[i] = sample_uniform(rng, 0.5, 2.0);
  return out;
}

FuzzCase restrict_tasks(const FuzzCase& fuzz_case, std::size_t num_tasks) {
  const std::size_t n = fuzz_case.instance.num_tasks();
  if (num_tasks == 0 || num_tasks > n) {
    throw std::invalid_argument("restrict_tasks: prefix size out of range");
  }
  FuzzCase out;
  out.seed = fuzz_case.seed;
  std::vector<Task> tasks(fuzz_case.instance.tasks().begin(),
                          fuzz_case.instance.tasks().begin() +
                              static_cast<std::ptrdiff_t>(num_tasks));
  out.instance = Instance(std::move(tasks), fuzz_case.instance.num_machines(),
                          fuzz_case.instance.alpha());
  std::vector<std::vector<MachineId>> sets;
  sets.reserve(num_tasks);
  for (TaskId j = 0; j < num_tasks; ++j) {
    sets.push_back(fuzz_case.placement.machines_for(j));
  }
  out.placement = Placement(std::move(sets), fuzz_case.placement.num_machines());
  for (TaskId j : fuzz_case.priority) {
    if (j < num_tasks) out.priority.push_back(j);
  }
  out.actual.actual.assign(fuzz_case.actual.actual.begin(),
                           fuzz_case.actual.actual.begin() +
                               static_cast<std::ptrdiff_t>(num_tasks));
  out.plan = fuzz_case.plan;
  out.transfer = fuzz_case.transfer;
  out.speeds = fuzz_case.speeds;
  return out;
}

// ---------------------------------------------------------------------
// Cross-checks.

namespace {

constexpr std::size_t kChecksPerCase = 13;
constexpr double kTol = 1e-9;

struct CheckContext {
  const FuzzCase& c;
  std::vector<FuzzFailure>& out;

  void fail(const std::string& check, const std::string& detail) const {
    FuzzFailure f;
    f.seed = c.seed;
    f.num_tasks = c.instance.num_tasks();
    f.num_machines = c.instance.num_machines();
    f.check = check;
    f.detail = detail;
    out.push_back(std::move(f));
  }

  void fail_violations(const std::string& check,
                       const std::vector<Violation>& violations) const {
    if (violations.empty()) return;
    // One failure per check keeps reports readable; the detail carries
    // the first (usually root-cause) violation plus the total count.
    std::string detail = to_string(violations.front());
    if (violations.size() > 1) {
      detail += " (+" + std::to_string(violations.size() - 1) + " more)";
    }
    fail(check, detail);
  }
};

/// Earliest failure time per machine (infinity = never fails).
std::vector<Time> first_failure_times(const FuzzCase& c) {
  std::vector<Time> fail_time(c.instance.num_machines(), kNever);
  for (const MachineFailure& f : c.plan.failures) {
    fail_time[f.machine] = std::min(fail_time[f.machine], f.when);
  }
  return fail_time;
}

void check_online(const CheckContext& ctx, const DispatchResult& online) {
  const FuzzCase& c = ctx.c;
  std::vector<Violation> violations =
      check_invariants(c.instance, c.placement, c.actual, online.schedule);
  const auto priority_violations = check_priority_compliance(
      c.instance, c.placement, online.schedule, c.priority);
  violations.insert(violations.end(), priority_violations.begin(),
                    priority_violations.end());
  if (online.trace.size() != c.instance.num_tasks()) {
    violations.push_back(Violation{
        "trace-accounting", "online trace has " + std::to_string(online.trace.size()) +
                                " events for " +
                                std::to_string(c.instance.num_tasks()) + " tasks"});
  }
  ctx.fail_violations("online-invariants", violations);
}

void check_online_reference_differential(const CheckContext& ctx,
                                         const DispatchResult& online) {
  // The struct-of-arrays core must be bit-exact against the retained
  // pre-rewrite dispatcher: same schedule bytes, same trace length, and
  // the same decision sequence (start times in trace order).
  const FuzzCase& c = ctx.c;
  const DispatchResult reference = reference_dispatch_online(
      c.instance, c.placement, c.actual, c.priority, {}, c.speeds);
  const DispatchResult fast =
      dispatch_online(c.instance, c.placement, c.actual, c.priority, {}, c.speeds);
  if (const std::string diff = diff_schedules(fast.schedule, reference.schedule);
      !diff.empty()) {
    ctx.fail("online-reference-differential", diff);
    return;
  }
  if (fast.trace.size() != reference.trace.size()) {
    ctx.fail("online-reference-differential",
             "trace lengths diverge from the reference");
    return;
  }
  // Identical-machines run as well (speeds exercise a separate division).
  const DispatchResult reference_plain = reference_dispatch_online(
      c.instance, c.placement, c.actual, c.priority);
  if (const std::string diff =
          diff_schedules(online.schedule, reference_plain.schedule);
      !diff.empty()) {
    ctx.fail("online-reference-differential", diff);
  }
}

void check_failures_empty_plan(const CheckContext& ctx,
                               const DispatchResult& online) {
  const FuzzCase& c = ctx.c;
  const FailureDispatchResult no_failures = dispatch_with_failures(
      c.instance, c.placement, c.actual, c.priority, FailurePlan{});
  if (const std::string diff = diff_schedules(online.schedule, no_failures.schedule);
      !diff.empty()) {
    ctx.fail("failures-empty-plan-parity", diff);
    return;
  }
  if (no_failures.restarts != 0 || no_failures.refetches != 0) {
    ctx.fail("failures-empty-plan-parity",
             "empty plan reported restarts/refetches");
  }
}

void check_failures_differential(const CheckContext& ctx) {
  const FuzzCase& c = ctx.c;
  const FailureDispatchResult fast =
      dispatch_with_failures(c.instance, c.placement, c.actual, c.priority, c.plan);
  const FailureDispatchResult reference = reference_dispatch_with_failures(
      c.instance, c.placement, c.actual, c.priority, c.plan);
  if (const std::string diff = diff_schedules(fast.schedule, reference.schedule);
      !diff.empty()) {
    ctx.fail("failures-reference-differential", diff);
    return;
  }
  if (fast.restarts != reference.restarts || fast.refetches != reference.refetches ||
      fast.trace.size() != reference.trace.size()) {
    ctx.fail("failures-reference-differential",
             "restart/refetch/trace counters diverge from the reference");
  }
}

void check_failures_invariants(const CheckContext& ctx) {
  const FuzzCase& c = ctx.c;
  const std::size_t n = c.instance.num_tasks();
  const FailureDispatchResult result =
      dispatch_with_failures(c.instance, c.placement, c.actual, c.priority, c.plan);

  InvariantOptions options;
  options.off_placement_ok.assign(n, false);
  options.extra_duration.assign(n, 0.0);
  std::size_t off_placement = 0;
  for (TaskId j = 0; j < n; ++j) {
    const MachineId i = result.schedule.assignment[j];
    if (i != kNoMachine && !c.placement.allows(j, i)) {
      // Off-placement <=> refetched: the only way a task may leave its
      // replica set is losing every replica, which also adds the penalty.
      options.off_placement_ok[j] = true;
      options.extra_duration[j] = c.plan.refetch_penalty;
      ++off_placement;
    }
  }
  std::vector<Violation> violations = check_invariants(
      c.instance, c.placement, c.actual, result.schedule, options);
  if (off_placement != result.refetches) {
    violations.push_back(Violation{
        "refetch-accounting",
        std::to_string(off_placement) + " tasks ran off-placement but " +
            std::to_string(result.refetches) + " refetches were reported"});
  }
  if (result.trace.size() != n + result.restarts) {
    violations.push_back(Violation{
        "trace-accounting",
        "trace has " + std::to_string(result.trace.size()) + " events, expected " +
            std::to_string(n) + " finals + " + std::to_string(result.restarts) +
            " restarts"});
  }
  // A surviving run must fit entirely before its machine's failure.
  const std::vector<Time> fail_time = first_failure_times(c);
  for (TaskId j = 0; j < n; ++j) {
    const MachineId i = result.schedule.assignment[j];
    if (i == kNoMachine || i >= fail_time.size()) continue;
    if (result.schedule.finish[j] > fail_time[i] + kTol) {
      violations.push_back(Violation{
          "failure-fencing", "task " + std::to_string(j) +
                                 " finishes after machine " + std::to_string(i) +
                                 " failed"});
    }
  }
  ctx.fail_violations("failures-invariants", violations);
}

TransferModel zero_cost_model() {
  TransferModel model;
  model.bandwidth = std::numeric_limits<double>::infinity();
  model.latency = 0.0;
  return model;
}

void check_transfer_zero_cost_parity(const CheckContext& ctx) {
  // On full replication every task is local, so the fetch machinery is
  // provably inert and the transfer dispatcher must collapse to the
  // plain one bit-for-bit. (On arbitrary placements the locality
  // preference legitimately changes schedules even at zero cost; the
  // zero-fetch *duration* invariant below covers that regime.)
  const FuzzCase& c = ctx.c;
  const Placement everywhere =
      Placement::everywhere(c.instance.num_tasks(), c.instance.num_machines());
  const DispatchResult online =
      dispatch_online(c.instance, everywhere, c.actual, c.priority);
  const TransferDispatchResult transfer = dispatch_with_transfers(
      c.instance, everywhere, c.actual, c.priority, zero_cost_model());
  if (const std::string diff = diff_schedules(online.schedule, transfer.schedule);
      !diff.empty()) {
    ctx.fail("transfer-zero-cost-parity", diff);
    return;
  }
  if (transfer.remote_runs != 0 || transfer.transfer_time != 0.0) {
    ctx.fail("transfer-zero-cost-parity",
             "zero-cost model on full replication reported fetches");
  }
}

void check_transfer_zero_cost_invariants(const CheckContext& ctx) {
  const FuzzCase& c = ctx.c;
  const std::size_t n = c.instance.num_tasks();
  const TransferDispatchResult result = dispatch_with_transfers(
      c.instance, c.placement, c.actual, c.priority, zero_cost_model());
  InvariantOptions options;
  options.off_placement_ok.assign(n, false);
  for (TaskId j = 0; j < n; ++j) {
    const MachineId i = result.schedule.assignment[j];
    if (i != kNoMachine && !c.placement.allows(j, i)) {
      options.off_placement_ok[j] = true;  // remote, but the fetch is free
    }
  }
  std::vector<Violation> violations = check_invariants(
      c.instance, c.placement, c.actual, result.schedule, options);
  if (result.transfer_time != 0.0) {
    violations.push_back(Violation{
        "transfer-accounting", "zero-cost model accumulated transfer time"});
  }
  const auto priority_violations = check_transfer_priority_compliance(
      c.instance, c.placement, result.schedule, c.priority);
  violations.insert(violations.end(), priority_violations.begin(),
                    priority_violations.end());
  ctx.fail_violations("transfer-zero-cost-invariants", violations);
}

void check_transfer_invariants(const CheckContext& ctx) {
  const FuzzCase& c = ctx.c;
  const std::size_t n = c.instance.num_tasks();
  const TransferDispatchResult result = dispatch_with_transfers(
      c.instance, c.placement, c.actual, c.priority, c.transfer);
  InvariantOptions options;
  options.off_placement_ok.assign(n, false);
  options.extra_duration.assign(n, 0.0);
  std::size_t remote = 0;
  Time fetch_total = 0;
  for (TaskId j = 0; j < n; ++j) {
    const MachineId i = result.schedule.assignment[j];
    if (i != kNoMachine && !c.placement.allows(j, i)) {
      const Time fetch =
          c.transfer.latency + c.instance.size(j) / c.transfer.bandwidth;
      options.off_placement_ok[j] = true;
      options.extra_duration[j] = fetch;
      fetch_total += fetch;
      ++remote;
    }
  }
  std::vector<Violation> violations = check_invariants(
      c.instance, c.placement, c.actual, result.schedule, options);
  if (remote != result.remote_runs) {
    violations.push_back(Violation{
        "transfer-accounting",
        std::to_string(remote) + " off-placement runs but " +
            std::to_string(result.remote_runs) + " remote_runs reported"});
  }
  const Time scale = std::max({fetch_total, result.transfer_time, Time{1}});
  if (std::abs(fetch_total - result.transfer_time) > kTol * scale) {
    violations.push_back(Violation{
        "transfer-accounting", "transfer_time does not equal the sum of fetches"});
  }
  const auto priority_violations = check_transfer_priority_compliance(
      c.instance, c.placement, result.schedule, c.priority);
  violations.insert(violations.end(), priority_violations.begin(),
                    priority_violations.end());
  ctx.fail_violations("transfer-invariants", violations);
}

void check_speculative_disabled(const CheckContext& ctx) {
  const FuzzCase& c = ctx.c;
  const DispatchResult online =
      dispatch_online(c.instance, c.placement, c.actual, c.priority, {}, c.speeds);
  SpeculationPolicy off;
  off.enabled = false;
  const SpeculativeResult spec =
      dispatch_speculative(c.instance, c.placement, c.actual, c.priority,
                           SpeedProfile(c.speeds), off);
  if (const std::string diff = diff_schedules(online.schedule, spec.schedule);
      !diff.empty()) {
    ctx.fail("speculative-disabled-parity", diff);
    return;
  }
  if (spec.duplicates_launched != 0 || spec.wasted_time != 0.0) {
    ctx.fail("speculative-disabled-parity",
             "disabled speculation launched duplicates");
  }
}

void check_speculative_enabled(const CheckContext& ctx) {
  const FuzzCase& c = ctx.c;
  const DispatchResult online =
      dispatch_online(c.instance, c.placement, c.actual, c.priority, {}, c.speeds);
  SpeculationPolicy policy;  // defaults: enabled, max 2 copies
  const SpeculativeResult spec =
      dispatch_speculative(c.instance, c.placement, c.actual, c.priority,
                           SpeedProfile(c.speeds), policy);
  std::vector<Violation> violations;
  const Time scale = std::max({spec.makespan, online.schedule.makespan(), Time{1}});
  if (spec.makespan > online.schedule.makespan() + kTol * scale) {
    violations.push_back(Violation{
        "speculation-regression",
        "speculative makespan " + std::to_string(spec.makespan) +
            " exceeds non-speculative " +
            std::to_string(online.schedule.makespan())});
  }
  InvariantOptions options;
  options.speeds = c.speeds;          // durations are speed-scaled
  options.check_lower_bound = false;  // identical-machine LB unsound here
  const auto invariant_violations = check_invariants(
      c.instance, c.placement, c.actual, spec.schedule, options);
  violations.insert(violations.end(), invariant_violations.begin(),
                    invariant_violations.end());
  ctx.fail_violations("speculative-invariants", violations);
}

void check_certify_ptas_lb(const CheckContext& ctx) {
  // Certify cross-check: on sub-22-task instances branch-and-bound
  // brackets the true optimum, so the Hochbaum-Shmoys backend's certified
  // lower bound must never exceed bnb.upper (ptas.lower <= OPT <=
  // bnb.upper), and its measured schedule can never beat bnb.lower.
  const FuzzCase& c = ctx.c;
  const std::span<const Time> p = c.actual.actual;
  const MachineId m = c.instance.num_machines();
  const CertifiedCmax bnb = certified_cmax(p, m, 500'000);
  HsCertifyOptions hs;
  hs.precision_k = 3 + static_cast<unsigned>(c.seed % 3);
  const CertifiedCmax ptas = hs_certified_cmax(p, m, hs);
  const Time scale = std::max({bnb.upper, ptas.upper, Time{1}});
  if (ptas.lower > bnb.upper + kTol * scale) {
    ctx.fail("certify-ptas-lower-bound",
             "PTAS certified lower " + std::to_string(ptas.lower) +
                 " exceeds B&B optimum upper " + std::to_string(bnb.upper));
  }
  if (bnb.lower > ptas.upper + kTol * scale) {
    ctx.fail("certify-ptas-lower-bound",
             "PTAS schedule makespan " + std::to_string(ptas.upper) +
                 " undercuts the certified B&B lower bound " +
                 std::to_string(bnb.lower));
  }
  if (ptas.lower > ptas.upper + kTol * scale) {
    ctx.fail("certify-ptas-lower-bound",
             "PTAS bracket inverted: lower " + std::to_string(ptas.lower) +
                 " > upper " + std::to_string(ptas.upper));
  }
}

void check_serve_drain_parity(const CheckContext& ctx,
                              const DispatchResult& online) {
  // Drain mode: every task arrives at t = 0, so the streaming dispatcher
  // must make exactly the offline decisions -- bit-identical schedule
  // bytes AND the identical chronological trace (same dispatch order,
  // same machines, same start times). This is the serve/ equivalence
  // contract documented in docs/SERVING.md.
  const FuzzCase& c = ctx.c;
  const std::vector<Time> arrivals(c.instance.num_tasks(), Time{0});
  const StreamingDispatchResult drained =
      serve_stream(c.instance, c.placement, c.actual, c.priority, arrivals, {},
                   c.speeds);
  const DispatchResult offline = dispatch_online(
      c.instance, c.placement, c.actual, c.priority, {}, c.speeds);
  if (const std::string diff = diff_schedules(drained.schedule, offline.schedule);
      !diff.empty()) {
    ctx.fail("serve-drain-parity", diff + " (with speeds)");
    return;
  }
  if (drained.trace.size() != offline.trace.size()) {
    ctx.fail("serve-drain-parity", "trace lengths diverge");
    return;
  }
  for (std::size_t k = 0; k < offline.trace.size(); ++k) {
    const DispatchEvent& a = drained.trace.events[k];
    const DispatchEvent& b = offline.trace.events[k];
    if (a.when != b.when || a.task != b.task || a.machine != b.machine ||
        a.actual != b.actual) {
      ctx.fail("serve-drain-parity",
               "trace event " + std::to_string(k) + " diverges (task " +
                   std::to_string(a.task) + " vs " + std::to_string(b.task) +
                   ")");
      return;
    }
  }
  if (drained.peak_backlog != c.instance.num_tasks()) {
    ctx.fail("serve-drain-parity",
             "drain-mode peak backlog " + std::to_string(drained.peak_backlog) +
                 " != n");
    return;
  }
  // Identical machines as well (the speeds-free division-less path).
  const StreamingDispatchResult plain = serve_stream(
      c.instance, c.placement, c.actual, c.priority, arrivals, {}, {});
  if (const std::string diff = diff_schedules(plain.schedule, online.schedule);
      !diff.empty()) {
    ctx.fail("serve-drain-parity", diff);
  }
}

void check_adaptive_bound(const CheckContext& ctx) {
  // Adaptive-degree soundness: warm an estimator on the case's own
  // (estimate, actual) history, let the adaptive policy pick per-class
  // degrees from it, dispatch, and demand the realized ratio stays under
  // the theorem bound the placement's degrees promise at the *realized*
  // alpha (not the declared one -- in the drifting scenario the actuals
  // leave the declared band on purpose). The ratio is measured against
  // the certified B&B lower bound, which is at most OPT, so this check
  // is strictly harder than the theorem statement.
  const FuzzCase& c = ctx.c;
  const MachineId m = c.instance.num_machines();
  AdaptiveGroupOptions options;
  options.estimator.num_classes = 3;
  options.estimator.min_samples = 4;
  auto estimator = std::make_shared<AlphaEstimator>(options.estimator);
  const TaskClassifier classifier(c.instance, options.estimator.num_classes);
  estimator->observe_run(classifier, c.instance, c.actual);
  const TwoPhaseStrategy strategy = make_adaptive_group(estimator, options);

  const Placement placement = strategy.place(c.instance);
  const DispatchResult run =
      dispatch_online(c.instance, placement, c.actual,
                      make_priority(c.instance, strategy.rule()));
  const double alpha_real = realized_alpha(c.instance, c.actual);
  const double bound = adaptive_theorem_bound(placement, alpha_real, m);
  const CertifiedCmax opt = certified_cmax(c.actual.actual, m, 500'000);
  const Time makespan = run.schedule.makespan();
  if (makespan > bound * opt.lower * (1.0 + kTol)) {
    ctx.fail("adaptive-bound",
             "adaptive makespan " + std::to_string(makespan) + " exceeds " +
                 std::to_string(bound) + " x certified lower bound " +
                 std::to_string(opt.lower) + " at realized alpha " +
                 std::to_string(alpha_real));
  }
}

}  // namespace

FuzzScenario fuzz_scenario_from_name(const std::string& name) {
  if (name == "default") return FuzzScenario::kDefault;
  if (name == "drifting-alpha") return FuzzScenario::kDriftingAlpha;
  throw std::invalid_argument("unknown fuzz scenario '" + name +
                              "' (use default|drifting-alpha)");
}

std::size_t checks_per_case() noexcept { return kChecksPerCase; }

std::vector<FuzzFailure> run_fuzz_case(const FuzzCase& fuzz_case) {
  std::vector<FuzzFailure> failures;
  const CheckContext ctx{fuzz_case, failures};
  const DispatchResult online = dispatch_online(
      fuzz_case.instance, fuzz_case.placement, fuzz_case.actual, fuzz_case.priority);
  check_online(ctx, online);
  check_online_reference_differential(ctx, online);
  check_failures_empty_plan(ctx, online);
  check_failures_differential(ctx);
  check_failures_invariants(ctx);
  check_transfer_zero_cost_parity(ctx);
  check_transfer_zero_cost_invariants(ctx);
  check_transfer_invariants(ctx);
  check_speculative_disabled(ctx);
  check_speculative_enabled(ctx);
  check_certify_ptas_lb(ctx);
  check_serve_drain_parity(ctx, online);
  check_adaptive_bound(ctx);
  return failures;
}

std::size_t shrink_failing_case(const FuzzCase& fuzz_case,
                                const std::function<bool(const FuzzCase&)>& fails) {
  std::size_t lo = 1;
  std::size_t hi = fuzz_case.instance.num_tasks();
  // Invariant: the hi-task prefix fails (the full case does by
  // assumption). Plain binary search; without strict monotonicity it
  // still lands on *a* failing prefix, which is all a repro needs.
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (fails(restrict_tasks(fuzz_case, mid))) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return hi;
}

std::string to_jsonl_line(const FuzzFailure& failure) {
  JsonObject obj;
  obj["seed"] = JsonValue(static_cast<unsigned long long>(failure.seed));
  obj["n"] = JsonValue(static_cast<unsigned long long>(failure.num_tasks));
  obj["m"] = JsonValue(static_cast<unsigned long long>(failure.num_machines));
  obj["check"] = JsonValue(failure.check);
  obj["detail"] = JsonValue(failure.detail);
  obj["shrunk_n"] = JsonValue(static_cast<unsigned long long>(failure.shrunk_tasks));
  return JsonValue(std::move(obj)).dump();
}

void save_jsonl_report(const std::string& path,
                       const std::vector<FuzzFailure>& failures) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("save_jsonl_report: cannot open '" + path + "'");
  }
  for (const FuzzFailure& failure : failures) {
    out << to_jsonl_line(failure) << '\n';
  }
}

FuzzSummary run_fuzz(const FuzzOptions& options) {
  obs::ScopedSpan span(obs::tracer(), "run_fuzz", "check");
  FuzzSummary summary;
  summary.cases = options.seeds;
  summary.checks = options.seeds * kChecksPerCase;
  if (options.seeds == 0) return summary;

  // Index-addressed failure slots keep the report deterministic and
  // independent of the worker count.
  std::vector<std::vector<FuzzFailure>> slots(options.seeds);
  const auto fuzz_one = [&](std::size_t index) {
    const FuzzCase fuzz_case =
        make_fuzz_case(options.start_seed + index, options.gen);
    std::vector<FuzzFailure> failures = run_fuzz_case(fuzz_case);
    if (!failures.empty() && options.shrink) {
      for (FuzzFailure& failure : failures) {
        const std::string check = failure.check;
        failure.shrunk_tasks =
            shrink_failing_case(fuzz_case, [&](const FuzzCase& candidate) {
              const auto candidate_failures = run_fuzz_case(candidate);
              return std::any_of(candidate_failures.begin(),
                                 candidate_failures.end(),
                                 [&](const FuzzFailure& f) {
                                   return f.check == check;
                                 });
            });
      }
    }
    slots[index] = std::move(failures);
  };

  if (options.jobs == 1 || options.seeds == 1) {
    for (std::size_t i = 0; i < options.seeds; ++i) fuzz_one(i);
  } else {
    ThreadPool pool(options.jobs);
    parallel_for_each_index(pool, options.seeds, fuzz_one);
  }

  for (std::vector<FuzzFailure>& slot : slots) {
    summary.failures.insert(summary.failures.end(),
                            std::make_move_iterator(slot.begin()),
                            std::make_move_iterator(slot.end()));
  }
  if (obs::MetricsRegistry* mx = obs::metrics()) {
    mx->counter("check.fuzz.cases").add(summary.cases);
    mx->counter("check.fuzz.checks").add(summary.checks);
    mx->counter("check.fuzz.failures").add(summary.failures.size());
  }
  if (options.log != nullptr) {
    *options.log << "fuzz: " << summary.cases << " seeds, " << summary.checks
                 << " cross-checks, " << summary.failures.size() << " failure(s)\n";
    for (const FuzzFailure& failure : summary.failures) {
      *options.log << "  seed " << failure.seed << " [" << failure.check
                   << "] n=" << failure.num_tasks << " m=" << failure.num_machines
                   << " shrunk_n=" << failure.shrunk_tasks << ": " << failure.detail
                   << "\n";
    }
  }
  return summary;
}

}  // namespace rdp::check
