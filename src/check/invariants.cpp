#include "check/invariants.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "core/instance.hpp"
#include "core/placement.hpp"
#include "core/realization.hpp"
#include "core/schedule.hpp"
#include "exact/lower_bounds.hpp"

namespace rdp::check {

namespace {

bool nearly_equal(Time a, Time b, double tolerance) {
  const Time scale = std::max({std::abs(a), std::abs(b), Time{1}});
  return std::abs(a - b) <= tolerance * scale;
}

void add(std::vector<Violation>& out, std::string invariant, std::string detail) {
  out.push_back(Violation{std::move(invariant), std::move(detail)});
}

std::string task_str(TaskId j) { return "task " + std::to_string(j); }

/// Ranks from a priority permutation; returns false (and reports) when the
/// vector is not a permutation of [0, n).
bool build_ranks(std::size_t n, const std::vector<TaskId>& priority,
                 std::vector<std::uint32_t>& rank, std::vector<Violation>& out) {
  if (priority.size() != n) {
    add(out, "priority-shape",
        "priority covers " + std::to_string(priority.size()) + " tasks, expected " +
            std::to_string(n));
    return false;
  }
  rank.assign(n, UINT32_MAX);
  for (std::uint32_t r = 0; r < priority.size(); ++r) {
    const TaskId j = priority[r];
    if (j >= n || rank[j] != UINT32_MAX) {
      add(out, "priority-shape", "priority is not a permutation");
      return false;
    }
    rank[j] = r;
  }
  return true;
}

}  // namespace

std::string to_string(const Violation& v) { return v.invariant + ": " + v.detail; }

std::vector<Violation> check_invariants(const Instance& instance,
                                        const Placement& placement,
                                        const Realization& actual,
                                        const Schedule& schedule,
                                        const InvariantOptions& options) {
  std::vector<Violation> out;
  const std::size_t n = instance.num_tasks();
  const MachineId m = instance.num_machines();
  const double tol = options.tolerance;

  // -- Shape ----------------------------------------------------------
  if (placement.num_tasks() != n || placement.num_machines() != m) {
    add(out, "shape", "placement does not match the instance");
    return out;
  }
  if (actual.size() != n) {
    add(out, "shape", "realization covers " + std::to_string(actual.size()) +
                          " tasks, expected " + std::to_string(n));
    return out;
  }
  if (schedule.num_tasks() != n || schedule.start.size() != n ||
      schedule.finish.size() != n) {
    add(out, "shape", "schedule arrays do not match the instance size");
    return out;
  }
  if (!options.extra_duration.empty() && options.extra_duration.size() != n) {
    add(out, "shape", "extra_duration size mismatch");
    return out;
  }
  if (!options.off_placement_ok.empty() && options.off_placement_ok.size() != n) {
    add(out, "shape", "off_placement_ok size mismatch");
    return out;
  }
  if (!options.speeds.empty() && options.speeds.size() != m) {
    add(out, "shape", "speeds size mismatch");
    return out;
  }

  // -- Per-task checks: assignment, finiteness, duration --------------
  for (TaskId j = 0; j < n; ++j) {
    const MachineId i = schedule.assignment[j];
    if (i == kNoMachine || i >= m) {
      add(out, "work-conservation",
          task_str(j) + " is unassigned or assigned to machine >= m");
      continue;
    }
    const bool off_ok =
        !options.off_placement_ok.empty() && options.off_placement_ok[j];
    if (!off_ok && !placement.allows(j, i)) {
      add(out, "placement",
          task_str(j) + " ran on machine " + std::to_string(i) +
              " which holds no replica of its data");
    }
    const Time s = schedule.start[j];
    const Time f = schedule.finish[j];
    if (!std::isfinite(s) || !std::isfinite(f)) {
      add(out, "finite", task_str(j) + " has a non-finite start or finish");
      continue;
    }
    if (s < -tol) {
      add(out, "start-time", task_str(j) + " starts before time 0");
    }
    Time work = actual[j];
    if (!options.extra_duration.empty()) work += options.extra_duration[j];
    const double speed = options.speeds.empty() ? 1.0 : options.speeds[i];
    const Time expected = work / speed;
    if (!nearly_equal(f - s, expected, tol)) {
      std::ostringstream os;
      os << task_str(j) << " ran for " << (f - s) << ", expected " << expected;
      add(out, "duration", os.str());
    }
    if (f < s) {
      add(out, "duration", task_str(j) + " finishes before it starts");
    }
  }
  if (!out.empty() &&
      std::any_of(out.begin(), out.end(), [](const Violation& v) {
        return v.invariant == "finite" || v.invariant == "work-conservation";
      })) {
    return out;  // overlap / bound checks would read garbage
  }

  // -- No overlap on any machine --------------------------------------
  const auto per_machine = schedule.assignment.tasks_per_machine(m);
  for (MachineId i = 0; i < m; ++i) {
    std::vector<TaskId> tasks = per_machine[i];
    std::sort(tasks.begin(), tasks.end(), [&](TaskId a, TaskId b) {
      if (schedule.start[a] != schedule.start[b]) {
        return schedule.start[a] < schedule.start[b];
      }
      return a < b;
    });
    for (std::size_t k = 1; k < tasks.size(); ++k) {
      const TaskId prev = tasks[k - 1];
      const TaskId cur = tasks[k];
      const Time scale = std::max({std::abs(schedule.finish[prev]),
                                   std::abs(schedule.start[cur]), Time{1}});
      if (schedule.start[cur] < schedule.finish[prev] - tol * scale) {
        std::ostringstream os;
        os << "machine " << i << ": " << task_str(cur) << " starts at "
           << schedule.start[cur] << " before " << task_str(prev) << " finishes at "
           << schedule.finish[prev];
        add(out, "overlap", os.str());
      }
    }
  }

  // -- Makespan dominates the certified lower bound --------------------
  if (options.check_lower_bound && options.speeds.empty() && n > 0) {
    const Time lb = makespan_lower_bound(actual.actual, m);
    const Time makespan = schedule.makespan();
    if (makespan < lb * (1.0 - tol)) {
      std::ostringstream os;
      os << "makespan " << makespan << " is below the certified OPT lower bound "
         << lb;
      add(out, "lower-bound", os.str());
    }
  }
  return out;
}

std::vector<Violation> check_priority_compliance(const Instance& instance,
                                                 const Placement& placement,
                                                 const Schedule& schedule,
                                                 const std::vector<TaskId>& priority,
                                                 double tolerance) {
  std::vector<Violation> out;
  const std::size_t n = instance.num_tasks();
  std::vector<std::uint32_t> rank;
  if (!build_ranks(n, priority, rank, out)) return out;
  if (schedule.num_tasks() != n) {
    add(out, "shape", "schedule does not match the instance size");
    return out;
  }
  for (TaskId j = 0; j < n; ++j) {
    const MachineId i = schedule.assignment[j];
    if (i == kNoMachine) continue;  // reported by check_invariants
    const Time s = schedule.start[j];
    for (TaskId k = 0; k < n; ++k) {
      if (k == j || rank[k] >= rank[j]) continue;
      if (!placement.allows(k, i)) continue;
      const Time scale = std::max({std::abs(schedule.start[k]), std::abs(s), Time{1}});
      if (schedule.start[k] > s + tolerance * scale) {
        std::ostringstream os;
        os << task_str(j) << " (rank " << rank[j] << ") started on machine " << i
           << " at " << s << " while eligible " << task_str(k) << " (rank "
           << rank[k] << ") was still waiting";
        add(out, "priority", os.str());
      }
    }
  }
  return out;
}

std::vector<Violation> check_transfer_priority_compliance(
    const Instance& instance, const Placement& placement, const Schedule& schedule,
    const std::vector<TaskId>& priority, double tolerance) {
  std::vector<Violation> out;
  const std::size_t n = instance.num_tasks();
  std::vector<std::uint32_t> rank;
  if (!build_ranks(n, priority, rank, out)) return out;
  if (schedule.num_tasks() != n) {
    add(out, "shape", "schedule does not match the instance size");
    return out;
  }
  for (TaskId j = 0; j < n; ++j) {
    const MachineId i = schedule.assignment[j];
    if (i == kNoMachine) continue;
    const Time s = schedule.start[j];
    const bool local = placement.allows(j, i);
    for (TaskId k = 0; k < n; ++k) {
      if (k == j) continue;
      const Time scale = std::max({std::abs(schedule.start[k]), std::abs(s), Time{1}});
      if (schedule.start[k] <= s + tolerance * scale) continue;  // not waiting
      const bool k_local = placement.allows(k, i);
      std::ostringstream os;
      if (local) {
        if (k_local && rank[k] < rank[j]) {
          os << "local " << task_str(j) << " (rank " << rank[j]
             << ") started on machine " << i << " while local " << task_str(k)
             << " (rank " << rank[k] << ") waited";
          add(out, "priority-local", os.str());
        }
      } else {
        if (k_local) {
          os << "remote " << task_str(j) << " started on machine " << i
             << " while local " << task_str(k) << " waited";
          add(out, "priority-locality", os.str());
        } else if (rank[k] < rank[j]) {
          os << "remote " << task_str(j) << " (rank " << rank[j]
             << ") started on machine " << i << " while remote " << task_str(k)
             << " (rank " << rank[k] << ") waited";
          add(out, "priority-remote", os.str());
        }
      }
    }
  }
  return out;
}

std::string diff_schedules(const Schedule& a, const Schedule& b) {
  if (a.num_tasks() != b.num_tasks()) {
    return "schedules cover " + std::to_string(a.num_tasks()) + " vs " +
           std::to_string(b.num_tasks()) + " tasks";
  }
  for (TaskId j = 0; j < a.num_tasks(); ++j) {
    if (a.assignment[j] != b.assignment[j]) {
      return task_str(j) + " assigned to machine " +
             std::to_string(a.assignment[j]) + " vs " +
             std::to_string(b.assignment[j]);
    }
    if (a.start[j] != b.start[j]) {
      std::ostringstream os;
      os << task_str(j) << " starts at " << a.start[j] << " vs " << b.start[j];
      return os.str();
    }
    if (a.finish[j] != b.finish[j]) {
      std::ostringstream os;
      os << task_str(j) << " finishes at " << a.finish[j] << " vs " << b.finish[j];
      return os.str();
    }
  }
  return {};
}

void throw_on_violations(const std::vector<Violation>& violations,
                         const std::string& context) {
  if (violations.empty()) return;
  std::string what = context + ": " + std::to_string(violations.size()) +
                     " schedule invariant violation(s)";
  for (const Violation& v : violations) what += "; " + to_string(v);
  throw std::logic_error(what);
}

namespace {

std::atomic<bool>& debug_flag() {
  static std::atomic<bool> flag = [] {
    const char* env = std::getenv("RDP_DEBUG_CHECKS");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
  }();
  return flag;
}

}  // namespace

bool debug_checks_enabled() noexcept {
  return debug_flag().load(std::memory_order_relaxed);
}

void set_debug_checks(bool enabled) noexcept {
  debug_flag().store(enabled, std::memory_order_relaxed);
}

}  // namespace rdp::check
