// The pre-rewrite simulator core, retained verbatim as an oracle. When
// the hot path moved to the calendar queue + struct-of-arrays workspace,
// the old implementation (binary-heap event queues, AoS state, per-run
// allocation) was kept here so that
//
//  * the differential fuzzer can assert the rewritten dispatcher is
//    bit-exact against it on every fuzzed case, and
//  * the ext_sim_throughput bench can measure the speedup honestly: both
//    cores run in the same binary on the same instance.
//
// Nothing here is used by production code paths.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "core/placement.hpp"
#include "core/types.hpp"
#include "sim/online_dispatcher.hpp"

namespace rdp {
class Instance;
struct Realization;
}  // namespace rdp

namespace rdp::check {

/// Pre-rewrite dispatch_online: hash-map replica-set bucketing, per-queue
/// comparison sorts, and a lazily-invalidated binary-heap machine pool
/// that pushes a fresh entry per occupy. Semantically identical to
/// rdp::dispatch_online; kept as the bit-exactness reference.
[[nodiscard]] DispatchResult reference_dispatch_online(
    const Instance& instance, const Placement& placement, const Realization& actual,
    const std::vector<TaskId>& priority, std::vector<Time> initial_ready = {},
    std::vector<double> speeds = {});

/// Pre-rewrite EventQueue: std::priority_queue with a (time, seq) wrapper
/// and a *copy-out* pop -- the shape the production queue had before the
/// calendar-queue rewrite. The throughput bench drives both with the same
/// event stream to measure the core speedup.
template <typename Payload>
class LegacyEventQueue {
 public:
  struct Event {
    Time time;
    std::uint64_t seq;
    Payload payload;

    bool operator<(const Event& other) const noexcept {
      if (time != other.time) return time > other.time;  // min-heap
      return seq > other.seq;
    }
  };

  void push(Time time, Payload payload) {
    queue_.push(Event{time, next_seq_++, std::move(payload)});
  }

  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return queue_.size(); }
  [[nodiscard]] const Event& top() const { return queue_.top(); }

  Event pop() {
    Event out = queue_.top();  // copy: priority_queue::top is const
    queue_.pop();
    return out;
  }

 private:
  std::priority_queue<Event> queue_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace rdp::check
