// Seeded differential fuzzer for the phase-2 dispatchers. Each seed
// deterministically expands into a random (instance, placement, priority,
// realization, failure plan, transfer model, speed profile) tuple, and
// every dispatcher in sim/ is run against it and cross-validated:
//
//   * dispatch_online must pass every schedule invariant, including
//     priority compliance and lower-bound dominance;
//   * dispatch_with_failures with an empty FailurePlan must be
//     bit-identical to dispatch_online (the tie-break parity the code
//     comments claim, made executable);
//   * dispatch_with_failures with a random plan must match a naive
//     reference implementation bit-for-bit, pass the invariants with
//     refetched tasks allowed off-placement, account every restart in
//     its trace, and never finish a surviving run past its machine's
//     failure time;
//   * dispatch_with_transfers with a zero-cost model must be
//     bit-identical to dispatch_online on full replication, and on
//     arbitrary placements must add exactly zero fetch time; with a
//     random model it must pass the invariants with remote tasks paying
//     exactly the model's fetch, plus locality-preference compliance;
//   * dispatch_speculative with speculation disabled must be
//     bit-identical to dispatch_online on the same speed profile, and
//     with speculation enabled must never exceed the non-speculative
//     makespan on the same realization.
//
// Failing seeds are minimized by binary-search shrinking over the task
// count (a failing case is re-expanded from its seed, truncated to a task
// prefix, and re-checked), and reported as JSONL, one failure per line.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/instance.hpp"
#include "core/placement.hpp"
#include "core/realization.hpp"
#include "core/types.hpp"
#include "sim/failures.hpp"
#include "sim/transfer_dispatcher.hpp"

namespace rdp::check {

/// Realization regime for the random-case generator.
enum class FuzzScenario {
  /// Actuals drawn inside the instance's declared alpha band.
  kDefault,
  /// The actual factor band widens across the task index from 1 up to
  /// 1.5x the declared alpha, so late tasks can leave the declared band
  /// -- the drifting/misreported-alpha regime the adaptive estimator
  /// must survive (its cross-check judges against the *realized* alpha).
  kDriftingAlpha,
};

/// Parses "default" / "drifting-alpha" (CLI --scenario flag); throws
/// std::invalid_argument on anything else.
[[nodiscard]] FuzzScenario fuzz_scenario_from_name(const std::string& name);

/// Bounds for the random-case generator.
struct FuzzCaseConfig {
  std::size_t min_tasks = 1;
  std::size_t max_tasks = 24;
  MachineId min_machines = 1;
  MachineId max_machines = 6;
  FuzzScenario scenario = FuzzScenario::kDefault;
};

/// One fully-expanded fuzz input. A pure function of (seed, config): the
/// same pair reproduces the same case on every platform (library RNG).
struct FuzzCase {
  std::uint64_t seed = 0;
  Instance instance;
  Placement placement;             ///< random replica sets, degree in [1, m]
  std::vector<TaskId> priority;    ///< random permutation
  Realization actual;              ///< random realization within the band
  FailurePlan plan;                ///< random fail-stop plan, >= 1 survivor
  TransferModel transfer;          ///< random positive-cost model
  std::vector<double> speeds;      ///< random speeds in [0.5, 2.0]
};

[[nodiscard]] FuzzCase make_fuzz_case(std::uint64_t seed,
                                      const FuzzCaseConfig& config = {});

/// The same case restricted to its first `num_tasks` tasks (placement,
/// priority, and realization projected; machine-level inputs unchanged).
/// Used by the shrinker. Requires 1 <= num_tasks <= case size.
[[nodiscard]] FuzzCase restrict_tasks(const FuzzCase& fuzz_case,
                                      std::size_t num_tasks);

/// One failed cross-check of one seed.
struct FuzzFailure {
  std::uint64_t seed = 0;
  std::size_t num_tasks = 0;
  MachineId num_machines = 0;
  std::string check;   ///< e.g. "failures-empty-plan-parity"
  std::string detail;  ///< first diagnostic from the failing check
  std::size_t shrunk_tasks = 0;  ///< smallest failing task prefix (0 = not shrunk)
};

/// JSONL encoding of a failure (one line, no trailing newline).
[[nodiscard]] std::string to_jsonl_line(const FuzzFailure& failure);

/// Writes one JSONL line per failure. Throws std::runtime_error when the
/// file cannot be opened.
void save_jsonl_report(const std::string& path,
                       const std::vector<FuzzFailure>& failures);

/// Runs every cross-check against one case. Empty result == clean seed.
/// `shrunk_tasks` is left 0; the driver fills it in after shrinking.
[[nodiscard]] std::vector<FuzzFailure> run_fuzz_case(const FuzzCase& fuzz_case);

/// Smallest task-prefix size of `fuzz_case` for which `fails` still
/// returns true, found by binary search (assumes the full case fails).
[[nodiscard]] std::size_t shrink_failing_case(
    const FuzzCase& fuzz_case,
    const std::function<bool(const FuzzCase&)>& fails);

struct FuzzOptions {
  std::uint64_t start_seed = 1;
  std::size_t seeds = 500;
  std::size_t jobs = 1;        ///< 0 = hardware concurrency
  bool shrink = true;          ///< minimize failing seeds by task count
  FuzzCaseConfig gen;
  std::ostream* log = nullptr; ///< progress lines, may be null
};

struct FuzzSummary {
  std::size_t cases = 0;       ///< seeds fuzzed
  std::size_t checks = 0;      ///< individual cross-checks executed
  std::vector<FuzzFailure> failures;  ///< sorted by seed, deterministic
};

/// Fuzzes seeds [start_seed, start_seed + seeds) with `jobs` workers.
/// Deterministic: the summary (including failure order) is independent of
/// the worker count.
[[nodiscard]] FuzzSummary run_fuzz(const FuzzOptions& options);

/// Number of cross-checks run_fuzz_case() executes per seed (for
/// reporting; kept in one place so the CLI summary stays honest).
[[nodiscard]] std::size_t checks_per_case() noexcept;

}  // namespace rdp::check
