#include "check/reference_dispatcher.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "core/instance.hpp"
#include "core/realization.hpp"

namespace rdp::check {

namespace {

// Pre-rewrite MachinePool: lazy binary heap that pushes one entry per
// occupy and discards stale entries at the top. (The production pool now
// compacts; this reference deliberately keeps the original shape.)
class LegacyMachinePool {
 public:
  explicit LegacyMachinePool(MachineId num_machines)
      : LegacyMachinePool(std::vector<Time>(num_machines, 0)) {}

  explicit LegacyMachinePool(std::vector<Time> initial_ready)
      : ready_(std::move(initial_ready)), retired_(ready_.size(), false) {
    for (MachineId i = 0; i < ready_.size(); ++i) heap_.push(Slot{ready_[i], i});
  }

  [[nodiscard]] std::optional<MachineId> next_idle() const {
    refresh();
    if (heap_.empty()) return std::nullopt;
    return heap_.top().id;
  }

  std::pair<Time, Time> occupy(MachineId i, Time duration) {
    const Time start = ready_[i];
    const Time finish = start + duration;
    ready_[i] = finish;
    heap_.push(Slot{finish, i});
    return {start, finish};
  }

  void retire(MachineId i) { retired_[i] = true; }

 private:
  struct Slot {
    Time ready;
    MachineId id;
    bool operator<(const Slot& other) const noexcept {
      if (ready != other.ready) return ready > other.ready;  // min-heap
      return id > other.id;
    }
  };

  void refresh() const {
    while (!heap_.empty()) {
      const Slot& top = heap_.top();
      if (retired_[top.id] || ready_[top.id] != top.ready) {
        heap_.pop();
      } else {
        return;
      }
    }
  }

  std::vector<Time> ready_;
  std::vector<bool> retired_;
  mutable std::priority_queue<Slot> heap_;
};

std::uint64_t hash_set(const std::vector<MachineId>& set) {
  std::uint64_t h = 1469598103934665603ULL;
  for (MachineId i : set) {
    h ^= static_cast<std::uint64_t>(i) + 1;
    h *= 1099511628211ULL;
  }
  return h;
}

struct TaskQueue {
  std::vector<TaskId> tasks;  // sorted by priority rank, consumed from front
  std::size_t head = 0;

  [[nodiscard]] bool exhausted() const noexcept { return head >= tasks.size(); }
  [[nodiscard]] TaskId front() const { return tasks[head]; }
};

}  // namespace

DispatchResult reference_dispatch_online(const Instance& instance,
                                         const Placement& placement,
                                         const Realization& actual,
                                         const std::vector<TaskId>& priority,
                                         std::vector<Time> initial_ready,
                                         std::vector<double> speeds) {
  const std::size_t n = instance.num_tasks();
  const MachineId m = instance.num_machines();
  if (placement.num_tasks() != n || placement.num_machines() != m ||
      actual.size() != n || priority.size() != n) {
    throw std::invalid_argument("reference_dispatch_online: size mismatch");
  }

  std::vector<std::uint32_t> rank(n, UINT32_MAX);
  for (std::uint32_t r = 0; r < priority.size(); ++r) {
    const TaskId j = priority[r];
    if (j >= n || rank[j] != UINT32_MAX) {
      throw std::invalid_argument(
          "reference_dispatch_online: priority is not a permutation");
    }
    rank[j] = r;
  }

  // Bucket tasks by identical replica sets.
  std::vector<TaskQueue> queues;
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> buckets;
  for (TaskId j = 0; j < n; ++j) {
    const auto& set = placement.machines_for(j);
    const std::uint64_t h = hash_set(set);
    std::size_t q = SIZE_MAX;
    for (std::size_t candidate : buckets[h]) {
      const TaskId representative = queues[candidate].tasks.front();
      if (placement.machines_for(representative) == set) {
        q = candidate;
        break;
      }
    }
    if (q == SIZE_MAX) {
      q = queues.size();
      queues.emplace_back();
      buckets[h].push_back(q);
    }
    queues[q].tasks.push_back(j);
  }
  for (auto& queue : queues) {
    std::sort(queue.tasks.begin(), queue.tasks.end(),
              [&](TaskId a, TaskId b) { return rank[a] < rank[b]; });
  }

  std::vector<std::vector<std::size_t>> queues_of_machine(m);
  for (std::size_t q = 0; q < queues.size(); ++q) {
    for (MachineId i : placement.machines_for(queues[q].tasks.front())) {
      queues_of_machine[i].push_back(q);
    }
  }

  LegacyMachinePool pool = initial_ready.empty()
                               ? LegacyMachinePool(m)
                               : LegacyMachinePool(std::move(initial_ready));

  DispatchResult result;
  result.schedule.assignment = Assignment(n);
  result.schedule.start.assign(n, 0);
  result.schedule.finish.assign(n, 0);
  result.trace.events.reserve(n);

  std::size_t remaining = n;
  while (remaining > 0) {
    const auto idle = pool.next_idle();
    if (!idle) {
      throw std::logic_error("reference_dispatch_online: deadlock");
    }
    const MachineId i = *idle;

    std::size_t best_queue = SIZE_MAX;
    std::uint32_t best_rank = UINT32_MAX;
    for (std::size_t q : queues_of_machine[i]) {
      const TaskQueue& queue = queues[q];
      if (queue.exhausted()) continue;
      const std::uint32_t r = rank[queue.front()];
      if (r < best_rank) {
        best_rank = r;
        best_queue = q;
      }
    }
    if (best_queue == SIZE_MAX) {
      pool.retire(i);
      continue;
    }

    TaskQueue& queue = queues[best_queue];
    const TaskId j = queue.front();
    ++queue.head;
    const Time duration = speeds.empty() ? actual[j] : actual[j] / speeds[i];
    const auto [start, finish] = pool.occupy(i, duration);
    result.schedule.assignment.machine_of[j] = i;
    result.schedule.start[j] = start;
    result.schedule.finish[j] = finish;
    result.trace.events.push_back(DispatchEvent{start, j, i, duration});
    --remaining;
  }
  return result;
}

}  // namespace rdp::check
