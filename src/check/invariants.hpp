// Schedule-invariant validator: mechanical checks that a dispatched
// (Instance, Placement, Schedule, DispatchTrace) tuple actually realizes
// the paper's phase-2 semantics. Every theorem sweep in this repo divides
// a dispatched makespan by a certified optimum; a dispatcher bug that
// produces a subtly-wrong schedule would silently invalidate those
// ratios. These checks make the dispatcher contracts executable:
//
//   * assignment respects the placement (unless a task is explicitly
//     allowed off-placement, e.g. after a refetch or a paid transfer);
//   * no two tasks overlap on a machine;
//   * finish - start equals the realized duration (actual time, plus any
//     declared per-task extra such as a refetch/fetch penalty, divided by
//     the machine's speed);
//   * work is conserved: every task runs exactly once, to completion;
//   * priority compliance: no eligible higher-priority task is still
//     waiting when a lower-priority one starts on an idle machine;
//   * the makespan is at least the certified lower bound on OPT from
//     exact/lower_bounds.hpp (sound for every dispatcher here, since
//     each task's final run takes at least its actual time).
//
// Checks accumulate human-readable Violations instead of throwing, so the
// fuzzer can report every broken invariant of a bad schedule at once.
#pragma once

#include <string>
#include <vector>

#include "core/types.hpp"

namespace rdp {

class Instance;
class Placement;
struct Realization;
struct Schedule;
struct DispatchTrace;
struct TransferModel;

namespace check {

/// One broken invariant: a stable machine-readable name plus a
/// human-readable diagnostic.
struct Violation {
  std::string invariant;  ///< e.g. "overlap", "duration", "priority"
  std::string detail;
};

[[nodiscard]] std::string to_string(const Violation& v);

/// Knobs describing what the dispatcher under test was allowed to do.
struct InvariantOptions {
  /// Per-task extra processing time on top of actual[j] (refetch penalty,
  /// transfer fetch time). Empty means no extras.
  std::vector<Time> extra_duration;
  /// Tasks allowed to run on a machine outside their replica set (e.g.
  /// refetched or remotely-fetched tasks). Empty means none are.
  std::vector<bool> off_placement_ok;
  /// Per-machine speed factors (duration = work / speed). Empty = unit.
  std::vector<double> speeds;
  /// Check makespan >= makespan_lower_bound(actual, m). Only sound when
  /// speeds are unit (set false for heterogeneous runs).
  bool check_lower_bound = true;
  /// Relative floating-point tolerance for time comparisons.
  double tolerance = 1e-9;
};

/// Runs the structural invariants (shape, placement-respecting
/// assignment, overlap-freedom, duration consistency, work conservation,
/// lower-bound dominance). Returns every violation found; empty == valid.
[[nodiscard]] std::vector<Violation> check_invariants(
    const Instance& instance, const Placement& placement,
    const Realization& actual, const Schedule& schedule,
    const InvariantOptions& options = {});

/// Priority compliance for the plain semi-clairvoyant dispatcher: when
/// task j starts on machine i at time s, no strictly-higher-priority task
/// that machine i could run (replica present) may still be waiting
/// (i.e. start strictly after s). Sound for dispatch_online and for
/// failure-free failure-dispatch runs; not applicable once restarts can
/// put tasks back in the queue.
[[nodiscard]] std::vector<Violation> check_priority_compliance(
    const Instance& instance, const Placement& placement,
    const Schedule& schedule, const std::vector<TaskId>& priority,
    double tolerance = 1e-9);

/// Priority compliance for the locality-preferring transfer dispatcher:
/// a local start must beat every waiting local task on rank; a remote
/// start is only legal when no local task waits at all, and must beat
/// every waiting remote task on rank.
[[nodiscard]] std::vector<Violation> check_transfer_priority_compliance(
    const Instance& instance, const Placement& placement,
    const Schedule& schedule, const std::vector<TaskId>& priority,
    double tolerance = 1e-9);

/// Byte-level schedule comparison for differential checks: returns an
/// empty string when the schedules are bit-identical (assignment, start,
/// finish compared with ==, no tolerance), otherwise the first mismatch.
[[nodiscard]] std::string diff_schedules(const Schedule& a, const Schedule& b);

/// Throws std::logic_error naming `context` and every violation when the
/// list is non-empty; no-op otherwise.
void throw_on_violations(const std::vector<Violation>& violations,
                         const std::string& context);

/// True when expensive invariant re-validation is wired into the
/// experiment / repro hot paths. Off by default; enabled by the
/// RDP_DEBUG_CHECKS=1 environment variable or set_debug_checks(true)
/// (the CLI's --debug-checks flag). Reading the flag is one relaxed
/// atomic load, so disabled checks cost nothing measurable.
[[nodiscard]] bool debug_checks_enabled() noexcept;
void set_debug_checks(bool enabled) noexcept;

}  // namespace check
}  // namespace rdp
