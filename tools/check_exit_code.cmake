# Runs a command and fails unless it exits with the expected status.
# CTest's PASS_REGULAR_EXPRESSION ignores exit codes and WILL_FAIL only
# distinguishes zero from nonzero, so the pinned-exit-code tests (usage
# errors must be 2, runtime failures 1 -- see rdp_cli.cpp) go through
# this script instead.
#
# Usage: cmake -DCLI=<path> -DEXPECTED=<code> -DARGS="<flag;flag;...>"
#        -P check_exit_code.cmake
if(NOT DEFINED CLI OR NOT DEFINED EXPECTED)
  message(FATAL_ERROR "check_exit_code.cmake: need -DCLI= and -DEXPECTED=")
endif()
separate_arguments(arg_list UNIX_COMMAND "${ARGS}")
execute_process(
  COMMAND "${CLI}" ${arg_list}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL "${EXPECTED}")
  message(FATAL_ERROR
          "expected exit ${EXPECTED}, got '${rc}' from: ${CLI} ${ARGS}\n"
          "stdout: ${out}\nstderr: ${err}")
endif()
