// rdp_cli -- the library as a command-line tool. Subcommands compose via
// files (instances and traces in the library's CSV dialects):
//
//   rdp_cli generate --kind=uniform --n=40 --m=8 --alpha=1.5 --seed=1
//           --out=inst.csv
//   rdp_cli realize  --instance=inst.csv --noise=two-point --seed=7
//           --out=trace.csv
//   rdp_cli run      --instance=inst.csv --strategy=ls-group:2
//           [--trace=trace.csv | --noise=uniform --seed=7]
//           [--svg=gantt.svg] [--json=result.json]
//   rdp_cli evaluate --instance=inst.csv --scenarios=12 --seed=3
//   rdp_cli sweep    --instance=inst.csv --strategy=ls-group:2 --trials=64
//           --threads=4 --ratios --cache-size=4096 --certify-budget=2000000
//           --metrics-out=metrics.json --trace-out=run.json
//   rdp_cli bounds   --m=8 --alpha=1.5
//
// Every command prints a human-readable summary; `run --json` also emits
// a machine-readable report. The global flags --metrics-out=FILE and
// --trace-out=FILE work with every command: they install an observability
// scope for the command's duration and write a metrics snapshot (JSON)
// and a wall-clock trace (Chrome trace_event format, or JSONL when FILE
// ends in .jsonl) on exit. --sample-out=FILE additionally runs an
// obs::RunSampler that appends a JSONL metrics snapshot every
// --sample-period=MS milliseconds for the duration of the command.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "rdp.hpp"

namespace {

using namespace rdp;

/// Exit codes, pinned by the CLI tests: bad usage (unknown command, bad
/// or missing flags -- anything surfacing as std::invalid_argument) is 2
/// with a usage hint; runtime failures (I/O, gate regressions) are 1.
constexpr int kExitUsage = 2;

int usage(const char* program) {
  std::cerr
      << "usage: " << program
      << " <generate|realize|run|serve|obs|evaluate|sweep|bounds|repro|fuzz|perf>"
         " [--flags]\n\n"
         "  generate --kind=uniform|heavy-tailed|bimodal|lognormal|"
         "correlated|anti-correlated|independent|unit|profile:NAME\n"
         "           --n=N --m=M --alpha=A --seed=S --out=FILE\n"
         "  realize  --instance=FILE --noise=MODEL --seed=S --out=TRACE\n"
         "  run      --instance=FILE --strategy=SPEC [--trace=TRACE]\n"
         "           [--noise=MODEL --seed=S] [--svg=FILE] [--json=FILE]\n"
         "  serve    --arrivals=poisson|burst|trace [--rate=R]\n"
         "           [--tasks=N | --duration=S] [--strategy=SPEC]\n"
         "           [--kind=KIND --m=M --alpha=A | --instance=FILE]\n"
         "           [--noise=MODEL] [--seed=S] [--arrival-seed=S]\n"
         "           [--burst-boost=B --burst-on=T --burst-off=T]\n"
         "           [--trace=FILE] [--json=FILE]\n"
         "           [--adaptive [--epoch=N] [--drift=D] [--classes=C]]\n"
         "           [--slo=p99=X,backlog=Y[,p50=][,p90=][,window=SEC]\n"
         "                  [,sustain=K]]\n"
         "           (streaming dispatch under continuous arrivals;\n"
         "            reports response-time p50/p90/p99, queueing-delay\n"
         "            decomposition, and dispatched tasks/sec; --adaptive\n"
         "            estimates alpha online and re-places unadmitted\n"
         "            tasks when the estimate drifts past --drift;\n"
         "            --slo evaluates windowed burn rates and exits 1 on\n"
         "            a sustained violation)\n"
         "  obs      --timeline=FILE [--json=FILE] [--chrome=FILE]\n"
         "           [--jobs=N]\n"
         "           (post-process a --timeline-out flight recording into\n"
         "            per-task latency attribution (queue-wait vs service),\n"
         "            a per-machine utilization/stall report, and a\n"
         "            per-machine-lane Chrome trace)\n"
         "  evaluate --instance=FILE [--scenarios=K] [--seed=S]\n"
         "           [--scenario-kind=mixed|drifting|misreported]\n"
         "           [--alpha-to=A] [--true-alpha=A]\n"
         "  sweep    --instance=FILE --strategy=SPEC [--noise=MODEL]\n"
         "           [--trials=K] [--threads=T] [--seed=S] [--json=FILE]\n"
         "           [--ratios] (certified competitive ratios per trial)\n"
         "           [--cache-size=N] [--certify-budget=B] (with --ratios)\n"
         "  bounds   --m=M --alpha=A\n"
         "  repro    [--out=DIR] [--results=FILE] [--filter=EXPR]\n"
         "           [--jobs=N] [--seed=S] [--budget=B] [--force] [--list]\n"
         "           (regenerate the paper's tables/figures/theorem checks;\n"
         "            filter terms match artifact names, tags, or kinds,\n"
         "            e.g. --filter=smoke or --filter=table,fig1)\n"
         "  fuzz     [--seeds=N] [--jobs=K] [--start-seed=S]\n"
         "           [--max-n=N] [--max-m=M] [--report=FILE.jsonl]\n"
         "           [--no-shrink] [--scenario=default|drifting-alpha]\n"
         "           (differential fuzzing of every sim/ dispatcher against\n"
         "            the schedule invariants in src/check/; failing seeds\n"
         "            are shrunk and written one JSONL line each)\n"
         "  perf     record  --in=FILE[,FILE...] [--name=N] [--out=FILE]\n"
         "           compare --baseline=FILE --current=FILE [--json=FILE]\n"
         "                   [--warn-only] [--enforce-exact] [--ignore-params]\n"
         "                   [--rel-tol=R] [--mad-mult=K]\n"
         "           gate    [--baselines=DIR] [--current-dir=DIR]\n"
         "                   [--json=FILE] [--warn-only] [--enforce-exact]\n"
         "           (normalize BENCH_*.json into BenchRecords, diff fresh\n"
         "            runs against committed baselines in bench/baselines/;\n"
         "            see docs/PERFORMANCE.md)\n\n"
         "global:  --metrics-out=FILE (metrics snapshot JSON)\n"
         "         --trace-out=FILE   (Chrome trace_event; .jsonl for JSONL)\n"
         "         --sample-out=FILE  (JSONL metrics time series, one line\n"
         "                             per --sample-period=MS, default 1000)\n"
         "         --timeline-out=FILE (task-lifecycle flight recording,\n"
         "                             JSONL; cap with --timeline-capacity=N,\n"
         "                             default 4194304 events)\n"
         "         --debug-checks     (re-validate every dispatched schedule\n"
         "                             in experiment paths; also via\n"
         "                             RDP_DEBUG_CHECKS=1)\n\n"
         "strategies:";
  for (const std::string& spec : known_strategy_specs()) std::cerr << ' ' << spec;
  std::cerr << "\nnoise models: none uniform log-uniform two-point"
               " beta-centered always-high always-low\n";
  return kExitUsage;
}

NoiseModel noise_from_name(const std::string& name) {
  for (NoiseModel model : all_noise_models()) {
    if (to_string(model) == name) return model;
  }
  throw std::invalid_argument("unknown noise model '" + name + "'");
}

Instance generate_instance(const Args& args, std::size_t force_n = 0) {
  WorkloadParams params;
  params.num_tasks =
      force_n ? force_n : static_cast<std::size_t>(args.get("n", std::int64_t{40}));
  params.num_machines = static_cast<MachineId>(args.get("m", std::int64_t{8}));
  params.alpha = args.get("alpha", 1.5);
  params.seed = static_cast<std::uint64_t>(args.get("seed", std::int64_t{1}));
  const std::string kind = args.get("kind", std::string("uniform"));
  if (kind == "uniform") return uniform_workload(params);
  if (kind == "heavy-tailed") return heavy_tailed_workload(params);
  if (kind == "bimodal") return bimodal_workload(params);
  if (kind == "lognormal") return lognormal_workload(params);
  if (kind == "correlated") return correlated_sizes_workload(params);
  if (kind == "anti-correlated") return anti_correlated_sizes_workload(params);
  if (kind == "independent") return independent_sizes_workload(params);
  if (kind == "unit") {
    return unit_tasks(params.num_tasks, params.num_machines, params.alpha);
  }
  if (kind.rfind("profile:", 0) == 0) {
    const WorkloadProfile& profile = profile_by_name(kind.substr(8));
    return profile.build(params.num_tasks, params.num_machines, profile.alpha,
                         params.seed);
  }
  throw std::invalid_argument("unknown workload kind '" + kind + "'");
}

int cmd_generate(const Args& args) {
  const Instance inst = generate_instance(args);
  const std::string out = args.get("out", std::string(""));
  if (out.empty()) throw std::invalid_argument("generate: --out is required");
  save_instance(out, inst);
  std::cout << "wrote " << inst.summary() << " to " << out << "\n";
  return EXIT_SUCCESS;
}

int cmd_realize(const Args& args) {
  const std::string in = args.get("instance", std::string(""));
  const std::string out = args.get("out", std::string(""));
  if (in.empty() || out.empty()) {
    throw std::invalid_argument("realize: --instance and --out are required");
  }
  const Instance inst = load_instance(in);
  const NoiseModel model =
      noise_from_name(args.get("noise", std::string("uniform")));
  const auto seed = static_cast<std::uint64_t>(args.get("seed", std::int64_t{1}));
  const Realization actual = realize(inst, model, seed);
  save_trace(out, make_synthetic_trace(inst, actual));
  std::cout << "wrote trace (" << inst.num_tasks() << " records, noise "
            << to_string(model) << ") to " << out << "\n";
  return EXIT_SUCCESS;
}

int cmd_run(const Args& args) {
  const std::string in = args.get("instance", std::string(""));
  if (in.empty()) throw std::invalid_argument("run: --instance is required");
  Instance inst = load_instance(in);

  Realization actual;
  const std::string trace_path = args.get("trace", std::string(""));
  if (!trace_path.empty()) {
    const ReplayableWorkload workload =
        workload_from_trace(load_trace(trace_path), inst.num_machines());
    inst = workload.instance;
    actual = workload.actual;
  } else {
    const NoiseModel model =
        noise_from_name(args.get("noise", std::string("uniform")));
    actual = realize(inst, model,
                     static_cast<std::uint64_t>(args.get("seed", std::int64_t{1})));
  }

  const TwoPhaseStrategy strategy =
      strategy_from_spec(args.get("strategy", std::string("lpt-no-restriction")));
  const StrategyResult result = strategy.run(inst, actual);
  const CertifiedCmax opt = certified_cmax(actual.actual, inst.num_machines());
  const ScheduleStats stats = compute_schedule_stats(inst, result.schedule);

  TextTable table({"quantity", "value"});
  table.add_row({"strategy", strategy.name()});
  table.add_row({"C_max", fmt(result.makespan, 4)});
  table.add_row({"OPT lower bound", fmt(opt.lower, 4) + (opt.exact ? " (exact)" : "")});
  table.add_row({"ratio", fmt(result.makespan / opt.lower, 4)});
  table.add_row({"Mem_max", fmt(result.max_memory, 2)});
  table.add_row({"max replicas", std::to_string(result.max_replication)});
  table.add_row({"diagnostics", to_string(stats)});
  std::cout << table.render();

  const std::string svg_path = args.get("svg", std::string(""));
  if (!svg_path.empty()) {
    save_svg(svg_path, inst, result.schedule);
    std::cout << "SVG written to " << svg_path << "\n";
  }
  const std::string json_path = args.get("json", std::string(""));
  if (!json_path.empty()) {
    ExperimentReport report("rdp-cli-run", "single strategy run");
    report.set_param("strategy", strategy.name());
    report.set_param("instance", in);
    Series& series = report.series(
        "result", {"makespan", "opt_lower", "ratio", "mem_max", "replicas"});
    series.add_row({result.makespan, opt.lower, result.makespan / opt.lower,
                    result.max_memory,
                    static_cast<double>(result.max_replication)});
    if (obs::MetricsRegistry* mx = obs::metrics()) {
      report.attach_metrics(mx->snapshot());
    }
    report.save_json(json_path);
    std::cout << "JSON written to " << json_path << "\n";
  }
  return EXIT_SUCCESS;
}

int cmd_sweep(const Args& args) {
  const std::string in = args.get("instance", std::string(""));
  if (in.empty()) throw std::invalid_argument("sweep: --instance is required");
  const Instance inst = load_instance(in);
  const TwoPhaseStrategy strategy =
      strategy_from_spec(args.get("strategy", std::string("lpt-no-restriction")));
  const NoiseModel model =
      noise_from_name(args.get("noise", std::string("uniform")));
  const auto trials =
      static_cast<std::size_t>(args.get("trials", std::int64_t{32}));
  const auto threads =
      static_cast<std::size_t>(args.get("threads", std::int64_t{0}));
  const auto seed = static_cast<std::uint64_t>(args.get("seed", std::int64_t{1}));
  if (trials == 0) throw std::invalid_argument("sweep: --trials must be >= 1");

  if (args.get("ratios", false)) {
    // Certified-ratio mode: every trial's makespan is divided by a
    // certified optimum, so denominators route through a batched,
    // canonicalizing cache (exact/certify.hpp) and solve in parallel.
    const auto cache_size = static_cast<std::size_t>(args.get(
        "cache-size",
        static_cast<std::int64_t>(CertifyEngine::kDefaultCacheCapacity)));
    CertifyEngine engine(cache_size);
    ThreadPool pool(threads);
    RatioExperimentConfig config;
    config.exact_node_budget = static_cast<std::uint64_t>(
        args.get("certify-budget", std::int64_t{2'000'000}));
    config.engine = &engine;
    config.pool = &pool;
    const std::vector<RatioTrial> series =
        measure_ratio_trials(strategy, inst, model, trials, seed, config);
    Welford ratios;
    std::size_t exact = 0;
    for (const RatioTrial& trial : series) {
      ratios.add(trial.ratio);
      exact += trial.exact_optimum ? 1 : 0;
    }
    const CertifyCacheStats cache = engine.cache_stats();

    TextTable table({"quantity", "value"});
    table.add_row({"strategy", strategy.name()});
    table.add_row({"noise", to_string(model)});
    table.add_row({"trials", std::to_string(trials)});
    table.add_row({"threads", std::to_string(pool.num_threads())});
    table.add_row({"mean ratio", fmt(ratios.mean(), 4)});
    table.add_row({"stddev ratio", fmt(ratios.stddev(), 4)});
    table.add_row({"worst ratio", fmt(ratios.max(), 4)});
    table.add_row({"exact optima", std::to_string(exact) + "/" +
                                       std::to_string(trials)});
    table.add_row({"cache hits", std::to_string(cache.hits)});
    table.add_row({"cache misses", std::to_string(cache.misses)});
    table.add_row({"cache hit rate", fmt(cache.hit_rate(), 4)});
    std::cout << table.render();

    const std::string json_path = args.get("json", std::string(""));
    if (!json_path.empty()) {
      ExperimentReport report("rdp-cli-sweep", "certified ratio sweep");
      report.set_param("strategy", strategy.name());
      report.set_param("noise", to_string(model));
      report.set_param("instance", in);
      Series& out = report.series(
          "ratios", {"seed", "makespan", "opt_lower", "ratio", "exact"});
      for (std::size_t t = 0; t < series.size(); ++t) {
        out.add_row({static_cast<double>(seed + t), series[t].algorithm_makespan,
                     series[t].optimal_lower_bound, series[t].ratio,
                     series[t].exact_optimum ? 1.0 : 0.0});
      }
      if (obs::MetricsRegistry* mx = obs::metrics()) {
        report.attach_metrics(mx->snapshot());
      }
      report.save_json(json_path);
      std::cout << "JSON written to " << json_path << "\n";
    }
    return EXIT_SUCCESS;
  }

  std::vector<std::uint64_t> seeds(trials);
  for (std::size_t t = 0; t < trials; ++t) seeds[t] = seed + t;
  const std::vector<SweepCell> grid =
      make_grid({inst.num_machines()}, {inst.alpha()}, seeds);

  // Phase 1 is deterministic: place once, re-dispatch per realization.
  const Placement placement = strategy.place(inst);
  std::vector<double> makespans(grid.size(), 0.0);
  ThreadPool pool(threads);
  run_sweep_parallel(pool, grid, [&](const SweepCell& cell) {
    const Realization actual = realize(inst, model, cell.seed);
    const DispatchResult dispatched =
        dispatch_with_rule(inst, placement, actual, strategy.rule());
    makespans[cell.index] = dispatched.schedule.makespan();
  });

  Welford agg;
  for (double v : makespans) agg.add(v);
  TextTable table({"quantity", "value"});
  table.add_row({"strategy", strategy.name()});
  table.add_row({"noise", to_string(model)});
  table.add_row({"trials", std::to_string(trials)});
  table.add_row({"threads", std::to_string(pool.num_threads())});
  table.add_row({"mean C_max", fmt(agg.mean(), 4)});
  table.add_row({"stddev C_max", fmt(agg.stddev(), 4)});
  table.add_row({"min C_max", fmt(agg.min(), 4)});
  table.add_row({"max C_max", fmt(agg.max(), 4)});
  std::cout << table.render();

  const std::string json_path = args.get("json", std::string(""));
  if (!json_path.empty()) {
    ExperimentReport report("rdp-cli-sweep", "parallel makespan sweep");
    report.set_param("strategy", strategy.name());
    report.set_param("noise", to_string(model));
    report.set_param("instance", in);
    Series& series = report.series("makespans", {"seed", "makespan"});
    for (const SweepCell& cell : grid) {
      series.add_row({static_cast<double>(cell.seed), makespans[cell.index]});
    }
    if (obs::MetricsRegistry* mx = obs::metrics()) {
      report.attach_metrics(mx->snapshot());
    }
    report.save_json(json_path);
    std::cout << "JSON written to " << json_path << "\n";
  }
  return EXIT_SUCCESS;
}

void write_text_file(const std::string& path, const std::string& content);

/// Strict numeric flag parsing for the serve command: Args::get(double)
/// tolerates trailing junk ("4x" -> 4) and non-finite spellings ("nan",
/// "inf"), and a negative --tasks would wrap through size_t into an
/// absurd allocation inside the arrival generator (a runtime failure,
/// exit 1). Flags that size or rate the workload are re-parsed from the
/// raw string here so every rejection is an invalid_argument (usage
/// error, exit 2) before anything reaches a generator.
double serve_positive_flag(const Args& args, const std::string& key,
                           double fallback) {
  if (!args.has(key)) return fallback;
  const std::string raw = args.get(key, std::string(""));
  double value = 0;
  std::size_t consumed = 0;
  try {
    value = std::stod(raw, &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  if (consumed != raw.size() || !std::isfinite(value) || !(value > 0.0)) {
    throw std::invalid_argument("serve: --" + key +
                                " must be a positive finite number (got '" +
                                raw + "')");
  }
  return value;
}

std::size_t serve_count_flag(const Args& args, const std::string& key,
                             std::size_t fallback) {
  if (!args.has(key)) return fallback;
  const std::string raw = args.get(key, std::string(""));
  long long value = 0;
  std::size_t consumed = 0;
  try {
    value = std::stoll(raw, &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  if (consumed != raw.size() || raw.empty() || value < 1) {
    throw std::invalid_argument("serve: --" + key +
                                " must be a positive integer (got '" + raw +
                                "')");
  }
  return static_cast<std::size_t>(value);
}

/// Prints the SLO verdict: a totals table plus one row per violating
/// window (capped -- a badly overloaded run can violate thousands).
void print_slo_report(const SloSpec& spec, const SloReport& report) {
  TextTable table({"slo quantity", "value"});
  table.add_row({"window (sim s)", fmt(spec.window_seconds, 3)});
  table.add_row({"sustain threshold", std::to_string(spec.sustain)});
  table.add_row({"windows", std::to_string(report.windows.size())});
  table.add_row({"violating windows", std::to_string(report.violating_windows)});
  table.add_row(
      {"max consecutive", std::to_string(report.max_consecutive_violations)});
  table.add_row({"burn rate", fmt(report.burn_rate, 4)});
  table.add_row(
      {"sustained violation", report.sustained_violation ? "YES" : "no"});
  std::cout << table.render();

  constexpr std::size_t kMaxPrinted = 10;
  std::size_t printed = 0;
  for (const SloWindow& win : report.windows) {
    if (!win.violated) continue;
    if (printed++ >= kMaxPrinted) {
      std::cout << "  ... " << (report.violating_windows - kMaxPrinted)
                << " more violating window(s)\n";
      break;
    }
    std::cout << "  violated [" << fmt(win.t0, 3) << ", " << fmt(win.t1, 3)
              << "): response p50/p90/p99 = " << fmt(win.response.p50, 4)
              << " / " << fmt(win.response.p90, 4) << " / "
              << fmt(win.response.p99, 4)
              << ", backlog watermark = " << fmt(win.backlog_watermark, 0)
              << "\n";
  }
}

JsonValue slo_report_json(const SloSpec& spec, const SloReport& report) {
  JsonObject obj;
  JsonObject targets;
  if (spec.p50 != kNoSloTarget) targets["p50"] = JsonValue(spec.p50);
  if (spec.p90 != kNoSloTarget) targets["p90"] = JsonValue(spec.p90);
  if (spec.p99 != kNoSloTarget) targets["p99"] = JsonValue(spec.p99);
  if (spec.backlog != kNoSloTarget) targets["backlog"] = JsonValue(spec.backlog);
  obj["targets"] = JsonValue(std::move(targets));
  obj["window_seconds"] = JsonValue(spec.window_seconds);
  obj["sustain"] = JsonValue(static_cast<unsigned long long>(spec.sustain));
  obj["violating_windows"] =
      JsonValue(static_cast<unsigned long long>(report.violating_windows));
  obj["max_consecutive_violations"] = JsonValue(
      static_cast<unsigned long long>(report.max_consecutive_violations));
  obj["burn_rate"] = JsonValue(report.burn_rate);
  obj["sustained_violation"] = JsonValue(report.sustained_violation);
  JsonArray windows;
  for (const SloWindow& win : report.windows) {
    JsonObject w;
    w["t0"] = JsonValue(win.t0);
    w["t1"] = JsonValue(win.t1);
    w["response"] = obs::histogram_summary_json(win.response);
    w["queue_wait"] = obs::histogram_summary_json(win.queue_wait);
    w["backlog_watermark"] = JsonValue(win.backlog_watermark);
    w["violated"] = JsonValue(win.violated);
    windows.emplace_back(std::move(w));
  }
  obj["windows"] = JsonValue(std::move(windows));
  return JsonValue(std::move(obj));
}

int cmd_serve(const Args& args) {
  const ArrivalModel model =
      arrival_model_from_name(args.get("arrivals", std::string("poisson")));
  const TwoPhaseStrategy strategy =
      strategy_from_spec(args.get("strategy", std::string("ls-group:2")));
  const auto seed = static_cast<std::uint64_t>(args.get("seed", std::int64_t{1}));
  // Parsed before any work so a malformed spec is a usage error (exit 2)
  // rather than a wasted run.
  std::optional<SloSpec> slo;
  if (args.has("slo")) slo = parse_slo_spec(args.get("slo", std::string("")));

  std::vector<Time> arrivals;
  std::optional<Instance> inst;
  Realization actual;

  if (model == ArrivalModel::kTrace) {
    const std::string trace_path = args.get("trace", std::string(""));
    if (trace_path.empty()) {
      throw std::invalid_argument("serve: --arrivals=trace requires --trace=FILE");
    }
    const Trace trace = load_trace(trace_path);
    arrivals = arrivals_from_trace(trace);
    ReplayableWorkload workload = workload_from_trace(
        trace, static_cast<MachineId>(args.get("m", std::int64_t{8})));
    inst.emplace(std::move(workload.instance));
    actual = std::move(workload.actual);
  } else {
    ArrivalParams params;
    params.model = model;
    params.rate = serve_positive_flag(args, "rate", 100.0);
    params.burst_boost = serve_positive_flag(args, "burst-boost", 4.0);
    params.burst_on = serve_positive_flag(args, "burst-on", 1.0);
    params.burst_off = serve_positive_flag(args, "burst-off", 4.0);
    if (model == ArrivalModel::kBurst) {
      const double feasible =
          (params.burst_on + params.burst_off) / params.burst_on;
      if (params.burst_boost > feasible) {
        throw std::invalid_argument(
            "serve: --burst-boost=" + std::to_string(params.burst_boost) +
            " is infeasible for MMPP-2 (must be <= (on+off)/on = " +
            std::to_string(feasible) + ")");
      }
    }
    params.seed = static_cast<std::uint64_t>(args.get(
        "arrival-seed", static_cast<std::int64_t>(seed + 1)));
    if (args.has("duration") && args.has("tasks")) {
      throw std::invalid_argument("serve: pass --duration or --tasks, not both");
    }
    if (args.has("duration")) {
      arrivals = generate_arrivals_until(
          params, serve_positive_flag(args, "duration", 10.0));
      if (arrivals.empty()) {
        throw std::invalid_argument(
            "serve: no arrivals inside --duration (raise --rate or --duration)");
      }
    } else {
      arrivals = generate_arrivals(params, serve_count_flag(args, "tasks", 2000));
    }
    const std::string instance_path = args.get("instance", std::string(""));
    if (!instance_path.empty()) {
      // A file instance acts as the task-mix template; it is cycled to
      // cover however many tasks the arrival process produced.
      inst.emplace(cycle_instance(load_instance(instance_path), arrivals.size()));
    } else {
      inst.emplace(generate_instance(args, arrivals.size()));
    }
    actual = realize(*inst, noise_from_name(args.get("noise", std::string("uniform"))),
                     seed);
  }

  if (args.get("adaptive", false)) {
    AdaptiveServeOptions opts;
    opts.epoch_tasks = serve_count_flag(args, "epoch", opts.epoch_tasks);
    opts.drift_threshold =
        serve_positive_flag(args, "drift", opts.drift_threshold);
    opts.adapt.estimator.num_classes =
        serve_count_flag(args, "classes", opts.adapt.estimator.num_classes);
    const auto wall_start = std::chrono::steady_clock::now();
    const AdaptiveServeResult result = serve_adaptive(*inst, actual, arrivals, opts);
    const double wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
            .count();
    const ServeStats stats = compute_serve_stats(result.schedule, arrivals);
    MachineId min_degree = inst->num_machines();
    MachineId max_degree = 0;
    for (const AdaptiveEpoch& epoch : result.epochs) {
      min_degree = std::min(min_degree, epoch.min_degree);
      max_degree = std::max(max_degree, epoch.max_degree);
    }
    TextTable table({"quantity", "value"});
    table.add_row({"arrivals", arrival_model_name(model)});
    table.add_row({"strategy", "adaptive-group"});
    table.add_row({"tasks", std::to_string(inst->num_tasks())});
    table.add_row({"machines", std::to_string(inst->num_machines())});
    table.add_row({"epochs", std::to_string(result.epochs.size())});
    table.add_row({"replans (drift)", std::to_string(result.replans)});
    table.add_row({"final alpha-hat", fmt(result.final_alpha_hat, 4)});
    table.add_row({"degree range",
                   std::to_string(min_degree) + " .. " + std::to_string(max_degree)});
    table.add_row({"peak backlog", std::to_string(result.peak_backlog)});
    table.add_row({"horizon (sim s)", fmt(stats.last_finish, 3)});
    table.add_row({"response p50/p90/p99",
                   fmt(stats.response.p50, 4) + " / " +
                       fmt(stats.response.p90, 4) + " / " +
                       fmt(stats.response.p99, 4)});
    table.add_row({"queue wait p50/p90/p99",
                   fmt(stats.queue_wait.p50, 4) + " / " +
                       fmt(stats.queue_wait.p90, 4) + " / " +
                       fmt(stats.queue_wait.p99, 4)});
    table.add_row({"mean response", fmt(stats.response.mean, 4)});
    table.add_row({"wall seconds", fmt(wall_seconds, 4)});
    std::cout << table.render();

    std::optional<SloReport> slo_report;
    if (slo) {
      slo_report = evaluate_slo(result.schedule, arrivals, *slo);
      print_slo_report(*slo, *slo_report);
    }

    const std::string json_path = args.get("json", std::string(""));
    if (!json_path.empty()) {
      JsonObject obj;
      obj["arrivals"] = JsonValue(std::string(arrival_model_name(model)));
      obj["strategy"] = JsonValue(std::string("adaptive-group"));
      obj["tasks"] =
          JsonValue(static_cast<unsigned long long>(inst->num_tasks()));
      obj["machines"] =
          JsonValue(static_cast<unsigned long long>(inst->num_machines()));
      obj["peak_backlog"] =
          JsonValue(static_cast<unsigned long long>(result.peak_backlog));
      obj["horizon"] = JsonValue(stats.last_finish);
      obj["makespan"] = JsonValue(result.makespan);
      obj["wall_seconds"] = JsonValue(wall_seconds);
      JsonObject adaptive;
      adaptive["epochs"] =
          JsonValue(static_cast<unsigned long long>(result.epochs.size()));
      adaptive["replans"] =
          JsonValue(static_cast<unsigned long long>(result.replans));
      adaptive["final_alpha_hat"] = JsonValue(result.final_alpha_hat);
      adaptive["min_degree"] =
          JsonValue(static_cast<unsigned long long>(min_degree));
      adaptive["max_degree"] =
          JsonValue(static_cast<unsigned long long>(max_degree));
      obj["adaptive"] = JsonValue(std::move(adaptive));
      // Full histogram summaries (count/mean/stddev/min/max/sum plus the
      // quantiles) -- the hand-picked four-field objects predating
      // histogram_summary_json dropped everything downstream dashboards
      // needed for weighting and rollups.
      obj["response"] = obs::histogram_summary_json(stats.response);
      obj["queue_wait"] = obs::histogram_summary_json(stats.queue_wait);
      obj["service"] = obs::histogram_summary_json(stats.service);
      if (slo_report) obj["slo"] = slo_report_json(*slo, *slo_report);
      write_text_file(json_path, JsonValue(std::move(obj)).dump(2) + "\n");
      std::cout << "JSON written to " << json_path << "\n";
    }
    if (slo_report && slo_report->sustained_violation) {
      std::cout << "slo: sustained violation ("
                << slo_report->max_consecutive_violations
                << " consecutive windows)\n";
      return EXIT_FAILURE;
    }
    return EXIT_SUCCESS;
  }

  const Placement placement = strategy.place(*inst);
  const std::vector<TaskId> priority = make_priority(*inst, strategy.rule());
  const ServeReport report =
      run_serve(*inst, placement, actual, priority, arrivals);

  // Offered load over the arrival window (the horizon also counts the
  // final drain, which would understate the rate).
  const Time last_arrival =
      arrivals.empty() ? Time{0} : *std::max_element(arrivals.begin(), arrivals.end());
  const double offered =
      last_arrival > 0 ? static_cast<double>(report.tasks) / last_arrival : 0;
  TextTable table({"quantity", "value"});
  table.add_row({"arrivals", arrival_model_name(model)});
  table.add_row({"strategy", strategy.name()});
  table.add_row({"tasks", std::to_string(report.tasks)});
  table.add_row({"machines", std::to_string(report.machines)});
  table.add_row({"offered rate (sim tasks/s)", fmt(offered, 2)});
  table.add_row({"peak backlog", std::to_string(report.peak_backlog)});
  table.add_row({"horizon (sim s)", fmt(report.horizon, 3)});
  table.add_row({"response p50/p90/p99",
                 fmt(report.stats.response.p50, 4) + " / " +
                     fmt(report.stats.response.p90, 4) + " / " +
                     fmt(report.stats.response.p99, 4)});
  table.add_row({"queue wait p50/p90/p99",
                 fmt(report.stats.queue_wait.p50, 4) + " / " +
                     fmt(report.stats.queue_wait.p90, 4) + " / " +
                     fmt(report.stats.queue_wait.p99, 4)});
  table.add_row({"mean response", fmt(report.stats.response.mean, 4)});
  table.add_row({"mean service", fmt(report.stats.service.mean, 4)});
  table.add_row({"wall seconds", fmt(report.wall_seconds, 4)});
  table.add_row({"dispatched tasks/sec (wall)", fmt(report.dispatched_per_sec, 0)});
  std::cout << table.render();

  std::optional<SloReport> slo_report;
  if (slo) {
    slo_report = evaluate_slo(report.schedule, arrivals, *slo);
    print_slo_report(*slo, *slo_report);
  }

  const std::string json_path = args.get("json", std::string(""));
  if (!json_path.empty()) {
    JsonObject obj;
    obj["arrivals"] = JsonValue(std::string(arrival_model_name(model)));
    obj["strategy"] = JsonValue(strategy.name());
    obj["tasks"] = JsonValue(static_cast<unsigned long long>(report.tasks));
    obj["machines"] = JsonValue(static_cast<unsigned long long>(report.machines));
    obj["peak_backlog"] =
        JsonValue(static_cast<unsigned long long>(report.peak_backlog));
    obj["horizon"] = JsonValue(report.horizon);
    obj["offered_rate"] = JsonValue(offered);
    obj["wall_seconds"] = JsonValue(report.wall_seconds);
    obj["dispatched_per_sec"] = JsonValue(report.dispatched_per_sec);
    // Full summaries for every distribution (see the adaptive branch):
    // the old hand-built objects omitted count/stddev/min/max/sum and,
    // for service, even p50/p90.
    obj["response"] = obs::histogram_summary_json(report.stats.response);
    obj["queue_wait"] = obs::histogram_summary_json(report.stats.queue_wait);
    obj["service"] = obs::histogram_summary_json(report.stats.service);
    if (slo_report) obj["slo"] = slo_report_json(*slo, *slo_report);
    write_text_file(json_path, JsonValue(std::move(obj)).dump(2) + "\n");
    std::cout << "JSON written to " << json_path << "\n";
  }
  if (slo_report && slo_report->sustained_violation) {
    std::cout << "slo: sustained violation ("
              << slo_report->max_consecutive_violations
              << " consecutive windows)\n";
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}

/// `rdp_cli obs`: post-process a flight recording (--timeline-out) into
/// per-task latency attribution, a per-machine utilization/stall report,
/// and optionally a per-machine-lane Chrome trace.
///
/// Bit-deterministic across --jobs by construction: the per-task
/// reduction and the attribution histograms run sequentially in task-id
/// order, and the parallel per-machine pass only writes its own machine's
/// index-addressed slots over a CSR built sequentially -- no accumulation
/// order depends on thread count (pinned by ctest obs_determinism).
int cmd_obs(const Args& args) {
  const std::string timeline_path = args.get("timeline", std::string(""));
  if (timeline_path.empty()) {
    throw std::invalid_argument("obs: --timeline=FILE is required");
  }
  const auto jobs = static_cast<std::size_t>(args.get("jobs", std::int64_t{0}));

  obs::TimelineMeta meta;
  const std::vector<obs::TimelineEvent> events =
      obs::load_timeline(timeline_path, &meta);

  // Pass 1 (sequential): fold the event stream into per-task columns.
  // Later events win, matching "the surviving attempt" semantics of the
  // failure dispatcher's re-emission.
  std::size_t n = 0;
  MachineId m = 0;
  for (const obs::TimelineEvent& e : events) {
    if (e.task != obs::kTimelineNone) {
      n = std::max(n, static_cast<std::size_t>(e.task) + 1);
    }
    if (e.machine != obs::kTimelineNone) {
      m = std::max(m, static_cast<MachineId>(e.machine + 1));
    }
  }
  constexpr double kUnset = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> arrive(n, kUnset), eligible(n, kUnset);
  std::vector<double> start(n, kUnset), finish(n, kUnset);
  std::vector<MachineId> machine_of(n, kNoMachine);
  std::vector<std::uint32_t> refetches(n, 0);
  std::uint64_t failures = 0;
  double horizon = 0.0;
  for (const obs::TimelineEvent& e : events) {
    horizon = std::max(horizon, e.when);
    const TaskId j = e.task;
    switch (e.kind) {
      case obs::TimelineEventKind::kArrive:
      case obs::TimelineEventKind::kAdmit:
        if (j != obs::kTimelineNone) arrive[j] = e.when;
        break;
      case obs::TimelineEventKind::kEligible:
        if (j != obs::kTimelineNone) eligible[j] = e.when;
        break;
      case obs::TimelineEventKind::kStart:
        if (j != obs::kTimelineNone) {
          start[j] = e.when;
          if (e.machine != obs::kTimelineNone) machine_of[j] = e.machine;
        }
        break;
      case obs::TimelineEventKind::kFinish:
        if (j != obs::kTimelineNone) finish[j] = e.when;
        break;
      case obs::TimelineEventKind::kRefetch:
        if (j != obs::kTimelineNone) ++refetches[j];
        break;
      case obs::TimelineEventKind::kFailure:
        ++failures;
        break;
    }
  }

  // Pass 2 (sequential, task-id order): latency attribution. Transfer is
  // the arrive -> eligible gap (data movement before the task could run;
  // only dispatchers with an admission boundary emit it), queue-wait the
  // remainder up to start, service the time on the machine.
  obs::Histogram response_hist, queue_wait_hist, service_hist, transfer_hist;
  std::uint64_t attributed = 0, refetched_tasks = 0;
  for (TaskId j = 0; j < n; ++j) {
    if (refetches[j] > 0) ++refetched_tasks;
    if (std::isnan(start[j]) || std::isnan(finish[j])) continue;
    service_hist.observe(finish[j] - start[j]);
    if (std::isnan(arrive[j])) continue;
    ++attributed;
    response_hist.observe(finish[j] - arrive[j]);
    const double ready = std::isnan(eligible[j]) ? arrive[j] : eligible[j];
    queue_wait_hist.observe(start[j] - ready);
    if (!std::isnan(eligible[j])) transfer_hist.observe(eligible[j] - arrive[j]);
  }

  // Pass 3 (parallel over machines): per-machine busy/stall via a CSR of
  // tasks grouped by machine. Each index writes only its own slots.
  std::vector<std::uint32_t> deg(m + 1, 0);
  for (TaskId j = 0; j < n; ++j) {
    if (machine_of[j] != kNoMachine && !std::isnan(start[j]) &&
        !std::isnan(finish[j])) {
      ++deg[machine_of[j] + 1];
    }
  }
  for (MachineId i = 0; i < m; ++i) deg[i + 1] += deg[i];
  std::vector<TaskId> csr(deg[m]);
  {
    std::vector<std::uint32_t> fill(deg.begin(), deg.end() - 1);
    for (TaskId j = 0; j < n; ++j) {
      if (machine_of[j] != kNoMachine && !std::isnan(start[j]) &&
          !std::isnan(finish[j])) {
        csr[fill[machine_of[j]]++] = j;
      }
    }
  }
  std::vector<double> busy(m, 0.0);
  std::vector<std::uint64_t> tasks_on(m, 0);
  ThreadPool pool(jobs);
  parallel_for_each_index(pool, m, [&](std::size_t i) {
    double total = 0.0;
    for (std::uint32_t k = deg[i]; k < deg[i + 1]; ++k) {
      const TaskId j = csr[k];
      total += finish[j] - start[j];
    }
    busy[i] = total;
    tasks_on[i] = deg[i + 1] - deg[i];
  });

  TextTable table({"quantity", "value"});
  table.add_row({"timeline", timeline_path});
  table.add_row({"events", std::to_string(events.size())});
  table.add_row({"dropped", std::to_string(meta.dropped)});
  table.add_row({"tasks", std::to_string(n)});
  table.add_row({"machines", std::to_string(m)});
  table.add_row({"horizon (sim s)", fmt(horizon, 3)});
  table.add_row({"attributed tasks", std::to_string(attributed)});
  const obs::Histogram::Summary response = response_hist.summary();
  const obs::Histogram::Summary queue_wait = queue_wait_hist.summary();
  const obs::Histogram::Summary service = service_hist.summary();
  const obs::Histogram::Summary transfer = transfer_hist.summary();
  table.add_row({"response p50/p90/p99", fmt(response.p50, 4) + " / " +
                                             fmt(response.p90, 4) + " / " +
                                             fmt(response.p99, 4)});
  table.add_row({"queue wait p50/p90/p99", fmt(queue_wait.p50, 4) + " / " +
                                               fmt(queue_wait.p90, 4) + " / " +
                                               fmt(queue_wait.p99, 4)});
  table.add_row({"service p50/p90/p99", fmt(service.p50, 4) + " / " +
                                            fmt(service.p90, 4) + " / " +
                                            fmt(service.p99, 4)});
  if (transfer.count > 0) {
    table.add_row({"transfer p50/p90/p99", fmt(transfer.p50, 4) + " / " +
                                               fmt(transfer.p90, 4) + " / " +
                                               fmt(transfer.p99, 4)});
  }
  table.add_row({"refetched tasks", std::to_string(refetched_tasks)});
  table.add_row({"machine failures", std::to_string(failures)});
  std::cout << table.render();

  TextTable machines({"machine", "tasks", "busy", "stall", "utilization"});
  for (MachineId i = 0; i < m; ++i) {
    const double stall = horizon - busy[i];
    machines.add_row({std::to_string(i), std::to_string(tasks_on[i]),
                      fmt(busy[i], 3), fmt(stall, 3),
                      fmt(horizon > 0 ? busy[i] / horizon : 0.0, 4)});
  }
  std::cout << machines.render();

  const std::string json_path = args.get("json", std::string(""));
  if (!json_path.empty()) {
    JsonObject obj;
    obj["timeline"] = JsonValue(timeline_path);
    obj["events"] = JsonValue(static_cast<unsigned long long>(events.size()));
    obj["dropped"] = JsonValue(static_cast<unsigned long long>(meta.dropped));
    obj["tasks"] = JsonValue(static_cast<unsigned long long>(n));
    obj["machines"] = JsonValue(static_cast<unsigned long long>(m));
    obj["horizon"] = JsonValue(horizon);
    obj["attributed_tasks"] =
        JsonValue(static_cast<unsigned long long>(attributed));
    obj["refetched_tasks"] =
        JsonValue(static_cast<unsigned long long>(refetched_tasks));
    obj["machine_failures"] =
        JsonValue(static_cast<unsigned long long>(failures));
    obj["response"] = obs::histogram_summary_json(response);
    obj["queue_wait"] = obs::histogram_summary_json(queue_wait);
    obj["service"] = obs::histogram_summary_json(service);
    obj["transfer"] = obs::histogram_summary_json(transfer);
    JsonArray machine_rows;
    for (MachineId i = 0; i < m; ++i) {
      JsonObject row;
      row["machine"] = JsonValue(static_cast<unsigned long long>(i));
      row["tasks"] = JsonValue(static_cast<unsigned long long>(tasks_on[i]));
      row["busy"] = JsonValue(busy[i]);
      row["stall"] = JsonValue(horizon - busy[i]);
      row["utilization"] = JsonValue(horizon > 0 ? busy[i] / horizon : 0.0);
      machine_rows.emplace_back(std::move(row));
    }
    obj["per_machine"] = JsonValue(std::move(machine_rows));
    write_text_file(json_path, JsonValue(std::move(obj)).dump(2) + "\n");
    std::cout << "JSON written to " << json_path << "\n";
  }

  const std::string chrome_path = args.get("chrome", std::string(""));
  if (!chrome_path.empty()) {
    // Per-machine-lane Chrome trace over *simulated* time: tid = machine,
    // one 'X' span per task (ts/dur in microseconds of sim time), 'i'
    // instants for failures (machine lane) and refetches (the task's
    // eventual machine, lane 0 when it never ran).
    std::string buf = "{\"traceEvents\":[";
    bool first = true;
    auto comma = [&] {
      if (!first) buf += ",\n";
      first = false;
    };
    for (TaskId j = 0; j < n; ++j) {
      if (machine_of[j] == kNoMachine || std::isnan(start[j]) ||
          std::isnan(finish[j])) {
        continue;
      }
      comma();
      buf += "{\"name\":\"task " + std::to_string(j) +
             "\",\"cat\":\"task\",\"ph\":\"X\",\"ts\":" +
             JsonValue(start[j] * 1e6).dump(-1) + ",\"dur\":" +
             JsonValue((finish[j] - start[j]) * 1e6).dump(-1) +
             ",\"pid\":1,\"tid\":" + std::to_string(machine_of[j]) +
             ",\"args\":{\"task\":" + std::to_string(j) + "}}";
    }
    for (const obs::TimelineEvent& e : events) {
      if (e.kind == obs::TimelineEventKind::kFailure) {
        comma();
        const std::uint32_t lane = e.machine == obs::kTimelineNone ? 0 : e.machine;
        buf += "{\"name\":\"failure\",\"cat\":\"failure\",\"ph\":\"i\",\"ts\":" +
               JsonValue(e.when * 1e6).dump(-1) + ",\"pid\":1,\"tid\":" +
               std::to_string(lane) + ",\"s\":\"t\"}";
      } else if (e.kind == obs::TimelineEventKind::kRefetch) {
        comma();
        const MachineId lane =
            e.task != obs::kTimelineNone && machine_of[e.task] != kNoMachine
                ? machine_of[e.task]
                : 0;
        buf += "{\"name\":\"refetch\",\"cat\":\"refetch\",\"ph\":\"i\",\"ts\":" +
               JsonValue(e.when * 1e6).dump(-1) + ",\"pid\":1,\"tid\":" +
               std::to_string(lane) + ",\"s\":\"t\"}";
      }
    }
    buf += "],\"displayTimeUnit\":\"ms\"}\n";
    write_text_file(chrome_path, buf);
    std::cout << "Chrome trace written to " << chrome_path << "\n";
  }
  return EXIT_SUCCESS;
}

int cmd_evaluate(const Args& args) {
  const std::string in = args.get("instance", std::string(""));
  if (in.empty()) throw std::invalid_argument("evaluate: --instance is required");
  const Instance inst = load_instance(in);
  const auto count =
      static_cast<std::size_t>(args.get("scenarios", std::int64_t{12}));
  const auto seed = static_cast<std::uint64_t>(args.get("seed", std::int64_t{1}));
  const std::string kind = args.get("scenario-kind", std::string("mixed"));
  ScenarioSet scenarios;
  if (kind == "mixed") {
    scenarios = make_mixed_scenarios(inst, count, seed);
  } else if (kind == "drifting") {
    scenarios = make_drifting_scenarios(inst, count, seed, inst.alpha(),
                                        args.get("alpha-to", 2.0 * inst.alpha()));
  } else if (kind == "misreported") {
    scenarios = make_misreported_scenarios(inst, count, seed,
                                           args.get("true-alpha", 2.0 * inst.alpha()));
  } else {
    throw std::invalid_argument(
        "evaluate: --scenario-kind must be mixed, drifting, or misreported (got '" +
        kind + "')");
  }

  std::vector<TwoPhaseStrategy> strategies =
      paper_strategy_family(inst.num_machines());
  strategies.push_back(make_adaptive_group());
  TextTable table({"strategy", "mean", "worst", "worst regret"});
  for (const TwoPhaseStrategy& s : strategies) {
    const ScenarioEvaluation eval = evaluate_scenarios(s, inst, scenarios);
    table.add_row({eval.strategy_name, fmt(eval.mean_makespan, 2),
                   fmt(eval.worst_makespan, 2), fmt(eval.worst_regret, 2)});
  }
  std::cout << table.render();
  const std::size_t pick = select_min_max(strategies, inst, scenarios);
  std::cout << "min-max pick: " << strategies[pick].name() << "\n";
  return EXIT_SUCCESS;
}

int cmd_bounds(const Args& args) {
  const auto m = static_cast<MachineId>(args.get("m", std::int64_t{8}));
  const double alpha = args.get("alpha", 1.5);
  TextTable table({"replication", "guarantee", "source"});
  table.add_row({"|M_j|=1 (lower bound)",
                 fmt(thm1_no_replication_lower_bound(alpha, m)), "Theorem 1"});
  table.add_row({"|M_j|=1 (LPT-NoChoice)", fmt(thm2_lpt_no_choice(alpha, m)),
                 "Theorem 2"});
  for (MachineId r : feasible_replication_degrees(m)) {
    if (r == 1 || r == m) continue;
    table.add_row({"|M_j|=" + std::to_string(r) + " (LS-Group)",
                   fmt(thm4_ls_group(alpha, m, m / r)), "Theorem 4"});
  }
  table.add_row({"|M_j|=m (LPT-NoRestriction)",
                 fmt(thm3_lpt_no_restriction(alpha, m)), "Theorem 3 + Graham"});
  std::cout << "m=" << m << " alpha=" << alpha << "\n" << table.render();
  return EXIT_SUCCESS;
}

int cmd_repro(const Args& args) {
  if (args.get("list", false)) {
    TextTable table({"artifact", "reproduces", "kind", "tags"});
    for (const repro::Artifact& artifact : repro::paper_artifacts()) {
      std::string tags;
      for (const std::string& t : artifact.tags) {
        tags += (tags.empty() ? "" : ",") + t;
      }
      table.add_row({artifact.name, artifact.paper_ref,
                     repro::to_string(artifact.kind), tags});
    }
    std::cout << table.render();
    return EXIT_SUCCESS;
  }

  repro::ReproOptions options;
  options.out_dir = args.get("out", std::string("artifacts"));
  options.results_path = args.get("results", std::string("docs/RESULTS.md"));
  options.filter = args.get("filter", std::string(""));
  options.jobs = static_cast<std::size_t>(args.get("jobs", std::int64_t{0}));
  options.seed = static_cast<std::uint64_t>(args.get("seed", std::int64_t{1}));
  options.node_budget =
      static_cast<std::uint64_t>(args.get("budget", std::int64_t{400'000}));
  options.force = args.get("force", false);
  options.log = &std::cout;

  const repro::ReproSummary summary = repro::run_repro(options);

  TextTable table({"quantity", "value"});
  table.add_row({"selected", std::to_string(summary.selected)});
  table.add_row({"generated", std::to_string(summary.generated)});
  table.add_row({"cached", std::to_string(summary.cached)});
  table.add_row({"theorem checks", std::to_string(summary.checks)});
  table.add_row({"bound violations", std::to_string(summary.violations)});
  table.add_row({"manifest", summary.manifest_path});
  table.add_row({"RESULTS.md", summary.results_written ? "written" : "skipped"});
  std::cout << table.render();
  return summary.violations == 0 ? EXIT_SUCCESS : EXIT_FAILURE;
}

int cmd_fuzz(const Args& args) {
  check::FuzzOptions options;
  options.seeds = static_cast<std::size_t>(args.get("seeds", std::int64_t{500}));
  options.jobs = static_cast<std::size_t>(args.get("jobs", std::int64_t{1}));
  options.start_seed =
      static_cast<std::uint64_t>(args.get("start-seed", std::int64_t{1}));
  options.gen.max_tasks =
      static_cast<std::size_t>(args.get("max-n", std::int64_t{24}));
  options.gen.max_machines =
      static_cast<MachineId>(args.get("max-m", std::int64_t{6}));
  options.shrink = !args.get("no-shrink", false);
  options.gen.scenario = check::fuzz_scenario_from_name(
      args.get("scenario", std::string("default")));
  options.log = &std::cout;
  if (options.seeds == 0) throw std::invalid_argument("fuzz: --seeds must be >= 1");

  const check::FuzzSummary summary = check::run_fuzz(options);

  const std::string report_path = args.get("report", std::string(""));
  if (!report_path.empty()) {
    check::save_jsonl_report(report_path, summary.failures);
    std::cout << "JSONL report (" << summary.failures.size()
              << " failures) written to " << report_path << "\n";
  }

  TextTable table({"quantity", "value"});
  table.add_row({"seeds", std::to_string(summary.cases)});
  table.add_row({"cross-checks", std::to_string(summary.checks)});
  table.add_row({"checks per seed", std::to_string(check::checks_per_case())});
  table.add_row({"failures", std::to_string(summary.failures.size())});
  std::cout << table.render();
  return summary.failures.empty() ? EXIT_SUCCESS : EXIT_FAILURE;
}

std::vector<std::string> split_csv(const std::string& list) {
  std::vector<std::string> items;
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    const std::string item = list.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!item.empty()) items.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return items;
}

void write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("perf: cannot open " + path);
  out << content;
  if (!out) throw std::runtime_error("perf: write failed for " + path);
}

perf::CompareOptions compare_options_from(const Args& args) {
  perf::CompareOptions options;
  options.timing_rel_tolerance =
      args.get("rel-tol", options.timing_rel_tolerance);
  options.mad_multiplier = args.get("mad-mult", options.mad_multiplier);
  options.ignore_params = args.get("ignore-params", false);
  return options;
}

/// `perf record`: normalize raw bench JSON (min-of-k over several files)
/// into a committed baseline record.
int cmd_perf_record(const Args& args) {
  std::vector<std::string> inputs = split_csv(args.get("in", std::string("")));
  // Files may also be given as positionals after `record`.
  const std::vector<std::string>& pos = args.positionals();
  inputs.insert(inputs.end(), pos.begin() + 1, pos.end());
  if (inputs.empty()) {
    throw std::invalid_argument(
        "perf record: --in=FILE[,FILE...] is required (repeats of the same "
        "benchmark merge min-of-k)");
  }
  std::vector<perf::BenchRecord> runs;
  runs.reserve(inputs.size());
  for (const std::string& path : inputs) runs.push_back(perf::load_bench_file(path));
  perf::BenchRecord record = perf::merge_repeats(runs);
  if (args.has("name")) record.name = args.get("name", record.name);
  record.git_sha = repro::read_git_sha(".");
  record.host = perf::host_fingerprint();

  const std::string out =
      args.get("out", "bench/baselines/" + record.name + ".json");
  std::filesystem::path parent = std::filesystem::path(out).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  record.save(out);
  std::cout << "recorded " << record.name << " (" << record.metrics.size()
            << " metrics, " << inputs.size() << " run(s), params "
            << (record.params_hash.empty() ? "-" : record.params_hash)
            << ") to " << out << "\n";
  return EXIT_SUCCESS;
}

/// `perf compare`: diff one fresh run against one baseline.
int cmd_perf_compare(const Args& args) {
  const std::string baseline_path = args.get("baseline", std::string(""));
  const std::string current_path = args.get("current", std::string(""));
  if (baseline_path.empty() || current_path.empty()) {
    throw std::invalid_argument(
        "perf compare: --baseline=FILE and --current=FILE are required");
  }
  const perf::BenchRecord baseline = perf::load_bench_file(baseline_path);
  const perf::BenchRecord current = perf::load_bench_file(current_path);
  const perf::CompareResult result =
      perf::compare_records(baseline, current, compare_options_from(args));

  std::cout << result.render_table();
  const std::string json_path = args.get("json", std::string(""));
  if (!json_path.empty()) {
    write_text_file(json_path, result.to_json().dump(2) + "\n");
    std::cout << "verdict written to " << json_path << "\n";
  }
  const bool warn_only = args.get("warn-only", false);
  const bool enforce_exact = args.get("enforce-exact", false);
  if (warn_only && enforce_exact && result.exact_regressed()) {
    std::cout << "enforce-exact: exact-noise-class metric regressed; "
                 "failing despite --warn-only\n";
    return EXIT_FAILURE;
  }
  if (result.regressed() && warn_only) {
    std::cout << "warn-only: regression reported but exiting 0\n";
  }
  return result.regressed() && !warn_only ? EXIT_FAILURE : EXIT_SUCCESS;
}

/// `perf gate`: compare every committed baseline against the matching
/// fresh output (by the baseline's recorded `source` filename) under
/// --current-dir. A baseline whose fresh output is missing is a hard
/// failure even under --warn-only: the gate must notice when a benchmark
/// silently stops running. --enforce-exact additionally keeps
/// "exact"-noise-class metrics (cache hit counts, iteration counts,
/// bit-mismatch counters -- deterministic by contract) enforcing under
/// --warn-only, so shared-runner timing noise is tolerated but a
/// determinism or algorithmic-shape change still fails the gate.
int cmd_perf_gate(const Args& args) {
  const std::string baselines_dir =
      args.get("baselines", std::string("bench/baselines"));
  const std::string current_dir = args.get("current-dir", std::string("."));
  const bool warn_only = args.get("warn-only", false);
  const bool enforce_exact = args.get("enforce-exact", false);
  const perf::CompareOptions options = compare_options_from(args);

  std::vector<std::string> baseline_files;
  if (!std::filesystem::is_directory(baselines_dir)) {
    throw std::runtime_error("perf gate: no baselines directory at " +
                             baselines_dir);
  }
  for (const auto& entry : std::filesystem::directory_iterator(baselines_dir)) {
    if (entry.path().extension() == ".json") {
      baseline_files.push_back(entry.path().string());
    }
  }
  std::sort(baseline_files.begin(), baseline_files.end());
  if (baseline_files.empty()) {
    throw std::runtime_error("perf gate: no *.json baselines in " +
                             baselines_dir);
  }

  bool any_regressed = false;
  bool any_exact_regressed = false;
  bool any_error = false;
  JsonArray results;
  for (const std::string& path : baseline_files) {
    const perf::BenchRecord baseline = perf::load_bench_file(path);
    const std::filesystem::path current_path =
        std::filesystem::path(current_dir) / baseline.source;
    if (!std::filesystem::exists(current_path)) {
      std::cout << "perf gate: MISSING " << current_path.string()
                << " (baseline " << path << " has nothing to compare against)\n";
      JsonObject missing;
      missing["bench"] = baseline.name;
      missing["baseline_source"] = path;
      missing["error"] = "missing current output " + current_path.string();
      results.emplace_back(std::move(missing));
      any_error = true;
      continue;
    }
    const perf::BenchRecord current =
        perf::load_bench_file(current_path.string());
    const perf::CompareResult result =
        perf::compare_records(baseline, current, options);
    std::cout << result.render_table() << "\n";
    results.emplace_back(result.to_json());
    any_regressed = any_regressed || result.regressed();
    any_exact_regressed = any_exact_regressed || result.exact_regressed();
  }

  JsonObject verdict;
  verdict["regressed"] = any_regressed;
  verdict["exact_regressed"] = any_exact_regressed;
  verdict["errors"] = any_error;
  verdict["warn_only"] = warn_only;
  verdict["enforce_exact"] = enforce_exact;
  verdict["results"] = std::move(results);
  const std::string json_path = args.get("json", std::string(""));
  if (!json_path.empty()) {
    write_text_file(json_path, JsonValue(std::move(verdict)).dump(2) + "\n");
    std::cout << "verdict written to " << json_path << "\n";
  }

  if (any_error) return EXIT_FAILURE;  // schema/coverage errors always fail
  if (warn_only && enforce_exact && any_exact_regressed) {
    std::cout << "enforce-exact: exact-noise-class metric regressed; "
                 "failing despite --warn-only\n";
    return EXIT_FAILURE;
  }
  if (any_regressed && warn_only) {
    std::cout << "warn-only: regression reported but exiting 0\n";
    return EXIT_SUCCESS;
  }
  return any_regressed ? EXIT_FAILURE : EXIT_SUCCESS;
}

int cmd_perf(const Args& args) {
  if (args.positionals().empty()) {
    throw std::invalid_argument(
        "perf: expected an action: perf <record|compare|gate> [--flags]");
  }
  const std::string& action = args.positionals().front();
  if (action == "record") return cmd_perf_record(args);
  if (action == "compare") return cmd_perf_compare(args);
  if (action == "gate") return cmd_perf_gate(args);
  throw std::invalid_argument("perf: unknown action '" + action +
                              "' (expected record, compare, or gate)");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string command = argv[1];
  const Args args(argc - 1, argv + 1);
  try {
    // Optional observability sinks, shared by every command. --sample-out
    // needs a registry to sample, so it implies one even without
    // --metrics-out (the snapshot is then only written to the time series).
    const std::string metrics_path = args.get("metrics-out", std::string(""));
    const std::string trace_path = args.get("trace-out", std::string(""));
    const std::string sample_path = args.get("sample-out", std::string(""));
    const std::string timeline_path = args.get("timeline-out", std::string(""));
    std::unique_ptr<obs::MetricsRegistry> registry;
    std::unique_ptr<obs::Tracer> tracer;
    if (!metrics_path.empty() || !sample_path.empty()) {
      registry = std::make_unique<obs::MetricsRegistry>();
    }
    if (!trace_path.empty()) tracer = std::make_unique<obs::Tracer>();
    std::unique_ptr<obs::TimelineRecorder> timeline;
    if (!timeline_path.empty()) {
      const auto capacity = static_cast<std::size_t>(args.get(
          "timeline-capacity",
          static_cast<std::int64_t>(obs::TimelineRecorder::kDefaultCapacity)));
      timeline = std::make_unique<obs::TimelineRecorder>(capacity);
    }
    obs::ObservabilityScope scope(registry.get(), tracer.get());
    obs::TimelineScope timeline_scope(timeline.get());
    // Constructed after the scope so it samples the installed registry and
    // is stopped (final sample + flush) before the scope unwinds.
    std::unique_ptr<obs::RunSampler> sampler;
    if (!sample_path.empty()) {
      obs::RunSamplerOptions sampler_options;
      sampler_options.path = sample_path;
      sampler_options.period = std::chrono::milliseconds(
          args.get("sample-period", std::int64_t{1000}));
      sampler = std::make_unique<obs::RunSampler>(nullptr, sampler_options);
    }
    if (args.get("debug-checks", false)) check::set_debug_checks(true);

    int status = EXIT_FAILURE;
    if (command == "generate") {
      status = cmd_generate(args);
    } else if (command == "realize") {
      status = cmd_realize(args);
    } else if (command == "run") {
      status = cmd_run(args);
    } else if (command == "serve") {
      status = cmd_serve(args);
    } else if (command == "obs") {
      status = cmd_obs(args);
    } else if (command == "evaluate") {
      status = cmd_evaluate(args);
    } else if (command == "sweep") {
      status = cmd_sweep(args);
    } else if (command == "bounds") {
      status = cmd_bounds(args);
    } else if (command == "repro") {
      status = cmd_repro(args);
    } else if (command == "fuzz") {
      status = cmd_fuzz(args);
    } else if (command == "perf") {
      status = cmd_perf(args);
    } else {
      std::cerr << "unknown command '" << command << "'\n";
      return usage(argv[0]);
    }

    if (sampler) {
      sampler->stop();
      std::cout << sampler->samples() << " sample(s) written to "
                << sample_path << "\n";
    }
    if (timeline) {
      timeline->save(timeline_path);
      std::cout << timeline->size() << " timeline event(s) written to "
                << timeline_path;
      if (timeline->dropped() > 0) {
        std::cout << " (" << timeline->dropped() << " dropped at capacity "
                  << timeline->capacity() << ")";
      }
      std::cout << "\n";
    }
    if (registry && !metrics_path.empty()) {
      registry->save_json(metrics_path);
      std::cout << "metrics written to " << metrics_path << "\n";
    }
    if (tracer) {
      tracer->save(trace_path);
      std::cout << "trace written to " << trace_path << "\n";
    }
    return status;
  } catch (const std::invalid_argument& error) {
    // Bad or missing flag values from any subcommand surface here: one
    // consistent message, a usage pointer, and the usage exit code.
    std::cerr << "error: " << error.what() << "\n"
              << "run '" << argv[0]
              << "' without arguments for the full command list\n";
    return kExitUsage;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return EXIT_FAILURE;
  }
}
