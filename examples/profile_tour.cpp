// Profile tour: every built-in workload profile (the application shapes
// from the paper's motivation) against the full paper strategy family --
// a one-screen answer to "which replication strategy fits my workload?".
//
//   $ ./profile_tour [--n=48] [--m=8] [--seed=5]
#include <cstdlib>
#include <iostream>

#include "algo/strategy.hpp"
#include "cli/args.hpp"
#include "exact/optimal.hpp"
#include "io/table.hpp"
#include "workload/profiles.hpp"

int main(int argc, char** argv) {
  using namespace rdp;
  const Args args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get("n", std::int64_t{48}));
  const auto m = static_cast<MachineId>(args.get("m", std::int64_t{8}));
  const auto seed = static_cast<std::uint64_t>(args.get("seed", std::int64_t{5}));

  std::cout << "=== Workload profile tour (n=" << n << ", m=" << m << ") ===\n\n";

  for (const WorkloadProfile& profile : builtin_profiles()) {
    const ProfiledWorkload w = make_profiled_workload(profile.name, n, m, seed);
    const CertifiedCmax opt =
        certified_cmax(w.actual.actual, m, /*node_budget=*/200'000);

    std::cout << profile.name << " -- " << profile.description << "\n"
              << "  (alpha " << profile.alpha << ", typical noise "
              << to_string(profile.typical_noise) << ")\n";
    TextTable table({"strategy", "C_max", "ratio vs OPT-LB", "replicas"});
    std::string best_name;
    double best_ratio = 1e300;
    for (const TwoPhaseStrategy& s : paper_strategy_family(m)) {
      const StrategyResult r = s.run(w.instance, w.actual);
      const double ratio = r.makespan / opt.lower;
      table.add_row({s.name(), fmt(r.makespan, 2), fmt(ratio, 3),
                     std::to_string(r.max_replication)});
      if (ratio < best_ratio) {
        best_ratio = ratio;
        best_name = s.name();
      }
    }
    std::cout << table.render() << "  winner: " << best_name << "\n\n";
  }
  std::cout << "Pattern: noisy profiles (stragglers, out-of-core) reward\n"
            << "replication strongly; well-calibrated ones (web requests)\n"
            << "barely distinguish the strategies -- alpha is the knob that\n"
            << "decides how much replication is worth, exactly as Figure 3's\n"
            << "guarantee curves predict.\n";
  return EXIT_SUCCESS;
}
