// Straggler mitigation shoot-out: the two coping mechanisms from the
// paper's introduction -- data replication (this paper's subject) and
// speculative task duplication (its cited alternative) -- head to head
// and combined, on a cluster with slow machines and noisy estimates.
//
//   $ ./straggler_mitigation [--m=8] [--n=48] [--slow=0.3] [--jobs=10]
#include <cstdlib>
#include <iostream>

#include "algo/dispatch_policies.hpp"
#include "algo/strategy.hpp"
#include "cli/args.hpp"
#include "io/table.hpp"
#include "perturb/stochastic.hpp"
#include "sim/speculative.hpp"
#include "stats/welford.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace rdp;
  const Args args(argc, argv);
  const auto m = static_cast<MachineId>(args.get("m", std::int64_t{8}));
  const auto n = static_cast<std::size_t>(args.get("n", std::int64_t{48}));
  const double slow = args.get("slow", 0.3);
  const auto jobs = static_cast<std::size_t>(args.get("jobs", std::int64_t{10}));

  WorkloadParams params;
  params.num_tasks = n;
  params.num_machines = m;
  params.alpha = 1.6;
  params.seed = 71;
  const Instance inst = uniform_workload(params, 1.0, 10.0);
  const SpeedProfile speeds = SpeedProfile::with_stragglers(m, 2, slow);

  std::cout << "=== Straggler mitigation: replication vs speculation (m=" << m
            << ", 2 machines at " << slow << "x speed) ===\n\n";

  struct Mechanism {
    const char* label;
    TwoPhaseStrategy strategy;
    bool speculate;
  };
  const Mechanism mechanisms[] = {
      {"neither (pin everything)", make_lpt_no_choice(), false},
      {"speculation only", make_lpt_no_choice(), true},
      {"replication only (k=2)", make_ls_group(2), false},
      {"both (k=2 + speculation)", make_ls_group(2), true},
      {"full replication", make_lpt_no_restriction(), false},
      {"full replication + speculation", make_lpt_no_restriction(), true},
  };

  TextTable table({"mechanism", "mean C_max", "backups/job", "waste/job"});
  for (const Mechanism& mech : mechanisms) {
    const Placement placement = mech.strategy.place(inst);
    const auto priority = make_priority(inst, mech.strategy.rule());
    SpeculationPolicy policy;
    policy.enabled = mech.speculate;
    Welford cmax, backups, waste;
    for (std::size_t job = 0; job < jobs; ++job) {
      const Realization actual = realize(inst, NoiseModel::kUniform, 300 + job);
      const SpeculativeResult r =
          dispatch_speculative(inst, placement, actual, priority, speeds, policy);
      cmax.add(r.makespan);
      backups.add(static_cast<double>(r.duplicates_launched));
      waste.add(r.wasted_time);
    }
    table.add_row({mech.label, fmt(cmax.mean(), 2), fmt(backups.mean(), 1),
                   fmt(waste.mean(), 1)});
  }
  std::cout << table.render() << "\n"
            << "Reading: speculation alone is useless without replicas to host\n"
            << "the backups (pinning gates it); replication alone adapts but\n"
            << "cannot cancel a task already crawling on a straggler; combined\n"
            << "they stack -- at the price of duplicated (wasted) work.\n";
  return EXIT_SUCCESS;
}
