// The "system designer" workflow from the paper's memory-aware section:
// given a memory budget (a multiple of the optimal memory footprint),
// pick the algorithm (SABO vs ABO) and the Delta knob that give the best
// *guaranteed* makespan under that budget, then run it.
//
//   $ ./memory_budget [--budget=3.0] [--m=5] [--alpha=1.7] [--n=15]
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <optional>

#include "bounds/memaware_bounds.hpp"
#include "cli/args.hpp"
#include "exp/memaware_experiment.hpp"
#include "io/table.hpp"
#include "perturb/stochastic.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace rdp;
  const Args args(argc, argv);
  const double budget = args.get("budget", 3.0);  // memory factor budget
  const auto m = static_cast<MachineId>(args.get("m", std::int64_t{5}));
  const double alpha = args.get("alpha", 1.7);
  const auto n = static_cast<std::size_t>(args.get("n", std::int64_t{15}));

  const double rho = 4.0 / 3.0 - 1.0 / (3.0 * static_cast<double>(m));

  std::cout << "=== Memory-budgeted scheduling: accept Mem_max <= " << budget
            << " x optimal ===\n\n";

  // Pick, per algorithm, the Delta whose memory guarantee meets the
  // budget and whose makespan guarantee is minimal. Memory guarantees are
  // decreasing in Delta, makespan guarantees increasing -> the best legal
  // Delta is the *smallest* one meeting the budget.
  auto best_delta = [&](MemAwareAlgorithm algo) -> std::optional<double> {
    std::optional<double> best;
    for (const auto& pt :
         guarantee_curve(algo, alpha, m, rho, rho, 0.01, 100.0, 400)) {
      if (pt.guarantee.memory <= budget) {
        best = pt.delta;
        break;  // first (smallest) Delta under budget = best makespan
      }
    }
    return best;
  };

  TextTable table({"algorithm", "Delta*", "makespan guar.", "memory guar."});
  std::optional<double> sabo_delta = best_delta(MemAwareAlgorithm::kSabo);
  std::optional<double> abo_delta = best_delta(MemAwareAlgorithm::kAbo);
  double sabo_mk = 1e300, abo_mk = 1e300;
  if (sabo_delta) {
    const BiObjectiveGuarantee g = sabo_guarantee(*sabo_delta, alpha, rho, rho);
    sabo_mk = g.makespan;
    table.add_row({"SABO", fmt(*sabo_delta, 3), fmt(g.makespan), fmt(g.memory)});
  } else {
    table.add_row({"SABO", "-", "budget infeasible", "-"});
  }
  if (abo_delta) {
    const BiObjectiveGuarantee g = abo_guarantee(*abo_delta, alpha, m, rho, rho);
    abo_mk = g.makespan;
    table.add_row({"ABO", fmt(*abo_delta, 3), fmt(g.makespan), fmt(g.memory)});
  } else {
    table.add_row({"ABO", "-", "budget infeasible", "-"});
  }
  std::cout << table.render() << "\n";

  if (!sabo_delta && !abo_delta) {
    std::cout << "No algorithm meets this memory budget; raise it.\n";
    return EXIT_SUCCESS;
  }
  const bool use_abo = abo_delta && (!sabo_delta || abo_mk < sabo_mk);
  const double delta = use_abo ? *abo_delta : *sabo_delta;
  std::cout << "Chosen: " << (use_abo ? "ABO" : "SABO") << " with Delta = "
            << fmt(delta, 3) << "\n\n";

  // Run the chosen algorithm on a workload and report measured behaviour.
  WorkloadParams params;
  params.num_tasks = n;
  params.num_machines = m;
  params.alpha = alpha;
  params.seed = 3;
  const Instance inst = independent_sizes_workload(params);
  const Realization actual = realize(inst, NoiseModel::kUniform, 8);
  const MemAwareTrial trial = use_abo ? measure_abo(inst, actual, delta)
                                      : measure_sabo(inst, actual, delta);
  std::cout << "Measured on a real workload (n=" << n << "):\n"
            << "  makespan ratio " << fmt(trial.makespan_ratio, 3)
            << " (guarantee " << fmt(trial.makespan_guarantee, 3) << ")\n"
            << "  memory ratio   " << fmt(trial.memory_ratio, 3) << " (guarantee "
            << fmt(trial.memory_guarantee, 3) << ", budget " << fmt(budget, 3)
            << ")\n";
  return EXIT_SUCCESS;
}
