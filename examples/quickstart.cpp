// Quickstart: build an instance with uncertain processing times, run the
// paper's three replication strategies, and compare their makespans
// against the certified optimum.
//
//   $ ./quickstart
#include <cstdlib>
#include <iostream>

#include "algo/strategy.hpp"
#include "bounds/replication_bounds.hpp"
#include "exact/optimal.hpp"
#include "io/table.hpp"
#include "perturb/stochastic.hpp"
#include "workload/generators.hpp"

int main() {
  using namespace rdp;

  // 1. An instance: 24 tasks, 6 machines, and estimates that may be off
  //    by up to a factor alpha = 1.5 in either direction.
  WorkloadParams params;
  params.num_tasks = 24;
  params.num_machines = 6;
  params.alpha = 1.5;
  params.seed = 2024;
  const Instance instance = uniform_workload(params, 1.0, 10.0);
  std::cout << "Instance: " << instance.summary() << "\n\n";

  // 2. Nature draws the actual processing times inside the alpha band.
  const Realization actual = realize(instance, NoiseModel::kLogUniform, 7);

  // 3. Run the three strategies. Phase 1 places data using estimates
  //    only; phase 2 dispatches online as machines become idle.
  const CertifiedCmax opt = certified_cmax(actual.actual, instance.num_machines());

  TextTable table({"strategy", "C_max", "ratio vs OPT", "guarantee", "replicas",
                   "Mem_max"});
  for (const TwoPhaseStrategy& strategy :
       {make_lpt_no_choice(), make_ls_group(3), make_ls_group(2),
        make_lpt_no_restriction()}) {
    const StrategyResult result = strategy.run(instance, actual);
    double guarantee = 0;
    if (result.max_replication == 1) {
      guarantee = thm2_lpt_no_choice(instance.alpha(), instance.num_machines());
    } else if (result.max_replication == instance.num_machines()) {
      guarantee = thm3_lpt_no_restriction(instance.alpha(), instance.num_machines());
    } else {
      const auto k = static_cast<MachineId>(instance.num_machines() /
                                            result.max_replication);
      guarantee = thm4_ls_group(instance.alpha(), instance.num_machines(), k);
    }
    table.add_row({strategy.name(), fmt(result.makespan, 2),
                   fmt(result.makespan / opt.lower, 3), fmt(guarantee, 3),
                   std::to_string(result.max_replication),
                   fmt(result.max_memory, 0)});
  }
  std::cout << table.render() << "\n"
            << "Optimal C_max (knowing actual times): " << fmt(opt.lower, 2)
            << (opt.exact ? " (exact)" : " (lower bound)") << "\n\n"
            << "Reading the table: more replicas -> more room to adapt online\n"
            << "-> smaller ratio, at the cost of Mem_max. That tradeoff is the\n"
            << "paper's subject.\n";
  return EXIT_SUCCESS;
}
