// Trace replay: evaluate replication strategies against *recorded*
// executions instead of synthetic noise. The example synthesizes a
// cluster-style trace (or loads one you pass with --trace=<path>),
// calibrates alpha from it, replays every strategy against the recorded
// actual runtimes, and reports makespans plus schedule diagnostics.
//
//   $ ./trace_replay                       # synthesized demo trace
//   $ ./trace_replay --trace=mytrace.csv --m=8
#include <cstdlib>
#include <iostream>

#include "algo/strategy.hpp"
#include "cli/args.hpp"
#include "io/table.hpp"
#include "perturb/stochastic.hpp"
#include "stats/schedule_stats.hpp"
#include "workload/generators.hpp"
#include "workload/trace.hpp"

int main(int argc, char** argv) {
  using namespace rdp;
  const Args args(argc, argv);
  const auto m = static_cast<MachineId>(args.get("m", std::int64_t{6}));
  const std::string trace_path = args.get("trace", std::string(""));

  Trace trace;
  if (trace_path.empty()) {
    // Synthesize a demo trace: bimodal tasks perturbed log-uniformly.
    WorkloadParams params;
    params.num_tasks = 48;
    params.num_machines = m;
    params.alpha = 1.9;
    params.seed = 55;
    const Instance source = bimodal_workload(params, 2.0, 30.0, 0.2);
    const Realization actual = realize(source, NoiseModel::kLogUniform, 56);
    trace = make_synthetic_trace(source, actual);
    std::cout << "(no --trace given; synthesized a demo trace of " << trace.size()
              << " records)\n\n";
  } else {
    trace = load_trace(trace_path);
    std::cout << "Loaded " << trace.size() << " records from " << trace_path
              << "\n\n";
  }

  const ReplayableWorkload workload = workload_from_trace(trace, m);
  std::cout << "Calibrated instance: " << workload.instance.summary()
            << " (alpha fitted from the trace)\n\n";

  TextTable table({"strategy", "C_max", "replicas", "diagnostics"});
  for (const TwoPhaseStrategy& s : paper_strategy_family(m)) {
    const StrategyResult result = s.run(workload.instance, workload.actual);
    const ScheduleStats stats =
        compute_schedule_stats(workload.instance, result.schedule);
    table.add_row({s.name(), fmt(result.makespan, 2),
                   std::to_string(result.max_replication), to_string(stats)});
  }
  std::cout << table.render()
            << "\nReplay reading: utilization rises and makespan falls with the\n"
            << "replication degree -- on the *recorded* runtimes, not a model.\n";
  return EXIT_SUCCESS;
}
